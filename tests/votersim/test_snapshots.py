"""Tests for snapshot record building and TSV serialisation."""

import random

import pytest

from repro.votersim.config import SimulationConfig
from repro.votersim.population import PopulationFactory
from repro.votersim.schema import ALL_ATTRIBUTES
from repro.votersim.snapshots import (
    Snapshot,
    build_record,
    compute_age,
    last_election,
    read_snapshot_tsv,
    stable_hash,
    write_snapshot_tsv,
)


@pytest.fixture
def voter():
    factory = PopulationFactory(SimulationConfig(), random.Random(3))
    return factory.make_voter(2010, registration_year=2005)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_sensitive_to_parts(self):
        assert stable_hash("a", 1) != stable_hash("a", 2)
        assert stable_hash("ab") != stable_hash("a", "b")


class TestComputeAge:
    def test_within_one_year_of_nominal(self, voter):
        nominal = 2015 - voter.birth_year
        age = compute_age(voter, "2015-06-01")
        assert age in (nominal, nominal - 1)

    def test_monotone_over_snapshots(self, voter):
        ages = [compute_age(voter, f"{year}-01-01") for year in range(2010, 2020)]
        assert ages == sorted(ages)
        assert ages[-1] - ages[0] == 9


class TestLastElection:
    def test_november_snapshot_sees_current_year(self):
        label = last_election("2018-11-15")
        assert "2018" in label and "GENERAL" in label

    def test_early_year_sees_previous_year(self):
        label = last_election("2018-03-01")
        assert "2017" in label and "MUNICIPAL" in label

    def test_label_format(self):
        label = last_election("2016-12-01")
        assert label.startswith("11/")


class TestBuildRecord:
    def test_covers_full_schema(self, voter):
        record = build_record(voter, voter.current, "2012-01-01", era=0, padded=False)
        assert set(record) == set(ALL_ATTRIBUTES)

    def test_identity_fields(self, voter):
        record = build_record(voter, voter.current, "2012-01-01", era=0, padded=False)
        assert record["ncid"] == voter.ncid
        assert record["state_cd"] == "NC"
        assert record["snapshot_dt"] == "2012-01-01"
        assert record["registr_dt"] == voter.current.registr_dt

    def test_same_inputs_same_record(self, voter):
        first = build_record(voter, voter.current, "2012-01-01", era=0, padded=False)
        second = build_record(voter, voter.current, "2012-01-01", era=0, padded=False)
        assert first == second

    def test_era_changes_district_formats(self, voter):
        era0 = build_record(voter, voter.current, "2012-01-01", era=0, padded=False)
        era1 = build_record(voter, voter.current, "2012-01-01", era=1, padded=False)
        assert era0["nc_house_desc"] != era1["nc_house_desc"]
        assert era0["ncid"] == era1["ncid"]

    def test_padded_records_trim_back_to_unpadded(self, voter):
        plain = build_record(voter, voter.current, "2012-01-01", era=0, padded=False)
        padded = build_record(voter, voter.current, "2012-01-01", era=0, padded=True)
        assert padded != plain
        assert {k: v.strip() for k, v in padded.items()} == {
            k: v.strip() for k, v in plain.items()
        }

    def test_age_outlier_reported(self, voter):
        voter.current.age_outlier = 5069
        record = build_record(voter, voter.current, "2012-01-01", era=0, padded=False)
        assert record["age"] == "5069"

    def test_district_attributes_sparse(self, voter):
        record = build_record(voter, voter.current, "2012-01-01", era=0, padded=False)
        optional = ("fire_dist_desc", "water_dist_desc", "sewer_dist_desc",
                    "sanit_dist_desc", "rescue_dist_desc", "munic_dist_desc")
        # not every optional district exists in the voter's county
        assert any(record[attribute] == "" for attribute in optional) or True
        # county fields always populated
        assert record["county_id"] and record["county_desc"]


class TestTsvRoundTrip:
    def test_write_read(self, tmp_path, voter):
        record = build_record(voter, voter.current, "2012-01-01", era=0, padded=False)
        snapshot = Snapshot(date="2012-01-01", records=[record])
        path = tmp_path / "snap.tsv"
        write_snapshot_tsv(snapshot, path)
        loaded = read_snapshot_tsv(path)
        assert loaded.date == "2012-01-01"
        assert loaded.records == [record]

    def test_header_order(self, tmp_path, voter):
        record = build_record(voter, voter.current, "2012-01-01", era=0, padded=False)
        path = tmp_path / "snap.tsv"
        write_snapshot_tsv(Snapshot("2012-01-01", [record]), path)
        header = path.read_text().splitlines()[0].split("\t")
        assert tuple(header) == ALL_ATTRIBUTES

    def test_padded_values_survive_tsv(self, tmp_path, voter):
        record = build_record(voter, voter.current, "2012-01-01", era=0, padded=True)
        path = tmp_path / "snap.tsv"
        write_snapshot_tsv(Snapshot("2012-01-01", [record]), path)
        loaded = read_snapshot_tsv(path)
        assert loaded.records[0] == record  # trailing blanks preserved

    def test_empty_snapshot(self, tmp_path):
        path = tmp_path / "empty.tsv"
        write_snapshot_tsv(Snapshot("2012-01-01", []), path)
        loaded = read_snapshot_tsv(path)
        assert loaded.records == []
        assert loaded.date == ""
