"""Tests for the transcription error engine."""

import random

import pytest

from repro.textsim import damerau_levenshtein_distance, soundex
from repro.votersim.config import ErrorRates
from repro.votersim.errors import (
    TranscriptionErrors,
    apply_ocr_error,
    apply_phonetic_error,
    apply_representation_change,
    apply_token_transposition,
    apply_typo,
)


@pytest.fixture
def rng():
    return random.Random(99)


class TestApplyTypo:
    def test_produces_distance_one_edit(self, rng):
        for _ in range(100):
            value = "WILLIAMS"
            corrupted = apply_typo(value, rng)
            assert damerau_levenshtein_distance(value, corrupted) == 1

    def test_short_values_untouched(self, rng):
        assert apply_typo("AB", rng) == "AB"
        assert apply_typo("", rng) == ""


class TestApplyOcrError:
    def test_replaces_confusable_character(self, rng):
        corrupted = apply_ocr_error("NICOLE", rng)
        assert corrupted != "NICOLE"
        # only confusable positions change, by their lookalike
        diffs = [
            (a, b) for a, b in zip("NICOLE", corrupted) if a != b
        ]
        assert len(diffs) == 1

    def test_digits_become_letters(self, rng):
        corrupted = apply_ocr_error("1234", rng)
        assert corrupted != "1234"

    def test_value_without_confusables_untouched(self, rng):
        assert apply_ocr_error("WWW", rng) == "WWW"


class TestApplyPhoneticError:
    def test_preserves_soundex(self, rng):
        changed = 0
        for value in ("BAILEY", "PHILLIPS", "MCKEE", "REED", "HOOD"):
            corrupted = apply_phonetic_error(value, rng)
            if corrupted != value:
                changed += 1
                assert soundex(corrupted) == soundex(value), (value, corrupted)
        assert changed > 0

    def test_first_letter_never_changes(self, rng):
        for _ in range(50):
            corrupted = apply_phonetic_error("BAILEY", rng)
            assert corrupted[0] == "B"


class TestRepresentationAndTransposition:
    def test_representation_changes_only_separators(self, rng):
        for value in ("MARY ANN", "SMITH-JONES", "FOX RUN"):
            corrupted = apply_representation_change(value, rng)
            stripped = lambda s: "".join(ch for ch in s if ch.isalnum())
            assert stripped(corrupted) == stripped(value)

    def test_transposition_keeps_token_set(self, rng):
        value = "ANH THI"
        corrupted = apply_token_transposition(value, rng)
        assert sorted(corrupted.split()) == sorted(value.split())
        assert corrupted != value

    def test_single_token_untouched(self, rng):
        assert apply_token_transposition("SINGLE", rng) == "SINGLE"


class TestTranscriptionErrors:
    def _truth(self):
        return {
            "first_name": "DEBRA",
            "midl_name": "OEHRLE",
            "last_name": "WILLIAMS",
            "name_sufx": "",
            "sex_code": "F",
            "sex": "FEMALE",
            "race_code": "W",
            "race_desc": "WHITE",
            "ethnic_code": "NL",
            "ethnic_desc": "NOT HISPANIC or NOT LATINO",
            "birth_place": "NORTH CAROLINA",
            "party_cd": "DEM",
            "party_desc": "DEMOCRATIC",
            "phone_num": "9195551234",
            "drivers_lic": "Y",
        }

    def test_zero_rates_reproduce_truth_except_blanks(self, rng):
        rates = ErrorRates(
            typo=0, ocr=0, phonetic=0, abbreviate_middle=0, missing=0,
            value_confusion=0, integrated_value=0, scattered_value=0,
            token_transposition=0, representation=0, outlier=0, optional_blank=0,
        )
        engine = TranscriptionErrors(rates, rng)
        assert engine.transcribe(self._truth()) == self._truth()

    def test_truth_never_mutated(self, rng):
        engine = TranscriptionErrors(ErrorRates(), rng)
        truth = self._truth()
        reference = dict(truth)
        for _ in range(50):
            engine.transcribe(truth)
        assert truth == reference

    def test_value_confusion_swaps_attributes(self, rng):
        rates = ErrorRates(
            typo=0, ocr=0, phonetic=0, abbreviate_middle=0, missing=0,
            value_confusion=1.0, integrated_value=0, scattered_value=0,
            token_transposition=0, representation=0, outlier=0, optional_blank=0,
        )
        engine = TranscriptionErrors(rates, rng)
        recorded = engine.transcribe(self._truth())
        truth_names = {"DEBRA", "OEHRLE", "WILLIAMS"}
        recorded_names = {
            recorded["first_name"], recorded["midl_name"], recorded["last_name"]
        }
        assert recorded_names == truth_names
        assert recorded != self._truth()

    def test_abbreviation_reduces_middle_name(self, rng):
        rates = ErrorRates(
            typo=0, ocr=0, phonetic=0, abbreviate_middle=1.0, missing=0,
            value_confusion=0, integrated_value=0, scattered_value=0,
            token_transposition=0, representation=0, outlier=0, optional_blank=0,
        )
        engine = TranscriptionErrors(rates, rng)
        recorded = engine.transcribe(self._truth())
        assert recorded["midl_name"] in ("O", "O.")

    def test_outlier_plants_age(self):
        rng = random.Random(1)
        rates = ErrorRates(
            typo=0, ocr=0, phonetic=0, abbreviate_middle=0, missing=0,
            value_confusion=0, integrated_value=0, scattered_value=0,
            token_transposition=0, representation=0, outlier=1.0, optional_blank=0,
        )
        engine = TranscriptionErrors(rates, rng)
        saw_age_outlier = False
        for _ in range(30):
            recorded = engine.transcribe(self._truth())
            if "age" in recorded:
                saw_age_outlier = True
                assert int(recorded["age"]) > 110
        assert saw_age_outlier

    def test_rates_validated(self, rng):
        with pytest.raises(ValueError):
            TranscriptionErrors(ErrorRates(typo=1.5), rng)
