"""Tests for the register simulator as a whole."""

import collections

import pytest

from repro.votersim import SimulationConfig, VoterRegisterSimulator
from repro.votersim.schema import ALL_ATTRIBUTES


class TestDeterminism:
    def test_same_seed_same_snapshots(self):
        config = SimulationConfig(initial_voters=50, years=3, seed=123)
        first = [s.records for s in VoterRegisterSimulator(config).run()]
        second = [s.records for s in VoterRegisterSimulator(config).run()]
        assert first == second

    def test_different_seed_different_data(self):
        base = SimulationConfig(initial_voters=50, years=3, seed=1)
        other = SimulationConfig(initial_voters=50, years=3, seed=2)
        first = [s.records for s in VoterRegisterSimulator(base).run()]
        second = [s.records for s in VoterRegisterSimulator(other).run()]
        assert first != second


class TestStructure:
    def test_snapshot_count(self, snapshots):
        config = SimulationConfig(initial_voters=300, years=6, snapshots_per_year=2)
        assert len(snapshots) == config.years * config.snapshots_per_year

    def test_snapshots_in_date_order(self, snapshots):
        dates = [s.date for s in snapshots]
        assert dates == sorted(dates)

    def test_first_snapshot_contains_initial_population(self, snapshots):
        assert len(snapshots[0]) >= 300

    def test_population_grows(self, snapshots):
        assert len(snapshots[-1]) > len(snapshots[0])

    def test_records_cover_schema(self, snapshots):
        for record in snapshots[0].records[:20]:
            assert set(record) == set(ALL_ATTRIBUTES)

    def test_ncids_persist_across_snapshots(self, snapshots):
        first_ncids = {r["ncid"].strip() for r in snapshots[0].records}
        last_ncids = {r["ncid"].strip() for r in snapshots[-1].records}
        overlap = first_ncids & last_ncids
        # most of the initial population is still registered at the end
        assert len(overlap) > 0.5 * len(first_ncids)


class TestOverlapStatistics:
    """The statistical properties that make the pipeline's job realistic."""

    def test_exact_duplicate_share_is_high(self, snapshots):
        # The union of all snapshots is dominated by exact duplicates
        # (paper: 67% of records removed at the 'exact' level).
        from repro.core.hashing import record_hash

        seen = collections.Counter()
        total = 0
        for snapshot in snapshots:
            for record in snapshot.records:
                seen[record_hash(record, trim=False)] += 1
                total += 1
        duplicates = sum(count - 1 for count in seen.values())
        assert duplicates / total > 0.4

    def test_trimming_increases_duplicate_share(self, snapshots):
        from repro.core.hashing import record_hash

        exact, trimmed = collections.Counter(), collections.Counter()
        total = 0
        for snapshot in snapshots:
            for record in snapshot.records:
                exact[record_hash(record, trim=False)] += 1
                trimmed[record_hash(record, trim=True)] += 1
                total += 1
        exact_duplicates = sum(c - 1 for c in exact.values())
        trimmed_duplicates = sum(c - 1 for c in trimmed.values())
        assert trimmed_duplicates > exact_duplicates

    def test_some_snapshots_are_padded(self, snapshots):
        padded_snapshots = 0
        for snapshot in snapshots:
            record = snapshot.records[0]
            if any(value != value.strip() for value in record.values() if value):
                padded_snapshots += 1
        assert 0 < padded_snapshots < len(snapshots)

    def test_unsound_clusters_exist(self, simulator):
        # the session config forces NCID reuse
        assert len(simulator.unsound_ncids) >= 1

    def test_multi_record_voters_within_snapshot(self, snapshots):
        last = snapshots[-1]
        counts = collections.Counter(r["ncid"].strip() for r in last.records)
        multi = [ncid for ncid, count in counts.items() if count > 1]
        assert multi  # retired registrations linger (paper Section 2)


class TestRunToDirectory:
    def test_writes_one_tsv_per_snapshot(self, tmp_path):
        config = SimulationConfig(initial_voters=20, years=2, seed=4)
        sim = VoterRegisterSimulator(config)
        paths = sim.run_to_directory(tmp_path)
        assert len(paths) == 4
        for path in paths:
            assert path.exists()
            assert path.name.startswith("ncvoter_")


class TestConfigValidation:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            VoterRegisterSimulator(SimulationConfig(initial_voters=0))
        with pytest.raises(ValueError):
            VoterRegisterSimulator(SimulationConfig(move_rate=2.0))
        with pytest.raises(ValueError):
            VoterRegisterSimulator(SimulationConfig(years=0))

    def test_snapshot_dates_schedule(self):
        config = SimulationConfig(start_year=2010, years=2, snapshots_per_year=2)
        assert config.snapshot_dates() == (
            "2010-01-01", "2010-11-01", "2011-01-01", "2011-11-01",
        )

    def test_snapshot_dates_many_per_year(self):
        config = SimulationConfig(start_year=2010, years=1, snapshots_per_year=4)
        dates = config.snapshot_dates()
        assert len(dates) == 4
        assert len(set(dates)) == 4


class TestInactivityLifecycle:
    def test_inactive_status_appears(self):
        config = SimulationConfig(
            initial_voters=200, years=5, seed=6, inactivity_rate=0.3
        )
        sim = VoterRegisterSimulator(config)
        snapshots = list(sim.run())
        statuses = {
            record["status_cd"].strip()
            for record in snapshots[-1].records
        }
        assert "I" in statuses
        assert "A" in statuses

    def test_reactivation_happens(self):
        config = SimulationConfig(
            initial_voters=200, years=6, seed=6,
            inactivity_rate=0.5, reactivation_rate=0.9,
        )
        sim = VoterRegisterSimulator(config)
        list(sim.run())
        # some voters went inactive and came back: their current
        # registration is active again with no reason code
        reactivated = [
            voter for voter in sim.voters
            if voter.current.status_cd == "A" and not voter.removed
        ]
        assert reactivated

    def test_zero_rate_disables(self):
        config = SimulationConfig(
            initial_voters=100, years=4, seed=6, inactivity_rate=0.0
        )
        sim = VoterRegisterSimulator(config)
        snapshots = list(sim.run())
        statuses = {r["status_cd"].strip() for s in snapshots for r in s.records}
        assert "I" not in statuses

    def test_status_churn_creates_new_records(self):
        # A status flip changes hashed content -> the register publishes a
        # "new" record for an unchanged person (organic churn).
        from repro.core import RemovalLevel, TestDataGenerator

        quiet = SimulationConfig(initial_voters=150, years=5, seed=8,
                                 inactivity_rate=0.0, reactivation_rate=0.0)
        churny = SimulationConfig(initial_voters=150, years=5, seed=8,
                                  inactivity_rate=0.4, reactivation_rate=0.5)
        counts = {}
        for label, config in (("quiet", quiet), ("churny", churny)):
            generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
            generator.import_snapshots(VoterRegisterSimulator(config).run())
            counts[label] = generator.record_count
        assert counts["churny"] > counts["quiet"]
