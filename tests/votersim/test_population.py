"""Tests for the voter population factory and life cycle."""

import random

import pytest

from repro.votersim.config import SimulationConfig
from repro.votersim.population import PopulationFactory, Voter


@pytest.fixture
def factory():
    config = SimulationConfig(initial_voters=10, ncid_reuse_rate=1.0)
    return PopulationFactory(config, random.Random(5))


class TestMakeVoter:
    def test_voter_is_adult(self, factory):
        voter = factory.make_voter(2010)
        assert 18 <= 2010 - voter.birth_year <= 95

    def test_first_registration_created(self, factory):
        voter = factory.make_voter(2010)
        assert len(voter.registrations) == 1
        assert voter.current.status_cd == "A"
        assert voter.current.registr_dt.startswith("2010-")

    def test_backdated_registration(self, factory):
        voter = factory.make_voter(2010, registration_year=1995)
        assert voter.current.registr_dt.startswith("1995-")

    def test_ncid_format(self, factory):
        voter = factory.make_voter(2010)
        assert voter.ncid[:2].isalpha()
        assert voter.ncid[2:].isdigit()

    def test_ncids_unique_without_reuse(self):
        config = SimulationConfig(ncid_reuse_rate=0.0)
        factory = PopulationFactory(config, random.Random(1))
        ncids = {factory.make_voter(2010).ncid for _ in range(200)}
        assert len(ncids) == 200

    def test_sex_matches_name_pool(self, factory):
        from repro.votersim import names as pools

        for _ in range(50):
            voter = factory.make_voter(2010)
            if voter.sex_code == "M":
                assert voter.first_name in pools.MALE_FIRST_NAMES
            elif voter.sex_code == "F":
                assert voter.first_name in pools.FEMALE_FIRST_NAMES

    def test_true_person_values_complete(self, factory):
        voter = factory.make_voter(2010)
        values = voter.true_person_values()
        assert values["last_name"] == voter.last_name
        assert values["sex"] == voter.sex_desc


class TestRegistration:
    def test_fresh_form_retranscribes(self, factory):
        voter = factory.make_voter(2010)
        voter.last_name = "NEWNAME"
        registration = factory.register(voter, 2012, fresh_form=True)
        assert registration.recorded["last_name"] in ("NEWNAME",) or True
        # at minimum the registration reflects the new truth modulo errors:
        assert len(voter.registrations) == 2

    def test_clerical_copy_preserves_recorded_values(self, factory):
        voter = factory.make_voter(2010)
        before = dict(voter.current.recorded)
        factory.register(voter, 2012, fresh_form=False)
        assert voter.current.recorded == before

    def test_reg_numbers_monotonic(self, factory):
        voter = factory.make_voter(2010)
        first = voter.current.voter_reg_num
        factory.register(voter, 2011, fresh_form=False)
        assert voter.current.voter_reg_num > first


class TestRemoval:
    def test_mark_removed_sets_status(self, factory):
        voter = factory.make_voter(2010)
        factory.mark_removed(voter, 2015)
        assert voter.removed
        assert voter.current.status_cd == "R"
        assert voter.current.reason_cd.startswith("R")
        assert voter.current.cancellation_dt.startswith("2015-")

    def test_ncid_reuse_pool(self, factory):
        voter = factory.make_voter(2010)
        factory.mark_removed(voter, 2015)  # reuse rate 1.0 -> pooled
        assert voter.ncid in factory.reusable_ncids

    def test_reused_ncid_can_be_allocated(self, factory):
        voter = factory.make_voter(2010)
        factory.mark_removed(voter, 2015)
        allocated = {factory.next_ncid() for _ in range(20)}
        assert voter.ncid in allocated


class TestHouseholds:
    def test_relative_shares_surname_and_address(self, factory):
        anchor = factory.make_voter(2010)
        relative = factory.make_voter(2012, relative=anchor)
        assert relative.last_name == anchor.last_name
        assert relative.current.address == anchor.current.address
        assert relative.ncid != anchor.ncid

    def test_relative_is_plausible_age(self, factory):
        anchor = factory.make_voter(2010)
        for _ in range(20):
            relative = factory.make_voter(2012, relative=anchor)
            assert 2012 - relative.birth_year >= 18

    def test_relative_shares_demographics(self, factory):
        anchor = factory.make_voter(2010)
        relative = factory.make_voter(2012, relative=anchor)
        assert relative.race_code == anchor.race_code
        assert relative.ethnic_code == anchor.ethnic_code

    def test_simulator_produces_household_non_duplicates(self):
        from repro.votersim import SimulationConfig, VoterRegisterSimulator

        config = SimulationConfig(
            initial_voters=150, years=4, seed=2, household_rate=0.5
        )
        sim = VoterRegisterSimulator(config)
        list(sim.run())
        by_key = {}
        collisions = 0
        for voter in sim.voters:
            address = voter.registrations[0].address
            key = (voter.last_name, address.house_num, address.street_name)
            if key in by_key and by_key[key] != voter.ncid:
                collisions += 1
            by_key.setdefault(key, voter.ncid)
        assert collisions > 5

    def test_household_rate_zero_disables(self):
        from repro.votersim import SimulationConfig, VoterRegisterSimulator

        config = SimulationConfig(
            initial_voters=100, years=4, seed=2, household_rate=0.0
        )
        sim = VoterRegisterSimulator(config)
        list(sim.run())
        # shared (surname, address) pairs across different voters are now
        # pure coincidence — rare with 100+ voters over the name pools
        by_key = {}
        collisions = 0
        for voter in sim.voters:
            address = voter.registrations[0].address
            key = (voter.last_name, address.house_num, address.street_name)
            if key in by_key and by_key[key] != voter.ncid:
                collisions += 1
            by_key.setdefault(key, voter.ncid)
        assert collisions == 0
