"""Tests for the 90-attribute schema."""

import pytest

from repro.votersim.schema import (
    ALL_ATTRIBUTES,
    DISTRICT_ATTRIBUTES,
    ELECTION_ATTRIBUTES,
    HASH_EXCLUDED_ATTRIBUTES,
    META_ATTRIBUTES,
    PERSON_ATTRIBUTES,
    attribute_group,
    empty_record,
    group_attributes,
)


class TestSchemaShape:
    def test_ninety_attributes(self):
        assert len(ALL_ATTRIBUTES) == 90

    def test_attribute_names_unique(self):
        assert len(set(ALL_ATTRIBUTES)) == 90

    def test_district_group_has_38_attributes(self):
        # "millions of records have missing values in at least 38 attributes"
        assert len(DISTRICT_ATTRIBUTES) == 38

    def test_groups_partition_schema(self):
        union = (
            set(PERSON_ATTRIBUTES)
            | set(DISTRICT_ATTRIBUTES)
            | set(ELECTION_ATTRIBUTES)
            | set(META_ATTRIBUTES)
        )
        assert union == set(ALL_ATTRIBUTES)
        total = (
            len(PERSON_ATTRIBUTES)
            + len(DISTRICT_ATTRIBUTES)
            + len(ELECTION_ATTRIBUTES)
            + len(META_ATTRIBUTES)
        )
        assert total == 90

    def test_paper_quoted_attributes_present(self):
        for attribute in ("ncid", "last_name", "first_name", "midl_name", "age",
                          "race_desc", "birth_place", "snapshot_dt", "registr_dt"):
            assert attribute in ALL_ATTRIBUTES


class TestAttributeGroup:
    def test_person(self):
        assert attribute_group("last_name") == "person"

    def test_district(self):
        assert attribute_group("nc_house_desc") == "district"

    def test_election(self):
        assert attribute_group("election_lbl") == "election"

    def test_meta(self):
        assert attribute_group("snapshot_dt") == "meta"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            attribute_group("not_an_attribute")

    def test_group_attributes_roundtrip(self):
        for group in ("person", "district", "election", "meta"):
            for attribute in group_attributes(group):
                assert attribute_group(attribute) == group
        with pytest.raises(KeyError):
            group_attributes("bogus")


class TestHashExclusions:
    def test_exactly_the_paper_exclusions(self):
        # dates (snapshot, load, registration, cancellation) and the age
        assert set(HASH_EXCLUDED_ATTRIBUTES) == {
            "snapshot_dt",
            "load_dt",
            "registr_dt",
            "cancellation_dt",
            "age",
        }

    def test_exclusions_are_schema_attributes(self):
        assert set(HASH_EXCLUDED_ATTRIBUTES) <= set(ALL_ATTRIBUTES)


class TestEmptyRecord:
    def test_covers_full_schema(self):
        record = empty_record()
        assert set(record) == set(ALL_ATTRIBUTES)
        assert all(value == "" for value in record.values())
