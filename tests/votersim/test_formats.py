"""Tests for era-dependent district formats and padding."""

import pytest

from repro.votersim.formats import (
    age_group_label,
    district_description,
    ordinal,
    pad_value,
)


class TestOrdinal:
    @pytest.mark.parametrize(
        "number, expected",
        [(1, "1ST"), (2, "2ND"), (3, "3RD"), (4, "4TH"), (11, "11TH"),
         (12, "12TH"), (13, "13TH"), (21, "21ST"), (64, "64TH"), (103, "103RD")],
    )
    def test_suffixes(self, number, expected):
        assert ordinal(number) == expected


class TestDistrictDescription:
    def test_paper_example_nc_house(self):
        # '64TH HOUSE' vs 'NC HOUSE DISTRICT 64' (Section 4)
        assert district_description("nc_house", 64, era=0) == "64TH HOUSE"
        assert district_description("nc_house", 64, era=1) == "NC HOUSE DISTRICT 64"

    def test_paper_example_congressional(self):
        # '1ST CONGRESSIONAL' vs 'CO. DISTRICT 1' (Section 6)
        assert district_description("cong_dist", 1, era=0) == "1ST CONGRESSIONAL"
        assert district_description("cong_dist", 1, era=1) == "CO. DISTRICT 1"

    def test_eras_cycle(self):
        for district_type in ("nc_house", "cong_dist", "school_dist"):
            era0 = district_description(district_type, 5, era=0)
            era3 = district_description(district_type, 5, era=3)
            assert era0 == era3  # three templates cycle

    def test_different_eras_render_differently(self):
        assert district_description("nc_house", 7, 0) != district_description(
            "nc_house", 7, 1
        )

    def test_generic_fallback(self):
        description = district_description("water_dist", 3, era=1)
        assert "WATER DIST" in description
        assert "3" in description


class TestAgeGroupLabel:
    def test_paper_example(self):
        # '66 AND ABOVE' vs 'Age Over 66' (Section 6)
        assert age_group_label(80, era=0) == "66 AND ABOVE"
        assert age_group_label(80, era=1) == "Age Over 66"

    def test_bounded_group(self):
        assert age_group_label(30, era=0) == "26 - 40"
        assert age_group_label(30, era=1) == "Age 26 to 40"

    def test_all_adult_ages_covered(self):
        for age in range(18, 120):
            for era in range(3):
                assert age_group_label(age, era)


class TestPadValue:
    def test_appends_single_blank_by_default(self):
        assert pad_value("SMITH") == "SMITH "

    def test_empty_values_stay_empty(self):
        assert pad_value("") == ""

    def test_fixed_width(self):
        assert pad_value("AB", width=5) == "AB   "

    def test_width_smaller_than_value(self):
        assert pad_value("ABCDEF", width=3) == "ABCDEF "

    def test_trimming_recovers_original(self):
        assert pad_value("SMITH", width=12).strip() == "SMITH"
