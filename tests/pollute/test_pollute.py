"""Tests for the corruptor suite and the baseline generators."""

import random

import pytest

from repro.pollute import (
    CorruptorSuite,
    FebrlStyleSynthesizer,
    GeCoStylePolluter,
    PollutionProfile,
    default_corruptors,
)
from repro.pollute.corruptors import (
    corrupt_abbreviate,
    corrupt_case,
    corrupt_missing,
    corrupt_truncate,
)
from repro.pollute.synthesizer import SynthesizerConfig


@pytest.fixture
def rng():
    return random.Random(17)


class TestCorruptors:
    def test_registry_complete(self):
        registry = default_corruptors()
        assert set(registry) == {
            "typo", "ocr", "phonetic", "representation", "token_transposition",
            "missing", "abbreviate", "truncate", "case",
        }

    def test_missing(self, rng):
        assert corrupt_missing("ANYTHING", rng) == ""

    def test_abbreviate(self, rng):
        assert corrupt_abbreviate("KIMBERLY ANN", rng) in ("K", "K.")
        assert corrupt_abbreviate("", rng) == ""

    def test_truncate_is_prefix(self, rng):
        value = "CHRISTOPHER"
        truncated = corrupt_truncate(value, rng)
        assert value.startswith(truncated)
        assert len(truncated) < len(value)

    def test_case_flip(self, rng):
        assert corrupt_case("SMITH", rng) == "Smith"
        assert corrupt_case("Smith", rng) == "SMITH"

    def test_suite_rejects_unknown(self):
        with pytest.raises(ValueError):
            CorruptorSuite({"frobnicate": 1.0})
        with pytest.raises(ValueError):
            CorruptorSuite({})

    def test_corrupt_record_touches_requested_attributes_only(self, rng):
        suite = CorruptorSuite({"missing": 1.0})
        record = {"a": "X", "b": "Y"}
        corrupted = suite.corrupt_record(record, rng, ("a",), errors_per_record=1.0)
        assert corrupted["b"] == "Y"
        assert corrupted["a"] == ""

    def test_corrupt_record_does_not_mutate_input(self, rng):
        suite = CorruptorSuite({"missing": 1.0})
        record = {"a": "X"}
        suite.corrupt_record(record, rng, ("a",))
        assert record == {"a": "X"}

    def test_fractional_error_rate(self):
        suite = CorruptorSuite({"missing": 1.0})
        blanked = 0
        for seed in range(200):
            corrupted = suite.corrupt_record(
                {"a": "X"}, random.Random(seed), ("a",), errors_per_record=0.5
            )
            if corrupted["a"] == "":
                blanked += 1
        assert 60 < blanked < 140  # ~50 %


class TestGeCoStylePolluter:
    def test_pollution_adds_duplicates(self):
        clean = [{"name": f"PERSON{i}", "city": "RALEIGH"} for i in range(100)]
        polluter = GeCoStylePolluter(("name", "city"), seed=3)
        result = polluter.pollute(clean)
        assert len(result.records) > 100
        assert result.gold_pairs

    def test_gold_pairs_reference_same_cluster(self):
        clean = [{"name": f"P{i}"} for i in range(50)]
        result = GeCoStylePolluter(("name",), seed=1).pollute(clean)
        for i, j in result.gold_pairs:
            assert result.cluster_of[i] == result.cluster_of[j]
            assert i < j

    def test_zero_share_pollutes_nothing(self):
        clean = [{"name": f"P{i}"} for i in range(20)]
        profile = PollutionProfile(duplicate_share=0.0)
        result = GeCoStylePolluter(("name",), profile, seed=1).pollute(clean)
        assert len(result.records) == 20
        assert not result.gold_pairs

    def test_max_duplicates_respected(self):
        clean = [{"name": "P"}]
        profile = PollutionProfile(duplicate_share=1.0, max_duplicates_per_record=2)
        result = GeCoStylePolluter(("name",), profile, seed=1).pollute(clean)
        assert len(result.records) <= 3

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            PollutionProfile(duplicate_share=1.5).validate()
        with pytest.raises(ValueError):
            PollutionProfile(max_duplicates_per_record=0).validate()
        with pytest.raises(ValueError):
            GeCoStylePolluter((), seed=1)

    def test_deterministic(self):
        clean = [{"name": f"P{i}"} for i in range(30)]
        first = GeCoStylePolluter(("name",), seed=9).pollute(clean)
        second = GeCoStylePolluter(("name",), seed=9).pollute(clean)
        assert first.records == second.records


class TestFebrlStyleSynthesizer:
    def test_counts(self):
        config = SynthesizerConfig(originals=200, duplicates=50, seed=1)
        dataset = FebrlStyleSynthesizer(config).generate()
        assert dataset.record_count == 250
        assert len(dataset.gold_pairs) >= 50

    def test_gold_pairs_valid(self):
        dataset = FebrlStyleSynthesizer(SynthesizerConfig(originals=50, duplicates=20)).generate()
        for i, j in dataset.gold_pairs:
            assert dataset.cluster_of[i] == dataset.cluster_of[j]

    def test_max_duplicates_per_original(self):
        config = SynthesizerConfig(
            originals=5, duplicates=10, max_duplicates_per_original=2, seed=2
        )
        dataset = FebrlStyleSynthesizer(config).generate()
        from collections import Counter

        counts = Counter(dataset.cluster_of)
        assert max(counts.values()) <= 3  # original + 2 duplicates

    def test_records_have_febrl_attributes(self):
        from repro.pollute.synthesizer import FEBRL_ATTRIBUTES

        dataset = FebrlStyleSynthesizer(SynthesizerConfig(originals=10, duplicates=0)).generate()
        assert set(dataset.records[0]) == set(FEBRL_ATTRIBUTES)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FebrlStyleSynthesizer(SynthesizerConfig(originals=0))
        with pytest.raises(ValueError):
            FebrlStyleSynthesizer(SynthesizerConfig(duplicates=-1))

    def test_scalability_smoke(self):
        # synthesization is the fast family: thousands of records instantly
        config = SynthesizerConfig(originals=2000, duplicates=500, seed=3)
        dataset = FebrlStyleSynthesizer(config).generate()
        assert dataset.record_count == 2500
