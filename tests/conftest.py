"""Shared fixtures: a small simulated register and generated test data.

The expensive artefacts (simulation, generation, scoring) are session-scoped
so the whole suite pays for them once.
"""

from __future__ import annotations

import pytest

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.versioning import UpdateProcess
from repro.votersim import SimulationConfig, VoterRegisterSimulator


TEST_CONFIG = SimulationConfig(
    initial_voters=300,
    years=6,
    snapshots_per_year=2,
    seed=20210323,
    # Force a healthy number of unsound clusters so the plausibility tests
    # have ground truth to validate against.
    ncid_reuse_rate=0.5,
    removal_rate=0.04,
)


@pytest.fixture(scope="session")
def simulator():
    """A finished simulation run (snapshots already consumed)."""
    sim = VoterRegisterSimulator(TEST_CONFIG)
    sim._snapshots = list(sim.run())
    return sim


@pytest.fixture(scope="session")
def snapshots(simulator):
    """All snapshots of the session simulation, oldest first."""
    return simulator._snapshots


@pytest.fixture(scope="session")
def generator(snapshots):
    """A published TRIMMED-level generation with statistics computed."""
    gen = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    UpdateProcess(gen).run(snapshots)
    return gen


@pytest.fixture(scope="session")
def person_generator(snapshots):
    """A PERSON-level generation (no statistics, used for stats tests)."""
    gen = TestDataGenerator(removal=RemovalLevel.PERSON)
    gen.import_snapshots(snapshots)
    return gen
