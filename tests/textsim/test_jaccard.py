"""Tests for token and q-gram Jaccard similarity."""

import pytest

from repro.textsim import (
    QgramJaccard,
    TokenJaccard,
    jaccard_qgrams,
    jaccard_tokens,
    qgrams,
    tokenize,
)
from repro.textsim.tokens import strip_non_alnum


class TestTokenize:
    def test_simple_split(self):
        assert tokenize("JOHN A SMITH") == ["JOHN", "A", "SMITH"]

    def test_collapses_whitespace(self):
        assert tokenize("  JOHN   SMITH ") == ["JOHN", "SMITH"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize(None) == []

    def test_lowercase_option(self):
        assert tokenize("JOHN Smith", lowercase=True) == ["john", "smith"]


class TestStripNonAlnum:
    def test_removes_punctuation(self):
        assert strip_non_alnum("O'BRIEN-SMITH JR.") == "OBRIENSMITHJR"

    def test_keeps_digits(self):
        assert strip_non_alnum("DIST-64") == "DIST64"

    def test_empty(self):
        assert strip_non_alnum("") == ""


class TestQgrams:
    def test_padded_trigrams(self):
        grams = qgrams("abc", q=3)
        assert grams == ["##a", "#ab", "abc", "bc#", "c##"]

    def test_unpadded(self):
        assert qgrams("abcd", q=3, pad=False) == ["abc", "bcd"]

    def test_short_string_without_padding(self):
        assert qgrams("ab", q=3, pad=False) == ["ab"]

    def test_empty_string(self):
        assert qgrams("", q=3) == []

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", q=0)


class TestJaccardTokens:
    def test_identical(self):
        assert jaccard_tokens("A B C", "A B C") == 1.0

    def test_disjoint(self):
        assert jaccard_tokens("A B", "C D") == 0.0

    def test_partial_overlap(self):
        assert jaccard_tokens("A B", "B C") == pytest.approx(1 / 3)

    def test_order_insensitive(self):
        assert jaccard_tokens("JOSE JUAN", "JUAN JOSE") == 1.0

    def test_both_empty(self):
        assert jaccard_tokens("", "") == 1.0

    def test_one_empty(self):
        assert jaccard_tokens("", "A") == 0.0

    def test_lowercase_option(self):
        assert jaccard_tokens("John", "JOHN") == 0.0
        assert TokenJaccard(lowercase=True)("John", "JOHN") == 1.0


class TestJaccardQgrams:
    def test_identical(self):
        assert jaccard_qgrams("night", "night") == 1.0

    def test_known_value(self):
        # padded trigrams of night/nacht share 'ht#' and 't##' and the
        # leading '##n' '#n?' differ -> known reference value 3/19? compute:
        left = set(qgrams("night"))
        right = set(qgrams("nacht"))
        expected = len(left & right) / len(left | right)
        assert jaccard_qgrams("night", "nacht") == pytest.approx(expected)

    def test_single_char_strings_with_padding(self):
        assert jaccard_qgrams("a", "a") == 1.0
        assert 0.0 <= jaccard_qgrams("a", "b") < 1.0

    def test_measure_object(self):
        measure = QgramJaccard(q=2)
        assert measure("ab", "ab") == 1.0
        with pytest.raises(ValueError):
            QgramJaccard(q=0)
