"""The fast kernels must be *bit-identical* to the naive references.

:mod:`repro.textsim.fast` keeps a naive oracle next to it
(:mod:`repro.textsim._reference`) precisely so this suite can assert exact
equality — not approximate — for every optimised kernel: affix stripping,
single-row DP, the banded ``*_within`` variants, token-interned Monge-Elkan
and the q-gram count prefilter.
"""

import itertools
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textsim import _reference as ref
from repro.textsim import (
    damerau_levenshtein_distance,
    damerau_levenshtein_within,
    jaccard_qgrams,
    jaccard_qgrams_at_least,
    levenshtein_distance,
    levenshtein_within,
    monge_elkan,
    symmetric_monge_elkan,
)
from repro.textsim import fast

# Small alphabets force collisions, transpositions and shared affixes far
# more often than uniform text would.
tight = st.text(alphabet="AB", max_size=8)
word = st.text(alphabet=string.ascii_uppercase, max_size=12)
name_text = st.text(alphabet=string.ascii_uppercase + " -'", max_size=20)
bound = st.integers(min_value=0, max_value=6)


@given(st.one_of(tight, word), st.one_of(tight, word))
@settings(max_examples=300)
def test_levenshtein_matches_reference(left, right):
    assert levenshtein_distance(left, right) == ref.levenshtein_distance(left, right)


@given(st.one_of(tight, word), st.one_of(tight, word))
@settings(max_examples=300)
def test_damerau_levenshtein_matches_reference(left, right):
    assert damerau_levenshtein_distance(left, right) == ref.damerau_levenshtein_distance(
        left, right
    )


@given(st.one_of(tight, word), st.one_of(tight, word), bound)
@settings(max_examples=300)
def test_levenshtein_within_matches_reference(left, right, max_dist):
    distance = ref.levenshtein_distance(left, right)
    expected = distance if distance <= max_dist else None
    assert levenshtein_within(left, right, max_dist) == expected


@given(st.one_of(tight, word), st.one_of(tight, word), bound)
@settings(max_examples=300)
def test_damerau_within_matches_reference(left, right, max_dist):
    distance = ref.damerau_levenshtein_distance(left, right)
    expected = distance if distance <= max_dist else None
    assert damerau_levenshtein_within(left, right, max_dist) == expected


def test_exhaustive_small_alphabet():
    """Every pair over {A, B} up to length 4 — all kernels, all bounds."""
    values = [
        "".join(chars)
        for length in range(5)
        for chars in itertools.product("AB", repeat=length)
    ]
    for left in values:
        for right in values:
            assert levenshtein_distance(left, right) == ref.levenshtein_distance(
                left, right
            )
            dl_ref = ref.damerau_levenshtein_distance(left, right)
            assert damerau_levenshtein_distance(left, right) == dl_ref
            for max_dist in range(4):
                expected = dl_ref if dl_ref <= max_dist else None
                assert damerau_levenshtein_within(left, right, max_dist) == expected


@given(name_text, name_text)
@settings(max_examples=200)
def test_monge_elkan_matches_reference(left, right):
    assert monge_elkan(left, right) == ref.monge_elkan(left, right)


@given(name_text, name_text)
@settings(max_examples=200)
def test_symmetric_monge_elkan_matches_reference(left, right):
    assert symmetric_monge_elkan(left, right) == ref.symmetric_monge_elkan(left, right)


@given(name_text, name_text)
@settings(max_examples=200)
def test_jaccard_qgrams_matches_reference(left, right):
    assert jaccard_qgrams(left, right) == ref.jaccard_qgrams(left, right)


@given(name_text, name_text, st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=200)
def test_jaccard_at_least_is_exact_when_over_threshold(left, right, threshold):
    similarity = ref.jaccard_qgrams(left, right)
    result = jaccard_qgrams_at_least(left, right, threshold)
    if similarity >= threshold:
        assert result == similarity
    else:
        assert result is None


def test_within_rejects_negative_bound():
    with pytest.raises(ValueError):
        levenshtein_within("A", "B", -1)
    with pytest.raises(ValueError):
        damerau_levenshtein_within("A", "B", -1)


def test_caches_are_clearable():
    monge_elkan("JOHN SMITH", "JON SMYTH")
    assert fast.tokens_of.cache_info().currsize > 0
    fast.clear_caches()
    assert fast.tokens_of.cache_info().currsize == 0
