"""Tests for Jaro and Jaro-Winkler similarity."""

import pytest

from repro.textsim import JaroWinkler, jaro_similarity, jaro_winkler


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("MARTHA", "MARTHA") == 1.0

    def test_completely_different(self):
        assert jaro_similarity("ABC", "XYZ") == 0.0

    def test_empty_vs_value(self):
        assert jaro_similarity("", "ABC") == 0.0

    def test_both_empty(self):
        assert jaro_similarity("", "") == 1.0

    def test_known_value_martha(self):
        # Classic textbook value: jaro(MARTHA, MARHTA) = 0.944...
        assert jaro_similarity("MARTHA", "MARHTA") == pytest.approx(0.9444, abs=1e-4)

    def test_known_value_dixon(self):
        assert jaro_similarity("DIXON", "DICKSONX") == pytest.approx(0.7667, abs=1e-4)

    def test_symmetry(self):
        assert jaro_similarity("DWAYNE", "DUANE") == jaro_similarity("DUANE", "DWAYNE")


class TestJaroWinkler:
    def test_prefix_boost(self):
        assert jaro_winkler("MARTHA", "MARHTA") > jaro_similarity("MARTHA", "MARHTA")

    def test_known_value(self):
        # winkler(MARTHA, MARHTA) = 0.9611 with the standard 0.1 weight.
        assert jaro_winkler("MARTHA", "MARHTA") == pytest.approx(0.9611, abs=1e-4)

    def test_no_boost_without_common_prefix(self):
        assert jaro_winkler("ABCD", "XBCD") == jaro_similarity("ABCD", "XBCD")

    def test_prefix_capped_at_four(self):
        # identical first four chars give the same boost as longer prefixes
        base = jaro_similarity("ABCDEF", "ABCDXY")
        assert jaro_winkler("ABCDEF", "ABCDXY") == pytest.approx(
            base + 4 * 0.1 * (1 - base)
        )

    def test_result_in_unit_interval(self):
        for pair in [("A", "B"), ("SMITH", "SMYTH"), ("X", "")]:
            assert 0.0 <= jaro_winkler(*pair) <= 1.0

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            jaro_winkler("A", "B", prefix_weight=0.5, max_prefix=4)
        with pytest.raises(ValueError):
            JaroWinkler(prefix_weight=0.3, max_prefix=4)

    def test_measure_object(self):
        measure = JaroWinkler()
        assert measure("MARTHA", "MARHTA") == pytest.approx(0.9611, abs=1e-4)
        assert measure.name == "jaro_winkler"
