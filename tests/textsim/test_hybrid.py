"""Tests for the hybrid measures: Generalized Jaccard and Monge-Elkan."""

import pytest

from repro.textsim import (
    GeneralizedJaccard,
    MongeElkan,
    generalized_jaccard,
    monge_elkan,
    symmetric_monge_elkan,
)
from repro.textsim.levenshtein import damerau_levenshtein_similarity


def exact(left, right):
    return 1.0 if left == right else 0.0


class TestGeneralizedJaccard:
    def test_identical_token_sets(self):
        assert generalized_jaccard("A B C", "A B C") == 1.0

    def test_degenerates_to_jaccard_with_exact_measure(self):
        # |A ∩ B| = 1, |A ∪ B| = 3
        score = generalized_jaccard("A B", "B C", token_similarity=exact, threshold=1.0)
        assert score == pytest.approx(1 / 3)

    def test_order_insensitive(self):
        left = generalized_jaccard("JOSE JUAN", "JUAN JOSE")
        assert left == 1.0

    def test_fuzzy_token_match(self):
        # One typo in one token of two: match contributes its similarity.
        score = generalized_jaccard("ADELL SMITH", "ADEL SMITH")
        token_sim = damerau_levenshtein_similarity("ADELL", "ADEL")
        # extended variant: ADEL is a prefix of ADELL -> similarity 1.0
        assert score == 1.0 or score == pytest.approx((1 + token_sim) / 3)

    def test_threshold_excludes_weak_matches(self):
        strict = generalized_jaccard(
            "ABC", "XYZ", token_similarity=damerau_levenshtein_similarity, threshold=0.9
        )
        assert strict == 0.0

    def test_empty_values(self):
        assert generalized_jaccard("", "") == 1.0
        assert generalized_jaccard("", "ABC") == 0.0

    def test_explicit_token_lists(self):
        score = generalized_jaccard(
            "", "", tokens_left=["DEBRA", "WILLIAMS"], tokens_right=["WILLIAMS", "DEBRA"]
        )
        assert score == 1.0

    def test_measure_object_validation(self):
        with pytest.raises(ValueError):
            GeneralizedJaccard(threshold=1.5)

    def test_paper_name_confusion_scores_high(self):
        # Figure 3: DEBRA OEHRIE WILLIAMS vs OEHRLE DEBRA ANN — confusions
        # and a typo should still score far above unrelated names.
        score = generalized_jaccard("DEBRA OEHRIE WILLIAMS", "OEHRLE DEBRA ANN")
        unrelated = generalized_jaccard("MARY ELIZABETH FIELDS", "JOSHUA ELIZABETH BETHEA")
        assert score > 0.4
        assert score > unrelated


class TestMongeElkan:
    def test_identical(self):
        assert monge_elkan("A B", "A B") == 1.0

    def test_asymmetry(self):
        forward = monge_elkan("A", "A B")
        backward = monge_elkan("A B", "A")
        assert forward == 1.0
        assert backward < 1.0

    def test_symmetric_variant_averages(self):
        forward = monge_elkan("A", "A B")
        backward = monge_elkan("A B", "A")
        assert symmetric_monge_elkan("A", "A B") == pytest.approx(
            (forward + backward) / 2
        )

    def test_token_confusion_is_free(self):
        assert symmetric_monge_elkan("JOSE JUAN", "JUAN JOSE") == 1.0

    def test_empty_values(self):
        assert monge_elkan("", "") == 1.0
        assert monge_elkan("", "A") == 0.0
        assert monge_elkan("A", "") == 0.0

    def test_best_match_per_token(self):
        # Each left token picks its best right token independently.
        score = monge_elkan("AA BB", "AA XX")
        expected = (1.0 + max(
            damerau_levenshtein_similarity("BB", "AA"),
            damerau_levenshtein_similarity("BB", "XX"),
        )) / 2
        assert score == pytest.approx(expected)

    def test_measure_object_symmetric_by_default(self):
        measure = MongeElkan()
        assert measure("A", "A B") == pytest.approx(symmetric_monge_elkan("A", "A B"))
        one_way = MongeElkan(symmetric=False)
        assert one_way("A", "A B") == 1.0

    def test_range(self):
        for pair in [("FOO BAR", "BAZ QUX"), ("A", "Z"), ("X Y Z", "X")]:
            assert 0.0 <= symmetric_monge_elkan(*pair) <= 1.0
