"""Tests for Soundex codes."""

import pytest

from repro.textsim import soundex
from repro.textsim.phonetic import same_soundex


class TestSoundex:
    @pytest.mark.parametrize(
        "value, code",
        [
            ("Robert", "R163"),
            ("Rupert", "R163"),
            ("Rubin", "R150"),
            ("Ashcraft", "A261"),
            ("Ashcroft", "A261"),
            ("Tymczak", "T522"),
            ("Pfister", "P236"),
            ("Honeyman", "H555"),
        ],
    )
    def test_classic_reference_codes(self, value, code):
        assert soundex(value) == code

    def test_case_insensitive(self):
        assert soundex("BAILEY") == soundex("bailey")

    def test_phonetic_pair_from_paper(self):
        assert soundex("BAILEY") == soundex("BAYLEE")

    def test_ignores_non_letters(self):
        assert soundex("O'Brien") == soundex("OBrien")

    def test_empty_and_non_letter_input(self):
        assert soundex("") == ""
        assert soundex("12345") == ""

    def test_padding_with_zeros(self):
        assert soundex("Lee") == "L000"

    def test_custom_length(self):
        assert soundex("Ashcraft", length=6) == "A26130"
        with pytest.raises(ValueError):
            soundex("A", length=0)

    def test_hw_transparency(self):
        # 'h'/'w' do not separate equal codes: Ashcraft keeps s/c collapsed?
        # Classic rule: Tymczak -> T522 exercises it via 'cz'.
        assert soundex("Tymczak") == "T522"


class TestSameSoundex:
    def test_match(self):
        assert same_soundex("SMITH", "SMYTH")

    def test_mismatch(self):
        assert not same_soundex("SMITH", "JONES")

    def test_empty_never_matches(self):
        assert not same_soundex("", "")
        assert not same_soundex("", "SMITH")
