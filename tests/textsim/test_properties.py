"""Property-based tests of the similarity measures (hypothesis)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.textsim import (
    damerau_levenshtein_distance,
    damerau_levenshtein_similarity,
    extended_damerau_levenshtein_similarity,
    generalized_jaccard,
    jaccard_qgrams,
    jaccard_tokens,
    jaro_similarity,
    jaro_winkler,
    soundex,
    symmetric_monge_elkan,
)

short_text = st.text(alphabet=string.ascii_uppercase + " ", max_size=12)
word = st.text(alphabet=string.ascii_uppercase, max_size=10)


@given(short_text, short_text)
@settings(max_examples=200)
def test_damerau_distance_symmetric(left, right):
    assert damerau_levenshtein_distance(left, right) == damerau_levenshtein_distance(
        right, left
    )


@given(short_text)
def test_damerau_distance_identity(value):
    assert damerau_levenshtein_distance(value, value) == 0


@given(short_text, short_text)
def test_damerau_distance_bounded_by_longer_length(left, right):
    assert damerau_levenshtein_distance(left, right) <= max(len(left), len(right))


@given(short_text, short_text, short_text)
@settings(max_examples=100)
def test_damerau_triangle_inequality(a, b, c):
    ab = damerau_levenshtein_distance(a, b)
    bc = damerau_levenshtein_distance(b, c)
    ac = damerau_levenshtein_distance(a, c)
    assert ac <= ab + bc


@given(short_text, short_text)
def test_similarity_measures_stay_in_unit_interval(left, right):
    for measure in (
        damerau_levenshtein_similarity,
        extended_damerau_levenshtein_similarity,
        jaro_similarity,
        jaro_winkler,
        jaccard_tokens,
        jaccard_qgrams,
        symmetric_monge_elkan,
        generalized_jaccard,
    ):
        score = measure(left, right)
        assert 0.0 <= score <= 1.0, measure


@given(short_text, short_text)
def test_symmetric_measures_are_symmetric(left, right):
    for measure in (
        damerau_levenshtein_similarity,
        jaro_similarity,
        jaro_winkler,
        jaccard_tokens,
        jaccard_qgrams,
        symmetric_monge_elkan,
    ):
        assert measure(left, right) == measure(right, left), measure


@given(short_text)
def test_self_similarity_is_one(value):
    for measure in (
        damerau_levenshtein_similarity,
        extended_damerau_levenshtein_similarity,
        jaccard_tokens,
        jaccard_qgrams,
        symmetric_monge_elkan,
        generalized_jaccard,
    ):
        assert measure(value, value) == 1.0, measure


@given(word, word)
def test_extended_damerau_at_least_plain(left, right):
    assert extended_damerau_levenshtein_similarity(
        left, right
    ) >= damerau_levenshtein_similarity(left, right)


@given(word, word)
def test_jaro_winkler_at_least_jaro(left, right):
    assert jaro_winkler(left, right) >= jaro_similarity(left, right) - 1e-12


@given(word)
def test_soundex_shape(value):
    code = soundex(value)
    if value:
        assert len(code) == 4
        assert code[0] == value[0].upper()
        assert all(ch.isdigit() for ch in code[1:])
    else:
        assert code == ""


@given(st.lists(word, min_size=1, max_size=4))
def test_generalized_jaccard_token_order_invariant(tokens):
    forward = generalized_jaccard("", "", tokens_left=tokens, tokens_right=tokens)
    reversed_score = generalized_jaccard(
        "", "", tokens_left=tokens, tokens_right=list(reversed(tokens))
    )
    assert forward == 1.0
    assert reversed_score == 1.0
