"""Tests for cosine / TF-IDF / SoftTFIDF similarities."""

import math

import pytest

from repro.textsim import SoftTfIdf, TfIdfCosine, cosine_tokens


class TestCosineTokens:
    def test_identical(self):
        assert cosine_tokens("A B C", "A B C") == pytest.approx(1.0)

    def test_disjoint(self):
        assert cosine_tokens("A B", "C D") == 0.0

    def test_order_insensitive(self):
        assert cosine_tokens("JOSE JUAN", "JUAN JOSE") == pytest.approx(1.0)

    def test_partial_overlap(self):
        # vectors (1,1,0) and (0,1,1): cos = 1/2
        assert cosine_tokens("A B", "B C") == pytest.approx(0.5)

    def test_repeated_tokens_weighted(self):
        assert cosine_tokens("A A B", "A B") > cosine_tokens("A B C", "A B")

    def test_empty_values(self):
        assert cosine_tokens("", "") == 1.0
        assert cosine_tokens("", "A") == 0.0

    def test_lowercase_option(self):
        assert cosine_tokens("John", "JOHN") == 0.0
        assert cosine_tokens("John", "JOHN", lowercase=True) == pytest.approx(1.0)


class TestTfIdfCosine:
    def corpus(self):
        # 'SMITH' appears everywhere (low idf); given names are rare.
        return [
            "JOHN SMITH", "MARY SMITH", "PETER SMITH", "LINDA SMITH",
            "CARLOS SMITH", "ANNA SMITH",
        ]

    def test_unfitted_behaves_like_cosine(self):
        measure = TfIdfCosine()
        assert measure("A B", "B C") == pytest.approx(0.5)

    def test_fit_returns_self(self):
        measure = TfIdfCosine().fit(self.corpus())
        assert isinstance(measure, TfIdfCosine)

    def test_common_tokens_downweighted(self):
        measure = TfIdfCosine().fit(self.corpus())
        # sharing only the ubiquitous surname scores lower than sharing
        # only a rare given name
        share_surname = measure("JOHN SMITH", "MARY SMITH")
        share_given = measure("JOHN SMITH", "JOHN MILLER")
        assert share_given > share_surname

    def test_identical_still_one(self):
        measure = TfIdfCosine().fit(self.corpus())
        assert measure("JOHN SMITH", "JOHN SMITH") == pytest.approx(1.0)

    def test_unseen_tokens_get_max_idf(self):
        measure = TfIdfCosine().fit(self.corpus())
        assert measure.idf("ZEBRA") >= measure.idf("SMITH")

    def test_range(self):
        measure = TfIdfCosine().fit(self.corpus())
        for pair in [("JOHN SMITH", "MARY SMITH"), ("A", "B"), ("X Y", "Y X")]:
            assert 0.0 <= measure(*pair) <= 1.0 + 1e-12


class TestSoftTfIdf:
    def corpus(self):
        return ["JOHN SMITH", "MARY SMITH", "PETER JONES", "LINDA MILLER"]

    def test_exact_tokens_match_like_tfidf(self):
        soft = SoftTfIdf().fit(self.corpus())
        hard = TfIdfCosine().fit(self.corpus())
        assert soft("JOHN SMITH", "JOHN SMITH") == pytest.approx(
            hard("JOHN SMITH", "JOHN SMITH")
        )

    def test_typo_tokens_still_match(self):
        soft = SoftTfIdf(threshold=0.85).fit(self.corpus())
        hard = TfIdfCosine().fit(self.corpus())
        assert soft("JOHN SMITH", "JOHN SMYTH") > hard("JOHN SMITH", "JOHN SMYTH")

    def test_threshold_blocks_weak_matches(self):
        strict = SoftTfIdf(threshold=0.99).fit(self.corpus())
        assert strict("SMITH", "JONES") == 0.0

    def test_empty_values(self):
        soft = SoftTfIdf().fit(self.corpus())
        assert soft("", "") == 1.0
        assert soft("", "JOHN") == 0.0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SoftTfIdf(threshold=1.5)

    def test_capped_at_one(self):
        soft = SoftTfIdf(threshold=0.5).fit(self.corpus())
        for pair in [("JOHN SMITH", "JOHN SMYTH"), ("A B C", "A B")]:
            assert soft(*pair) <= 1.0
