"""Tests for Levenshtein / Damerau-Levenshtein distances and similarities."""

import pytest

from repro.textsim import (
    DamerauLevenshtein,
    ExtendedDamerauLevenshtein,
    damerau_levenshtein_distance,
    damerau_levenshtein_similarity,
    extended_damerau_levenshtein_similarity,
    levenshtein_distance,
)


class TestLevenshteinDistance:
    def test_identical_strings(self):
        assert levenshtein_distance("kitten", "kitten") == 0

    def test_empty_against_value(self):
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3

    def test_both_empty(self):
        assert levenshtein_distance("", "") == 0

    def test_classic_example(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_substitution(self):
        assert levenshtein_distance("flaw", "flax") == 1

    def test_transposition_costs_two_without_damerau(self):
        assert levenshtein_distance("ab", "ba") == 2

    def test_symmetry(self):
        assert levenshtein_distance("house", "horse") == levenshtein_distance(
            "horse", "house"
        )


class TestDamerauLevenshteinDistance:
    def test_transposition_costs_one(self):
        assert damerau_levenshtein_distance("ab", "ba") == 1

    def test_transposition_inside_word(self):
        assert damerau_levenshtein_distance("MARTHA", "MARHTA") == 1

    def test_classic_example_unchanged(self):
        assert damerau_levenshtein_distance("kitten", "sitting") == 3

    def test_identical(self):
        assert damerau_levenshtein_distance("same", "same") == 0

    def test_empty_cases(self):
        assert damerau_levenshtein_distance("", "ab") == 2
        assert damerau_levenshtein_distance("ab", "") == 2

    def test_restricted_variant(self):
        # Optimal string alignment: "ca" -> "abc" is 3 (no double edits of
        # a transposed substring), while unrestricted Damerau would give 2.
        assert damerau_levenshtein_distance("ca", "abc") == 3

    def test_single_typo_examples_from_table4(self):
        assert damerau_levenshtein_distance("adell", "adel") == 1
        assert damerau_levenshtein_distance("oehrie", "oehrle") == 1


class TestDamerauLevenshteinSimilarity:
    def test_identical_is_one(self):
        assert damerau_levenshtein_similarity("ADELL", "ADELL") == 1.0

    def test_both_empty_is_one(self):
        assert damerau_levenshtein_similarity("", "") == 1.0

    def test_one_empty_is_zero(self):
        assert damerau_levenshtein_similarity("", "ABC") == 0.0

    def test_normalisation_by_longer_string(self):
        assert damerau_levenshtein_similarity("ADELL", "ADEL") == pytest.approx(0.8)

    def test_none_treated_as_empty(self):
        assert damerau_levenshtein_similarity(None, None) == 1.0
        assert damerau_levenshtein_similarity(None, "X") == 0.0

    def test_range(self):
        for left, right in [("a", "xyz"), ("hello", "world"), ("aa", "ab")]:
            assert 0.0 <= damerau_levenshtein_similarity(left, right) <= 1.0

    def test_measure_object(self):
        measure = DamerauLevenshtein()
        assert measure("AB", "BA") == pytest.approx(0.5)
        assert measure.distance("AB", "BA") == pytest.approx(0.5)


class TestExtendedDamerauLevenshtein:
    """The paper's plausibility variant (Section 6.2)."""

    def test_missing_value_is_perfect_match(self):
        assert extended_damerau_levenshtein_similarity("", "WILLIAMS") == 1.0
        assert extended_damerau_levenshtein_similarity("WILLIAMS", "") == 1.0

    def test_prefix_is_perfect_match(self):
        # Abbreviations give no evidence to mistrust the data.
        assert extended_damerau_levenshtein_similarity("KIM", "KIMBERLY") == 1.0
        assert extended_damerau_levenshtein_similarity("KIMBERLY", "KIM") == 1.0

    def test_single_initial_prefix(self):
        assert extended_damerau_levenshtein_similarity("A", "ANN") == 1.0

    def test_non_prefix_falls_back_to_damerau(self):
        plain = damerau_levenshtein_similarity("OEHRIE", "OEHRLE")
        assert extended_damerau_levenshtein_similarity("OEHRIE", "OEHRLE") == plain
        assert plain == pytest.approx(1 - 1 / 6)

    def test_measure_object(self):
        measure = ExtendedDamerauLevenshtein()
        assert measure("J", "JOHN") == 1.0
