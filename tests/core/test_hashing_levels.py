"""Tests for record hashing and the removal levels."""

import hashlib

import pytest

from repro.core import RemovalLevel, record_hash
from repro.core.hashing import default_hash_attributes
from repro.votersim.schema import (
    ALL_ATTRIBUTES,
    HASH_EXCLUDED_ATTRIBUTES,
    PERSON_ATTRIBUTES,
)


class TestRecordHash:
    def test_is_md5(self):
        digest = record_hash({"last_name": "SMITH"}, attributes=("last_name",))
        assert digest == hashlib.md5(b"SMITH").hexdigest()

    def test_excluded_attributes_do_not_matter(self):
        base = {a: "X" for a in ALL_ATTRIBUTES}
        changed = dict(base)
        for attribute in HASH_EXCLUDED_ATTRIBUTES:
            changed[attribute] = "DIFFERENT"
        assert record_hash(base) == record_hash(changed)

    def test_included_attributes_do_matter(self):
        base = {a: "X" for a in ALL_ATTRIBUTES}
        changed = dict(base, last_name="OTHER")
        assert record_hash(base) != record_hash(changed)

    def test_trim_option(self):
        padded = {"last_name": " SMITH "}
        plain = {"last_name": "SMITH"}
        assert record_hash(padded, ("last_name",), trim=True) == record_hash(
            plain, ("last_name",), trim=True
        )
        assert record_hash(padded, ("last_name",), trim=False) != record_hash(
            plain, ("last_name",), trim=False
        )

    def test_separator_prevents_boundary_shifts(self):
        left = {"a": "AB", "b": "C"}
        right = {"a": "A", "b": "BC"}
        assert record_hash(left, ("a", "b")) != record_hash(right, ("a", "b"))

    def test_missing_attribute_hashes_as_empty(self):
        assert record_hash({}, ("a",)) == record_hash({"a": ""}, ("a",))
        assert record_hash({"a": None}, ("a",)) == record_hash({"a": ""}, ("a",))

    def test_default_attributes_exclude_dates_and_age(self):
        defaults = default_hash_attributes()
        assert set(defaults) == set(ALL_ATTRIBUTES) - set(HASH_EXCLUDED_ATTRIBUTES)


class TestRemovalLevel:
    def test_none_has_no_hash_attributes(self):
        assert RemovalLevel.NONE.hash_attributes is None

    def test_exact_hashes_everything_but_exclusions(self):
        attributes = RemovalLevel.EXACT.hash_attributes
        assert set(attributes) == set(ALL_ATTRIBUTES) - set(HASH_EXCLUDED_ATTRIBUTES)

    def test_person_hashes_person_attributes_only(self):
        attributes = RemovalLevel.PERSON.hash_attributes
        assert set(attributes) == set(PERSON_ATTRIBUTES) - set(HASH_EXCLUDED_ATTRIBUTES)

    def test_trim_flags(self):
        assert not RemovalLevel.EXACT.trims
        assert RemovalLevel.TRIMMED.trims
        assert RemovalLevel.PERSON.trims

    def test_level_values_match_paper_rows(self):
        assert [level.value for level in RemovalLevel] == [
            "none", "exact", "trimming", "person",
        ]
