"""Batched & parallel cluster scoring must match the naive reference exactly.

Three layers are pinned against the uncached oracle in
:mod:`repro.core._reference`:

* the per-cluster APIs (``score_cluster`` / ``score_cluster_document``),
* the batched pair-dedup entry points (``score_clusters``),
* the sharded pipeline (``score_clusters_parallel``) — which must also be
  deterministic: any shard count produces identical cluster documents.
"""

import pytest

from repro.core import RemovalLevel, TestDataGenerator
from repro.core import _reference as coreref
from repro.core.heterogeneity import HeterogeneityScorer
from repro.core.parallel import score_clusters_parallel
from repro.core.plausibility import score_cluster, score_clusters
from repro.core.versioning import UpdateProcess


@pytest.fixture(scope="module")
def clusters(snapshots):
    gen = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    gen.import_snapshots(snapshots)
    return list(gen.clusters())


@pytest.fixture(scope="module")
def plausibility_oracle(clusters):
    return coreref.score_plausibility_reference(clusters)


class TestPlausibilityBatch:
    def test_batch_matches_reference(self, clusters, plausibility_oracle):
        assert score_clusters(clusters) == plausibility_oracle

    def test_per_cluster_matches_reference(self, clusters, plausibility_oracle):
        for cluster in clusters:
            if len(cluster["records"]) > 1:
                assert score_cluster(cluster) == plausibility_oracle[cluster["ncid"]]

    def test_version_filter_matches_reference(self, clusters):
        scored = score_clusters(clusters, version=1)
        assert scored == coreref.score_plausibility_reference(clusters, version=1)


class TestHeterogeneityBatch:
    def test_batch_matches_reference(self, clusters):
        scorer = HeterogeneityScorer.from_clusters(clusters, ("person",))
        batched = scorer.score_clusters(clusters, ("person",))
        oracle = coreref.score_heterogeneity_reference(
            scorer.weights, clusters, ("person",)
        )
        assert batched == oracle

    def test_batch_matches_per_cluster_api(self, clusters):
        scorer = HeterogeneityScorer.from_clusters(clusters, ("person",))
        batched = scorer.score_clusters(clusters, ("person",))
        for cluster in clusters:
            assert batched[cluster["ncid"]] == scorer.score_cluster_document(
                cluster, ("person",)
            )

    def test_shared_cache_across_calls(self, clusters):
        scorer = HeterogeneityScorer.from_clusters(clusters, ("person",))
        cache = {}
        first = scorer.score_clusters(clusters, ("person",), cache=cache)
        filled = len(cache)
        second = scorer.score_clusters(clusters, ("person",), cache=cache)
        assert first == second
        assert len(cache) == filled  # second pass adds no new pairs


class TestParallelDeterminism:
    def test_shard_counts_agree(self, clusters, plausibility_oracle):
        scorer = HeterogeneityScorer.from_clusters(clusters, ("person",))
        results = [
            score_clusters_parallel(
                clusters,
                heterogeneity_all=scorer,
                shards=shards,
                max_workers=0,
            )
            for shards in (1, 2, 4)
        ]
        assert results[0] == results[1] == results[2]
        for cluster in clusters:
            maps = results[0][cluster["ncid"]]
            assert maps["plausibility"] == plausibility_oracle[cluster["ncid"]]

    def test_process_pool_matches_in_process(self, clusters):
        scorer = HeterogeneityScorer.from_clusters(clusters, ("person",))
        some = clusters[:40]
        in_process = score_clusters_parallel(
            some, heterogeneity_all=scorer, shards=2, max_workers=0
        )
        pooled = score_clusters_parallel(
            some, heterogeneity_all=scorer, shards=2, max_workers=2
        )
        assert pooled == in_process

    def test_rejects_bad_shards(self, clusters):
        with pytest.raises(ValueError):
            score_clusters_parallel(clusters, shards=0)


class TestUpdateProcessWiring:
    def test_worker_counts_yield_identical_documents(self, snapshots):
        documents = []
        for workers, shards in ((0, 1), (0, 4), (2, 2)):
            gen = TestDataGenerator(removal=RemovalLevel.TRIMMED)
            process = UpdateProcess(gen, workers=workers, shards=shards)
            process.run(snapshots)
            documents.append(
                {cluster["ncid"]: cluster for cluster in gen.clusters()}
            )
        assert documents[0] == documents[1] == documents[2]
