"""Tests for the customisation transformations (Section 3.2)."""

import pytest

from repro.core.customize import CustomizationResult
from repro.core.transform import (
    drop_attributes,
    map_values,
    merge_attributes,
    rename_attribute,
    select_by_cluster_size,
    transform_result,
)


RECORDS = [
    {"first_name": "DEBRA", "midl_name": "OEHRLE", "last_name": "WILLIAMS", "age": "45"},
    {"first_name": "JOSHUA", "midl_name": "", "last_name": "BETHEA", "age": "93"},
]


class TestDropAttributes:
    def test_removes_attributes(self):
        result = drop_attributes(RECORDS, ("age",))
        assert all("age" not in record for record in result)
        assert all("last_name" in record for record in result)

    def test_input_not_mutated(self):
        drop_attributes(RECORDS, ("age",))
        assert "age" in RECORDS[0]

    def test_unknown_attributes_ignored(self):
        result = drop_attributes(RECORDS, ("ghost",))
        assert result == RECORDS


class TestMergeAttributes:
    def test_merges_in_source_order(self):
        result = merge_attributes(
            RECORDS, "full_name", ("first_name", "midl_name", "last_name")
        )
        assert result[0]["full_name"] == "DEBRA OEHRLE WILLIAMS"
        assert "first_name" not in result[0]

    def test_empty_sources_skipped(self):
        result = merge_attributes(
            RECORDS, "full_name", ("first_name", "midl_name", "last_name")
        )
        assert result[1]["full_name"] == "JOSHUA BETHEA"

    def test_custom_separator(self):
        result = merge_attributes(RECORDS, "n", ("last_name", "first_name"), ", ")
        assert result[0]["n"] == "WILLIAMS, DEBRA"

    def test_empty_source_list_rejected(self):
        with pytest.raises(ValueError):
            merge_attributes(RECORDS, "x", ())


class TestRenameAndMap:
    def test_rename(self):
        result = rename_attribute(RECORDS, "midl_name", "middle")
        assert result[0]["middle"] == "OEHRLE"
        assert "midl_name" not in result[0]

    def test_rename_missing_is_noop(self):
        assert rename_attribute(RECORDS, "ghost", "spirit") == RECORDS

    def test_map_values(self):
        result = map_values(RECORDS, ("last_name",), str.title)
        assert result[0]["last_name"] == "Williams"
        assert result[0]["first_name"] == "DEBRA"  # untouched

    def test_map_skips_empty_values(self):
        result = map_values(RECORDS, ("midl_name",), str.title)
        assert result[1]["midl_name"] == ""


class TestTransformResult:
    def make_result(self):
        return CustomizationResult(
            name="t",
            heterogeneity_range=(0.0, 1.0),
            records=[dict(record) for record in RECORDS],
            cluster_of=["A", "B"],
            gold_pairs=set(),
        )

    def test_gold_standard_preserved(self):
        result = self.make_result()
        result.gold_pairs.add((0, 1))
        transformed = transform_result(
            result,
            drop=("age",),
            merge={"full_name": ("first_name", "midl_name", "last_name")},
            value_transforms={"full_name": str.title},
        )
        assert transformed.gold_pairs == {(0, 1)}
        assert transformed.cluster_of == ["A", "B"]
        assert transformed.records[0] == {"full_name": "Debra Oehrle Williams"}

    def test_original_untouched(self):
        result = self.make_result()
        transform_result(result, drop=("age",))
        assert "age" in result.records[0]


class TestSelectByClusterSize:
    def test_distribution_honoured(self, generator):
        result = select_by_cluster_size(generator, {2: 10, 3: 5}, seed=1)
        sizes = sorted(result.cluster_sizes().values())
        assert sizes == [2] * 10 + [3] * 5

    def test_truncation_keeps_record_order(self, generator):
        from repro.core.clusters import record_view

        result = select_by_cluster_size(generator, {2: 5}, seed=2)
        by_cluster = {}
        for record, ncid in zip(result.records, result.cluster_of):
            by_cluster.setdefault(ncid, []).append(record)
        for ncid, flats in by_cluster.items():
            cluster = generator.cluster(ncid)
            expected = [record_view(r, ("person",)) for r in cluster["records"][:2]]
            assert flats == expected

    def test_gold_pairs_consistent(self, generator):
        result = select_by_cluster_size(generator, {3: 4}, seed=3)
        assert len(result.gold_pairs) == 4 * 3
        for i, j in result.gold_pairs:
            assert result.cluster_of[i] == result.cluster_of[j]

    def test_unsatisfiable_request_raises(self, generator):
        with pytest.raises(ValueError):
            select_by_cluster_size(generator, {50: 1000})

    def test_deterministic(self, generator):
        first = select_by_cluster_size(generator, {2: 8}, seed=9)
        second = select_by_cluster_size(generator, {2: 8}, seed=9)
        assert first.records == second.records

    def test_validation(self, generator):
        with pytest.raises(ValueError):
            select_by_cluster_size(generator, {})
        with pytest.raises(ValueError):
            select_by_cluster_size(generator, {0: 1})
