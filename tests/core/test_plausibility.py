"""Tests for the plausibility scoring (Section 6.2)."""

import pytest

from repro.core.plausibility import (
    WEIGHTS,
    birth_place_similarity,
    cluster_plausibility,
    name_similarity,
    pair_plausibility,
    pair_plausibilities,
    score_cluster,
    sex_similarity,
    year_of_birth,
    year_of_birth_similarity,
)


def person(first="DEBRA", middle="OEHRLE", last="WILLIAMS", sex="F",
           age="45", birth_place="NORTH CAROLINA"):
    return {
        "first_name": first,
        "midl_name": middle,
        "last_name": last,
        "sex_code": sex,
        "age": age,
        "birth_place": birth_place,
    }


class TestNameSimilarity:
    def test_identical(self):
        assert name_similarity(person(), person()) == 1.0

    def test_order_confusion_not_penalised(self):
        confused = person(first="WILLIAMS", middle="DEBRA", last="OEHRLE")
        assert name_similarity(person(), confused) == 1.0

    def test_abbreviated_middle_not_penalised(self):
        abbreviated = person(middle="O")
        assert name_similarity(person(), abbreviated) == 1.0

    def test_missing_middle_not_penalised(self):
        assert name_similarity(person(), person(middle="")) == 1.0

    def test_fully_missing_names_neutral(self):
        empty = person(first="", middle="", last="")
        assert name_similarity(person(), empty) == 1.0

    def test_different_person_scores_low(self):
        other = person(first="JOSHUA", middle="", last="BETHEA")
        assert name_similarity(person(), other) < 0.6

    def test_typo_partially_compensated(self):
        typo = person(middle="OEHRIE")
        assert name_similarity(person(), typo) > 0.9


class TestSexSimilarity:
    def test_agreement(self):
        assert sex_similarity({"sex_code": "F"}, {"sex_code": "F"}) == 1.0

    def test_disagreement(self):
        assert sex_similarity({"sex_code": "F"}, {"sex_code": "M"}) == 0.0

    def test_undesignated_is_neutral(self):
        assert sex_similarity({"sex_code": "U"}, {"sex_code": "M"}) == 1.0

    def test_missing_is_neutral(self):
        assert sex_similarity({}, {"sex_code": "M"}) == 1.0
        assert sex_similarity({"sex_code": ""}, {"sex_code": "F"}) == 1.0

    def test_case_and_whitespace_tolerant(self):
        assert sex_similarity({"sex_code": " f "}, {"sex_code": "F"}) == 1.0


class TestYearOfBirth:
    def test_derivation(self):
        assert year_of_birth({"age": "45"}, "2012-01-01") == 1967

    def test_missing_inputs(self):
        assert year_of_birth({"age": ""}, "2012-01-01") is None
        assert year_of_birth({"age": "45"}, "") is None
        assert year_of_birth({"age": "xx"}, "2012-01-01") is None

    def test_similarity_formula(self):
        # 1 - min(1, max(0, |delta| - 1) / 10)
        assert year_of_birth_similarity(1967, 1967) == 1.0
        assert year_of_birth_similarity(1967, 1968) == 1.0  # tolerance 1
        assert year_of_birth_similarity(1967, 1969) == pytest.approx(0.9)
        assert year_of_birth_similarity(1967, 1977) == pytest.approx(0.1)
        assert year_of_birth_similarity(1967, 1978) == 0.0
        assert year_of_birth_similarity(1967, 2000) == 0.0

    def test_missing_is_neutral(self):
        assert year_of_birth_similarity(None, 1967) == 1.0
        assert year_of_birth_similarity(1967, None) == 1.0


class TestBirthPlace:
    def test_identical(self):
        assert birth_place_similarity(person(), person()) == 1.0

    def test_missing_neutral(self):
        assert birth_place_similarity(person(), person(birth_place="")) == 1.0

    def test_different_penalised(self):
        score = birth_place_similarity(
            person(), person(birth_place="KOREA")
        )
        assert score < 0.5


class TestPairPlausibility:
    def test_weights_sum(self):
        assert WEIGHTS["name"] == 0.5
        assert WEIGHTS["sex"] == WEIGHTS["yob"] == WEIGHTS["birth_place"] == 0.15

    def test_identical_records(self):
        assert pair_plausibility(person(), person(), "2012-01-01", "2012-01-01") == 1.0

    def test_sex_conflict_weighting(self):
        conflicting = person(sex="M")
        score = pair_plausibility(person(), conflicting, "2012-01-01", "2012-01-01")
        # only the sex component (0.15 of 0.95) is lost
        assert score == pytest.approx(1 - 0.15 / 0.95)

    def test_figure3_unsound_cluster_scores_low(self):
        fields = person(first="MARY", middle="ELIZABETH", last="FIELDS",
                        sex="F", age="61")
        bethea = person(first="JOSHUA", middle="ELIZABETH", last="BETHEA",
                        sex="M", age="93")
        score = pair_plausibility(fields, bethea, "2012-01-01", "2012-01-01")
        assert score < 0.6

    def test_figure3_erroneous_cluster_scores_higher(self):
        original = person()
        mixed = person(first="WILLIAMS", middle="DEBRA", last="OEHRIE", age="47")
        erroneous = pair_plausibility(original, mixed, "2012-01-01", "2014-01-01")
        unsound = pair_plausibility(
            person(first="MARY", middle="ELIZABETH", last="FIELDS", sex="F", age="61"),
            person(first="JOSHUA", middle="ELIZABETH", last="BETHEA", sex="M", age="93"),
            "2012-01-01", "2012-01-01",
        )
        assert erroneous > unsound


class TestClusterPlausibility:
    def make_cluster(self, *people_records, versions=None):
        records = []
        for index, flat in enumerate(people_records):
            records.append(
                {
                    "person": {k: v for k, v in flat.items() if v},
                    "meta": {},
                    "snapshots": ["2012-01-01"],
                    "first_version": (versions or {}).get(index, 1),
                    "plausibility": {},
                }
            )
        return {"_id": "X", "ncid": "X", "records": records}

    def test_singleton_is_fully_plausible(self):
        cluster = self.make_cluster(person())
        assert cluster_plausibility(cluster) == 1.0

    def test_minimum_over_pairs(self):
        sound = person()
        foreign = person(first="JOSHUA", middle="", last="BETHEA", sex="M", age="93")
        cluster = self.make_cluster(sound, sound, foreign)
        assert cluster_plausibility(cluster) == min(pair_plausibilities(cluster))
        assert cluster_plausibility(cluster) < 0.7

    def test_version_restriction(self):
        sound = person()
        foreign = person(first="JOSHUA", middle="", last="BETHEA", sex="M", age="93")
        cluster = self.make_cluster(sound, foreign, versions={0: 1, 1: 2})
        assert cluster_plausibility(cluster, version=1) == 1.0
        assert cluster_plausibility(cluster, version=2) < 1.0

    def test_score_cluster_maps_layout(self):
        cluster = self.make_cluster(person(), person(), person())
        maps = score_cluster(cluster)
        assert set(maps) == {1, 2}
        assert set(maps[2]) == {0, 1}
        assert all(score == 1.0 for row in maps.values() for score in row.values())

    def test_stored_maps_used_when_present(self):
        cluster = self.make_cluster(person(), person())
        cluster["records"][1]["plausibility"] = {"1": {"0": 0.42}}
        assert cluster_plausibility(cluster) == 0.42
