"""Tests for the NC1/NC2/NC3 customisation procedure (Section 6.5)."""

import pytest

from repro.core import customize
from repro.core.customize import reduce_cluster
from repro.core.heterogeneity import HeterogeneityScorer
from repro.votersim.schema import PERSON_ATTRIBUTES


@pytest.fixture(scope="module")
def scorer(generator):
    return HeterogeneityScorer.from_clusters(
        generator.clusters(),
        ("person",),
        tuple(a for a in PERSON_ATTRIBUTES if a != "ncid"),
    )


class TestReduceCluster:
    def test_first_record_always_kept(self):
        scorer = HeterogeneityScorer({"a": 1.0})
        flats = [{"a": "X"}]
        assert reduce_cluster(flats, scorer, 0.2, 0.4) == [0]

    def test_identical_records_rejected_when_minimum_positive(self):
        scorer = HeterogeneityScorer({"a": 1.0})
        flats = [{"a": "X"}, {"a": "X"}, {"a": "X"}]
        assert reduce_cluster(flats, scorer, 0.1, 0.5) == [0]

    def test_identical_records_kept_when_zero_allowed(self):
        scorer = HeterogeneityScorer({"a": 1.0})
        flats = [{"a": "X"}, {"a": "X"}]
        assert reduce_cluster(flats, scorer, 0.0, 0.5) == [0, 1]

    def test_record_must_fit_all_preceding_kept(self):
        scorer = HeterogeneityScorer({"a": 1.0})
        flats = [{"a": "AAAA"}, {"a": "AAAB"}, {"a": "ZZZZ"}]
        kept = reduce_cluster(flats, scorer, 0.0, 0.5)
        assert kept == [0, 1]  # ZZZZ too heterogeneous to AAAA


class TestCustomize:
    def test_result_respects_target_clusters(self, generator, scorer):
        result = customize(generator, 0.0, 1.0, target_clusters=20, scorer=scorer)
        assert result.cluster_count <= 20

    def test_largest_clusters_selected(self, generator, scorer):
        result = customize(generator, 0.0, 1.0, target_clusters=10, scorer=scorer)
        assert result.avg_cluster_size >= 2

    def test_gold_pairs_consistent_with_clusters(self, generator, scorer):
        result = customize(generator, 0.0, 1.0, target_clusters=10, scorer=scorer)
        for i, j in result.gold_pairs:
            assert result.cluster_of[i] == result.cluster_of[j]
            assert i < j

    def test_all_clusters_meet_min_size(self, generator, scorer):
        result = customize(generator, 0.2, 0.6, target_clusters=50, scorer=scorer)
        for size in result.cluster_sizes().values():
            assert size >= 2

    def test_heterogeneity_increases_with_range(self, generator, scorer):
        clean = customize(generator, 0.0, 0.2, target_clusters=50, scorer=scorer, name="NC1")
        dirty = customize(generator, 0.4, 1.0, target_clusters=50, scorer=scorer, name="NC3")
        avg_clean, _ = clean.heterogeneity_stats(scorer)
        avg_dirty, _ = dirty.heterogeneity_stats(scorer)
        assert avg_dirty > avg_clean

    def test_kept_pairwise_heterogeneity_within_bounds_for_pairs(self, generator, scorer):
        # For clusters reduced to exactly two records, the pair score must
        # lie inside the requested range by construction.
        result = customize(generator, 0.2, 0.5, target_clusters=100, scorer=scorer)
        by_cluster = {}
        for record, ncid in zip(result.records, result.cluster_of):
            by_cluster.setdefault(ncid, []).append(record)
        checked = 0
        for records in by_cluster.values():
            if len(records) == 2:
                score = scorer.pair_heterogeneity(records[0], records[1])
                assert 0.2 <= score <= 0.5 + 1e-9
                checked += 1
        assert checked > 0

    def test_sampling_bounds_input(self, generator, scorer):
        result = customize(
            generator, 0.0, 1.0, target_clusters=1000, sample_clusters=10, scorer=scorer
        )
        assert result.cluster_count <= 10

    def test_deterministic_given_seed(self, generator, scorer):
        first = customize(generator, 0.1, 0.6, target_clusters=30, scorer=scorer, seed=5)
        second = customize(generator, 0.1, 0.6, target_clusters=30, scorer=scorer, seed=5)
        assert first.records == second.records
        assert first.gold_pairs == second.gold_pairs

    def test_invalid_range_rejected(self, generator, scorer):
        with pytest.raises(ValueError):
            customize(generator, 0.6, 0.2, scorer=scorer)
        with pytest.raises(ValueError):
            customize(generator, -0.1, 0.5, scorer=scorer)
        with pytest.raises(ValueError):
            customize(generator, 0.0, 1.0, target_clusters=0, scorer=scorer)

    def test_records_restricted_to_person_attributes(self, generator, scorer):
        result = customize(generator, 0.0, 1.0, target_clusters=5, scorer=scorer)
        person_set = set(PERSON_ATTRIBUTES)
        for record in result.records[:20]:
            assert set(record) <= person_set
