"""Tests for the fault-tolerant shard runner (:func:`run_shards`).

Worker functions live at module level so the process pool can pickle
them.  Workers that must *crash* do so only inside a pool worker
(``multiprocessing.parent_process() is not None``), which lets the same
function succeed when the runner degrades to in-process execution.
"""

import multiprocessing
import os
import time
import warnings

import pytest

from repro.core.parallel import ParallelDegradedWarning, run_shards


def _double(value):
    return value * 2


def _record_call(counter_dir, value):
    """Append one file per invocation so tests can count attempts."""
    os.makedirs(counter_dir, exist_ok=True)
    with open(os.path.join(counter_dir, f"{time.monotonic_ns()}-{os.getpid()}"), "w"):
        pass
    return value


def _always_crash(value):
    if multiprocessing.parent_process() is not None:
        os._exit(1)  # hard-kill the pool worker; inline execution succeeds
    return value


def _crash_once(sentinel, value):
    if multiprocessing.parent_process() is not None:
        if not os.path.exists(sentinel):
            with open(sentinel, "w") as handle:
                handle.write("crashed")
            os._exit(1)
    return value


def _sleep_in_worker(value):
    if multiprocessing.parent_process() is not None:
        time.sleep(30)
    return value


def _raise_value_error(counter_dir, value):
    _record_call(counter_dir, value)
    raise ValueError(f"deterministic bug for {value}")


class TestInProcess:
    def test_zero_workers_runs_inline(self):
        assert run_shards(_double, [(1,), (2,), (3,)], max_workers=0) == [2, 4, 6]

    def test_none_workers_runs_inline(self):
        assert run_shards(_double, [(5,)], max_workers=None) == [10]

    def test_empty_shards(self):
        assert run_shards(_double, [], max_workers=2) == []


class TestRetries:
    def test_results_in_shard_order(self):
        results = run_shards(_double, [(3,), (1,), (2,)], max_workers=2)
        assert results == [6, 2, 4]

    def test_crash_retries_then_succeeds(self, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any degradation warning fails
            results = run_shards(
                _crash_once,
                [(sentinel, 7)],
                max_workers=1,
                max_retries=2,
                backoff=0.01,
            )
        assert results == [7]
        assert os.path.exists(sentinel)

    def test_persistent_crash_degrades_with_warning(self):
        with pytest.warns(ParallelDegradedWarning) as caught:
            results = run_shards(
                _always_crash,
                [(11,), (22,)],
                max_workers=2,
                max_retries=1,
                backoff=0.01,
                label="test stage",
            )
        assert results == [11, 22]  # recomputed in-process, nothing lost
        # On small machines a WorkerClampWarning may precede the
        # degradation warning; pick out the one under test.
        warning = next(
            w.message
            for w in caught
            if isinstance(w.message, ParallelDegradedWarning)
        )
        assert warning.label == "test stage"
        assert sorted(warning.shard_indices) == [0, 1]
        assert warning.attempts == 2  # initial + one retry
        assert warning.cause is not None

    def test_timeout_degrades_to_in_process(self):
        start = time.monotonic()
        with pytest.warns(ParallelDegradedWarning):
            results = run_shards(
                _sleep_in_worker,
                [(9,)],
                max_workers=1,
                max_retries=0,
                timeout=0.3,
                backoff=0.0,
            )
        assert results == [9]
        assert time.monotonic() - start < 20  # did not wait out the sleep

    def test_deterministic_exception_propagates_without_retry(self, tmp_path):
        counter = str(tmp_path / "calls")
        with pytest.raises(ValueError, match="deterministic bug"):
            run_shards(
                _raise_value_error,
                [(counter, 1)],
                max_workers=1,
                max_retries=3,
                backoff=0.01,
            )
        assert len(os.listdir(counter)) == 1  # exactly one attempt, no retries
