"""Tests for the heterogeneity scoring (Section 6.3)."""

import math

import pytest

from repro.core.heterogeneity import (
    HeterogeneityScorer,
    entropy,
    entropy_weights,
    four_way_similarity,
)


class TestEntropy:
    def test_uniform_distribution(self):
        assert entropy(["a", "b", "c", "d"]) == pytest.approx(2.0)

    def test_constant_distribution(self):
        assert entropy(["x"] * 10) == 0.0

    def test_empty(self):
        assert entropy([]) == 0.0

    def test_skewed_less_than_uniform(self):
        skewed = entropy(["a"] * 9 + ["b"])
        uniform = entropy(["a"] * 5 + ["b"] * 5)
        assert skewed < uniform


class TestEntropyWeights:
    def test_normalised(self):
        records = [
            {"unique": str(i), "constant": "X"} for i in range(10)
        ]
        weights = entropy_weights(records, ("unique", "constant"))
        assert sum(weights.values()) == pytest.approx(1.0)
        assert weights["unique"] == pytest.approx(1.0)
        assert weights["constant"] == 0.0

    def test_all_constant_falls_back_to_uniform(self):
        records = [{"a": "X", "b": "Y"}] * 5
        weights = entropy_weights(records, ("a", "b"))
        assert weights == {"a": 0.5, "b": 0.5}

    def test_missing_values_counted_as_empty(self):
        records = [{"a": "X"}, {}]
        weights = entropy_weights(records, ("a",))
        assert weights["a"] == 1.0


class TestFourWaySimilarity:
    def test_identical(self):
        assert four_way_similarity("SMITH", "SMITH") == 1.0

    def test_case_difference_weighs_half(self):
        # lowercased comparisons are perfect, cased ones are not
        score = four_way_similarity("SMITH", "smith")
        assert 0.5 <= score < 1.0

    def test_token_confusion_weighs_half(self):
        # Monge-Elkan forgives the order, Damerau-Levenshtein does not
        score = four_way_similarity("JOSE JUAN", "JUAN JOSE")
        assert 0.5 < score < 1.0

    def test_unrelated_values_low(self):
        assert four_way_similarity("AAAA", "ZZZZ") < 0.3

    def test_symmetric(self):
        assert four_way_similarity("ABC", "ABD") == four_way_similarity("ABD", "ABC")


class TestHeterogeneityScorer:
    def scorer(self):
        return HeterogeneityScorer({"a": 0.5, "b": 0.3, "c": 0.2})

    def test_identical_records_zero(self):
        scorer = self.scorer()
        record = {"a": "X", "b": "Y", "c": "Z"}
        assert scorer.pair_heterogeneity(record, record) == 0.0

    def test_single_attribute_difference_bounded_by_weight(self):
        scorer = self.scorer()
        left = {"a": "X", "b": "Y", "c": "Z"}
        right = {"a": "COMPLETELY-DIFFERENT", "b": "Y", "c": "Z"}
        score = scorer.pair_heterogeneity(left, right)
        assert 0.0 < score <= 0.5

    def test_empty_vs_value_costs_full_weight(self):
        scorer = self.scorer()
        left = {"a": "", "b": "Y", "c": "Z"}
        right = {"a": "XXXX", "b": "Y", "c": "Z"}
        assert scorer.pair_heterogeneity(left, right) == pytest.approx(0.5)

    def test_cluster_heterogeneity_of_identical_records(self):
        scorer = self.scorer()
        records = [{"a": "X"}] * 3
        assert scorer.cluster_heterogeneity(records) == 0.0

    def test_singleton_cluster(self):
        scorer = self.scorer()
        assert scorer.cluster_heterogeneity([{"a": "X"}]) == 0.0
        assert scorer.record_heterogeneities([{"a": "X"}]) == [0.0]

    def test_cluster_average_equals_pair_average_for_two(self):
        scorer = self.scorer()
        records = [{"a": "X", "b": "Y"}, {"a": "Q", "b": "Y"}]
        pair = scorer.pair_heterogeneity(records[0], records[1])
        assert scorer.cluster_heterogeneity(records) == pytest.approx(pair)

    def test_pair_heterogeneities_count(self):
        scorer = self.scorer()
        records = [{"a": str(i)} for i in range(4)]
        assert len(scorer.pair_heterogeneities(records)) == 6

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneityScorer({})

    def test_from_records_learns_entropy_weights(self):
        records = [{"id": str(i), "const": "K"} for i in range(8)]
        scorer = HeterogeneityScorer.from_records(records, ("id", "const"))
        left = dict(records[0])
        right = dict(records[0], const="OTHER")
        # 'const' has zero entropy -> differences there are free
        assert scorer.pair_heterogeneity(left, right) == 0.0

    def test_from_clusters_uses_one_record_per_cluster(self):
        clusters = [
            {"records": [
                {"person": {"x": "A"}},
                {"person": {"x": "B"}},  # duplicate variant must be ignored
            ]},
            {"records": [{"person": {"x": "A"}}]},
        ]
        scorer = HeterogeneityScorer.from_clusters(clusters, ("person",), ("x",))
        # representatives are A and A -> zero entropy -> uniform fallback
        assert scorer.weights["x"] == 1.0

    def test_score_cluster_document_maps(self):
        scorer = self.scorer()
        cluster = {
            "records": [
                {"person": {"a": "X"}, "first_version": 1},
                {"person": {"a": "X"}, "first_version": 1},
                {"person": {"a": "Y"}, "first_version": 2},
            ]
        }
        all_maps = scorer.score_cluster_document(cluster, ("person",))
        assert set(all_maps) == {1, 2}
        new_only = scorer.score_cluster_document(cluster, ("person",), version=2)
        assert set(new_only) == {2}
        assert set(new_only[2]) == {0, 1}
