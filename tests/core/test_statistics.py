"""Tests for the generation statistics (Tables 1, 2 and Figure 1)."""

import pytest

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.statistics import (
    cluster_size_histogram,
    removal_stats,
    size_histogram_of_sizes,
    snapshot_year_stats,
)


class TestSnapshotYearStats:
    def test_aggregation_by_year(self, generator):
        rows = snapshot_year_stats(generator.import_stats)
        assert [row.year for row in rows] == list(range(2008, 2014))
        assert all(row.snapshots == 2 for row in rows)

    def test_first_year_dominates_new_objects(self, generator):
        rows = snapshot_year_stats(generator.import_stats)
        first = rows[0]
        assert first.new_objects == max(row.new_objects for row in rows)
        assert first.new_record_rate > 0.5

    def test_later_years_still_contribute(self, generator):
        rows = snapshot_year_stats(generator.import_stats)
        assert all(row.new_records > 0 for row in rows)
        assert all(row.new_objects > 0 for row in rows[1:])

    def test_rates_bounded(self, generator):
        for row in snapshot_year_stats(generator.import_stats):
            assert 0.0 <= row.new_record_rate <= 1.0
            assert 0.0 <= row.new_object_rate <= 1.0

    def test_totals_consistent(self, generator):
        rows = snapshot_year_stats(generator.import_stats)
        assert sum(row.new_records for row in rows) == generator.record_count
        assert sum(row.new_objects for row in rows) == generator.cluster_count


class TestRemovalStats:
    @pytest.fixture(scope="class")
    def stats(self, snapshots):
        return removal_stats(snapshots)

    def test_all_levels_present(self, stats):
        assert [row.level for row in stats] == list(RemovalLevel)

    def test_record_counts_strictly_decreasing(self, stats):
        counts = [row.records for row in stats]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > counts[-1]

    def test_cluster_count_invariant_across_levels(self, stats):
        # "The number of objects (i.e., clusters) was always 13.51 M"
        cluster_counts = {row.clusters for row in stats}
        assert len(cluster_counts) == 1

    def test_avg_cluster_size_ordering(self, stats):
        sizes = [row.avg_cluster_size for row in stats]
        assert sizes == sorted(sizes, reverse=True)

    def test_baseline_removes_nothing(self, stats):
        baseline = stats[0]
        assert baseline.removed_records == 0
        assert baseline.removed_pairs == 0

    def test_exact_duplicate_share_is_high(self, stats):
        exact = stats[1]
        # paper: 67.3 % of records removed at the 'exact' level
        assert exact.removed_record_share > 0.4

    def test_removed_pair_share_exceeds_record_share(self, stats):
        # removing n of a cluster's records removes O(n^2) pairs
        for row in stats[1:]:
            assert row.removed_pair_share >= row.removed_record_share

    def test_person_level_removes_most(self, stats):
        assert stats[3].removed_record_share > stats[2].removed_record_share
        assert stats[3].removed_record_share > 0.8


class TestClusterSizeHistogram:
    def test_histogram_totals(self, generator):
        histogram = cluster_size_histogram(generator)
        assert sum(histogram.values()) == generator.cluster_count
        assert sum(size * count for size, count in histogram.items()) == (
            generator.record_count
        )

    def test_sorted_by_size(self, generator):
        sizes = list(cluster_size_histogram(generator))
        assert sizes == sorted(sizes)

    def test_small_clusters_dominate(self, generator):
        histogram = cluster_size_histogram(generator)
        small = sum(count for size, count in histogram.items() if size <= 4)
        assert small > sum(histogram.values()) / 2

    def test_raw_size_histogram(self):
        assert size_histogram_of_sizes([1, 1, 2, 3, 3, 3]) == {1: 2, 2: 1, 3: 3}
