"""Property-based tests of the core pipeline invariants (hypothesis)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RemovalLevel, TestDataGenerator, record_hash
from repro.core.clusters import full_view, split_record
from repro.core.irregularities import (
    is_different_representation,
    is_ocr_error,
    is_phonetic_error,
    is_postfix,
    is_prefix,
    is_token_transposition,
    is_typo,
)
from repro.core.plausibility import pair_plausibility, year_of_birth_similarity
from repro.votersim.schema import ALL_ATTRIBUTES, empty_record
from repro.votersim.snapshots import Snapshot

value_text = st.text(alphabet=string.ascii_uppercase + " .-'", max_size=10)
attribute = st.sampled_from(ALL_ATTRIBUTES[:20])
partial_record = st.dictionaries(attribute, value_text, max_size=6)


@given(partial_record)
@settings(max_examples=150)
def test_record_hash_deterministic(record):
    assert record_hash(record) == record_hash(record)


@given(partial_record, st.sampled_from(["snapshot_dt", "load_dt", "age"]), value_text)
@settings(max_examples=150)
def test_record_hash_ignores_excluded_attributes(record, excluded, value):
    changed = dict(record)
    changed[excluded] = value
    assert record_hash(record) == record_hash(changed)


@given(partial_record, value_text)
@settings(max_examples=150)
def test_record_hash_trim_equivalence(record, value):
    padded = dict(record, last_name=f"  {value}  ")
    plain = dict(record, last_name=value.strip())
    assert record_hash(padded, trim=True) == record_hash(plain, trim=True)


@given(partial_record)
@settings(max_examples=150)
def test_split_record_round_trips_nonempty_values(record):
    parts = split_record(record)
    flattened = full_view(parts)
    expected = {
        k: v for k, v in record.items() if v is not None and str(v).strip() != ""
    }
    assert flattened == expected


@given(st.lists(st.tuples(st.sampled_from(["A1", "B2", "C3"]), value_text), max_size=12))
@settings(max_examples=100)
def test_generator_cluster_invariants(rows):
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    records = []
    for ncid, last_name in rows:
        record = empty_record()
        record.update(ncid=ncid, last_name=last_name, snapshot_dt="2012-01-01")
        records.append(record)
    generator.import_snapshot(Snapshot("2012-01-01", records))
    # invariant: record count equals total hashes; cluster sizes sum up
    assert generator.record_count == sum(
        len(cluster["meta"]["hashes"]) for cluster in generator.clusters()
    )
    for cluster in generator.clusters():
        assert len(cluster["records"]) == len(set(cluster["meta"]["hashes"]))


@given(st.integers(1900, 2000), st.integers(1900, 2000))
def test_year_of_birth_similarity_properties(left, right):
    score = year_of_birth_similarity(left, right)
    assert 0.0 <= score <= 1.0
    assert score == year_of_birth_similarity(right, left)
    if abs(left - right) <= 1:
        assert score == 1.0
    if abs(left - right) >= 11:
        assert score == 0.0


@given(
    st.dictionaries(
        st.sampled_from(["first_name", "midl_name", "last_name", "sex_code", "age", "birth_place"]),
        value_text,
        max_size=6,
    ),
)
@settings(max_examples=150)
def test_pair_plausibility_reflexive_and_bounded(record):
    score = pair_plausibility(record, record, "2012-01-01", "2012-01-01")
    assert score == 1.0
    other = dict(record, last_name="COMPLETELYDIFFERENT")
    cross = pair_plausibility(record, other, "2012-01-01", "2012-01-01")
    assert 0.0 <= cross <= 1.0


word = st.text(alphabet=string.ascii_uppercase, min_size=1, max_size=8)


@given(word, word)
@settings(max_examples=200)
def test_pair_detectors_are_symmetric(left, right):
    for detector in (
        is_typo,
        is_ocr_error,
        is_phonetic_error,
        is_different_representation,
        is_token_transposition,
    ):
        assert detector(left, right) == detector(right, left), detector

    # prefix/postfix are symmetric in the pair (they pick the shorter side)
    assert is_prefix(left, right) == is_prefix(right, left)
    assert is_postfix(left, right) == is_postfix(right, left)


@given(word)
def test_no_detector_fires_on_identical_values(value):
    for detector in (
        is_typo,
        is_ocr_error,
        is_phonetic_error,
        is_prefix,
        is_postfix,
        is_different_representation,
        is_token_transposition,
    ):
        assert not detector(value, value), detector
