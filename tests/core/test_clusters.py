"""Tests for the cluster document layout helpers."""

from repro.core.clusters import (
    cluster_pairs,
    duplicate_pair_count,
    full_view,
    record_view,
    split_record,
)
from repro.votersim.schema import ALL_ATTRIBUTES


class TestSplitRecord:
    def test_groups(self):
        record = {
            "ncid": "AA1",
            "last_name": "SMITH",
            "county_desc": "WAKE",
            "election_lbl": "11/06/2012 GENERAL",
            "snapshot_dt": "2012-01-01",
        }
        parts = split_record(record)
        assert parts["person"] == {"ncid": "AA1", "last_name": "SMITH"}
        assert parts["district"] == {"county_desc": "WAKE"}
        assert parts["election"] == {"election_lbl": "11/06/2012 GENERAL"}
        assert parts["meta"] == {"snapshot_dt": "2012-01-01"}

    def test_empty_values_dropped_for_sparsity(self):
        record = {a: "" for a in ALL_ATTRIBUTES}
        record["last_name"] = "SMITH"
        parts = split_record(record)
        assert parts["person"] == {"last_name": "SMITH"}
        assert parts["district"] == {}

    def test_whitespace_only_values_dropped(self):
        parts = split_record({"last_name": "   "})
        assert parts["person"] == {}

    def test_unknown_attributes_ignored(self):
        parts = split_record({"not_in_schema": "X", "last_name": "Y"})
        assert parts["person"] == {"last_name": "Y"}
        assert all("not_in_schema" not in sub for sub in parts.values())


class TestRecordView:
    def test_person_view(self):
        doc = {"person": {"last_name": "SMITH"}, "meta": {"snapshot_dt": "2012"}}
        assert record_view(doc) == {"last_name": "SMITH"}

    def test_multi_group_view(self):
        doc = {"person": {"a": 1}, "district": {"b": 2}}
        assert record_view(doc, ("person", "district")) == {"a": 1, "b": 2}

    def test_full_view(self):
        doc = {
            "person": {"a": 1},
            "district": {"b": 2},
            "election": {"c": 3},
            "meta": {"d": 4},
        }
        assert full_view(doc) == {"a": 1, "b": 2, "c": 3, "d": 4}

    def test_missing_groups_tolerated(self):
        assert record_view({}, ("person",)) == {}


class TestPairs:
    def test_cluster_pairs_order(self):
        cluster = {"records": [1, 2, 3]}
        assert list(cluster_pairs(cluster)) == [(0, 1), (0, 2), (1, 2)]

    def test_singleton_has_no_pairs(self):
        assert list(cluster_pairs({"records": [1]})) == []

    def test_duplicate_pair_count(self):
        assert duplicate_pair_count(1) == 0
        assert duplicate_pair_count(2) == 1
        assert duplicate_pair_count(5) == 10
        assert duplicate_pair_count(238) == 28203
