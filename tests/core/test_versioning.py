"""Tests for the update process and version-similarity maps (Section 5)."""

import pytest

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.plausibility import cluster_plausibility
from repro.core.versioning import UpdateProcess, similarity_at_version
from repro.votersim.schema import empty_record
from repro.votersim.snapshots import Snapshot


def make_record(ncid="AA1", last_name="SMITH", snapshot="2012-01-01", **overrides):
    record = empty_record()
    record.update(
        ncid=ncid,
        last_name=last_name,
        first_name="JOHN",
        midl_name="Q",
        sex_code="M",
        sex="MALE",
        age="40",
        birth_place="NORTH CAROLINA",
        snapshot_dt=snapshot,
    )
    record.update(overrides)
    return record


@pytest.fixture
def updated_generator():
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    process = UpdateProcess(generator)
    process.run([Snapshot("2012-01-01", [make_record(), make_record("AA2")])])
    process.run(
        [
            Snapshot(
                "2013-01-01",
                [make_record(last_name="SMYTH", snapshot="2013-01-01", age="41")],
            )
        ]
    )
    return generator


class TestUpdateProcess:
    def test_each_run_bumps_version(self, updated_generator):
        assert updated_generator.current_version == 2

    def test_version_documents(self, updated_generator):
        versions = updated_generator.database["versions"]
        assert versions.count_documents() == 2
        second = versions.find_one({"_id": 2})
        assert second["records"] == 3

    def test_statistics_only_update(self):
        generator = TestDataGenerator()
        process = UpdateProcess(generator)
        process.run([Snapshot("2012-01-01", [make_record()])], compute_statistics=False)
        version = process.run(note="recompute stats")
        assert version == 2
        note = generator.database["versions"].find_one({"_id": 2})["note"]
        assert note == "recompute stats"

    def test_plausibility_maps_written_incrementally(self, updated_generator):
        cluster = updated_generator.cluster("AA1")
        first, second = cluster["records"]
        assert first["plausibility"] == {}  # nothing earlier to compare to
        assert set(second["plausibility"]) == {"2"}
        assert set(second["plausibility"]["2"]) == {"0"}

    def test_heterogeneity_maps_both_scopes(self, updated_generator):
        cluster = updated_generator.cluster("AA1")
        second = cluster["records"][1]
        assert "2" in second["heterogeneity"]
        assert "2" in second["heterogeneity_person"]

    def test_scores_not_recomputed_for_old_pairs(self):
        generator = TestDataGenerator()
        process = UpdateProcess(generator)
        process.run([Snapshot("2012-01-01", [make_record(), make_record(last_name="SMYTHE")])])
        cluster = generator.cluster("AA1")
        original = dict(cluster["records"][1]["plausibility"])
        process.run([Snapshot("2013-01-01", [make_record(last_name="SCHMIDT", snapshot="2013-01-01")])])
        cluster = generator.cluster("AA1")
        assert cluster["records"][1]["plausibility"] == original  # untouched
        assert "2" in cluster["records"][2]["plausibility"]


class TestSimilarityAtVersion:
    def test_merges_maps_up_to_version(self):
        record = {
            "plausibility": {
                "1": {"0": 0.9},
                "3": {"1": 0.8, "2": 0.7},
            }
        }
        assert similarity_at_version(record, "plausibility", 1) == {0: 0.9}
        assert similarity_at_version(record, "plausibility", 2) == {0: 0.9}
        assert similarity_at_version(record, "plausibility", 3) == {
            0: 0.9, 1: 0.8, 2: 0.7,
        }

    def test_missing_kind_is_empty(self):
        assert similarity_at_version({}, "plausibility", 5) == {}


class TestHistoricalReconstruction:
    def test_plausibility_of_old_version_reproducible(self, updated_generator):
        cluster = updated_generator.cluster("AA1")
        # at version 1 the cluster had a single record -> plausibility 1.0
        assert cluster_plausibility(cluster, version=1) == 1.0
        # at version 2 both records exist -> score possibly below 1
        assert cluster_plausibility(cluster, version=2) <= 1.0

    def test_stored_scores_match_recomputation(self, updated_generator):
        from repro.core.plausibility import pair_plausibility
        from repro.core.clusters import record_view

        cluster = updated_generator.cluster("AA1")
        first, second = cluster["records"]
        stored = second["plausibility"]["2"]["0"]
        recomputed = pair_plausibility(
            record_view(first, ("person",)),
            record_view(second, ("person",)),
            first["snapshots"][0],
            second["snapshots"][0],
        )
        assert stored == pytest.approx(recomputed, abs=1e-5)
