"""Tests for schema profiles (the domain generalisation)."""

import pytest

from repro.core.levels import RemovalLevel
from repro.core.profile import NC_VOTER_PROFILE, SchemaProfile
from repro.votersim.schema import (
    ALL_ATTRIBUTES,
    HASH_EXCLUDED_ATTRIBUTES,
    PERSON_ATTRIBUTES,
)


@pytest.fixture
def tiny_profile():
    return SchemaProfile(
        name="tiny",
        id_attribute="id",
        groups={
            "main": ("id", "name", "year"),
            "extra": ("note", "updated_at"),
        },
        primary_group="main",
        hash_excluded=("updated_at",),
    )


class TestValidation:
    def test_primary_group_must_exist(self):
        with pytest.raises(ValueError):
            SchemaProfile("x", "id", {"a": ("id",)}, "missing", ())

    def test_groups_must_partition(self):
        with pytest.raises(ValueError):
            SchemaProfile(
                "x", "id", {"a": ("id", "dup"), "b": ("dup",)}, "a", ()
            )

    def test_id_attribute_must_be_in_schema(self):
        with pytest.raises(ValueError):
            SchemaProfile("x", "nope", {"a": ("id",)}, "a", ())

    def test_exclusions_must_be_in_schema(self):
        with pytest.raises(ValueError):
            SchemaProfile("x", "id", {"a": ("id",)}, "a", ("ghost",))


class TestAccessors:
    def test_all_attributes_order(self, tiny_profile):
        assert tiny_profile.all_attributes == (
            "id", "name", "year", "note", "updated_at",
        )

    def test_group_names(self, tiny_profile):
        assert tiny_profile.group_names == ("main", "extra")

    def test_attribute_group(self, tiny_profile):
        assert tiny_profile.attribute_group("note") == "extra"
        with pytest.raises(KeyError):
            tiny_profile.attribute_group("ghost")

    def test_hash_attributes(self, tiny_profile):
        assert tiny_profile.hash_attributes() == ("id", "name", "year", "note")
        assert tiny_profile.hash_attributes(primary_only=True) == (
            "id", "name", "year",
        )

    def test_primary_attributes(self, tiny_profile):
        assert tiny_profile.primary_attributes() == ("id", "name", "year")


class TestNcVoterProfile:
    def test_matches_voter_schema(self):
        assert NC_VOTER_PROFILE.id_attribute == "ncid"
        assert NC_VOTER_PROFILE.all_attributes == ALL_ATTRIBUTES
        assert NC_VOTER_PROFILE.primary_attributes() == PERSON_ATTRIBUTES
        assert NC_VOTER_PROFILE.hash_excluded == HASH_EXCLUDED_ATTRIBUTES

    def test_removal_levels_agree_with_legacy_property(self):
        for level in RemovalLevel:
            assert level.hash_attributes_for(NC_VOTER_PROFILE) == (
                level.hash_attributes
            )
