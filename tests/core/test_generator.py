"""Tests for the test-data generator (import, dedup, gold standard)."""

import pytest

from repro.core import RemovalLevel, TestDataGenerator
from repro.votersim.schema import empty_record
from repro.votersim.snapshots import Snapshot


def make_record(ncid="AA1", last_name="SMITH", **overrides):
    record = empty_record()
    record.update(
        ncid=ncid,
        last_name=last_name,
        first_name="JOHN",
        sex_code="M",
        age="40",
        snapshot_dt="2012-01-01",
    )
    record.update(overrides)
    return record


class TestImport:
    def test_new_cluster_created_per_ncid(self):
        generator = TestDataGenerator()
        snapshot = Snapshot("2012-01-01", [make_record("AA1"), make_record("AA2")])
        stats = generator.import_snapshot(snapshot)
        assert stats.new_clusters == 2
        assert generator.cluster_count == 2

    def test_exact_duplicate_skipped(self):
        generator = TestDataGenerator(removal=RemovalLevel.EXACT)
        record = make_record()
        generator.import_snapshot(Snapshot("2012-01-01", [record]))
        stats = generator.import_snapshot(
            Snapshot("2012-06-01", [dict(record, snapshot_dt="2012-06-01")])
        )
        assert stats.new_records == 0
        assert stats.skipped == 1
        assert generator.record_count == 1

    def test_skipped_record_still_tracked_in_snapshots(self):
        generator = TestDataGenerator(removal=RemovalLevel.EXACT)
        record = make_record()
        generator.import_snapshot(Snapshot("2012-01-01", [record]))
        generator.import_snapshot(
            Snapshot("2012-06-01", [dict(record, snapshot_dt="2012-06-01")])
        )
        cluster = generator.cluster("AA1")
        assert cluster["records"][0]["snapshots"] == ["2012-01-01", "2012-06-01"]

    def test_changed_value_creates_new_record(self):
        generator = TestDataGenerator(removal=RemovalLevel.EXACT)
        generator.import_snapshot(Snapshot("2012-01-01", [make_record()]))
        generator.import_snapshot(
            Snapshot("2012-06-01", [make_record(last_name="SMYTH")])
        )
        assert generator.record_count == 2

    def test_age_change_alone_does_not_create_record(self):
        generator = TestDataGenerator(removal=RemovalLevel.EXACT)
        generator.import_snapshot(Snapshot("2012-01-01", [make_record(age="40")]))
        stats = generator.import_snapshot(
            Snapshot("2013-01-01", [make_record(age="41", snapshot_dt="2013-01-01")])
        )
        assert stats.new_records == 0

    def test_whitespace_variant_new_at_exact_level(self):
        generator = TestDataGenerator(removal=RemovalLevel.EXACT)
        generator.import_snapshot(Snapshot("2012-01-01", [make_record()]))
        stats = generator.import_snapshot(
            Snapshot("2012-06-01", [make_record(last_name="SMITH ")])
        )
        assert stats.new_records == 1

    def test_whitespace_variant_skipped_at_trimming_level(self):
        generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        generator.import_snapshot(Snapshot("2012-01-01", [make_record()]))
        stats = generator.import_snapshot(
            Snapshot("2012-06-01", [make_record(last_name="SMITH ")])
        )
        assert stats.new_records == 0

    def test_district_change_ignored_at_person_level(self):
        generator = TestDataGenerator(removal=RemovalLevel.PERSON)
        generator.import_snapshot(
            Snapshot("2012-01-01", [make_record(county_desc="WAKE")])
        )
        stats = generator.import_snapshot(
            Snapshot("2012-06-01", [make_record(county_desc="DURHAM")])
        )
        assert stats.new_records == 0

    def test_none_level_imports_everything(self):
        generator = TestDataGenerator(removal=RemovalLevel.NONE)
        record = make_record()
        generator.import_snapshot(Snapshot("2012-01-01", [record]))
        stats = generator.import_snapshot(Snapshot("2012-06-01", [dict(record)]))
        assert stats.new_records == 1
        assert generator.record_count == 2

    def test_blank_ncid_skipped(self):
        generator = TestDataGenerator()
        stats = generator.import_snapshot(Snapshot("2012-01-01", [make_record(ncid=" ")]))
        assert stats.new_records == 0
        assert generator.cluster_count == 0

    def test_import_stats_rates(self):
        generator = TestDataGenerator()
        stats = generator.import_snapshot(
            Snapshot("2012-01-01", [make_record("AA1"), make_record("AA2")])
        )
        assert stats.new_record_rate == 1.0
        assert stats.new_object_rate == 1.0


class TestGoldStandard:
    def test_pairs_within_clusters_only(self):
        generator = TestDataGenerator(removal=RemovalLevel.EXACT)
        generator.import_snapshot(
            Snapshot(
                "2012-01-01",
                [make_record("AA1"), make_record("AA1", last_name="SMYTH"), make_record("AA2")],
            )
        )
        pairs = list(generator.gold_pairs())
        assert pairs == [(("AA1", 0), ("AA1", 1))]

    def test_duplicate_pair_count(self):
        generator = TestDataGenerator(removal=RemovalLevel.NONE)
        records = [make_record("AA1", first_name=str(i)) for i in range(4)]
        generator.import_snapshot(Snapshot("2012-01-01", records))
        assert generator.duplicate_pair_count == 6


class TestPublish:
    def test_publish_writes_clusters_to_store(self):
        generator = TestDataGenerator()
        generator.import_snapshot(Snapshot("2012-01-01", [make_record()]))
        version = generator.publish("initial")
        assert version == 1
        stored = generator.database["clusters"].find_one({"_id": "AA1"})
        assert stored["records"][0]["person"]["last_name"] == "SMITH"

    def test_version_document_written(self):
        generator = TestDataGenerator()
        generator.import_snapshot(Snapshot("2012-01-01", [make_record()]))
        generator.publish("initial")
        version_doc = generator.database["versions"].find_one({"_id": 1})
        assert version_doc["records"] == 1
        assert version_doc["clusters"] == 1
        assert version_doc["snapshots"] == ["2012-01-01"]

    def test_incremental_publish_updates_store(self):
        generator = TestDataGenerator()
        generator.import_snapshot(Snapshot("2012-01-01", [make_record()]))
        generator.publish()
        generator.import_snapshot(
            Snapshot("2013-01-01", [make_record(last_name="SMYTH", snapshot_dt="2013-01-01")])
        )
        generator.publish()
        stored = generator.database["clusters"].find_one({"_id": "AA1"})
        assert len(stored["records"]) == 2
        assert generator.current_version == 2

    def test_first_version_tags(self):
        generator = TestDataGenerator()
        generator.import_snapshot(Snapshot("2012-01-01", [make_record()]))
        generator.publish()
        generator.import_snapshot(
            Snapshot("2013-01-01", [make_record(last_name="SMYTH")])
        )
        generator.publish()
        cluster = generator.cluster("AA1")
        assert cluster["records"][0]["first_version"] == 1
        assert cluster["records"][1]["first_version"] == 2


class TestReconstruction:
    def make_two_version_cluster(self):
        generator = TestDataGenerator()
        generator.import_snapshot(Snapshot("2012-01-01", [make_record()]))
        generator.publish()
        generator.import_snapshot(
            Snapshot("2013-01-01", [make_record(last_name="SMYTH", snapshot_dt="2013-01-01")])
        )
        generator.publish()
        return generator

    def test_records_at_version(self):
        generator = self.make_two_version_cluster()
        cluster = generator.cluster("AA1")
        assert len(generator.records_at_version(cluster, 1)) == 1
        assert len(generator.records_at_version(cluster, 2)) == 2

    def test_records_in_snapshots(self):
        generator = self.make_two_version_cluster()
        cluster = generator.cluster("AA1")
        subset = generator.records_in_snapshots(cluster, ["2012-01-01"])
        assert len(subset) == 1
        assert subset[0]["person"]["last_name"] == "SMITH"

    def test_inserts_per_snapshot_map(self):
        generator = self.make_two_version_cluster()
        cluster = generator.cluster("AA1")
        assert cluster["meta"]["inserts_per_snapshot"] == {
            "2012-01-01": 1,
            "2013-01-01": 1,
        }
