"""Tests for the store integrity validator."""

import pytest

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.augment import AugmentationPlan, Augmenter
from repro.core.validate import validate_cluster, validate_store
from repro.core.versioning import UpdateProcess
from repro.docstore import Database
from repro.votersim.schema import empty_record
from repro.votersim.snapshots import Snapshot


def make_record(ncid="AA1", last_name="SMITH", **overrides):
    record = empty_record()
    record.update(
        ncid=ncid, last_name=last_name, first_name="JOHN",
        sex_code="M", age="40", snapshot_dt="2012-01-01",
    )
    record.update(overrides)
    return record


@pytest.fixture
def published_generator():
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    process = UpdateProcess(generator)
    process.run(
        [Snapshot("2012-01-01", [make_record("AA1"), make_record("AA2")])]
    )
    process.run(
        [Snapshot("2013-01-01", [make_record("AA1", last_name="SMYTH",
                                             snapshot_dt="2013-01-01")])]
    )
    return generator


class TestValidStore:
    def test_clean_store_passes(self, published_generator):
        report = validate_store(published_generator.database)
        assert report.ok, report.errors
        assert report.clusters_checked == 2
        assert report.records_checked == 3

    def test_session_store_passes(self, generator):
        report = validate_store(generator.database)
        assert report.ok, report.errors

    def test_augmented_store_passes(self, published_generator):
        Augmenter(
            published_generator, AugmentationPlan(share_of_clusters=1.0, seed=1)
        ).augment()
        published_generator.publish("augmented")
        report = validate_store(published_generator.database)
        assert report.ok, report.errors

    def test_persisted_store_passes(self, published_generator, tmp_path):
        published_generator.database.save(tmp_path)
        report = validate_store(Database.load(tmp_path))
        assert report.ok, report.errors


class TestViolationsDetected:
    def _store(self, published_generator):
        return published_generator.database

    def test_unpublished_store_flagged(self):
        database = Database("x")
        database.create_collection("clusters")
        database.create_collection("versions")
        report = validate_store(database)
        assert not report.ok
        assert any("never published" in error for error in report.errors)

    def test_tampered_value_breaks_hash(self, published_generator):
        database = self._store(published_generator)
        database["clusters"].update_one(
            {"_id": "AA1"}, {"$set": {"records.0.person.last_name": "TAMPERED"}}
        )
        report = validate_store(database)
        assert any("hash does not match" in error for error in report.errors)

    def test_hash_mirror_violation(self, published_generator):
        database = self._store(published_generator)
        database["clusters"].update_one(
            {"_id": "AA2"}, {"$push": {"meta.hashes": "deadbeef"}}
        )
        report = validate_store(database)
        assert any("mirror" in error for error in report.errors)

    def test_version_out_of_range(self, published_generator):
        database = self._store(published_generator)
        database["clusters"].update_one(
            {"_id": "AA1"}, {"$set": {"records.0.first_version": 99}}
        )
        report = validate_store(database)
        assert any("outside [1, 2]" in error for error in report.errors)

    def test_forward_similarity_reference(self, published_generator):
        database = self._store(published_generator)
        database["clusters"].update_one(
            {"_id": "AA1"},
            {"$set": {"records.0.plausibility": {"2": {"5": 0.5}}}},
        )
        report = validate_store(database)
        assert any("earlier index" in error for error in report.errors)

    def test_score_out_of_bounds(self, published_generator):
        database = self._store(published_generator)
        database["clusters"].update_one(
            {"_id": "AA1"},
            {"$set": {"records.1.plausibility": {"2": {"0": 1.7}}}},
        )
        report = validate_store(database)
        assert any("outside [0, 1]" in error for error in report.errors)

    def test_count_mismatch_with_version_doc(self, published_generator):
        database = self._store(published_generator)
        database["clusters"].delete_many({"_id": "AA2"})
        report = validate_store(database)
        assert any("store contains" in error for error in report.errors)


class TestValidateCluster:
    def test_missing_ncid(self):
        errors = validate_cluster({"_id": "X", "records": [], "meta": {"hashes": []}})
        assert any("missing ncid" in error for error in errors)

    def test_id_mismatch(self):
        errors = validate_cluster(
            {"_id": "X", "ncid": "Y", "records": [], "meta": {"hashes": []}}
        )
        assert any("_id" in error for error in errors)

    def test_records_must_be_list(self):
        errors = validate_cluster({"_id": "X", "ncid": "X", "records": "nope"})
        assert any("not a list" in error for error in errors)

    def test_duplicate_hashes_flagged(self):
        cluster = {
            "_id": "X", "ncid": "X",
            "records": [
                {"hash": "h", "first_version": 1},
                {"hash": "h", "first_version": 1},
            ],
            "meta": {"hashes": ["h", "h"]},
        }
        errors = validate_cluster(cluster, check_hashes=False)
        assert any("duplicate hashes" in error for error in errors)
