"""Belatedly published snapshots (Section 5.1).

"We have observed that they publish some old snapshots belatedly (e.g.,
the snapshot from 2010-11-02 was published in May 2019)."  Reproducibility
therefore keys on the *import* version (monotone), never the snapshot date
(not monotone).  These tests pin that behaviour.
"""

import pytest

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.versioning import UpdateProcess


@pytest.fixture(scope="module")
def ordered_and_belated(snapshots):
    """Two generators: chronological import vs belated middle snapshot."""
    ordered = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    UpdateProcess(ordered).run(snapshots, compute_statistics=False)

    belated = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    process = UpdateProcess(belated)
    middle = len(snapshots) // 2
    # everything except one middle snapshot, then the stragglers later
    process.run(
        snapshots[:middle] + snapshots[middle + 1 :], compute_statistics=False
    )
    process.run([snapshots[middle]], compute_statistics=False)
    return ordered, belated


class TestBelatedImport:
    def test_same_clusters_regardless_of_order(self, ordered_and_belated):
        ordered, belated = ordered_and_belated
        assert ordered.cluster_count == belated.cluster_count

    def test_same_record_contents(self, ordered_and_belated):
        ordered, belated = ordered_and_belated
        for ncid, cluster in ordered._clusters.items():
            other = belated.cluster(ncid)
            assert other is not None
            assert sorted(cluster["meta"]["hashes"]) == sorted(
                other["meta"]["hashes"]
            )

    def test_belated_snapshot_membership_registered(self, ordered_and_belated, snapshots):
        # The belated snapshot's records mostly already exist (it overlaps
        # its neighbours), so it may add no *new* records — but every one
        # of its records must list the belated date in its snapshots array.
        _ordered, belated = ordered_and_belated
        middle_date = snapshots[len(snapshots) // 2].date
        members = sum(
            1
            for cluster in belated.clusters()
            for record in cluster["records"]
            if middle_date in record["snapshots"]
        )
        assert members > 0
        versions = {
            record["first_version"]
            for cluster in belated.clusters()
            for record in cluster["records"]
        }
        assert versions <= {1, 2}

    def test_version_reconstruction_uses_import_order_not_dates(
        self, ordered_and_belated, snapshots
    ):
        _ordered, belated = ordered_and_belated
        middle_date = snapshots[len(snapshots) // 2].date
        for cluster in belated.clusters():
            v1 = belated.records_at_version(cluster, 1)
            # nothing introduced by the belated snapshot may appear at v1 —
            # even though its snapshot date is older than some v1 records
            for record in cluster["records"]:
                if record["first_version"] == 2:
                    assert record not in v1
                    assert middle_date in record["snapshots"]

    def test_snapshot_subset_reconstruction_still_complete(
        self, ordered_and_belated, snapshots
    ):
        """Restricting to a date interval includes belated records."""
        ordered, belated = ordered_and_belated
        middle_date = snapshots[len(snapshots) // 2].date
        count_ordered = sum(
            len(ordered.records_in_snapshots(cluster, [middle_date]))
            for cluster in ordered.clusters()
        )
        count_belated = sum(
            len(belated.records_in_snapshots(cluster, [middle_date]))
            for cluster in belated.clusters()
        )
        assert count_ordered == count_belated > 0

    def test_total_records_equal_after_all_imports(self, ordered_and_belated):
        ordered, belated = ordered_and_belated
        assert ordered.record_count == belated.record_count
