"""Tests for the irregularity census (Section 6.4, Table 4)."""

import pytest

from repro.core.irregularities import (
    IrregularityCensus,
    is_abbreviation,
    is_different_representation,
    is_integrated_value,
    is_missing,
    is_ocr_error,
    is_outlier,
    is_phonetic_error,
    is_postfix,
    is_prefix,
    is_scattered_value,
    is_token_transposition,
    is_typo,
    is_value_confusion,
)


class TestSingletonDetectors:
    def test_outlier_age(self):
        assert is_outlier("age", "5069")
        assert is_outlier("age", "111")
        assert is_outlier("age", "abc")
        assert not is_outlier("age", "45")
        assert not is_outlier("age", "110")

    def test_outlier_name_characters(self):
        # paper example: the first name 'X ÆA-12'
        assert is_outlier("first_name", "X ÆA-12")
        assert not is_outlier("first_name", "MARY-ANN O'NEIL JR.")

    def test_outlier_empty_is_not_outlier(self):
        assert not is_outlier("age", "")

    def test_abbreviation(self):
        assert is_abbreviation("A")
        assert is_abbreviation("A.")
        assert is_abbreviation("b,")
        assert not is_abbreviation("AB")
        assert not is_abbreviation("")
        assert not is_abbreviation("A..")

    def test_missing(self):
        for marker in (None, "", "  ", "-", "N/A", "unknown", "NULL", "none"):
            assert is_missing(marker), marker
        assert not is_missing("SMITH")
        assert not is_missing("0")


class TestPairDetectors:
    def test_typo(self):
        # paper example: ADELL vs ADEL
        assert is_typo("ADELL", "ADEL")
        assert is_typo("OEHRIE", "OEHRLE")
        assert is_typo("MARTHA", "MARHTA")  # transposition counts

    def test_typo_requires_length_over_two(self):
        assert not is_typo("AB", "AC")
        assert not is_typo("AB", "A")

    def test_typo_case_insensitive(self):
        assert not is_typo("SMITH", "smith")  # same after lowercasing
        assert is_typo("SMITH", "smyth")

    def test_ocr_error(self):
        # paper example: 'DICOL3' (digit confused with letter)
        assert is_ocr_error("NICOLE", "NIC0LE")
        assert is_ocr_error("DICOLE", "DICOL3")
        assert not is_ocr_error("NICOLE", "NICOLE")

    def test_ocr_requires_digit_side(self):
        assert not is_ocr_error("NICOLE", "NICOLA")  # letter vs letter

    def test_ocr_differing_digits_rejected(self):
        assert not is_ocr_error("AB1", "AB2")  # both digits, not identical

    def test_ocr_length_must_match(self):
        assert not is_ocr_error("ABC", "ABC1")

    def test_phonetic(self):
        assert is_phonetic_error("BAILEY", "BAYLEE")
        assert is_phonetic_error("SMITH", "SMYTH")
        assert not is_phonetic_error("SMITH", "JONES")

    def test_phonetic_requires_actual_difference(self):
        assert not is_phonetic_error("SMITH", "SMITH")
        assert not is_phonetic_error("O'NEIL", "ONEIL")  # same letters

    def test_prefix(self):
        # paper example: KIM vs KIMBERLY
        assert is_prefix("KIM", "KIMBERLY")
        assert is_prefix("KIMBERLY", "KIM")
        assert is_prefix("A.", "ANN")  # punctuation stripped
        assert not is_prefix("KIM", "KIM")
        assert not is_prefix("BERLY", "KIMBERLY")

    def test_postfix(self):
        # paper example: BRAGG matched as postfix
        assert is_postfix("BRAGG", "FORT BRAGG")
        assert not is_postfix("BRAGG", "BRAGG")
        assert not is_postfix("FORT", "FORT BRAGG")

    def test_different_representation(self):
        # paper example: 'JRS RIDGE' vs 'JRS-RIDGE'
        assert is_different_representation("JRS RIDGE", "JRS-RIDGE")
        assert is_different_representation("O'NEIL", "ONEIL")
        assert not is_different_representation("SMITH", "SMYTH")
        assert not is_different_representation("SAME", "SAME")

    def test_token_transposition(self):
        # paper example: 'ANH THI' vs 'THI ANH'
        assert is_token_transposition("ANH THI", "THI ANH")
        assert not is_token_transposition("ANH THI", "ANH THI")
        assert not is_token_transposition("ANH", "ANH")
        assert not is_token_transposition("A B", "A C")


class TestMultiAttributeDetectors:
    def test_value_confusion(self):
        # paper example: (JOSE, JUAN) confused between first and middle name
        left = {"first_name": "JOSE", "midl_name": "JUAN"}
        right = {"first_name": "JUAN", "midl_name": "JOSE"}
        assert is_value_confusion(left, right, "first_name", "midl_name")

    def test_value_confusion_requires_difference(self):
        same = {"first_name": "ANA", "midl_name": "ANA"}
        assert not is_value_confusion(same, same, "first_name", "midl_name")

    def test_integrated_value(self):
        # middle name integrated into the last name field
        left = {"midl_name": "MAN", "last_name": "LI"}
        right = {"midl_name": "", "last_name": "MAN LI"}
        assert is_integrated_value(left, right, "last_name", "midl_name")

    def test_integrated_value_symmetric(self):
        left = {"midl_name": "", "last_name": "MAN LI"}
        right = {"midl_name": "MAN", "last_name": "LI"}
        assert is_integrated_value(left, right, "last_name", "midl_name")

    def test_scattered_values(self):
        # same token set distributed differently over two attributes
        left = {"midl_name": "AN LE", "last_name": "MA"}
        right = {"midl_name": "AN", "last_name": "LE MA"}
        assert is_scattered_value(left, right, "midl_name", "last_name")

    def test_scattered_excludes_confusion(self):
        left = {"midl_name": "AN", "last_name": "LE"}
        right = {"midl_name": "LE", "last_name": "AN"}
        assert not is_scattered_value(left, right, "midl_name", "last_name")

    def test_scattered_excludes_integration(self):
        left = {"midl_name": "MAN", "last_name": "LI"}
        right = {"midl_name": "", "last_name": "MAN LI"}
        assert not is_scattered_value(left, right, "last_name", "midl_name")


class TestCensus:
    def test_counts_and_normalisation(self):
        census = IrregularityCensus(("first_name", "midl_name", "last_name", "age"))
        cluster = [
            {"first_name": "DEBRA", "midl_name": "A", "last_name": "WILLIAMS", "age": "45"},
            {"first_name": "DEBRA", "midl_name": "", "last_name": "WILLIAMS", "age": "5069"},
        ]
        census.add_cluster(cluster)
        assert census.records_seen == 2
        assert census.pairs_seen == 1
        abbreviation = census.count("abbreviation")
        assert abbreviation.total == 1
        assert abbreviation.percentage == 0.5
        assert abbreviation.most_common_attribute == "midl_name"
        outlier = census.count("outlier")
        assert outlier.total == 1
        missing = census.count("missing")
        assert missing.total == 1

    def test_pair_detection_through_census(self):
        census = IrregularityCensus(("first_name", "midl_name", "last_name"))
        census.add_pair(
            {"first_name": "JOSE", "midl_name": "JUAN", "last_name": "GARCIA"},
            {"first_name": "JUAN", "midl_name": "JOSE", "last_name": "GARCIA"},
        )
        assert census.count("value_confusion").total == 1
        assert census.count("value_confusion").most_common_attribute == (
            "first_name/midl_name"
        )

    def test_typo_counted_per_attribute(self):
        census = IrregularityCensus(("last_name",))
        census.add_pair({"last_name": "ADELL"}, {"last_name": "ADEL"})
        row = census.count("typo")
        assert row.total == 1
        assert row.by_attribute == {"last_name": 1}

    def test_row_listing_covers_all_13_types(self):
        census = IrregularityCensus(("last_name",))
        assert len(census.counts()) == 13

    def test_unknown_type_raises(self):
        census = IrregularityCensus(("last_name",))
        with pytest.raises(KeyError):
            census.count("nonsense")

    def test_empty_attributes_rejected(self):
        with pytest.raises(ValueError):
            IrregularityCensus(())

    def test_session_dataset_contains_diverse_errors(self, generator):
        from repro.core.clusters import record_view

        census = IrregularityCensus(
            ("first_name", "midl_name", "last_name", "age", "birth_place")
        )
        for cluster in generator.clusters():
            records = [record_view(r, ("person",)) for r in cluster["records"]]
            census.add_cluster(records)
        assert census.count("missing").total > 0
        assert census.count("abbreviation").total > 0
        assert census.count("typo").total > 0


class TestExamples:
    def test_examples_captured(self):
        census = IrregularityCensus(("last_name",))
        census.add_pair({"last_name": "ADELL"}, {"last_name": "ADEL"})
        examples = census.examples("typo")
        assert examples == ["'ADELL' vs 'ADEL'"]

    def test_examples_capped(self):
        census = IrregularityCensus(("last_name",))
        census.max_examples = 2
        for index in range(5):
            census.add_record({"last_name": ""})
        assert len(census.examples("missing")) == 2

    def test_no_examples_for_unseen_type(self):
        census = IrregularityCensus(("last_name",))
        assert census.examples("ocr") == []

    def test_confusion_example_format(self):
        census = IrregularityCensus(("first_name", "midl_name", "last_name"))
        census.add_pair(
            {"first_name": "JOSE", "midl_name": "JUAN"},
            {"first_name": "JUAN", "midl_name": "JOSE"},
        )
        assert census.examples("value_confusion") == ["(JOSE, JUAN) vs (JUAN, JOSE)"]
