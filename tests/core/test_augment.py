"""Tests for the pollution-augmentation extension (Section 8 future work)."""

import pytest

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.augment import AugmentationPlan, Augmenter, strip_synthetic
from repro.core.clusters import record_view
from repro.core.versioning import UpdateProcess
from repro.votersim.schema import empty_record
from repro.votersim.snapshots import Snapshot


def make_record(ncid="AA1", last_name="WILLIAMS", **overrides):
    record = empty_record()
    record.update(
        ncid=ncid,
        last_name=last_name,
        first_name="DEBRA",
        midl_name="OEHRLE",
        sex_code="F",
        birth_place="NORTH CAROLINA",
        age="45",
        snapshot_dt="2012-01-01",
    )
    record.update(overrides)
    return record


@pytest.fixture
def small_generator():
    generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    generator.import_snapshot(
        Snapshot("2012-01-01", [make_record(f"AA{i}") for i in range(20)])
    )
    return generator


class TestAugmenter:
    def test_adds_records_to_selected_share(self, small_generator):
        plan = AugmentationPlan(share_of_clusters=1.0, duplicates_per_cluster=2, seed=1)
        stats = Augmenter(small_generator, plan).augment()
        assert stats.clusters_touched == 20
        assert stats.records_added > 20  # a few corruptions may collide
        assert small_generator.record_count == 20 + stats.records_added

    def test_zero_share_adds_nothing(self, small_generator):
        plan = AugmentationPlan(share_of_clusters=0.0, seed=1)
        stats = Augmenter(small_generator, plan).augment()
        assert stats.records_added == 0

    def test_synthetic_records_marked_with_provenance(self, small_generator):
        plan = AugmentationPlan(share_of_clusters=1.0, seed=2)
        Augmenter(small_generator, plan).augment()
        cluster = small_generator.cluster("AA0")
        synthetic = [r for r in cluster["records"] if r.get("synthetic")]
        assert synthetic
        record = synthetic[0]
        assert record["augmented_from"] == 0
        assert record["snapshots"] == []
        assert all(":" in label for label in record["corruptions"])

    def test_synthetic_records_differ_from_source(self, small_generator):
        plan = AugmentationPlan(
            share_of_clusters=1.0, errors_per_duplicate=2.0, seed=3
        )
        Augmenter(small_generator, plan).augment()
        for cluster in small_generator.clusters():
            for record in cluster["records"]:
                if record.get("synthetic"):
                    source = cluster["records"][record["augmented_from"]]
                    assert record["hash"] != source["hash"]

    def test_hashes_registered_for_future_dedup(self, small_generator):
        plan = AugmentationPlan(share_of_clusters=1.0, seed=4)
        Augmenter(small_generator, plan).augment()
        cluster = small_generator.cluster("AA1")
        assert len(cluster["meta"]["hashes"]) == len(cluster["records"])

    def test_gold_standard_stays_sound(self, small_generator):
        plan = AugmentationPlan(share_of_clusters=1.0, seed=5)
        Augmenter(small_generator, plan).augment()
        # all records of a cluster still share the NCID attribute
        for cluster in small_generator.clusters():
            for record in cluster["records"]:
                person = record["person"]
                assert person.get("ncid", cluster["ncid"]) == cluster["ncid"]

    def test_strip_synthetic_recovers_original(self, small_generator):
        before = {
            cluster["ncid"]: len(cluster["records"])
            for cluster in small_generator.clusters()
        }
        plan = AugmentationPlan(share_of_clusters=1.0, seed=6)
        Augmenter(small_generator, plan).augment()
        for cluster in small_generator.clusters():
            assert len(strip_synthetic(cluster)) == before[cluster["ncid"]]

    def test_deterministic_given_seed(self):
        def build():
            generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
            generator.import_snapshot(
                Snapshot("2012-01-01", [make_record(f"AA{i}") for i in range(10)])
            )
            Augmenter(generator, AugmentationPlan(share_of_clusters=1.0, seed=9)).augment()
            return [
                record_view(record, ("person",))
                for cluster in generator.clusters()
                for record in cluster["records"]
            ]

        assert build() == build()

    def test_plan_validation(self, small_generator):
        with pytest.raises(ValueError):
            Augmenter(small_generator, AugmentationPlan(share_of_clusters=1.5))
        with pytest.raises(ValueError):
            Augmenter(small_generator, AugmentationPlan(duplicates_per_cluster=0))
        with pytest.raises(ValueError):
            Augmenter(small_generator, AugmentationPlan(errors_per_duplicate=-1))


class TestAugmentationInUpdateCycle:
    def test_synthetic_records_versioned_and_scored(self, small_generator):
        small_generator.publish("organic only")
        plan = AugmentationPlan(share_of_clusters=1.0, seed=7)
        process = UpdateProcess(small_generator)
        Augmenter(small_generator, plan).augment()
        process.update_statistics()
        small_generator.publish("augmented")

        cluster = small_generator.cluster("AA0")
        synthetic = [r for r in cluster["records"] if r.get("synthetic")]
        assert synthetic
        record = synthetic[0]
        assert record["first_version"] == 2
        assert "2" in record["heterogeneity_person"]
        # version 1 reconstruction excludes all synthetic records
        v1 = small_generator.records_at_version(cluster, 1)
        assert all(not r.get("synthetic") for r in v1)

    def test_augmentation_raises_heterogeneity(self, small_generator):
        from repro.core.heterogeneity import HeterogeneityScorer
        from repro.votersim.schema import PERSON_ATTRIBUTES

        scorer = HeterogeneityScorer.from_clusters(
            small_generator.clusters(),
            ("person",),
            tuple(a for a in PERSON_ATTRIBUTES if a != "ncid"),
        )

        def average_heterogeneity():
            scores = []
            for cluster in small_generator.clusters():
                records = [record_view(r, ("person",)) for r in cluster["records"]]
                if len(records) > 1:
                    scores.extend(scorer.pair_heterogeneities(records))
            return sum(scores) / len(scores) if scores else 0.0

        before = average_heterogeneity()
        plan = AugmentationPlan(
            share_of_clusters=1.0, duplicates_per_cluster=2,
            errors_per_duplicate=2.5, seed=8,
        )
        Augmenter(small_generator, plan).augment()
        after = average_heterogeneity()
        assert after > before
