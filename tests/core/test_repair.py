"""Tests for unsound-cluster repair (Figure 3's DR19657 scenario)."""

import pytest

from repro.core.plausibility import cluster_plausibility
from repro.core.repair import RepairResult, apply_repair, repair_clusters, split_cluster


def person(first, middle, last, sex, age):
    return {
        "first_name": first,
        "midl_name": middle,
        "last_name": last,
        "sex_code": sex,
        "age": age,
    }


def make_cluster(ncid, *people):
    return {
        "_id": ncid,
        "ncid": ncid,
        "records": [
            {
                "person": {k: v for k, v in flat.items() if v},
                "hash": f"h{index}",
                "first_version": 1,
                "snapshots": ["2012-01-01"],
                "plausibility": {},
                "heterogeneity": {},
                "heterogeneity_person": {},
            }
            for index, flat in enumerate(people)
        ],
        "meta": {"hashes": [f"h{i}" for i in range(len(people))],
                 "inserts_per_snapshot": {}, "first_version": 1},
    }


FIELDS = person("MARY", "ELIZABETH", "FIELDS", "F", "61")
FIELDS2 = person("MARY", "E", "FIELDS", "F", "62")
BETHEA = person("JOSHUA", "", "BETHEA", "M", "93")
BETHEA2 = person("JOSHUA", "ELIZABETH", "BETHEA", "M", "95")


class TestSplitCluster:
    def test_sound_cluster_not_split(self):
        cluster = make_cluster("A", FIELDS, FIELDS2)
        result = split_cluster(cluster, threshold=0.8)
        assert not result.was_split
        assert result.groups == [[0, 1]]

    def test_figure3_style_cluster_split_into_two_groups(self):
        # DR19657: "two very homogeneous groups" under one NCID
        cluster = make_cluster("DR19657", FIELDS, FIELDS2, BETHEA, BETHEA2)
        result = split_cluster(cluster, threshold=0.8)
        assert result.was_split
        assert sorted(result.groups) == [[0, 1], [2, 3]]

    def test_single_linkage_keeps_chains_together(self):
        # old name -> married name -> married name with typo: endpoint pair
        # may score below the threshold, but the chain connects them.
        original = person("DEBRA", "OEHRLE", "WILLIAMS", "F", "45")
        married = person("DEBRA", "WILLIAMS", "OEHRLE", "F", "47")
        married_typo = person("DEBRA", "WILLIAMS", "OEHRIE", "F", "49")
        cluster = make_cluster("B", original, married, married_typo)
        result = split_cluster(cluster, threshold=0.9)
        assert not result.was_split

    def test_min_within_plausibility_reported(self):
        cluster = make_cluster("C", FIELDS, FIELDS2)
        result = split_cluster(cluster, threshold=0.5)
        assert result.min_within_plausibility == pytest.approx(
            cluster_plausibility(cluster)
        )

    def test_singleton_cluster(self):
        cluster = make_cluster("D", FIELDS)
        result = split_cluster(cluster)
        assert result.groups == [[0]]
        assert not result.was_split

    def test_threshold_one_splits_everything_fuzzy(self):
        cluster = make_cluster("E", FIELDS, FIELDS2)
        result = split_cluster(cluster, threshold=1.0)
        # FIELDS vs FIELDS2 differ (abbrev is compensated -> may stay 1.0);
        # a genuinely different record must split:
        cluster2 = make_cluster("F", FIELDS, BETHEA)
        assert split_cluster(cluster2, threshold=1.0).was_split

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            split_cluster(make_cluster("G", FIELDS), threshold=1.5)

    def test_stored_maps_used(self):
        cluster = make_cluster("H", FIELDS, FIELDS2)
        cluster["records"][1]["plausibility"] = {"1": {"0": 0.1}}
        result = split_cluster(cluster, threshold=0.8)
        assert result.was_split  # the stored low score wins

    def test_custom_scorer(self):
        cluster = make_cluster("I", FIELDS, BETHEA)
        always_one = lambda left, right: 1.0
        assert not split_cluster(cluster, scorer=always_one).was_split


class TestRepairClusters:
    def test_one_result_per_cluster(self):
        clusters = [
            make_cluster("A", FIELDS, FIELDS2),
            make_cluster("B", FIELDS, BETHEA),
        ]
        results = repair_clusters(clusters, threshold=0.8)
        assert len(results) == 2
        assert not results[0].was_split
        assert results[1].was_split


class TestApplyRepair:
    def test_unsplit_cluster_returned_unchanged(self):
        cluster = make_cluster("A", FIELDS, FIELDS2)
        result = split_cluster(cluster, threshold=0.8)
        assert apply_repair(cluster, result) == [cluster]

    def test_split_produces_suffixed_clusters(self):
        cluster = make_cluster("DR19657", FIELDS, FIELDS2, BETHEA, BETHEA2)
        result = split_cluster(cluster, threshold=0.8)
        repaired = apply_repair(cluster, result)
        assert [c["ncid"] for c in repaired] == ["DR19657/0", "DR19657/1"]
        assert all(c["meta"]["repaired_from"] == "DR19657" for c in repaired)
        assert sum(len(c["records"]) for c in repaired) == 4

    def test_split_clusters_are_plausible(self):
        cluster = make_cluster("X", FIELDS, FIELDS2, BETHEA, BETHEA2)
        repaired = apply_repair(cluster, split_cluster(cluster, threshold=0.8))
        for sub in repaired:
            assert cluster_plausibility(sub) >= 0.8

    def test_similarity_maps_reset_on_split(self):
        cluster = make_cluster("Y", FIELDS, BETHEA)
        cluster["records"][1]["plausibility"] = {"1": {"0": 0.2}}
        repaired = apply_repair(cluster, split_cluster(cluster, threshold=0.8))
        for sub in repaired:
            for record in sub["records"]:
                assert record["plausibility"] == {}

    def test_hashes_partitioned(self):
        cluster = make_cluster("Z", FIELDS, FIELDS2, BETHEA)
        repaired = apply_repair(cluster, split_cluster(cluster, threshold=0.8))
        all_hashes = sorted(
            digest for sub in repaired for digest in sub["meta"]["hashes"]
        )
        assert all_hashes == ["h0", "h1", "h2"]
