"""Tests for sharded parallel snapshot import."""

import pytest

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.parallel import import_snapshots_parallel, shard_of


class TestShardOf:
    def test_deterministic(self):
        assert shard_of("AA100001", 4) == shard_of("AA100001", 4)

    def test_whitespace_insensitive(self):
        assert shard_of(" AA1 ", 4) == shard_of("AA1", 4)

    def test_range(self):
        for entity_id in ("AA1", "BB2", "CC3", "DD4", "EE5"):
            assert 0 <= shard_of(entity_id, 3) < 3

    def test_distributes(self):
        shards = {shard_of(f"AA{i}", 4) for i in range(100)}
        assert shards == {0, 1, 2, 3}


class TestParallelImport:
    def test_matches_sequential_import(self, snapshots):
        sequential = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        sequential.import_snapshots(snapshots)

        parallel = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        import_snapshots_parallel(parallel, snapshots, shards=4, max_workers=0)

        assert parallel.cluster_count == sequential.cluster_count
        assert parallel.record_count == sequential.record_count
        assert parallel.duplicate_pair_count == sequential.duplicate_pair_count
        for ncid, cluster in sequential._clusters.items():
            other = parallel.cluster(ncid)
            assert other is not None
            assert other["meta"]["hashes"] == cluster["meta"]["hashes"]

    def test_merged_stats_match_sequential(self, snapshots):
        sequential = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        sequential_stats = sequential.import_snapshots(snapshots)

        parallel = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        parallel_stats = import_snapshots_parallel(
            parallel, snapshots, shards=3, max_workers=0
        )
        assert len(parallel_stats) == len(sequential_stats)
        for left, right in zip(parallel_stats, sequential_stats):
            assert left.snapshot_date == right.snapshot_date
            assert left.rows == right.rows
            assert left.new_records == right.new_records
            assert left.new_clusters == right.new_clusters

    def test_single_shard_equals_sequential(self, snapshots):
        parallel = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        import_snapshots_parallel(parallel, snapshots, shards=1, max_workers=0)
        sequential = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        sequential.import_snapshots(snapshots)
        assert parallel.record_count == sequential.record_count

    def test_publish_after_parallel_import(self, snapshots):
        generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        import_snapshots_parallel(generator, snapshots, shards=4, max_workers=0)
        version = generator.publish("parallel initial load")
        assert version == 1
        stored = generator.database["versions"].find_one({"_id": 1})
        assert stored["records"] == generator.record_count
        assert stored["snapshots"] == [s.date for s in snapshots]

    def test_non_empty_generator_rejected(self, snapshots):
        generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        generator.import_snapshot(snapshots[0])
        with pytest.raises(ValueError):
            import_snapshots_parallel(generator, snapshots[1:], max_workers=0)

    def test_invalid_shards(self, snapshots):
        generator = TestDataGenerator()
        with pytest.raises(ValueError):
            import_snapshots_parallel(generator, snapshots, shards=0)

    def test_process_pool_path(self, snapshots):
        # the real multiprocessing path on a small subset
        generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        import_snapshots_parallel(
            generator, snapshots[:2], shards=2, max_workers=2
        )
        sequential = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        sequential.import_snapshots(snapshots[:2])
        assert generator.record_count == sequential.record_count
