"""Tests for sharded parallel snapshot import."""

import pytest

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.parallel import import_snapshots_parallel, shard_of


class TestShardOf:
    def test_deterministic(self):
        assert shard_of("AA100001", 4) == shard_of("AA100001", 4)

    def test_whitespace_insensitive(self):
        assert shard_of(" AA1 ", 4) == shard_of("AA1", 4)

    def test_range(self):
        for entity_id in ("AA1", "BB2", "CC3", "DD4", "EE5"):
            assert 0 <= shard_of(entity_id, 3) < 3

    def test_distributes(self):
        shards = {shard_of(f"AA{i}", 4) for i in range(100)}
        assert shards == {0, 1, 2, 3}


class TestParallelImport:
    def test_matches_sequential_import(self, snapshots):
        sequential = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        sequential.import_snapshots(snapshots)

        parallel = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        import_snapshots_parallel(parallel, snapshots, shards=4, max_workers=0)

        assert parallel.cluster_count == sequential.cluster_count
        assert parallel.record_count == sequential.record_count
        assert parallel.duplicate_pair_count == sequential.duplicate_pair_count
        for ncid, cluster in sequential._clusters.items():
            other = parallel.cluster(ncid)
            assert other is not None
            assert other["meta"]["hashes"] == cluster["meta"]["hashes"]

    def test_merged_stats_match_sequential(self, snapshots):
        sequential = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        sequential_stats = sequential.import_snapshots(snapshots)

        parallel = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        parallel_stats = import_snapshots_parallel(
            parallel, snapshots, shards=3, max_workers=0
        )
        assert len(parallel_stats) == len(sequential_stats)
        for left, right in zip(parallel_stats, sequential_stats):
            assert left.snapshot_date == right.snapshot_date
            assert left.rows == right.rows
            assert left.new_records == right.new_records
            assert left.new_clusters == right.new_clusters

    def test_single_shard_equals_sequential(self, snapshots):
        parallel = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        import_snapshots_parallel(parallel, snapshots, shards=1, max_workers=0)
        sequential = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        sequential.import_snapshots(snapshots)
        assert parallel.record_count == sequential.record_count

    def test_publish_after_parallel_import(self, snapshots):
        generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        import_snapshots_parallel(generator, snapshots, shards=4, max_workers=0)
        version = generator.publish("parallel initial load")
        assert version == 1
        stored = generator.database["versions"].find_one({"_id": 1})
        assert stored["records"] == generator.record_count
        assert stored["snapshots"] == [s.date for s in snapshots]

    def test_non_empty_generator_rejected(self, snapshots):
        generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        generator.import_snapshot(snapshots[0])
        with pytest.raises(ValueError):
            import_snapshots_parallel(generator, snapshots[1:], max_workers=0)

    def test_invalid_shards(self, snapshots):
        generator = TestDataGenerator()
        with pytest.raises(ValueError):
            import_snapshots_parallel(generator, snapshots, shards=0)

    def test_process_pool_path(self, snapshots):
        # the real multiprocessing path on a small subset
        generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        import_snapshots_parallel(
            generator, snapshots[:2], shards=2, max_workers=2
        )
        sequential = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        sequential.import_snapshots(snapshots[:2])
        assert generator.record_count == sequential.record_count


class TestWorkerClamping:
    def test_zero_and_none_stay_zero(self):
        from repro.core.parallel import effective_worker_count

        assert effective_worker_count(0, warn=False) == 0
        assert effective_worker_count(None, warn=False) == 0

    def test_within_cpu_budget_unchanged(self):
        from repro.core.parallel import effective_worker_count

        assert effective_worker_count(1, warn=False) == 1

    def test_oversubscription_clamps_to_cpu_count(self):
        import os

        from repro.core.parallel import effective_worker_count

        cpus = os.cpu_count() or 1
        assert effective_worker_count(cpus + 5, warn=False) == cpus

    def test_warns_once_per_label(self):
        import os
        import warnings

        from repro.core.parallel import WorkerClampWarning, effective_worker_count

        cpus = os.cpu_count() or 1
        label = "clamp warn-once probe"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            effective_worker_count(cpus + 1, label=label)
            effective_worker_count(cpus + 1, label=label)
        clamps = [w for w in caught if issubclass(w.category, WorkerClampWarning)]
        assert len(clamps) <= 1  # once, or zero if an earlier test used it
        if clamps:
            assert clamps[0].message.requested == cpus + 1
            assert clamps[0].message.effective == cpus


class TestRunReadShards:
    def test_results_in_input_order(self):
        from repro.core.parallel import run_read_shards

        results = run_read_shards(
            lambda x: x * 2, [(3,), (1,), (2,)], max_workers=2
        )
        assert results == [6, 2, 4]

    def test_sequential_when_single_worker(self):
        from repro.core.parallel import run_read_shards

        assert run_read_shards(lambda x: x + 1, [(1,), (2,)], max_workers=0) == [2, 3]

    def test_exceptions_propagate(self):
        from repro.core.parallel import run_read_shards

        def boom(x):
            raise ValueError(f"shard {x}")

        with pytest.raises(ValueError, match="shard"):
            run_read_shards(boom, [(1,), (2,)], max_workers=2)

    def test_shares_live_state_without_pickling(self):
        from repro.core.parallel import run_read_shards

        shared = {"a": 1, "b": 2}
        results = run_read_shards(
            lambda key: shared[key], [("a",), ("b",)], max_workers=4
        )
        assert results == [1, 2]
