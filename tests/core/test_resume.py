"""Tests for checkpoint/resume of the update process on a durable store."""

import pytest

from repro.core import TestDataGenerator
from repro.core.versioning import UpdateProcess
from repro.docstore import Database, DurableDatabase
from repro.docstore.wal import WAL_MAGIC
from repro.votersim.schema import empty_record
from repro.votersim.snapshots import Snapshot


def make_record(ncid, last_name="SMITH", snapshot_dt="2012-01-01", **overrides):
    record = empty_record()
    record.update(
        ncid=ncid, last_name=last_name, first_name="JOHN",
        sex_code="M", age="40", snapshot_dt=snapshot_dt,
    )
    record.update(overrides)
    return record


SNAPSHOTS = [
    Snapshot("2012-01-01", [make_record("AA1"), make_record("AA2")]),
    Snapshot(
        "2013-01-01",
        [make_record("AA1", last_name="SMYTH", snapshot_dt="2013-01-01")],
    ),
    Snapshot("2014-01-01", [make_record("AA3", snapshot_dt="2014-01-01")]),
]


def durable_process(directory, **kwargs):
    database = DurableDatabase(directory, "ncvoter")
    generator = TestDataGenerator.from_database(database)
    return UpdateProcess(generator, **kwargs)


class TestRunIncremental:
    def test_one_version_per_snapshot(self, tmp_path):
        process = durable_process(tmp_path)
        published = process.run_incremental(SNAPSHOTS, compute_statistics=False)
        assert published == [1, 2, 3]
        assert process.generator.current_version == 3
        process.generator.database.close()

    def test_already_imported_snapshots_skipped(self, tmp_path):
        process = durable_process(tmp_path)
        process.run_incremental(SNAPSHOTS[:1], compute_statistics=False)
        again = process.run_incremental(SNAPSHOTS, compute_statistics=False)
        assert again == [2, 3]  # first snapshot not re-imported
        assert process.generator.database["versions"].count_documents() == 3
        process.generator.database.close()

    def test_nothing_to_do_returns_empty(self, tmp_path):
        process = durable_process(tmp_path)
        process.run_incremental(SNAPSHOTS, compute_statistics=False)
        assert process.run_incremental(SNAPSHOTS, compute_statistics=False) == []
        process.generator.database.close()

    def test_checkpoint_every_folds_the_wal(self, tmp_path):
        process = durable_process(tmp_path)
        process.run_incremental(
            SNAPSHOTS, compute_statistics=False, checkpoint_every=1
        )
        process.generator.database.close()
        # Every version checkpointed: the logs are truncated to the header.
        assert (tmp_path / "clusters.wal").read_bytes() == WAL_MAGIC
        assert (tmp_path / "clusters.jsonl").exists()


class TestResume:
    def test_resume_continues_after_interruption(self, tmp_path):
        first = durable_process(tmp_path)
        first.run_incremental(SNAPSHOTS[:2], compute_statistics=False)
        first.generator.database.close()  # "interrupted" after snapshot 2

        resumed = UpdateProcess.resume(tmp_path)
        generator = resumed.generator
        assert generator.current_version == 2
        assert generator._imported_snapshots == ["2012-01-01", "2013-01-01"]
        assert generator.cluster_count == 2  # AA1, AA2 restored

        published = resumed.run_incremental(SNAPSHOTS, compute_statistics=False)
        assert published == [3]
        assert generator.cluster_count == 3
        generator.database.close()

    def test_resume_with_statistics_matches_single_run(self, tmp_path):
        interrupted = durable_process(tmp_path / "resumed")
        interrupted.run_incremental(SNAPSHOTS[:1])
        interrupted.generator.database.close()
        resumed = UpdateProcess.resume(tmp_path / "resumed")
        resumed.run_incremental(SNAPSHOTS)
        resumed.generator.database.close()

        oneshot = durable_process(tmp_path / "oneshot")
        oneshot.run_incremental(SNAPSHOTS)
        oneshot.generator.database.close()

        resumed_db = Database.load(tmp_path / "resumed")
        oneshot_db = Database.load(tmp_path / "oneshot")
        resumed_clusters = {
            doc["_id"]: doc for doc in resumed_db["clusters"].all()
        }
        oneshot_clusters = {
            doc["_id"]: doc for doc in oneshot_db["clusters"].all()
        }
        assert resumed_clusters == oneshot_clusters

    def test_resume_plain_store(self, tmp_path):
        generator = TestDataGenerator()
        generator.import_snapshot(SNAPSHOTS[0])
        generator.publish(note="plain")
        generator.database.save(tmp_path)
        resumed = UpdateProcess.resume(tmp_path, durable=False)
        assert resumed.generator.current_version == 1
        assert resumed.generator.cluster_count == 2

    def test_resume_missing_store_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            UpdateProcess.resume(tmp_path / "nowhere", durable=False)
