"""Tests for the table rendering module."""

import pytest

from repro.core.irregularities import IrregularityCensus
from repro.core.levels import RemovalLevel
from repro.core.statistics import RemovalStats, YearStats
from repro.datasets.base import DatasetCharacteristics
from repro.report import (
    render_characteristics,
    render_comparison,
    render_irregularities,
    render_removal_stats,
    render_table,
    render_year_stats,
)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(("a", "long"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert lines[0] == "  a  long"
        assert lines[1] == "  1     2"
        assert lines[2] == "333     4"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(("a",), [("1", "2")])

    def test_empty_rows(self):
        assert render_table(("a", "b"), []) == "a  b"


class TestRenderYearStats:
    def test_includes_total_row(self):
        rows = [
            YearStats(2008, 1, 100, 90, 80),
            YearStats(2009, 2, 120, 30, 5),
        ]
        text = render_year_stats(rows)
        assert "2008" in text and "2009" in text
        assert "total" in text
        assert "54.5%" in text  # (90+30)/(100+120)

    def test_empty(self):
        text = render_year_stats([])
        assert "year" in text


class TestRenderRemovalStats:
    def test_all_levels_rendered(self):
        rows = [
            RemovalStats(RemovalLevel.NONE, 100, 500, 10.0, 30, 0, 0, 10),
            RemovalStats(RemovalLevel.EXACT, 50, 120, 5.0, 15, 50, 380, 10),
        ]
        text = render_removal_stats(rows)
        assert "none" in text and "exact" in text
        assert "50.0%" in text  # 50 removed of the original 100 records
        assert "76.0%" in text  # 380 removed of 500


class TestRenderCharacteristics:
    def test_render(self):
        rows = [
            DatasetCharacteristics("Cora", 1879, 17, 64578, 182, 118, 238, 10.32),
        ]
        text = render_characteristics(rows)
        assert "Cora" in text
        assert "64578" in text
        assert "10.32" in text


class TestRenderIrregularities:
    def make_census(self):
        census = IrregularityCensus(("last_name", "midl_name"))
        census.add_cluster(
            [
                {"last_name": "ADELL", "midl_name": "A"},
                {"last_name": "ADEL", "midl_name": ""},
            ]
        )
        return census

    def test_rows_and_examples(self):
        text = render_irregularities(self.make_census())
        assert "typo" in text
        assert "'ADELL' vs 'ADEL'" in text
        assert "abbreviation" in text

    def test_comparison_table(self):
        left = self.make_census()
        right = IrregularityCensus(("last_name",))
        right.add_record({"last_name": "SMITH"})
        text = render_comparison(
            {"NC": left, "Census": right}, ("typo", "missing")
        )
        assert "NC" in text and "Census" in text
        lines = text.splitlines()
        assert len(lines) == 3  # header + two error types
