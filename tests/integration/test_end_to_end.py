"""End-to-end integration tests across all subsystems."""

import collections

import pytest

from repro.core import RemovalLevel, TestDataGenerator, customize
from repro.core.heterogeneity import HeterogeneityScorer
from repro.core.plausibility import cluster_plausibility
from repro.core.versioning import UpdateProcess
from repro.dedup import (
    RecordMatcher,
    best_f1,
    evaluate_thresholds,
    multipass_sorted_neighborhood,
    pick_blocking_keys,
    score_candidates,
)
from repro.docstore import Database
from repro.textsim import MongeElkan
from repro.votersim import SimulationConfig, VoterRegisterSimulator
from repro.votersim.schema import PERSON_ATTRIBUTES


class TestFullPipeline:
    """Simulate -> generate -> score -> customise -> detect -> evaluate."""

    @pytest.fixture(scope="class")
    def pipeline(self, snapshots):
        generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        UpdateProcess(generator).run(snapshots)
        scorer = HeterogeneityScorer.from_clusters(
            generator.clusters(),
            ("person",),
            tuple(a for a in PERSON_ATTRIBUTES if a != "ncid"),
        )
        dataset = customize(
            generator, 0.0, 0.3, target_clusters=50, scorer=scorer, name="NC-test"
        )
        return generator, scorer, dataset

    def test_detection_quality_on_clean_subset(self, pipeline):
        _generator, _scorer, dataset = pipeline
        attributes = [a for a in PERSON_ATTRIBUTES if a != "ncid"]
        matcher = RecordMatcher.from_records(dataset.records, attributes, MongeElkan())
        keys = pick_blocking_keys(dataset.records, attributes, 5)
        candidates = multipass_sorted_neighborhood(dataset.records, keys, window=20)
        similarities = score_candidates(dataset.records, candidates, matcher)
        points = evaluate_thresholds(
            similarities, dataset.gold_pairs, [t / 20 for t in range(8, 20)]
        )
        best = best_f1(points)
        assert best.f1 > 0.75  # clean data: detection should be easy

    def test_dirty_subset_is_harder(self, pipeline, snapshots):
        generator, scorer, clean = pipeline
        dirty = customize(
            generator, 0.35, 1.0, target_clusters=50, scorer=scorer, name="dirty"
        )
        attributes = [a for a in PERSON_ATTRIBUTES if a != "ncid"]
        results = {}
        for name, dataset in (("clean", clean), ("dirty", dirty)):
            matcher = RecordMatcher.from_records(dataset.records, attributes, MongeElkan())
            keys = pick_blocking_keys(dataset.records, attributes, 5)
            candidates = multipass_sorted_neighborhood(dataset.records, keys, window=20)
            similarities = score_candidates(dataset.records, candidates, matcher)
            points = evaluate_thresholds(
                similarities, dataset.gold_pairs, [t / 20 for t in range(8, 20)]
            )
            results[name] = best_f1(points).f1
        assert results["dirty"] < results["clean"]


class TestUnsoundClusterDetection:
    """The plausibility score must separate the simulator's NCID reuses."""

    def test_unsound_clusters_score_lower(self, simulator, generator):
        unsound = simulator.unsound_ncids
        assert unsound  # forced by the session config
        unsound_scores = []
        sound_scores = []
        for cluster in generator.clusters():
            if len(cluster["records"]) < 2:
                continue
            score = cluster_plausibility(cluster)
            if cluster["ncid"] in unsound:
                unsound_scores.append(score)
            else:
                sound_scores.append(score)
        if unsound_scores:  # reused NCIDs present in multi-record clusters
            mean = lambda xs: sum(xs) / len(xs)
            assert mean(unsound_scores) < mean(sound_scores)

    def test_overall_plausibility_shape_matches_paper(self, generator):
        # Figure 4a: mass concentrated at 1.0, thin low tail
        scores = [
            cluster_plausibility(cluster)
            for cluster in generator.clusters()
            if len(cluster["records"]) > 1
        ]
        at_one = sum(1 for s in scores if s >= 0.999)
        assert at_one / len(scores) > 0.5
        assert sum(scores) / len(scores) > 0.9


class TestPersistenceRoundTrip:
    def test_generated_dataset_survives_save_load(self, generator, tmp_path):
        generator.database.save(tmp_path)
        loaded = Database.load(tmp_path)
        clusters = loaded["clusters"]
        assert clusters.count_documents() == generator.cluster_count
        one = clusters.find_one({"ncid": {"$exists": True}})
        assert one["records"]

    def test_aggregation_pipeline_on_persisted_data(self, generator, tmp_path):
        generator.database.save(tmp_path)
        loaded = Database.load(tmp_path)
        result = loaded["clusters"].aggregate(
            [
                {"$addFields": {"size": {"$size": "$records"}}},
                {"$group": {"_id": None, "records": {"$sum": "$size"}, "clusters": {"$sum": 1}}},
            ]
        )
        assert result[0]["records"] == generator.record_count
        assert result[0]["clusters"] == generator.cluster_count


class TestScalabilityPath:
    """The import path must scale linearly (streaming, O(cluster) state)."""

    def test_throughput_smoke(self):
        import time

        config = SimulationConfig(initial_voters=800, years=3, seed=42)
        snapshots = list(VoterRegisterSimulator(config).run())
        total = sum(len(s) for s in snapshots)
        generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        start = time.time()
        generator.import_snapshots(snapshots)
        elapsed = time.time() - start
        rate = total / elapsed
        assert rate > 2000  # records per second, very conservative bound
