"""Integration: the TSV file path (the paper's actual input format)."""

import pytest

from repro.core import RemovalLevel, TestDataGenerator
from repro.votersim import (
    SimulationConfig,
    VoterRegisterSimulator,
    read_snapshot_tsv,
)


class TestTsvPipeline:
    @pytest.fixture(scope="class")
    def tsv_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("snapshots")
        config = SimulationConfig(initial_voters=100, years=3, seed=77)
        VoterRegisterSimulator(config).run_to_directory(directory)
        return directory

    def test_import_from_tsv_files(self, tsv_dir):
        generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        for path in sorted(tsv_dir.glob("*.tsv")):
            snapshot = read_snapshot_tsv(path)
            generator.import_snapshot(snapshot)
        assert generator.cluster_count >= 100
        assert generator.record_count >= generator.cluster_count

    def test_tsv_import_equals_in_memory_import(self, tsv_dir):
        config = SimulationConfig(initial_voters=100, years=3, seed=77)
        in_memory = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        in_memory.import_snapshots(VoterRegisterSimulator(config).run())

        from_tsv = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        for path in sorted(tsv_dir.glob("*.tsv")):
            from_tsv.import_snapshot(read_snapshot_tsv(path))

        assert from_tsv.record_count == in_memory.record_count
        assert from_tsv.cluster_count == in_memory.cluster_count
        assert from_tsv.duplicate_pair_count == in_memory.duplicate_pair_count

    def test_snapshot_dates_parse_from_file(self, tsv_dir):
        paths = sorted(tsv_dir.glob("*.tsv"))
        snapshot = read_snapshot_tsv(paths[0])
        assert snapshot.date.startswith("20")
        assert len(snapshot.date) == 10
