"""Tests for the command-line interface (full workflow on tmp dirs)."""

import csv

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """simulate + generate once; downstream commands reuse the store."""
    root = tmp_path_factory.mktemp("cli")
    snaps = root / "snaps"
    store = root / "store"
    assert main([
        "simulate", "--out", str(snaps), "--voters", "120", "--years", "3",
        "--seed", "3",
    ]) == 0
    assert main([
        "generate", "--snapshots", str(snaps), "--store", str(store),
    ]) == 0
    return root, snaps, store


class TestSimulate:
    def test_writes_tsvs(self, workspace):
        _root, snaps, _store = workspace
        paths = list(snaps.glob("*.tsv"))
        assert len(paths) == 6
        header = paths[0].read_text().splitlines()[0]
        assert header.startswith("ncid\t")


class TestGenerate:
    def test_store_created_with_collections(self, workspace):
        _root, _snaps, store = workspace
        assert (store / "manifest.json").exists()
        assert (store / "clusters.jsonl").exists()
        assert (store / "versions.jsonl").exists()
        assert (store / "import_stats.jsonl").exists()

    def test_removal_level_option(self, workspace, tmp_path):
        _root, snaps, _store = workspace
        person_store = tmp_path / "person-store"
        assert main([
            "generate", "--snapshots", str(snaps), "--store", str(person_store),
            "--removal", "person",
        ]) == 0
        trimmed_store = workspace[2]
        assert _store_records(person_store) < _store_records(trimmed_store)


class TestStats:
    def test_prints_summary(self, workspace, capsys):
        _root, _snaps, store = workspace
        assert main(["stats", "--store", str(store)]) == 0
        output = capsys.readouterr().out
        assert "clusters:" in output
        assert "version 1:" in output
        assert "new records" in output

    def test_empty_store_fails(self, tmp_path, capsys):
        from repro.docstore import Database

        empty = Database("empty")
        empty.create_collection("clusters")
        empty.create_collection("versions")
        empty.save(tmp_path / "empty")
        assert main(["stats", "--store", str(tmp_path / "empty")]) == 1


class TestCustomizeAndEvaluate:
    def test_round_trip(self, workspace, capsys):
        root, _snaps, store = workspace
        out = root / "nc.csv"
        assert main([
            "customize", "--store", str(store), "--out", str(out),
            "--h-lo", "0.0", "--h-hi", "0.6", "--clusters", "30",
        ]) == 0
        gold = out.with_suffix(".gold.csv")
        assert out.exists() and gold.exists()

        with out.open(newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0][:2] == ["record_id", "cluster_id"]
        assert len(rows) > 1

        capsys.readouterr()
        assert main(["evaluate", "--dataset", str(out)]) == 0
        output = capsys.readouterr().out
        assert "best F1" in output
        assert "ME/Lev" in output

    def test_invalid_range_rejected(self, workspace):
        root, _snaps, store = workspace
        with pytest.raises(ValueError):
            main([
                "customize", "--store", str(store),
                "--out", str(root / "x.csv"), "--h-lo", "0.9", "--h-hi", "0.1",
            ])


def _store_records(store) -> int:
    from repro.docstore import Database

    database = Database.load(store)
    result = database["clusters"].aggregate(
        [
            {"$addFields": {"size": {"$size": "$records"}}},
            {"$group": {"_id": None, "records": {"$sum": "$size"}}},
        ]
    )
    return result[0]["records"] if result else 0


class TestAugmentCommand:
    def test_augment_grows_store(self, workspace, capsys):
        root, _snaps, store = workspace
        before = _store_records(store)
        assert main([
            "augment", "--store", str(store), "--share", "1.0",
            "--duplicates", "1", "--seed", "5",
        ]) == 0
        output = capsys.readouterr().out
        assert "synthetic records" in output
        assert _store_records(store) > before

    def test_augmented_store_still_loads(self, workspace):
        _root, _snaps, store = workspace
        from repro.docstore import Database

        database = Database.load(store)
        synthetic = database["clusters"].aggregate(
            [
                {"$unwind": "$records"},
                {"$match": {"records.synthetic": True}},
                {"$count": "n"},
            ]
        )
        assert synthetic and synthetic[0]["n"] > 0


class TestRepairCommand:
    @pytest.fixture()
    def unsound_store(self, tmp_path):
        """A store containing one cluster with two different people."""
        from repro.core import RemovalLevel, TestDataGenerator
        from repro.votersim.schema import empty_record
        from repro.votersim.snapshots import Snapshot

        def rec(ncid, first, last, sex, age):
            record = empty_record()
            record.update(
                ncid=ncid, first_name=first, last_name=last,
                sex_code=sex, sex="", age=age, snapshot_dt="2012-01-01",
            )
            return record

        generator = TestDataGenerator(removal=RemovalLevel.TRIMMED)
        generator.import_snapshot(
            Snapshot("2012-01-01", [
                rec("X1", "MARY", "FIELDS", "F", "61"),
                rec("X1", "JOSHUA", "BETHEA", "M", "93"),
                rec("X2", "ANNA", "SMITH", "F", "30"),
                rec("X2", "ANNA", "SMYTH", "F", "31"),
            ])
        )
        generator.publish("fixture")
        store = tmp_path / "store"
        generator.database.save(store)
        return store

    def test_report_only(self, unsound_store, capsys):
        assert main(["repair", "--store", str(unsound_store)]) == 0
        output = capsys.readouterr().out
        assert "X1" in output
        assert "split into 2 groups" in output
        assert "X2" not in output  # sound cluster not reported

    def test_apply_splits_store(self, unsound_store, capsys):
        assert main([
            "repair", "--store", str(unsound_store), "--apply",
        ]) == 0
        from repro.docstore import Database

        database = Database.load(unsound_store)
        ids = {doc["_id"] for doc in database["clusters"].all()}
        assert "X1" not in ids
        assert {"X1/0", "X1/1", "X2"} <= ids


class TestValidateCommand:
    def test_sound_store_passes(self, workspace, capsys):
        _root, _snaps, store = workspace
        assert main(["validate", "--store", str(store)]) == 0
        assert "store is sound" in capsys.readouterr().out

    def test_tampered_store_fails(self, workspace, tmp_path, capsys):
        _root, snaps, _store = workspace
        tampered = tmp_path / "tampered"
        assert main([
            "generate", "--snapshots", str(snaps), "--store", str(tampered),
        ]) == 0
        from repro.docstore import Database

        database = Database.load(tampered)
        first = database["clusters"].find_one({})
        database["clusters"].update_one(
            {"_id": first["_id"]},
            {"$set": {"records.0.person.last_name": "TAMPERED"}},
        )
        database.save(tampered)
        capsys.readouterr()
        assert main(["validate", "--store", str(tampered)]) == 1
        assert "VIOLATION" in capsys.readouterr().out


class TestDurableGenerate:
    def test_durable_store_has_wal_and_epoch(self, workspace, tmp_path, capsys):
        _root, snaps, _store = workspace
        store = tmp_path / "durable"
        assert main([
            "generate", "--snapshots", str(snaps), "--store", str(store),
            "--durable",
        ]) == 0
        assert (store / "COMMITTED").exists()
        assert (store / "clusters.wal").exists()
        assert (store / "manifest.json").exists()
        assert "published version" in capsys.readouterr().out

    def test_rerun_resumes_without_reimporting(self, workspace, tmp_path, capsys):
        _root, snaps, _store = workspace
        store = tmp_path / "durable"
        assert main([
            "generate", "--snapshots", str(snaps), "--store", str(store),
            "--durable",
        ]) == 0
        capsys.readouterr()
        assert main([
            "generate", "--snapshots", str(snaps), "--store", str(store),
            "--durable",
        ]) == 0
        output = capsys.readouterr().out
        assert "already committed" in output

    def test_durable_matches_plain_generate(self, workspace, tmp_path):
        _root, snaps, _store = workspace
        durable = tmp_path / "durable"
        plain = tmp_path / "plain"
        assert main([
            "generate", "--snapshots", str(snaps), "--store", str(durable),
            "--durable",
        ]) == 0
        assert main([
            "generate", "--snapshots", str(snaps), "--store", str(plain),
        ]) == 0
        assert _store_records(durable) == _store_records(plain)


class TestScrubCommand:
    @pytest.fixture()
    def durable_store(self, workspace, tmp_path):
        _root, snaps, _store = workspace
        store = tmp_path / "durable"
        assert main([
            "generate", "--snapshots", str(snaps), "--store", str(store),
            "--durable",
        ]) == 0
        return store

    def test_clean_store_exits_zero(self, durable_store, capsys):
        assert main(["scrub", "--store", str(durable_store)]) == 0
        output = capsys.readouterr().out
        assert "no problems found" in output
        assert "committed epoch" in output

    def test_missing_store_exits_one(self, tmp_path, capsys):
        assert main(["scrub", "--store", str(tmp_path / "nowhere")]) == 1
        assert "unscannable" in capsys.readouterr().out

    def test_corruption_detected_repaired_then_clean(self, durable_store, capsys):
        snapshot = durable_store / "clusters.jsonl"
        snapshot.write_text(snapshot.read_text().replace('"', "X", 1))
        assert main(["scrub", "--store", str(durable_store)]) == 1
        output = capsys.readouterr().out
        assert "snapshot-checksum" in output
        assert "snapshot-parse" in output
        assert "--repair" in output  # the hint
        assert main(["scrub", "--store", str(durable_store), "--repair"]) == 2
        output = capsys.readouterr().out
        assert "post-repair scrub" in output
        assert main(["scrub", "--store", str(durable_store)]) == 0

    def test_json_report_written(self, durable_store, tmp_path, capsys):
        out = tmp_path / "scrub.json"
        assert main([
            "scrub", "--store", str(durable_store), "--json", str(out),
        ]) == 0
        import json

        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert payload["findings"] == []

    def test_stats_on_damaged_store_exits_one(self, durable_store, capsys):
        snapshot = durable_store / "clusters.jsonl"
        snapshot.write_text(snapshot.read_text().replace('"', "X", 1))
        assert main(["stats", "--store", str(durable_store)]) == 1
        output = capsys.readouterr().out
        assert "store is damaged" in output
        assert "--repair" in output

    def test_layout_prints_resilience_counters(self, workspace, capsys):
        _root, _snaps, store = workspace
        assert main(["stats", "--store", str(store), "--layout"]) == 0
        output = capsys.readouterr().out
        assert "resilience:" in output
        assert "degraded_reads" in output
        assert "quarantined_shards" in output


class TestRecoverCommand:
    def test_clean_store_exits_zero(self, workspace, capsys):
        _root, _snaps, store = workspace
        assert main(["recover", "--store", str(store)]) == 0
        output = capsys.readouterr().out
        assert "committed epoch" in output
        assert "recovered state" in output

    def test_corrupt_snapshot_without_repair_fails(self, workspace, tmp_path, capsys):
        _root, snaps, _store = workspace
        store = tmp_path / "broken"
        assert main([
            "generate", "--snapshots", str(snaps), "--store", str(store),
        ]) == 0
        path = store / "clusters.jsonl"
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:12]
        path.write_text("\n".join(lines) + "\n")
        capsys.readouterr()
        assert main(["recover", "--store", str(store)]) == 1
        assert "unrecoverable" in capsys.readouterr().out

    def test_repair_salvages_and_rewrites(self, workspace, tmp_path, capsys):
        _root, snaps, _store = workspace
        store = tmp_path / "salvage"
        assert main([
            "generate", "--snapshots", str(snaps), "--store", str(store),
        ]) == 0
        path = store / "clusters.jsonl"
        lines = path.read_text().splitlines()
        before = len(lines)
        lines[0] = lines[0][:12]
        path.write_text("\n".join(lines) + "\n")
        capsys.readouterr()
        assert main(["recover", "--store", str(store), "--repair"]) == 2
        output = capsys.readouterr().out
        assert "salvaged" in output
        assert "rewritten" in output
        # The rewritten store loads cleanly with one cluster dropped.
        assert main(["recover", "--store", str(store)]) == 0
        from repro.docstore import Database

        salvaged = Database.load(store)
        assert salvaged["clusters"].count_documents() == before - 1
