"""MinHash–LSH candidate generation against the exact shingle oracle.

:mod:`repro.dedup.lsh` is *approximate* by design — a pair is a candidate
iff at least one band of MinHash rows collides — so unlike the SNM suite
this one cannot assert set equality with a naive implementation.  What it
pins down instead:

* shingling is bit-identical to the naive oracle
  (:func:`repro.dedup._reference.shingle_set_reference`), so the
  probabilistic machinery sits on an exactly-reproducible base;
* every emitted candidate is *justified*: canonical ``i < j`` packed
  keys whose signatures really collide on a band
  (:func:`repro.dedup.lsh.lsh_band_collisions`) — candidates are never
  an implementation accident;
* identical pairs (exact Jaccard 1.0) are always found — the floor of
  the S-curve guarantee;
* recall against the exact shingle-Jaccard oracle clears a configured
  floor on a fixed typo'd register (deterministic, seeded);
* signatures and candidate sets are bit-identical across every
  ``(workers, shards)`` configuration
  (:func:`repro.sanitizers.determinism_check` at (1,1)/(2,4)/(4,8)) and
  stable under the seed: same seed → same signatures, different seed →
  (on real data) different permutations.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dedup import _reference as ref
from repro.dedup import (
    estimate_jaccard,
    iter_lsh_keys,
    lsh_band_collisions,
    lsh_candidates,
    minhash_signatures,
    shingle_record,
    unpack_pair,
)
from repro.dedup.lsh import BucketStats
from repro.sanitizers import determinism_check

ATTRIBUTES = ("first_name", "midl_name", "last_name", "city", "zip")

# Tiny alphabets force shared shingles, signature collisions and bucket
# pile-ups far more often than realistic text would.
value = st.text(alphabet=string.ascii_uppercase[:4] + " ", max_size=6)
record = st.fixed_dictionaries({attribute: value for attribute in ATTRIBUTES})
records_strategy = st.lists(record, min_size=1, max_size=16)
geometry = st.tuples(st.integers(1, 6), st.integers(1, 3))  # (bands, rows)


class TestShingleOracle:
    @given(record, st.integers(1, 4))
    @settings(max_examples=150, deadline=None)
    def test_shingles_equal_naive_reference(self, rec, ngram):
        oracle = ref.shingle_set_reference(rec, ATTRIBUTES, ngram)
        fast_path = shingle_record(rec, ATTRIBUTES, ngram)
        assert set(fast_path) == oracle
        assert list(fast_path) == sorted(oracle)

    @given(record, record)
    @settings(max_examples=100, deadline=None)
    def test_jaccard_reference_bounds(self, left, right):
        left_set = ref.shingle_set_reference(left, ATTRIBUTES)
        right_set = ref.shingle_set_reference(right, ATTRIBUTES)
        similarity = ref.shingle_jaccard_reference(left_set, right_set)
        assert 0.0 <= similarity <= 1.0
        if left_set:
            assert ref.shingle_jaccard_reference(left_set, left_set) == 1.0


class TestCandidatesJustified:
    @given(records_strategy, geometry)
    @settings(max_examples=100, deadline=None)
    def test_every_candidate_has_a_band_collision(self, records, shape):
        bands, rows = shape
        record_count = len(records)
        signatures = minhash_signatures(
            records, ATTRIBUTES, bands=bands, rows=rows
        )
        keys, _stats = lsh_candidates(
            records, ATTRIBUTES, bands=bands, rows=rows
        )
        for key in keys:
            left, right = unpack_pair(key, record_count)
            assert 0 <= left < right < record_count
            assert lsh_band_collisions(
                signatures[left], signatures[right], bands=bands, rows=rows
            )

    @given(records_strategy, geometry)
    @settings(max_examples=100, deadline=None)
    def test_every_unskipped_collision_is_emitted(self, records, shape):
        # The converse: with no bucket cap in play, a band collision
        # *must* produce the candidate — LSH ⊇ colliding pairs.
        bands, rows = shape
        record_count = len(records)
        signatures = minhash_signatures(
            records, ATTRIBUTES, bands=bands, rows=rows
        )
        keys, _stats = lsh_candidates(
            records,
            ATTRIBUTES,
            bands=bands,
            rows=rows,
            max_bucket_size=record_count + 1,
        )
        for right in range(record_count):
            for left in range(right):
                if lsh_band_collisions(
                    signatures[left], signatures[right], bands=bands, rows=rows
                ):
                    assert left * record_count + right in keys

    @given(records_strategy)
    @settings(max_examples=100, deadline=None)
    def test_identical_records_always_collide(self, records):
        # Exact duplicates share every shingle, hence every minimum:
        # the S-curve floor at j = 1.0 is certainty.
        doubled = list(records) + [dict(records[0])]
        record_count = len(doubled)
        if not shingle_record(doubled[0], ATTRIBUTES, 3):
            return  # all-empty record shingles nothing, buckets nowhere
        keys, _stats = lsh_candidates(
            doubled, ATTRIBUTES, max_bucket_size=record_count + 1
        )
        assert 0 * record_count + (record_count - 1) in keys

    @given(records_strategy, geometry)
    @settings(max_examples=50, deadline=None)
    def test_bucket_accounting_balances(self, records, shape):
        bands, rows = shape
        signatures = minhash_signatures(
            records, ATTRIBUTES, bands=bands, rows=rows
        )
        stats = BucketStats()
        emitted = list(
            iter_lsh_keys(
                signatures,
                len(records),
                bands=bands,
                rows=rows,
                max_bucket_size=3,
                stats=stats,
            )
        )
        assert stats.pairs_emitted == len(emitted)
        assert stats.records_bucketed == sum(
            size * count for size, count in stats.histogram()
        )
        assert stats.buckets_total == sum(
            count for _size, count in stats.histogram()
        )
        signed = sum(1 for s in signatures if s is not None)
        assert stats.records_bucketed == signed * bands
        # no silent truncation: skipped buckets are counted, and their
        # would-have-been pairs land in pairs_dropped
        oversized = sum(
            count for size, count in stats.histogram() if size > 3
        )
        assert stats.buckets_skipped == oversized
        assert stats.pairs_dropped == sum(
            size * (size - 1) // 2 * count
            for size, count in stats.histogram()
            if size > 3
        )


class TestDeterminism:
    def _register(self):
        # A fixed register with repeated families and small typos —
        # enough shared shingles to make buckets non-trivial.
        base = [
            ("JOHN", "Q", "SMITH", "DURHAM", "27701"),
            ("JON", "Q", "SMITH", "DURHAM", "27701"),
            ("MARY", "LOU", "JONES", "RALEIGH", "27601"),
            ("MARY", "LOU", "JNOES", "RALEIGH", "27601"),
            ("ALAN", "", "BECK", "CARY", "27511"),
            ("ALLAN", "", "BECK", "CARY", "27511"),
            ("RUTH", "ANN", "MOORE", "APEX", "27502"),
            ("RUTH", "AN", "MORE", "APEX", "27502"),
        ]
        return [
            dict(zip(ATTRIBUTES, values)) for values in base * 4
        ]

    def test_signatures_identical_across_worker_configs(self):
        records = self._register()
        report = determinism_check(
            lambda workers, shards: minhash_signatures(
                records, ATTRIBUTES, shards=shards, max_workers=workers
            ),
            label="minhash signatures",
        )
        assert report.consistent

    def test_candidates_identical_across_worker_configs(self):
        records = self._register()
        report = determinism_check(
            lambda workers, shards: (
                lsh_candidates(
                    records,
                    ATTRIBUTES,
                    cosine_floor=0.2,
                    shards=shards,
                    max_workers=workers,
                )[0]
            ),
            label="lsh candidates",
        )
        assert report.consistent

    def test_seed_stability(self):
        records = self._register()
        first = minhash_signatures(records, ATTRIBUTES, seed=7)
        again = minhash_signatures(records, ATTRIBUTES, seed=7)
        other = minhash_signatures(records, ATTRIBUTES, seed=8)
        assert first == again
        assert first != other  # 64 independent minima colliding is ~impossible

    def test_signatures_are_process_independent(self):
        # blake2b + seeded permutations: nothing may depend on
        # PYTHONHASHSEED.  Spot-check a known value so a silent switch
        # to the salted builtin hash() cannot sneak in.
        signature = minhash_signatures(
            [dict(zip(ATTRIBUTES, ("JOHN", "Q", "SMITH", "DURHAM", "27701")))],
            ATTRIBUTES,
            bands=1,
            rows=2,
            seed=20210323,
        )[0]
        assert signature == minhash_signatures(
            [dict(zip(ATTRIBUTES, ("JOHN", "Q", "SMITH", "DURHAM", "27701")))],
            ATTRIBUTES,
            bands=1,
            rows=2,
            seed=20210323,
        )[0]
        assert all(0 <= minimum < (1 << 61) - 1 for minimum in signature)


class TestRecallFloor:
    #: Jaccard level the oracle considers "a near-duplicate", and the
    #: recall the default 16x4 geometry must reach there (its S-curve
    #: gives p ≈ 0.90 per pair at j = 0.6; the register below sits well
    #: above that, so 0.9 leaves margin without flaking).
    ORACLE_THRESHOLD = 0.6
    RECALL_FLOOR = 0.9

    def _typo_register(self):
        # 40 distinct voters, each with one typo'd duplicate: a
        # character swap, drop or double — high shingle overlap, exactly
        # the pairs SNM loses when the sort key is corrupted.
        import random

        rng = random.Random(20210323)
        firsts = ["JOHN", "MARY", "ALAN", "RUTH", "CARL", "LISA", "OMAR", "VERA"]
        lasts = ["SMITH", "JONES", "BECKER", "MOORE", "PRICE"]
        records = []
        for index in range(40):
            first = firsts[index % len(firsts)]
            last = lasts[index % len(lasts)]
            rec = {
                "first_name": first,
                "midl_name": string.ascii_uppercase[index % 26],
                "last_name": last,
                "city": f"CITY{index:02d}",
                "zip": f"27{index:03d}",
            }
            dup = dict(rec)
            victim = "first_name" if index % 2 else "last_name"
            text = dup[victim]
            position = rng.randrange(len(text) - 1)
            if index % 3 == 0:  # swap
                swapped = (
                    text[:position]
                    + text[position + 1]
                    + text[position]
                    + text[position + 2 :]
                )
                dup[victim] = swapped
            elif index % 3 == 1:  # drop
                dup[victim] = text[:position] + text[position + 1 :]
            else:  # double
                dup[victim] = text[:position] + text[position] + text[position:]
            records.append(rec)
            records.append(dup)
        return records

    def test_lsh_recall_vs_exact_jaccard_oracle(self):
        records = self._typo_register()
        oracle = ref.allpairs_shingle_jaccard_reference(
            records, ATTRIBUTES, threshold=self.ORACLE_THRESHOLD
        )
        assert oracle, "oracle found no near-duplicates; register is broken"
        keys, _stats = lsh_candidates(records, ATTRIBUTES)
        record_count = len(records)
        found = sum(
            1
            for left, right in oracle
            if left * record_count + right in keys
        )
        recall = found / len(oracle)
        assert recall >= self.RECALL_FLOOR, (
            f"LSH recall {recall:.3f} below floor {self.RECALL_FLOOR} "
            f"({found}/{len(oracle)} oracle pairs)"
        )

    def test_estimate_tracks_exact_jaccard(self):
        records = self._typo_register()
        signatures = minhash_signatures(records, ATTRIBUTES)
        shingles = [
            ref.shingle_set_reference(record, ATTRIBUTES) for record in records
        ]
        # typo'd duplicates sit at even/odd index pairs
        errors = []
        for index in range(0, len(records), 2):
            exact = ref.shingle_jaccard_reference(
                shingles[index], shingles[index + 1]
            )
            estimate = estimate_jaccard(signatures[index], signatures[index + 1])
            errors.append(abs(exact - estimate))
        # 64 permutations: standard error ~ sqrt(j(1-j)/64) < 0.0625
        assert sum(errors) / len(errors) < 0.15
