"""Tests for threshold sweeps and P/R/F1."""

import pytest

from repro.dedup import (
    EvaluationPoint,
    best_f1,
    confusion_counts,
    evaluate_thresholds,
    f1_score,
    precision_recall_f1,
    score_candidates,
)


class TestBasicMetrics:
    def test_confusion_counts(self):
        predicted = {(0, 1), (0, 2), (3, 4)}
        gold = {(0, 1), (3, 4), (5, 6)}
        assert confusion_counts(predicted, gold) == (2, 1, 1)

    def test_precision_recall_f1(self):
        predicted = {(0, 1), (0, 2)}
        gold = {(0, 1)}
        precision, recall, f1 = precision_recall_f1(predicted, gold)
        assert precision == 0.5
        assert recall == 1.0
        assert f1 == pytest.approx(2 / 3)

    def test_empty_prediction_has_precision_one(self):
        precision, recall, f1 = precision_recall_f1(set(), {(0, 1)})
        assert precision == 1.0
        assert recall == 0.0
        assert f1 == 0.0

    def test_f1_score_helper(self):
        assert f1_score(1.0, 1.0) == 1.0
        assert f1_score(0.0, 0.0) == 0.0
        assert f1_score(0.5, 1.0) == pytest.approx(2 / 3)

    def test_evaluation_point_properties(self):
        point = EvaluationPoint(0.5, true_positives=8, false_positives=2, false_negatives=2)
        assert point.precision == 0.8
        assert point.recall == 0.8
        assert point.f1 == pytest.approx(0.8)


class TestScoreCandidates:
    def test_scores_each_pair_once(self):
        records = [{"v": "A"}, {"v": "A"}, {"v": "B"}]
        similarities = score_candidates(
            records, [(0, 1), (0, 2)], lambda l, r: 1.0 if l == r else 0.0
        )
        assert similarities == {(0, 1): 1.0, (0, 2): 0.0}


class TestEvaluateThresholds:
    def sweep(self):
        similarities = {
            (0, 1): 0.9,  # gold
            (0, 2): 0.8,  # not gold
            (1, 2): 0.6,  # gold
            (3, 4): 0.2,  # not gold
        }
        gold = {(0, 1), (1, 2), (5, 6)}
        return evaluate_thresholds(similarities, gold, [0.1, 0.5, 0.7, 0.95])

    def test_points_in_threshold_order(self):
        points = self.sweep()
        assert [p.threshold for p in points] == [0.1, 0.5, 0.7, 0.95]

    def test_low_threshold_high_recall(self):
        points = self.sweep()
        low = points[0]
        assert low.true_positives == 2
        assert low.false_positives == 2
        assert low.false_negatives == 1  # the never-scored gold pair (5, 6)

    def test_high_threshold_high_precision(self):
        points = self.sweep()
        high = points[-1]
        assert high.true_positives == 0
        assert high.false_positives == 0

    def test_mid_threshold(self):
        points = self.sweep()
        mid = points[1]  # 0.5
        assert mid.true_positives == 2
        assert mid.false_positives == 1

    def test_unscored_gold_pairs_count_as_false_negatives(self):
        # blocking losses are charged against recall, as in the paper
        points = evaluate_thresholds({}, {(0, 1)}, [0.5])
        assert points[0].false_negatives == 1
        assert points[0].recall == 0.0

    def test_monotone_recall_decreasing_in_threshold(self):
        points = self.sweep()
        recalls = [p.recall for p in points]
        assert recalls == sorted(recalls, reverse=True)

    def test_pair_on_threshold_boundary_included(self):
        points = evaluate_thresholds({(0, 1): 0.5}, {(0, 1)}, [0.5])
        assert points[0].true_positives == 1


class TestBestF1:
    def test_picks_maximum(self):
        points = [
            EvaluationPoint(0.3, 5, 5, 0),
            EvaluationPoint(0.5, 5, 1, 0),
            EvaluationPoint(0.7, 2, 0, 3),
        ]
        assert best_f1(points).threshold == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            best_f1([])
