"""The shared matcher cache is process-local (the R106 registry invariant).

``repro.dedup.matching._SHARED_CACHE`` is registered in
:data:`repro.analysis.concurrency.PROCESS_LOCAL_CACHES` on the promise
that worker processes never ship cached state back to the parent and that
per-matcher tokens keep independent matchers from colliding.  This module
is the test the registry entry cites.
"""

from repro.dedup import matching
from repro.core.parallel import run_shards


def _seed_worker_cache(marker):
    """Worker: mutate the (worker-side) shared cache, report its state."""
    key = ("cache-isolation", marker)
    matching._SHARED_CACHE.put(key, marker)
    return marker, key in matching._SHARED_CACHE


def _quarter(left, right):
    return 0.25


def _three_quarters(left, right):
    return 0.75


class TestProcessIsolation:
    def test_worker_cache_writes_never_reach_the_parent(self):
        markers = [101, 102, 103, 104]
        results = run_shards(
            _seed_worker_cache, [(m,) for m in markers], max_workers=2
        )
        # Every worker saw its own write ...
        assert results == [(m, True) for m in markers]
        # ... and none of them leaked into this process's cache.
        for marker in markers:
            assert ("cache-isolation", marker) not in matching._SHARED_CACHE

    def test_in_process_fallback_shares_the_process_cache(self):
        # max_workers=0 runs shards in-process: "process-local" then means
        # *this* process, so the write is (correctly) visible here.
        marker = 990001
        try:
            results = run_shards(
                _seed_worker_cache, [(marker,)], max_workers=0
            )
            assert results == [(marker, True)]
            assert ("cache-isolation", marker) in matching._SHARED_CACHE
        finally:
            matching._SHARED_CACHE.clear()


class TestTokenNamespacing:
    def test_matchers_get_distinct_tokens(self):
        left = matching.RecordMatcher(_quarter, {"a": 1.0})
        right = matching.RecordMatcher(_three_quarters, {"a": 1.0})
        assert left._cache_token != right._cache_token

    def test_equal_value_pairs_do_not_collide_across_matchers(self):
        left = matching.RecordMatcher(_quarter, {"a": 1.0})
        right = matching.RecordMatcher(_three_quarters, {"a": 1.0})
        # Same value pair, different measures: a shared un-namespaced cache
        # would hand the second matcher the first matcher's score.
        assert left._value_similarity("alpha", "beta") == 0.25
        assert right._value_similarity("alpha", "beta") == 0.75
        # Cached lookups keep returning each matcher's own result.
        assert left._value_similarity("alpha", "beta") == 0.25
        assert right._value_similarity("alpha", "beta") == 0.75

    def test_cache_is_bounded(self):
        assert matching._SHARED_CACHE.maxsize == 131072
