"""Tests for the record matcher (weighted attribute average + name 1:1)."""

import pytest

from repro.dedup import RecordMatcher
from repro.textsim import MongeElkan, jaro_winkler


def exact(left, right):
    return 1.0 if left == right else 0.0


class TestRecordMatcher:
    def test_identical_records(self):
        matcher = RecordMatcher(exact, {"a": 0.5, "b": 0.5}, name_attributes=())
        record = {"a": "X", "b": "Y"}
        assert matcher.similarity(record, record) == 1.0

    def test_weighted_average(self):
        matcher = RecordMatcher(exact, {"a": 0.75, "b": 0.25}, name_attributes=())
        left = {"a": "X", "b": "Y"}
        right = {"a": "X", "b": "DIFFERENT"}
        assert matcher.similarity(left, right) == pytest.approx(0.75)

    def test_weights_normalised_internally(self):
        matcher = RecordMatcher(exact, {"a": 3.0, "b": 1.0}, name_attributes=())
        left = {"a": "X", "b": "Y"}
        right = {"a": "X", "b": "Z"}
        assert matcher.similarity(left, right) == pytest.approx(0.75)

    def test_name_confusion_fixed_by_permutation_matching(self):
        weights = {"first_name": 0.4, "midl_name": 0.2, "last_name": 0.4}
        matcher = RecordMatcher(exact, weights)
        left = {"first_name": "JOSE", "midl_name": "JUAN", "last_name": "GARCIA"}
        right = {"first_name": "JUAN", "midl_name": "JOSE", "last_name": "GARCIA"}
        assert matcher.similarity(left, right) == 1.0

    def test_permutation_disabled_penalises_confusion(self):
        weights = {"first_name": 0.4, "midl_name": 0.2, "last_name": 0.4}
        matcher = RecordMatcher(exact, weights, name_attributes=())
        left = {"first_name": "JOSE", "midl_name": "JUAN", "last_name": "GARCIA"}
        right = {"first_name": "JUAN", "midl_name": "JOSE", "last_name": "GARCIA"}
        assert matcher.similarity(left, right) == pytest.approx(0.4)

    def test_name_attributes_outside_weights_ignored(self):
        matcher = RecordMatcher(exact, {"a": 1.0}, name_attributes=("first_name",))
        assert matcher.name_attributes == ()

    def test_missing_values_compared_as_empty(self):
        matcher = RecordMatcher(exact, {"a": 1.0}, name_attributes=())
        assert matcher.similarity({}, {}) == 1.0
        assert matcher.similarity({"a": "X"}, {}) == 0.0

    def test_values_trimmed_before_comparison(self):
        matcher = RecordMatcher(exact, {"a": 1.0}, name_attributes=())
        assert matcher.similarity({"a": " X "}, {"a": "X"}) == 1.0

    def test_from_records_entropy_weighting(self):
        records = [{"id": str(i), "const": "K"} for i in range(10)]
        matcher = RecordMatcher.from_records(records, ("id", "const"), exact, ())
        # zero-entropy attribute carries no weight
        left = dict(records[0])
        right = dict(records[0], const="DIFFERENT")
        assert matcher.similarity(left, right) == 1.0

    def test_works_with_measure_objects(self):
        matcher = RecordMatcher(MongeElkan(), {"name": 1.0}, name_attributes=())
        score = matcher.similarity({"name": "JOSE JUAN"}, {"name": "JUAN JOSE"})
        assert score == 1.0

    def test_works_with_plain_functions(self):
        matcher = RecordMatcher(jaro_winkler, {"name": 1.0}, name_attributes=())
        assert matcher.similarity({"name": "MARTHA"}, {"name": "MARHTA"}) == (
            pytest.approx(0.9611, abs=1e-4)
        )

    def test_result_cached_across_calls(self):
        calls = []

        def counting(left, right):
            calls.append((left, right))
            return 0.5

        matcher = RecordMatcher(counting, {"a": 1.0}, name_attributes=())
        matcher.similarity({"a": "X"}, {"a": "Y"})
        matcher.similarity({"a": "Y"}, {"a": "X"})  # symmetric -> cached
        assert len(calls) == 1

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            RecordMatcher(exact, {})

    def test_callable_interface(self):
        matcher = RecordMatcher(exact, {"a": 1.0}, name_attributes=())
        assert matcher({"a": "X"}, {"a": "X"}) == 1.0
