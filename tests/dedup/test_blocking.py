"""Tests for Sorted Neighborhood blocking."""

import pytest

from repro.dedup import (
    SortedNeighborhood,
    multipass_sorted_neighborhood,
    pick_blocking_keys,
)


RECORDS = [
    {"last_name": "ADAMS", "zip": "27601"},
    {"last_name": "ADAMSON", "zip": "27601"},
    {"last_name": "BAKER", "zip": "28801"},
    {"last_name": "BAKKER", "zip": "28801"},
    {"last_name": "YOUNG", "zip": "27601"},
]


class TestPickBlockingKeys:
    def test_most_unique_first(self):
        records = [{"id": str(i), "const": "X"} for i in range(10)]
        keys = pick_blocking_keys(records, ("const", "id"), count=1)
        assert keys == ["id"]

    def test_count_respected(self):
        keys = pick_blocking_keys(RECORDS, ("last_name", "zip"), count=2)
        assert len(keys) == 2

    def test_deterministic_tie_break(self):
        records = [{"a": str(i), "b": str(i)} for i in range(5)]
        assert pick_blocking_keys(records, ("b", "a"), count=1) == ["a"]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            pick_blocking_keys(RECORDS, ("zip",), count=0)


class TestSortedNeighborhood:
    def test_window_two_links_sorted_neighbours(self):
        pass_ = SortedNeighborhood("last_name", window=2)
        pairs = pass_.candidates(RECORDS)
        assert (0, 1) in pairs  # ADAMS / ADAMSON adjacent
        assert (2, 3) in pairs  # BAKER / BAKKER adjacent
        assert (0, 4) not in pairs  # ADAMS / YOUNG far apart

    def test_pairs_normalised(self):
        pairs = SortedNeighborhood("last_name", window=3).candidates(RECORDS)
        assert all(i < j for i, j in pairs)

    def test_window_covers_everything_when_large(self):
        pairs = SortedNeighborhood("last_name", window=50).candidates(RECORDS)
        assert len(pairs) == 10  # C(5, 2)

    def test_candidate_count_bounded_by_window(self):
        pass_ = SortedNeighborhood("last_name", window=2)
        pairs = pass_.candidates(RECORDS)
        assert len(pairs) <= len(RECORDS) * 1  # w-1 per record

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SortedNeighborhood("x", window=1)

    def test_empty_records(self):
        assert SortedNeighborhood("x", window=5).candidates([]) == set()


class TestMultipass:
    def test_union_of_passes(self):
        single_name = SortedNeighborhood("last_name", 2).candidates(RECORDS)
        single_zip = SortedNeighborhood("zip", 2).candidates(RECORDS)
        multi = multipass_sorted_neighborhood(RECORDS, ["last_name", "zip"], 2)
        assert multi == single_name | single_zip

    def test_multipass_recovers_pairs_single_pass_misses(self):
        # ADAMS and YOUNG share a zip but sort far apart by name
        multi = multipass_sorted_neighborhood(RECORDS, ["last_name", "zip"], 2)
        zip_sorted_only = multipass_sorted_neighborhood(RECORDS, ["zip"], 2)
        name_sorted_only = multipass_sorted_neighborhood(RECORDS, ["last_name"], 2)
        assert multi >= zip_sorted_only
        assert multi >= name_sorted_only

    def test_no_passes_yields_nothing(self):
        assert multipass_sorted_neighborhood(RECORDS, [], 5) == set()
