"""Tests for the clustering step (transitive closure + metrics)."""

import pytest

from repro.dedup.clustering import (
    closure_pair_metrics,
    cluster_metrics,
    clusters_from_labels,
    connected_components,
    pairs_of_clusters,
)


class TestConnectedComponents:
    def test_no_pairs_all_singletons(self):
        assert connected_components([], 3) == [[0], [1], [2]]

    def test_single_pair(self):
        assert connected_components([(0, 2)], 3) == [[0, 2], [1]]

    def test_transitive_chain(self):
        components = connected_components([(0, 1), (1, 2), (3, 4)], 5)
        assert components == [[0, 1, 2], [3, 4]]

    def test_duplicate_pairs_idempotent(self):
        components = connected_components([(0, 1), (0, 1), (1, 0)], 2)
        assert components == [[0, 1]]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            connected_components([(0, 5)], 3)

    def test_zero_records(self):
        assert connected_components([], 0) == []


class TestPairsOfClusters:
    def test_pairs(self):
        assert pairs_of_clusters([[0, 1, 2], [3]]) == {(0, 1), (0, 2), (1, 2)}

    def test_unsorted_members_normalised(self):
        assert pairs_of_clusters([[2, 0]]) == {(0, 2)}


class TestClosurePairMetrics:
    def test_closure_recovers_implied_pair(self):
        # predicted (0,1) and (1,2); closure implies (0,2), which is gold
        gold = {(0, 1), (1, 2), (0, 2)}
        precision, recall, f1 = closure_pair_metrics({(0, 1), (1, 2)}, gold, 3)
        assert precision == 1.0
        assert recall == 1.0
        assert f1 == 1.0

    def test_closure_propagates_errors(self):
        # one wrong bridge merges two gold clusters -> implied false pairs
        gold = {(0, 1), (2, 3)}
        predicted = {(0, 1), (2, 3), (1, 2)}  # (1,2) is wrong
        precision, recall, _ = closure_pair_metrics(predicted, gold, 4)
        assert recall == 1.0
        assert precision == pytest.approx(2 / 6)

    def test_empty_prediction(self):
        precision, recall, f1 = closure_pair_metrics(set(), {(0, 1)}, 2)
        assert precision == 1.0
        assert recall == 0.0
        assert f1 == 0.0


class TestClusterMetrics:
    def test_perfect_match(self):
        clusters = [[0, 1], [2]]
        assert cluster_metrics(clusters, clusters) == (1.0, 1.0, 1.0)

    def test_partial_match(self):
        predicted = [[0, 1], [2], [3]]
        gold = [[0, 1], [2, 3]]
        precision, recall, f1 = cluster_metrics(predicted, gold)
        assert precision == pytest.approx(1 / 3)
        assert recall == pytest.approx(1 / 2)

    def test_order_insensitive(self):
        assert cluster_metrics([[1, 0]], [[0, 1]]) == (1.0, 1.0, 1.0)

    def test_empty_both(self):
        assert cluster_metrics([], []) == (1.0, 1.0, 1.0)


class TestClustersFromLabels:
    def test_groups_by_label(self):
        assert clusters_from_labels(["a", "b", "a"]) == [[0, 2], [1]]

    def test_empty(self):
        assert clusters_from_labels([]) == []


class TestEndToEndClustering:
    def test_pipeline_on_customised_dataset(self, generator):
        from repro.core import customize
        from repro.core.heterogeneity import HeterogeneityScorer
        from repro.dedup import (
            RecordMatcher,
            multipass_sorted_neighborhood,
            pick_blocking_keys,
            score_candidates,
        )
        from repro.textsim import MongeElkan
        from repro.votersim.schema import PERSON_ATTRIBUTES

        attributes = tuple(a for a in PERSON_ATTRIBUTES if a != "ncid")
        scorer = HeterogeneityScorer.from_clusters(
            generator.clusters(), ("person",), attributes
        )
        dataset = customize(
            generator, 0.0, 0.25, target_clusters=30, scorer=scorer
        )
        matcher = RecordMatcher.from_records(dataset.records, attributes, MongeElkan())
        keys = pick_blocking_keys(dataset.records, attributes, 5)
        candidates = multipass_sorted_neighborhood(dataset.records, keys, 20)
        similarities = score_candidates(dataset.records, candidates, matcher)
        predicted_pairs = {
            pair for pair, score in similarities.items() if score >= 0.6
        }
        predicted = connected_components(predicted_pairs, len(dataset.records))
        gold = clusters_from_labels(dataset.cluster_of)
        _precision, recall, f1 = cluster_metrics(predicted, gold)
        assert f1 > 0.5  # clean data: most clusters reconstructed exactly
        _p, closure_recall, _f = closure_pair_metrics(
            predicted_pairs, dataset.gold_pairs, len(dataset.records)
        )
        assert closure_recall >= 0.7
