"""Tests for standard (key-based) blocking."""

import pytest

from repro.dedup import (
    BlockingStats,
    StandardBlocking,
    multipass_blocking,
    multipass_blocking_with_stats,
)
from repro.textsim import soundex


RECORDS = [
    {"last_name": "SMITH", "zip": "27601"},   # 0
    {"last_name": "SMYTH", "zip": "28801"},   # 1 (same soundex as SMITH)
    {"last_name": "JONES", "zip": "27601"},   # 2
    {"last_name": "JONES", "zip": "28801"},   # 3
    {"last_name": "", "zip": "27601"},        # 4 (empty key)
]


class TestStandardBlocking:
    def test_equal_keys_blocked(self):
        blocker = StandardBlocking.on_attribute("last_name")
        pairs = blocker.candidates(RECORDS)
        assert (2, 3) in pairs
        assert (0, 1) not in pairs  # SMITH != SMYTH literally

    def test_transform_applied(self):
        blocker = StandardBlocking.on_attribute("last_name", transform=soundex)
        pairs = blocker.candidates(RECORDS)
        assert (0, 1) in pairs  # same soundex code

    def test_empty_keys_never_block(self):
        blocker = StandardBlocking.on_attribute("last_name")
        pairs = blocker.candidates(RECORDS)
        assert all(4 not in pair for pair in pairs)

    def test_pairs_normalised(self):
        pairs = StandardBlocking.on_attribute("zip").candidates(RECORDS)
        assert all(i < j for i, j in pairs)

    def test_oversized_blocks_skipped(self):
        many = [{"k": "SAME"} for _ in range(10)]
        small = StandardBlocking.on_attribute("k", max_block_size=5)
        assert small.candidates(many) == set()
        large = StandardBlocking.on_attribute("k", max_block_size=50)
        assert len(large.candidates(many)) == 45

    def test_custom_key_function(self):
        blocker = StandardBlocking(
            lambda record: (record.get("zip") or "")[:3]
        )
        pairs = blocker.candidates(RECORDS)
        assert (0, 2) in pairs  # zip prefix 276
        assert (1, 3) in pairs  # zip prefix 288

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            StandardBlocking(lambda record: "x", max_block_size=1)


class TestBlockingStats:
    def test_blocks_enumerated(self):
        blocker = StandardBlocking.on_attribute("zip")
        blocks = blocker.blocks(RECORDS)
        assert blocks == {"27601": [0, 2, 4], "28801": [1, 3]}

    def test_skipped_blocks_counted(self):
        many = [{"k": "SAME"} for _ in range(10)] + [{"k": "A"}, {"k": "A"}]
        blocker = StandardBlocking.on_attribute("k", max_block_size=5)
        pairs, stats = blocker.candidates_with_stats(many)
        assert pairs == {(10, 11)}
        assert stats.blocks_total == 2
        assert stats.blocks_skipped == 1
        assert stats.records_blocked == 12
        assert stats.pairs_emitted == 1
        assert stats.pairs_dropped == 10 * 9 // 2

    def test_no_skips_means_zero_dropped(self):
        blocker = StandardBlocking.on_attribute("zip")
        pairs, stats = blocker.candidates_with_stats(RECORDS)
        assert stats.blocks_skipped == 0
        assert stats.pairs_dropped == 0
        assert stats.pairs_emitted == len(pairs)

    def test_combinations_match_historical_loop(self):
        # The k(k-1)/2 combinations of a block, all normalised i < j.
        many = [{"k": "SAME"} for _ in range(8)]
        pairs = StandardBlocking.on_attribute("k").candidates(many)
        assert pairs == {(i, j) for i in range(8) for j in range(i + 1, 8)}

    def test_merge_accumulates(self):
        left = BlockingStats(1, 1, 5, 0, 10)
        left.merge(BlockingStats(2, 0, 4, 6, 0))
        assert left == BlockingStats(3, 1, 9, 6, 10)

    def test_multipass_stats_merged(self):
        many = [{"a": "SAME", "b": str(i)} for i in range(10)]
        capped = StandardBlocking.on_attribute("a", max_block_size=5)
        unique = StandardBlocking.on_attribute("b")
        pairs, stats = multipass_blocking_with_stats(many, [capped, unique])
        assert pairs == set()
        assert stats.blocks_total == 11
        assert stats.blocks_skipped == 1
        assert stats.pairs_dropped == 45


class TestMultipassBlocking:
    def test_union_of_passes(self):
        by_name = StandardBlocking.on_attribute("last_name", transform=soundex)
        by_zip = StandardBlocking.on_attribute("zip")
        union = multipass_blocking(RECORDS, [by_name, by_zip])
        assert union == by_name.candidates(RECORDS) | by_zip.candidates(RECORDS)

    def test_no_blockers(self):
        assert multipass_blocking(RECORDS, []) == set()
