"""The streaming pipeline must be *bit-identical* to the naive framework.

:mod:`repro.dedup.pipeline` keeps a naive oracle next to it
(:mod:`repro.dedup._reference`) precisely so this suite can assert exact
equality — not approximate — for every optimised stage:

* packed-key candidate generation (SNM and standard blocking) against the
  eager tuple-set oracles;
* the micro-fixed / prepared-vector / batched matcher against the
  historical per-pair ``similarity`` accumulation;
* sharded parallel scoring and the end-to-end ``DetectionPipeline``
  against the single-process sweep, for worker counts 0 / 1 / 4.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dedup import _reference as ref
from repro.dedup import (
    MAX_PACKABLE_RECORDS,
    DetectionPipeline,
    PairKeyOverflowError,
    RecordMatcher,
    StandardBlocking,
    blocking_candidates,
    evaluate_thresholds,
    multipass_blocking,
    multipass_sorted_neighborhood,
    pack_pair,
    pack_pairs,
    score_candidates,
    score_candidates_packed,
    score_pairs_batch,
    sorted_neighborhood_candidates,
    unpack_pair,
    unpack_pairs,
)
from repro.textsim import MongeElkan
from repro.textsim import _reference as tref

ATTRIBUTES = ("first_name", "midl_name", "last_name", "city", "zip")
NAME_ATTRIBUTES = ("first_name", "midl_name", "last_name")

# Tiny alphabets force equal values, shared sort keys and window overlaps
# far more often than realistic text would.
value = st.text(alphabet=string.ascii_uppercase[:4] + " ", max_size=6)
record = st.fixed_dictionaries({attribute: value for attribute in ATTRIBUTES})
records_strategy = st.lists(record, min_size=1, max_size=24)
window = st.integers(min_value=2, max_value=8)
weight = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
weights_strategy = st.fixed_dictionaries(
    {attribute: weight for attribute in ATTRIBUTES}
)


def exact(left, right):
    return 1.0 if left == right else 0.0


class TestPackedKeys:
    @given(st.integers(2, 10_000))
    @settings(max_examples=100)
    def test_roundtrip(self, count):
        import random

        rng = random.Random(count)
        right = rng.randrange(1, count)
        left = rng.randrange(0, right)
        key = pack_pair(left, right, count)
        assert unpack_pair(key, count) == (left, right)

    def test_rejects_unordered_pairs(self):
        with pytest.raises(ValueError):
            pack_pair(3, 3, 10)
        with pytest.raises(ValueError):
            pack_pair(5, 2, 10)
        with pytest.raises(ValueError):
            pack_pair(0, 10, 10)

    def test_pack_unpack_sets(self):
        pairs = {(0, 1), (2, 5), (1, 9)}
        assert unpack_pairs(pack_pairs(pairs, 10), 10) == pairs

    def test_pack_at_max_packable_records_roundtrips(self):
        # The largest register whose worst-case key (n-2)*n + (n-1) still
        # fits a signed 64-bit integer must keep working exactly.
        count = MAX_PACKABLE_RECORDS
        key = pack_pair(count - 2, count - 1, count)
        assert key == (count - 2) * count + (count - 1)
        assert key < 2**63
        assert unpack_pair(key, count) == (count - 2, count - 1)

    def test_pack_overflow_raises_typed_error(self):
        count = MAX_PACKABLE_RECORDS + 1
        with pytest.raises(PairKeyOverflowError) as excinfo:
            pack_pair(0, 1, count)
        assert excinfo.value.record_count == count
        assert str(MAX_PACKABLE_RECORDS) in str(excinfo.value)
        # the typed error is still a ValueError, so legacy handlers keep
        # catching it
        assert isinstance(excinfo.value, ValueError)
        with pytest.raises(PairKeyOverflowError):
            unpack_pair(0, count)

    def test_unpack_rejects_out_of_range_keys(self):
        with pytest.raises(ValueError):
            unpack_pair(-1, 10)
        with pytest.raises(ValueError):
            unpack_pair(100, 10)  # == count * count
        # largest valid key for count=10 decodes fine
        assert unpack_pair(8 * 10 + 9, 10) == (8, 9)


class TestCandidateEquivalence:
    @given(records_strategy, window, st.integers(1, 3))
    @settings(max_examples=150, deadline=None)
    def test_snm_packed_equals_tuple_oracle(self, records, window, passes):
        keys = ATTRIBUTES[:passes]
        oracle = ref.multipass_pairs_reference(records, keys, window)
        packed, stats = sorted_neighborhood_candidates(records, keys, window)
        assert packed == pack_pairs(oracle, len(records))
        assert stats.unique_pairs == len(oracle)
        # the public (still tuple-based) API must agree too
        assert multipass_sorted_neighborhood(records, keys, window) == oracle

    @given(records_strategy, st.integers(2, 6))
    @settings(max_examples=150, deadline=None)
    def test_blocking_packed_equals_tuple_oracle(self, records, max_block_size):
        blocker = StandardBlocking.on_attribute(
            "city", max_block_size=max_block_size
        )
        oracle = ref.blocking_pairs_reference(
            records, blocker.key_function, max_block_size
        )
        packed, stats = blocking_candidates(records, [blocker])
        assert packed == pack_pairs(oracle, len(records))
        assert multipass_blocking(records, [blocker]) == oracle
        dropped = stats.pairs_dropped
        total_possible = stats.pairs_emitted + dropped
        assert len(oracle) + dropped == total_possible


class TestMatcherEquivalence:
    @given(records_strategy, weights_strategy)
    @settings(max_examples=60, deadline=None)
    def test_similarity_matches_historical_reference(self, records, weights):
        if sum(weights.values()) == 0:
            weights["city"] = 1.0
        matcher = RecordMatcher(exact, weights, NAME_ATTRIBUTES)
        left, right = records[0], records[-1]
        expected = ref.record_similarity_reference(
            exact, weights, left, right, NAME_ATTRIBUTES
        )
        assert matcher.similarity(left, right) == expected

    @given(records_strategy, weights_strategy)
    @settings(max_examples=60, deadline=None)
    def test_prepared_batch_matches_per_pair(self, records, weights):
        if sum(weights.values()) == 0:
            weights["zip"] = 1.0
        matcher = RecordMatcher(exact, weights, NAME_ATTRIBUTES)
        count = len(records)
        keys = [
            pack_pair(i, j, count)
            for i in range(count)
            for j in range(i + 1, count)
        ]
        batch = score_pairs_batch(matcher.prepare(records), keys, count)
        for (left_id, right_id), score in batch.items():
            assert score == matcher.similarity(records[left_id], records[right_id])

    def test_monge_elkan_matches_naive_kernel_reference(self, small_dataset):
        records, _gold = small_dataset
        matcher = RecordMatcher.from_records(
            records, ATTRIBUTES, MongeElkan(), NAME_ATTRIBUTES
        )
        packed, _stats = sorted_neighborhood_candidates(
            records, ATTRIBUTES[:3], 4
        )
        fast_scores = score_candidates_packed(records, packed, matcher)
        oracle = ref.score_candidates_reference(
            records,
            unpack_pairs(packed, len(records)),
            tref.symmetric_monge_elkan,
            matcher.weights,
            NAME_ATTRIBUTES,
        )
        assert fast_scores == oracle

    def test_zero_total_weight_scores_zero(self):
        matcher = RecordMatcher(exact, {"city": 0.0}, name_attributes=())
        assert matcher.similarity({"city": "A"}, {"city": "A"}) == 0.0
        prepared = matcher.prepare([{"city": "A"}, {"city": "A"}])
        assert prepared.pair_similarity(0, 1) == 0.0


@pytest.fixture(scope="module")
def small_dataset():
    """A deterministic register-ish dataset with confusable names."""
    import random

    rng = random.Random(20210323)
    first = ["JOHN", "JON", "JANE", "JAN", "JUAN", "JOSE", ""]
    last = ["SMITH", "SMYTH", "GARCIA", "GARCIA-LOPEZ", "DOE", "ROE"]
    records = []
    gold = set()
    for cluster in range(18):
        size = rng.choice([1, 1, 2, 3])
        base = {
            "first_name": rng.choice(first),
            "midl_name": rng.choice(first),
            "last_name": rng.choice(last),
            "city": rng.choice(["RALEIGH", "DURHAM", "CARY"]),
            "zip": str(27600 + rng.randrange(6)),
        }
        members = []
        for _ in range(size):
            duplicate = dict(base)
            if rng.random() < 0.5:  # typo / confusion
                duplicate["first_name"], duplicate["midl_name"] = (
                    duplicate["midl_name"],
                    duplicate["first_name"],
                )
            members.append(len(records))
            records.append(duplicate)
        for j in range(1, len(members)):
            for i in range(j):
                gold.add((members[i], members[j]))
    return records, gold


class TestDeterminismAcrossWorkers:
    def test_workers_0_1_4_bit_identical(self, small_dataset):
        records, gold = small_dataset
        results = {}
        for workers in (0, 1, 4):
            pipeline = DetectionPipeline(
                window=4,
                passes=3,
                workers=workers,
                shards=max(workers, 1),
            )
            matcher = RecordMatcher.from_records(
                records, ATTRIBUTES, MongeElkan(), NAME_ATTRIBUTES
            )
            results[workers] = pipeline.detect(records, ATTRIBUTES, matcher, gold)
        baseline = results[0]
        for workers in (1, 4):
            result = results[workers]
            assert result.candidate_keys == baseline.candidate_keys
            assert result.similarities == baseline.similarities
            assert result.points == baseline.points
            assert result.best == baseline.best

    def test_shard_counts_bit_identical(self, small_dataset):
        records, _gold = small_dataset
        matcher = RecordMatcher.from_records(
            records, ATTRIBUTES, MongeElkan(), NAME_ATTRIBUTES
        )
        packed, _stats = sorted_neighborhood_candidates(records, ATTRIBUTES[:3], 4)
        baseline = score_candidates_packed(records, packed, matcher)
        for shards in (2, 3, 7):
            sharded = score_candidates_packed(
                records, packed, matcher, shards=shards, max_workers=2
            )
            assert sharded == baseline


class TestEndToEndEquivalence:
    def test_pipeline_equals_naive_path(self, small_dataset):
        records, gold = small_dataset
        thresholds = [t / 20 for t in range(4, 20)]

        # the naive framework, end to end
        naive_candidates = multipass_sorted_neighborhood(
            records, ATTRIBUTES[:3], 4
        )
        matcher = RecordMatcher.from_records(
            records, ATTRIBUTES, MongeElkan(), NAME_ATTRIBUTES
        )
        naive_scores = score_candidates(records, naive_candidates, matcher)
        naive_points = evaluate_thresholds(naive_scores, gold, thresholds)

        pipeline = DetectionPipeline(
            window=4, passes=3, key_attributes=ATTRIBUTES[:3],
            thresholds=thresholds,
        )
        result = pipeline.detect(records, ATTRIBUTES, matcher, gold)

        assert result.candidate_keys == pack_pairs(naive_candidates, len(records))
        assert result.similarities == naive_scores
        assert result.points == naive_points
        assert result.best == max(
            naive_points, key=lambda point: (point.f1, -point.threshold)
        )
        assert result.gold_size == len(gold)
        assert result.gold_missed == len(gold - naive_candidates)

    def test_pipeline_validates_parameters(self):
        with pytest.raises(ValueError):
            DetectionPipeline(window=1)
        with pytest.raises(ValueError):
            DetectionPipeline(passes=0)
        with pytest.raises(ValueError):
            DetectionPipeline(workers=-1)
        with pytest.raises(ValueError):
            score_candidates_packed([], set(), RecordMatcher(exact, {"a": 1.0}), shards=0)
