"""Runtime sanitizer tests: frozen documents and the determinism harness.

The last class is the acceptance gate for the parallel entry points:
``score_candidates_packed`` and ``score_clusters_parallel`` must produce
bit-identical results across the (1, 1) / (2, 4) / (4, 8) worker/shard
configurations.
"""

import copy

import pytest

from repro import sanitizers
from repro.core.heterogeneity import HeterogeneityScorer
from repro.core.parallel import score_clusters_parallel
from repro.core import RemovalLevel, TestDataGenerator
from repro.dedup import DetectionPipeline, RecordMatcher, score_candidates_packed
from repro.docstore.collection import Collection
from repro.sanitizers import (
    DEFAULT_CONFIGS,
    FrozenDocumentError,
    NondeterminismError,
    determinism_check,
    freeze,
    freeze_documents,
    thaw,
)


@pytest.fixture()
def people():
    collection = Collection("people")
    collection.insert_many(
        [
            {"name": "ada", "tags": ["x", "y"], "meta": {"age": 36}},
            {"name": "ben", "tags": [], "meta": {"age": 41}},
        ]
    )
    return collection


class TestFrozenContainers:
    def test_reads_behave_like_plain_containers(self):
        frozen = freeze({"a": [1, {"b": 2}], "c": "text"})
        assert frozen["a"][1]["b"] == 2
        assert list(frozen) == ["a", "c"]
        assert len(frozen["a"]) == 2
        assert frozen == {"a": [1, {"b": 2}], "c": "text"}

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.__setitem__("k", 1),
            lambda d: d.__delitem__("a"),
            lambda d: d.pop("a"),
            lambda d: d.popitem(),
            lambda d: d.clear(),
            lambda d: d.update(k=1),
            lambda d: d.setdefault("k", 1),
        ],
    )
    def test_dict_mutators_raise(self, mutate):
        frozen = freeze({"a": 1})
        with pytest.raises(FrozenDocumentError):
            mutate(frozen)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda l: l.append(1),
            lambda l: l.extend([1]),
            lambda l: l.insert(0, 1),
            lambda l: l.remove(1),
            lambda l: l.pop(),
            lambda l: l.clear(),
            lambda l: l.sort(),
            lambda l: l.reverse(),
            lambda l: l.__setitem__(0, 9),
            lambda l: l.__delitem__(0),
        ],
    )
    def test_list_mutators_raise(self, mutate):
        frozen = freeze({"a": [1, 2]})["a"]
        with pytest.raises(FrozenDocumentError):
            mutate(frozen)

    def test_thaw_returns_plain_mutable_containers(self):
        thawed = thaw(freeze({"a": [1, {"b": 2}]}))
        assert type(thawed) is dict
        assert type(thawed["a"]) is list
        thawed["a"].append(3)
        assert thawed["a"][-1] == 3

    def test_deepcopy_escapes_the_freeze(self):
        duplicate = copy.deepcopy(freeze({"a": [1]}))
        assert type(duplicate) is dict and type(duplicate["a"]) is list
        duplicate["a"].append(2)
        assert duplicate == {"a": [1, 2]}


class TestFreezeDocuments:
    def test_find_results_are_poisoned(self, people):
        with freeze_documents():
            rows = people.find({"name": "ada"})
            assert rows[0]["meta"]["age"] == 36
            with pytest.raises(FrozenDocumentError):
                rows[0]["name"] = "eve"
            with pytest.raises(FrozenDocumentError):
                rows[0]["tags"].append("z")

    def test_find_one_aggregate_and_all_are_covered(self, people):
        with freeze_documents():
            one = people.find_one({"name": "ben"})
            with pytest.raises(FrozenDocumentError):
                one["meta"].update(age=42)
            (row,) = people.aggregate([{"$match": {"name": "ada"}}])
            with pytest.raises(FrozenDocumentError):
                row.pop("name")
            for document in people.all():
                with pytest.raises(FrozenDocumentError):
                    document["seen"] = True

    def test_methods_are_restored_on_exit(self, people):
        with freeze_documents():
            pass
        row = people.find({"name": "ada"})[0]
        row["name"] = "mutable-again"  # plain dict once the block ends
        assert people.find({"name": "ada"})[0]["name"] == "ada"

    def test_nested_blocks_restore_cleanly(self, people):
        with freeze_documents():
            with freeze_documents():
                with pytest.raises(FrozenDocumentError):
                    people.find_one({"name": "ada"})["x"] = 1
            with pytest.raises(FrozenDocumentError):
                people.find_one({"name": "ada"})["x"] = 1
        people.find_one({"name": "ada"})["x"] = 1  # unfrozen again

    def test_writes_still_work_under_freezing(self, people):
        with freeze_documents():
            people.insert_one({"name": "cleo"})
            assert people.find_one({"name": "cleo"})["name"] == "cleo"


class TestDeterminismCheckHarness:
    def test_consistent_computation_passes(self):
        report = determinism_check(lambda workers, shards: [1, 2, 3])
        assert report.consistent
        assert report.configs == DEFAULT_CONFIGS
        assert report.divergences == ()

    def test_divergence_names_the_config_and_element(self):
        def compute(workers, shards):
            return {"scores": [1, 2, 3 if shards < 8 else 4]}

        with pytest.raises(NondeterminismError) as info:
            determinism_check(compute, label="scores")
        message = str(info.value)
        assert "scores diverged at workers=4 shards=8" in message
        assert "$.scores[2]: 4 != 3" in message

    def test_report_mode_collects_instead_of_raising(self):
        def compute(workers, shards):
            return workers  # every config differs from the baseline

        report = determinism_check(compute, raise_on_divergence=False)
        assert not report.consistent
        assert len(report.divergences) == 2
        assert report.baseline == 1

    def test_rejects_empty_configs(self):
        with pytest.raises(ValueError):
            determinism_check(lambda workers, shards: 0, configs=())


# ----------------------------------------------------- acceptance criteria

ATTRIBUTES = ("first_name", "midl_name", "last_name", "city", "zip")
NAME_ATTRIBUTES = ("first_name", "midl_name", "last_name")

_NAMES = ("ANNA", "ANNE", "BEN", "BENNY", "CARL", "CARLA", "DORA", "DORIS")


def _overlap(left, right):
    """A deliberately non-trivial (but pure and picklable) measure."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    shared = len(set(left) & set(right))
    return shared / max(len(set(left)), len(set(right)))


def _synthetic_records(count=48):
    records = []
    for i in range(count):
        records.append(
            {
                "first_name": _NAMES[i % len(_NAMES)],
                "midl_name": _NAMES[(i // 2) % len(_NAMES)],
                "last_name": _NAMES[(i * 3) % len(_NAMES)],
                "city": f"CITY{i % 5}",
                "zip": str(10000 + i % 7),
            }
        )
    return records


@pytest.fixture(scope="module")
def clusters(snapshots):
    gen = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    gen.import_snapshots(snapshots)
    return list(gen.clusters())


class TestParallelEntryPointsAreDeterministic:
    def test_score_candidates_packed(self):
        records = _synthetic_records()
        pipeline = DetectionPipeline(window=6, passes=3)
        keys, _stats = pipeline.candidates(records, ATTRIBUTES)
        assert keys, "fixture produced no candidate pairs"
        matcher = RecordMatcher.from_records(
            records, ATTRIBUTES, _overlap, NAME_ATTRIBUTES
        )
        report = determinism_check(
            lambda workers, shards: score_candidates_packed(
                records, keys, matcher, shards=shards, max_workers=workers
            ),
            label="score_candidates_packed",
        )
        assert report.consistent
        assert report.configs == ((1, 1), (2, 4), (4, 8))

    def test_score_clusters_parallel(self, clusters):
        subset = clusters[:40]
        scorer = HeterogeneityScorer.from_clusters(subset, ("person",))
        report = determinism_check(
            lambda workers, shards: score_clusters_parallel(
                subset,
                heterogeneity_all=scorer,
                shards=shards,
                max_workers=workers,
            ),
            label="score_clusters_parallel",
        )
        assert report.consistent
        assert report.configs == ((1, 1), (2, 4), (4, 8))
