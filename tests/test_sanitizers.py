"""Runtime sanitizer tests: frozen documents and the determinism harness.

The last class is the acceptance gate for the parallel entry points:
``score_candidates_packed`` and ``score_clusters_parallel`` must produce
bit-identical results across the (1, 1) / (2, 4) / (4, 8) worker/shard
configurations.
"""

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import sanitizers
from repro.core.heterogeneity import HeterogeneityScorer
from repro.core.parallel import score_clusters_parallel
from repro.core import RemovalLevel, TestDataGenerator
from repro.dedup import DetectionPipeline, RecordMatcher, score_candidates_packed
from repro.docstore.collection import Collection
from repro.sanitizers import (
    DEFAULT_CONFIGS,
    FrozenDocumentError,
    NondeterminismError,
    determinism_check,
    freeze,
    freeze_documents,
    thaw,
)


@pytest.fixture()
def people():
    collection = Collection("people")
    collection.insert_many(
        [
            {"name": "ada", "tags": ["x", "y"], "meta": {"age": 36}},
            {"name": "ben", "tags": [], "meta": {"age": 41}},
        ]
    )
    return collection


class TestFrozenContainers:
    def test_reads_behave_like_plain_containers(self):
        frozen = freeze({"a": [1, {"b": 2}], "c": "text"})
        assert frozen["a"][1]["b"] == 2
        assert list(frozen) == ["a", "c"]
        assert len(frozen["a"]) == 2
        assert frozen == {"a": [1, {"b": 2}], "c": "text"}

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.__setitem__("k", 1),
            lambda d: d.__delitem__("a"),
            lambda d: d.pop("a"),
            lambda d: d.popitem(),
            lambda d: d.clear(),
            lambda d: d.update(k=1),
            lambda d: d.setdefault("k", 1),
        ],
    )
    def test_dict_mutators_raise(self, mutate):
        frozen = freeze({"a": 1})
        with pytest.raises(FrozenDocumentError):
            mutate(frozen)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda l: l.append(1),
            lambda l: l.extend([1]),
            lambda l: l.insert(0, 1),
            lambda l: l.remove(1),
            lambda l: l.pop(),
            lambda l: l.clear(),
            lambda l: l.sort(),
            lambda l: l.reverse(),
            lambda l: l.__setitem__(0, 9),
            lambda l: l.__delitem__(0),
        ],
    )
    def test_list_mutators_raise(self, mutate):
        frozen = freeze({"a": [1, 2]})["a"]
        with pytest.raises(FrozenDocumentError):
            mutate(frozen)

    def test_thaw_returns_plain_mutable_containers(self):
        thawed = thaw(freeze({"a": [1, {"b": 2}]}))
        assert type(thawed) is dict
        assert type(thawed["a"]) is list
        thawed["a"].append(3)
        assert thawed["a"][-1] == 3

    def test_deepcopy_escapes_the_freeze(self):
        duplicate = copy.deepcopy(freeze({"a": [1]}))
        assert type(duplicate) is dict and type(duplicate["a"]) is list
        duplicate["a"].append(2)
        assert duplicate == {"a": [1, 2]}


class TestFreezeDocuments:
    def test_find_results_are_poisoned(self, people):
        with freeze_documents():
            rows = people.find({"name": "ada"})
            assert rows[0]["meta"]["age"] == 36
            with pytest.raises(FrozenDocumentError):
                rows[0]["name"] = "eve"
            with pytest.raises(FrozenDocumentError):
                rows[0]["tags"].append("z")

    def test_find_one_aggregate_and_all_are_covered(self, people):
        with freeze_documents():
            one = people.find_one({"name": "ben"})
            with pytest.raises(FrozenDocumentError):
                one["meta"].update(age=42)
            (row,) = people.aggregate([{"$match": {"name": "ada"}}])
            with pytest.raises(FrozenDocumentError):
                row.pop("name")
            for document in people.all():
                with pytest.raises(FrozenDocumentError):
                    document["seen"] = True

    def test_methods_are_restored_on_exit(self, people):
        with freeze_documents():
            pass
        row = people.find({"name": "ada"})[0]
        row["name"] = "mutable-again"  # plain dict once the block ends
        assert people.find({"name": "ada"})[0]["name"] == "ada"

    def test_nested_blocks_restore_cleanly(self, people):
        with freeze_documents():
            with freeze_documents():
                with pytest.raises(FrozenDocumentError):
                    people.find_one({"name": "ada"})["x"] = 1
            with pytest.raises(FrozenDocumentError):
                people.find_one({"name": "ada"})["x"] = 1
        people.find_one({"name": "ada"})["x"] = 1  # unfrozen again

    def test_writes_still_work_under_freezing(self, people):
        with freeze_documents():
            people.insert_one({"name": "cleo"})
            assert people.find_one({"name": "cleo"})["name"] == "cleo"


# Random documents with nested dicts and lists — the shapes a lazy
# DocumentView wraps on access.
_view_values = st.one_of(
    st.integers(-5, 5),
    st.sampled_from(["x", "yy"]),
    st.none(),
    st.booleans(),
    st.lists(st.integers(-3, 3), max_size=3),
)
_view_documents = st.lists(
    st.fixed_dictionaries(
        {"ncid": st.sampled_from(["AA1", "BB2", "CC3"])},
        optional={
            "a": _view_values,
            "nested": st.fixed_dictionaries(
                {"x": st.integers(-3, 3)},
                optional={"lst": st.lists(st.integers(0, 3), max_size=3)},
            ),
        },
    ),
    min_size=1,
    max_size=8,
)


class TestLazyViewMutationSafety:
    """Copy-on-read views: caller mutations must never reach the store.

    The hypothesis property is the runtime counterpart of what
    ``freeze_documents`` polices statically: documents returned by reads
    are the caller's to wreck, and the stored state must not notice.
    """

    @given(_view_documents, st.sampled_from((1, 3)), st.data())
    @settings(max_examples=120, deadline=None)
    def test_mutating_results_never_corrupts_stored_state(
        self, docs, shards, data
    ):
        collection = Collection("c", shards=shards)
        collection.create_index("ncid", "hash")
        for position, doc in enumerate(docs):
            stored = dict(doc)
            stored.setdefault("_id", position)
            collection.insert_one(copy.deepcopy(stored))
        baseline = copy.deepcopy(list(collection.all()))

        probes = [{}, {"ncid": "AA1"}, {"a": {"$exists": True}}]
        for _ in range(data.draw(st.integers(1, 3))):
            returned = collection.find(data.draw(st.sampled_from(probes)))
            for document in returned:
                # Top-level writes, nested writes through chained views,
                # list mutation, deletion, then total destruction.
                document["smashed"] = [1, {"deep": 2}]
                nested = document.get("nested")
                if isinstance(nested, dict):
                    nested["x"] = 99
                    nested.setdefault("lst", []).append(7)
                value = document.get("a")
                if isinstance(value, list):
                    value.append(123)
                document.pop("a", None)
                document.clear()
        single = collection.find_one({"ncid": "AA1"})
        if single is not None:
            single["ncid"] = "ZZ9"
        assert copy.deepcopy(list(collection.all())) == baseline

    def test_aggregate_results_are_mutation_safe(self, people):
        baseline = copy.deepcopy(list(people.all()))
        for row in people.aggregate([{"$project": {"name": 1, "meta": 1}}]):
            row["meta"]["age"] = -1
            row["name"] = "mangled"
        for row in people.aggregate([{"$unwind": "$tags"}]):
            row["tags"] = "mangled"
            row["meta"]["age"] = -2
        assert copy.deepcopy(list(people.all())) == baseline

    def test_views_deep_copy_to_plain_containers(self, people):
        document = people.find_one({"name": "ada"})
        clone = copy.deepcopy(document)
        assert type(clone) is dict
        assert type(clone["meta"]) is dict
        assert type(clone["tags"]) is list
        clone["meta"]["age"] = 0
        assert people.find_one({"name": "ada"})["meta"]["age"] == 36


class TestDeterminismCheckHarness:
    def test_consistent_computation_passes(self):
        report = determinism_check(lambda workers, shards: [1, 2, 3])
        assert report.consistent
        assert report.configs == DEFAULT_CONFIGS
        assert report.divergences == ()

    def test_divergence_names_the_config_and_element(self):
        def compute(workers, shards):
            return {"scores": [1, 2, 3 if shards < 8 else 4]}

        with pytest.raises(NondeterminismError) as info:
            determinism_check(compute, label="scores")
        message = str(info.value)
        assert "scores diverged at workers=4 shards=8" in message
        assert "$.scores[2]: 4 != 3" in message

    def test_report_mode_collects_instead_of_raising(self):
        def compute(workers, shards):
            return workers  # every config differs from the baseline

        report = determinism_check(compute, raise_on_divergence=False)
        assert not report.consistent
        assert len(report.divergences) == 2
        assert report.baseline == 1

    def test_rejects_empty_configs(self):
        with pytest.raises(ValueError):
            determinism_check(lambda workers, shards: 0, configs=())


# ----------------------------------------------------- acceptance criteria

ATTRIBUTES = ("first_name", "midl_name", "last_name", "city", "zip")
NAME_ATTRIBUTES = ("first_name", "midl_name", "last_name")

_NAMES = ("ANNA", "ANNE", "BEN", "BENNY", "CARL", "CARLA", "DORA", "DORIS")


def _overlap(left, right):
    """A deliberately non-trivial (but pure and picklable) measure."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    shared = len(set(left) & set(right))
    return shared / max(len(set(left)), len(set(right)))


def _synthetic_records(count=48):
    records = []
    for i in range(count):
        records.append(
            {
                "first_name": _NAMES[i % len(_NAMES)],
                "midl_name": _NAMES[(i // 2) % len(_NAMES)],
                "last_name": _NAMES[(i * 3) % len(_NAMES)],
                "city": f"CITY{i % 5}",
                "zip": str(10000 + i % 7),
            }
        )
    return records


@pytest.fixture(scope="module")
def clusters(snapshots):
    gen = TestDataGenerator(removal=RemovalLevel.TRIMMED)
    gen.import_snapshots(snapshots)
    return list(gen.clusters())


class TestParallelEntryPointsAreDeterministic:
    def test_score_candidates_packed(self):
        records = _synthetic_records()
        pipeline = DetectionPipeline(window=6, passes=3)
        keys, _stats = pipeline.candidates(records, ATTRIBUTES)
        assert keys, "fixture produced no candidate pairs"
        matcher = RecordMatcher.from_records(
            records, ATTRIBUTES, _overlap, NAME_ATTRIBUTES
        )
        report = determinism_check(
            lambda workers, shards: score_candidates_packed(
                records, keys, matcher, shards=shards, max_workers=workers
            ),
            label="score_candidates_packed",
        )
        assert report.consistent
        assert report.configs == ((1, 1), (2, 4), (4, 8))

    def test_score_clusters_parallel(self, clusters):
        subset = clusters[:40]
        scorer = HeterogeneityScorer.from_clusters(subset, ("person",))
        report = determinism_check(
            lambda workers, shards: score_clusters_parallel(
                subset,
                heterogeneity_all=scorer,
                shards=shards,
                max_workers=workers,
            ),
            label="score_clusters_parallel",
        )
        assert report.consistent
        assert report.configs == ((1, 1), (2, 4), (4, 8))
