"""Tests for dataset CSV serialisation."""

import csv

import pytest

from repro.datasets import synthesize_census
from repro.datasets.io import gold_path_for, load_dataset, save_dataset


RECORDS = [
    {"first_name": "DEBRA", "last_name": "WILLIAMS"},
    {"first_name": "DEBRA", "last_name": "WILLAMS"},
    {"first_name": "JOSHUA", "last_name": "BETHEA"},
]
CLUSTERS = ["A", "A", "B"]


class TestSaveDataset:
    def test_writes_both_files(self, tmp_path):
        data, gold = save_dataset(tmp_path / "d.csv", RECORDS, CLUSTERS)
        assert data.exists() and gold.exists()
        assert gold == gold_path_for(data)

    def test_header_and_rows(self, tmp_path):
        data, _gold = save_dataset(tmp_path / "d.csv", RECORDS, CLUSTERS)
        rows = list(csv.reader(data.open()))
        assert rows[0] == ["record_id", "cluster_id", "first_name", "last_name"]
        assert rows[1] == ["0", "A", "DEBRA", "WILLIAMS"]

    def test_gold_pairs_written(self, tmp_path):
        _data, gold = save_dataset(tmp_path / "d.csv", RECORDS, CLUSTERS)
        rows = list(csv.reader(gold.open()))
        assert rows == [["left", "right"], ["0", "1"]]

    def test_explicit_attribute_order(self, tmp_path):
        data, _ = save_dataset(
            tmp_path / "d.csv", RECORDS, CLUSTERS,
            attributes=("last_name", "first_name"),
        )
        header = next(csv.reader(data.open()))
        assert header[2:] == ["last_name", "first_name"]

    def test_length_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_dataset(tmp_path / "d.csv", RECORDS, CLUSTERS[:2])


class TestLoadDataset:
    def test_round_trip(self, tmp_path):
        save_dataset(tmp_path / "d.csv", RECORDS, CLUSTERS)
        dataset = load_dataset(tmp_path / "d.csv")
        assert dataset.records == RECORDS
        assert dataset.gold_pairs == {(0, 1)}
        assert dataset.name == "d"

    def test_synthesized_dataset_round_trip(self, tmp_path):
        census = synthesize_census()
        save_dataset(
            tmp_path / "census.csv", census.records, census.cluster_of,
            attributes=census.attributes,
        )
        loaded = load_dataset(tmp_path / "census.csv")
        assert loaded.characteristics().records == 841
        assert loaded.gold_pairs == census.gold_pairs

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            load_dataset(path)

    def test_tampered_gold_detected(self, tmp_path):
        data, gold = save_dataset(tmp_path / "d.csv", RECORDS, CLUSTERS)
        gold.write_text("left,right\n0,2\n")  # wrong pair
        with pytest.raises(ValueError):
            load_dataset(data)

    def test_missing_gold_tolerated(self, tmp_path):
        data, gold = save_dataset(tmp_path / "d.csv", RECORDS, CLUSTERS)
        gold.unlink()
        dataset = load_dataset(data)
        assert dataset.gold_pairs == {(0, 1)}  # reconstructed from labels

    def test_cli_customize_output_loadable(self, tmp_path, generator):
        from repro.core import customize
        from repro.core.heterogeneity import HeterogeneityScorer
        from repro.votersim.schema import PERSON_ATTRIBUTES

        attributes = tuple(a for a in PERSON_ATTRIBUTES if a != "ncid")
        scorer = HeterogeneityScorer.from_clusters(
            generator.clusters(), ("person",), attributes
        )
        result = customize(generator, 0.0, 0.5, target_clusters=10, scorer=scorer)
        save_dataset(
            tmp_path / "nc.csv", result.records, result.cluster_of, attributes
        )
        loaded = load_dataset(tmp_path / "nc.csv")
        assert loaded.characteristics().records == result.record_count
        # gold pairs survive the label -> integer-id translation
        assert len(loaded.gold_pairs) == len(result.gold_pairs)
