"""Tests for the Cora / Census / CDDB synthesizers (Table 3 shapes)."""

import pytest

from repro.datasets import synthesize_cddb, synthesize_census, synthesize_cora
from repro.datasets.base import (
    BenchmarkDataset,
    composition_totals,
    expand_composition,
)


@pytest.fixture(scope="module")
def cora():
    return synthesize_cora()


@pytest.fixture(scope="module")
def census():
    return synthesize_census()


@pytest.fixture(scope="module")
def cddb():
    return synthesize_cddb()


class TestCompositionHelpers:
    def test_expand(self):
        assert expand_composition({1: 2, 3: 1}) == [1, 1, 3]

    def test_totals(self):
        records, clusters, pairs = composition_totals({2: 3, 4: 1})
        assert records == 10
        assert clusters == 4
        assert pairs == 9

    def test_invalid_composition(self):
        with pytest.raises(ValueError):
            expand_composition({0: 1})


class TestTable3Characteristics:
    """The synthesized datasets must match Table 3 exactly."""

    def test_cora(self, cora):
        ch = cora.characteristics()
        assert ch.records == 1879
        assert ch.attributes == 17
        assert ch.duplicate_pairs == 64578
        assert ch.clusters == 182
        assert ch.non_singletons == 118
        assert ch.max_cluster_size == 238
        assert ch.avg_cluster_size == pytest.approx(10.32, abs=0.01)

    def test_census(self, census):
        ch = census.characteristics()
        assert ch.records == 841
        assert ch.attributes == 6
        assert ch.duplicate_pairs == 376
        assert ch.clusters == 483
        assert ch.non_singletons == 345
        assert ch.max_cluster_size == 4
        assert ch.avg_cluster_size == pytest.approx(1.74, abs=0.01)

    def test_cddb(self, cddb):
        ch = cddb.characteristics()
        assert ch.records == 9763
        assert ch.attributes == 7
        assert ch.duplicate_pairs == 300
        assert ch.clusters == 9508
        assert ch.non_singletons == 221
        assert ch.max_cluster_size == 6
        assert ch.avg_cluster_size == pytest.approx(1.03, abs=0.01)


class TestDatasetIntegrity:
    def test_gold_pairs_within_clusters(self, census):
        for i, j in census.gold_pairs:
            assert census.cluster_of[i] == census.cluster_of[j]

    def test_records_have_declared_attributes(self, cora):
        for record in cora.records[:50]:
            assert set(record) <= set(cora.attributes)

    def test_deterministic(self):
        assert synthesize_census(seed=7).records == synthesize_census(seed=7).records

    def test_seed_changes_data(self):
        assert synthesize_census(seed=7).records != synthesize_census(seed=8).records

    def test_shuffled_not_cluster_ordered(self, cora):
        # records of a cluster must not be stored contiguously
        contiguous = all(
            cora.cluster_of[i] <= cora.cluster_of[i + 1]
            for i in range(len(cora.cluster_of) - 1)
        )
        assert not contiguous

    def test_duplicates_are_fuzzy_not_exact(self, census):
        exact_pairs = 0
        clusters = census.clusters()
        for members in clusters.values():
            for j in range(1, len(members)):
                if members[j] == members[0]:
                    exact_pairs += 1
        # the corruption pipeline leaves few, if any, exact duplicates
        assert exact_pairs < census.characteristics().duplicate_pairs / 4

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkDataset("x", ("a",), [{"a": 1}], [0, 1])


class TestErrorProfiles:
    def test_census_dominated_by_last_name_typos(self, census):
        from repro.core.irregularities import IrregularityCensus

        irregularities = IrregularityCensus(census.attributes, multi_attribute_pairs=())
        for members in census.clusters().values():
            irregularities.add_cluster(members)
        typo = irregularities.count("typo")
        assert typo.most_common_attribute == "last_name"
        assert typo.percentage > 0.3

    def test_cora_heterogeneity_in_paper_ballpark(self, cora):
        from repro.core.heterogeneity import HeterogeneityScorer

        representatives = [members[0] for members in cora.clusters().values()]
        scorer = HeterogeneityScorer.from_records(representatives, cora.attributes)
        scores = []
        for members in list(cora.clusters().values())[:40]:
            scores.extend(scorer.pair_heterogeneities(members))
        average = sum(scores) / len(scores)
        assert 0.1 < average < 0.35  # paper: 0.171
