"""Sharded-collection tests: oracle equivalence, routing, snapshots, WALs.

The load-bearing guarantee of the partitioned layout: for any shard count,
every read — ``find`` / ``count_documents`` / ``distinct`` / ``aggregate``
— returns *exactly* what the unsharded full-scan oracle in
``repro.docstore._reference`` returns: same documents, same order, same
copies.  On top of that: single-shard routing for shard-key point queries,
snapshot-isolated readers across ``commit()``, and crash recovery over the
per-partition write-ahead logs.
"""

import json
import string
import threading
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.docstore import Collection, Database, DurableDatabase
from repro.docstore._reference import (
    aggregate_full_scan,
    count_full_scan,
    distinct_full_scan,
    find_full_scan,
)
from repro.docstore.errors import QueryError
from repro.docstore.partition import fallback_shard, shard_key_shard
from repro.docstore.planner import route_shards
from repro.sanitizers import determinism_check

SHARD_COUNTS = (1, 2, 7)

# --------------------------------------------------------------- strategies

fields = st.sampled_from(["ncid", "a", "b"])
ncids = st.sampled_from(["AA1", "AA2", "BB7", "CC3", "DD9", "EE5"])
scalars = st.one_of(
    st.integers(-5, 5),
    st.sampled_from(["x", "y", "zz"]),
    st.none(),
    st.booleans(),
)
values = st.one_of(scalars, st.lists(st.integers(-5, 5), max_size=3))

documents = st.lists(
    st.fixed_dictionaries(
        {"ncid": ncids},
        optional={
            "a": values,
            "b": st.integers(-5, 5),
            "c": st.text(alphabet=string.ascii_lowercase, max_size=2),
        },
    ),
    max_size=14,
)

index_specs = st.lists(
    st.tuples(fields, st.sampled_from(["hash", "sorted"])),
    unique=True,
    max_size=3,
)

simple_conditions = st.one_of(
    st.builds(lambda f, v: {f: v}, fields, scalars),
    st.builds(lambda v: {"ncid": v}, ncids),
    st.builds(lambda vs: {"ncid": {"$in": vs}}, st.lists(ncids, max_size=3)),
    st.builds(lambda f, v: {f: {"$eq": v}}, fields, values),
    st.builds(
        lambda f, op, v: {f: {op: v}},
        fields,
        st.sampled_from(["$gt", "$gte", "$lt", "$lte"]),
        st.one_of(st.integers(-5, 5), st.sampled_from(["x", "y"])),
    ),
    st.builds(lambda f, v: {f: {"$ne": v}}, fields, scalars),
    st.builds(lambda f, e: {f: {"$exists": e}}, fields, st.booleans()),
)

filters = st.one_of(
    st.none(),
    simple_conditions,
    st.builds(
        lambda cs: {"$and": cs},
        st.lists(simple_conditions, min_size=1, max_size=3),
    ),
    st.builds(
        lambda cs: {"$or": cs},
        st.lists(simple_conditions, min_size=1, max_size=2),
    ),
)

sorts = st.one_of(
    st.none(),
    st.builds(lambda f, d: [(f, d)], fields, st.sampled_from([1, -1])),
    st.builds(
        lambda f1, d1, f2, d2: [(f1, d1), (f2, d2)],
        fields,
        st.sampled_from([1, -1]),
        fields,
        st.sampled_from([1, -1]),
    ),
)

head_stages = st.one_of(
    st.builds(lambda f: {"$match": f}, simple_conditions),
    st.builds(lambda f, d: {"$sort": {f: d}}, fields, st.sampled_from([1, -1])),
    st.builds(lambda n: {"$skip": n}, st.integers(0, 4)),
    st.builds(lambda n: {"$limit": n}, st.integers(0, 5)),
)
tails = st.sampled_from(
    [
        [],
        [{"$project": {"ncid": 1, "b": 1}}],
        [{"$group": {"_id": "$c", "n": {"$sum": 1}}}],
        [{"$group": {"_id": "$ncid", "lo": {"$min": "$b"}, "hi": {"$max": "$b"}}}],
        [{"$group": {"_id": "$c", "first": {"$first": "$a"}, "last": {"$last": "$b"}}}],
        [{"$count": "total"}],
    ]
)
pipelines = st.builds(
    lambda heads, tail: heads + tail, st.lists(head_stages, max_size=3), tails
)


def build_pair(docs, indexes, shards):
    """The sharded collection under test plus its unsharded oracle twin."""
    sharded = Collection("c", shards=shards)
    oracle = Collection("c")
    for path, kind in indexes:
        sharded.create_index(path, kind)
        oracle.create_index(path, kind)
    for position, doc in enumerate(docs):
        stored = dict(doc)
        stored.setdefault("_id", position)
        sharded.insert_one(dict(stored))
        oracle.insert_one(dict(stored))
    return sharded, oracle


# ----------------------------------------------------- oracle equivalence


@given(
    documents,
    index_specs,
    st.sampled_from(SHARD_COUNTS),
    filters,
    sorts,
    st.integers(0, 3),
    st.one_of(st.none(), st.integers(0, 4)),
)
@settings(max_examples=250)
def test_sharded_find_equals_full_scan(
    docs, indexes, shards, filter_doc, sort, skip, limit
):
    sharded, oracle = build_pair(docs, indexes, shards)
    planned = sharded.find(filter_doc, sort=sort, limit=limit, skip=skip)
    naive = find_full_scan(oracle, filter_doc, sort=sort, limit=limit, skip=skip)
    assert planned == naive


@given(documents, index_specs, st.sampled_from(SHARD_COUNTS), filters)
@settings(max_examples=150)
def test_sharded_count_equals_full_scan(docs, indexes, shards, filter_doc):
    sharded, oracle = build_pair(docs, indexes, shards)
    assert sharded.count_documents(filter_doc) == count_full_scan(
        oracle, filter_doc
    )


@given(documents, index_specs, st.sampled_from(SHARD_COUNTS), fields, filters)
@settings(max_examples=120)
def test_sharded_distinct_equals_full_scan(docs, indexes, shards, path, filter_doc):
    sharded, oracle = build_pair(docs, indexes, shards)
    assert sharded.distinct(path, filter_doc) == distinct_full_scan(
        oracle, path, filter_doc
    )


@given(documents, index_specs, st.sampled_from(SHARD_COUNTS), pipelines)
@settings(max_examples=250)
def test_sharded_aggregate_equals_full_scan(docs, indexes, shards, pipeline):
    sharded, oracle = build_pair(docs, indexes, shards)
    assert sharded.aggregate(pipeline) == aggregate_full_scan(oracle, pipeline)


# ------------------------------------------------------- plan-cache parity


@given(
    documents,
    index_specs,
    st.sampled_from(SHARD_COUNTS),
    st.lists(filters, min_size=1, max_size=4),
    sorts,
)
@settings(max_examples=150)
def test_cached_plans_equal_cold_plans(docs, indexes, shards, query_list, sort):
    """Memoized planning must be invisible: same documents, same order.

    Every query runs twice against the caching collection — the first
    fills the route/template/plan memos, the second replays them — and
    each run must equal the twin collection planning cold.
    """
    cached, _ = build_pair(docs, indexes, shards)
    cold, _ = build_pair(docs, indexes, shards)
    cold.plan_cache_enabled = False
    for filter_doc in list(query_list) * 2:
        assert cached.find(filter_doc, sort=sort) == cold.find(
            filter_doc, sort=sort
        )
        assert cached.count_documents(filter_doc) == cold.count_documents(
            filter_doc
        )


@given(documents, index_specs, st.sampled_from(SHARD_COUNTS), filters, st.data())
@settings(max_examples=100)
def test_plan_cache_invalidates_across_epochs(docs, indexes, shards, filter_doc, data):
    """Writes between reads must never let a stale plan leak results.

    Interleaves mutations (applied to both twins) with repeated reads of
    the same filter; the caching twin re-primes after every epoch bump and
    must keep matching the cold twin exactly.
    """
    cached, _ = build_pair(docs, indexes, shards)
    cold, _ = build_pair(docs, indexes, shards)
    cold.plan_cache_enabled = False
    for round_number in range(data.draw(st.integers(1, 3))):
        cached.find(filter_doc)  # prime (or re-prime) the memo
        mutation = data.draw(
            st.sampled_from(["insert", "update", "delete", "replace"])
        )
        if mutation == "insert":
            doc = {"_id": f"new-{round_number}", "ncid": "ZZ9", "b": round_number}
            cached.insert_one(dict(doc))
            cold.insert_one(dict(doc))
        elif mutation == "update":
            cached.update_many({}, {"$inc": {"b": 1}})
            cold.update_many({}, {"$inc": {"b": 1}})
        elif mutation == "delete":
            cached.delete_many({"b": {"$gte": 4}})
            cold.delete_many({"b": {"$gte": 4}})
        else:
            cached.replace_one({"ncid": "AA1"}, {"ncid": "AA1", "a": round_number})
            cold.replace_one({"ncid": "AA1"}, {"ncid": "AA1", "a": round_number})
        assert cached.find(filter_doc) == cold.find(filter_doc)
        assert list(cached.all()) == list(cold.all())
    stats = cached._plan_cache.stats()
    assert stats["misses"] >= 1  # every epoch bump forces a re-plan


@given(documents, index_specs, st.sampled_from((2, 7)), st.data())
@settings(max_examples=100)
def test_sharded_updates_match_oracle(docs, indexes, shards, data):
    """Random mutations (including shard-key rewrites that migrate
    documents between partitions) keep the sharded state oracle-equal."""
    sharded, oracle = build_pair(docs, indexes, shards)
    for _ in range(data.draw(st.integers(1, 3))):
        update = data.draw(
            st.sampled_from(
                [
                    {"$set": {"a": 9}},
                    {"$set": {"ncid": "ZZ9"}},  # forces partition migration
                    {"$unset": {"a": ""}},
                    {"$inc": {"b": 1}},
                    {"$rename": {"a": "c"}},
                ]
            )
        )
        filter_doc = data.draw(filters) or {}
        sharded.update_many(filter_doc, update)
        oracle.update_many(filter_doc, update)
    assert list(sharded.all()) == list(oracle.all())
    for probe in ({"ncid": "ZZ9"}, {"a": 9}, {"b": {"$gte": -9}}):
        assert sharded.find(probe) == find_full_scan(oracle, probe)


def test_delete_and_replace_match_oracle():
    sharded, oracle = build_pair(
        [{"_id": i, "ncid": f"AA{i % 3}", "n": i} for i in range(12)], [], 7
    )
    for collection in (sharded, oracle):
        collection.delete_many({"n": {"$gte": 8}})
        collection.replace_one({"_id": 2}, {"ncid": "BB9", "n": 99})
        collection.update_one({"_id": 3}, {"$set": {"ncid": "CC1"}})
    assert list(sharded.all()) == list(oracle.all())
    assert len(sharded) == len(oracle)


# ----------------------------------------------------------------- routing


def make_sharded(shards=4):
    collection = Collection("clusters", shards=shards)
    collection.insert_many(
        {"_id": i, "ncid": f"AA{i}", "n": i % 3} for i in range(20)
    )
    return collection


def test_point_query_routes_to_single_shard():
    collection = make_sharded()
    explained = collection.explain({"ncid": "AA7"})
    assert explained["routing"] == "single"
    assert explained["shards_touched"] == 1
    assert explained["total_shards"] == 4
    assert collection.find({"ncid": "AA7"})[0]["_id"] == 7


def test_in_query_routes_to_subset():
    collection = make_sharded()
    explained = collection.explain({"ncid": {"$in": ["AA1", "AA2", "AA3"]}})
    assert explained["routing"] in ("single", "subset")
    assert explained["shards_touched"] <= 3


def test_non_shard_key_query_scatters():
    collection = make_sharded()
    explained = collection.explain({"n": 1})
    assert explained["routing"] == "scatter"
    assert explained["shards_touched"] == 4


def test_conflicting_equalities_prune_every_shard():
    collection = make_sharded()
    explained = collection.explain(
        {"$and": [{"ncid": "AA1"}, {"ncid": "AA2"}]}
    )
    assert explained["routing"] == "pruned"
    assert explained["shards_touched"] == 0
    assert collection.find({"$and": [{"ncid": "AA1"}, {"ncid": "AA2"}]}) == []


def test_list_shard_key_value_disables_routing():
    collection = Collection("c", shards=4)
    collection.insert_one({"_id": 1, "ncid": ["AA1", "AA2"]})
    collection.insert_one({"_id": 2, "ncid": "AA1"})
    # A multikey shard key can match from any partition: must scatter.
    assert collection.explain({"ncid": "AA1"})["routing"] == "scatter"
    assert {doc["_id"] for doc in collection.find({"ncid": "AA1"})} == {1, 2}


def test_route_shards_intersects_conjuncts():
    assert route_shards("k", 8, {"k": "v"}) == [shard_key_shard("v", 8)]
    assert route_shards("k", 8, {"$and": [{"k": "v"}, {"k": {"$ne": "w"}}]}) == [
        shard_key_shard("v", 8)
    ]
    assert route_shards("k", 8, {"k": {"$in": []}}) == []
    assert route_shards("k", 8, {"other": "v"}) is None
    assert route_shards("k", 1, {"k": "v"}) is None
    assert route_shards("k", 8, {"$or": [{"k": "v"}]}) is None


def test_placement_functions_are_stable():
    for value in ("AA1", " aa1 ", "üñí"):
        assert 0 <= shard_key_shard(value, 7) < 7
        assert shard_key_shard(value, 7) == shard_key_shard(value, 7)
    assert fallback_shard(("int", 5), 7) == fallback_shard(("int", 5), 7)
    with pytest.raises(QueryError):
        Collection("c", shards=0)


def test_malformed_filter_still_raises_on_sharded_collection():
    collection = make_sharded()
    with pytest.raises(QueryError):
        collection.find({"ncid": {"$wat": 1}})
    with pytest.raises(QueryError):
        collection.count_documents({"$bogus": []})


def test_duplicate_id_rejected_across_partitions():
    from repro.docstore.errors import DuplicateKeyError

    collection = Collection("c", shards=7)
    collection.insert_one({"_id": 1, "ncid": "AA1"})
    with pytest.raises(DuplicateKeyError):
        collection.insert_one({"_id": 1, "ncid": "ZZ9"})  # other partition


# ------------------------------------------------------------- determinism


def test_reads_deterministic_across_shard_and_worker_counts():
    docs = [{"_id": i, "ncid": f"AA{i % 5}", "n": i % 4} for i in range(30)]

    def compute(max_workers, shards):
        collection = Collection("c", shards=shards)
        collection.create_index("n", "sorted")
        collection.insert_many(dict(doc) for doc in docs)
        collection.read_workers = max_workers
        return {
            "find": collection.find({"n": {"$gte": 1}}, sort=[("n", -1)]),
            "agg": collection.aggregate(
                [
                    {"$match": {"n": {"$lte": 2}}},
                    {"$group": {"_id": "$ncid", "total": {"$sum": "$n"}}},
                ]
            ),
            "distinct": collection.distinct("ncid"),
            "count": collection.count_documents({"n": 2}),
        }

    report = determinism_check(
        compute,
        configs=((0, 1), (0, 2), (2, 2), (4, 7)),
        label="sharded reads",
    )
    assert report.consistent


# -------------------------------------------------------- snapshot isolation


def test_snapshot_pins_state_across_commit():
    database = Database("db", shards=4)
    clusters = database.create_collection("clusters")
    clusters.insert_many({"_id": i, "ncid": f"AA{i}", "n": i} for i in range(8))
    database.commit()

    view = database.read_view()
    snap = view["clusters"]
    assert snap.count_documents() == 8

    clusters.insert_one({"_id": 99, "ncid": "ZZ9", "n": 99})
    clusters.update_many({}, {"$inc": {"n": 100}})
    clusters.delete_many({"_id": 0})
    # Uncommitted writes are invisible to the pinned snapshot...
    assert snap.count_documents() == 8
    assert snap.find({"_id": 99}) == []
    assert snap.find_one({"_id": 1})["n"] == 1
    # ...and stay invisible to it even after the writer commits.
    database.commit()
    assert snap.count_documents() == 8
    assert snap.find_one({"_id": 1})["n"] == 1
    # A fresh view sees the committed state.
    fresh = database.read_view()["clusters"]
    assert fresh.count_documents() == 8  # 8 + 1 inserted - 1 deleted
    assert fresh.find_one({"_id": 1})["n"] == 101


def test_snapshot_aggregate_and_distinct_pin_too():
    database = Database("db", shards=2)
    collection = database.create_collection("c")
    collection.insert_many({"_id": i, "ncid": f"A{i}", "g": i % 2} for i in range(6))
    database.commit()
    snap = collection.snapshot()
    expected = snap.aggregate([{"$group": {"_id": "$g", "n": {"$sum": 1}}}])
    collection.delete_many({})
    database.commit()
    assert snap.aggregate([{"$group": {"_id": "$g", "n": {"$sum": 1}}}]) == expected
    assert snap.distinct("ncid") == [f"A{i}" for i in range(6)]
    assert list(collection.snapshot().all()) == []


def test_uncommitted_writes_invisible_to_new_snapshots():
    database = Database("db", shards=3)
    collection = database.create_collection("c")
    collection.insert_one({"_id": 1, "ncid": "AA1"})
    # No commit yet: a snapshot sees the initial (empty) published epoch.
    assert list(collection.snapshot().all()) == []
    database.commit()
    assert len(list(collection.snapshot().all())) == 1


def test_concurrent_readers_see_consistent_epochs():
    """Readers racing a committing writer never observe a torn epoch:
    every read returns a multiple of the per-commit batch, with every
    document carrying the same version stamp."""
    database = Database("db", shards=4)
    collection = database.create_collection("c")
    batch = 8
    stop = threading.Event()
    torn = []

    def reader():
        while not stop.is_set():
            snap = collection.snapshot()
            docs = list(snap.all())
            versions = {doc["v"] for doc in docs}
            if len(docs) % batch or len(versions) > (1 if docs else 0):
                torn.append((len(docs), versions))
                return

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    try:
        for version in range(25):
            for i in range(batch):
                collection.insert_one(
                    {"_id": version * batch + i, "ncid": f"A{i}", "v": version}
                )
            collection.update_many({}, {"$set": {"v": version}})
            database.commit()
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    assert not torn, f"torn reads observed: {torn[:3]}"


# --------------------------------------------------------------- durability


def sharded_workload(directory, mark=None):
    """Commit/checkpoint/drop cycle over a 3-shard collection."""
    database = DurableDatabase(Path(directory), shards=3)
    clusters = database.get_collection("clusters")
    for i in range(9):
        clusters.insert_one({"_id": i, "ncid": f"AA{i}", "n": i})
    clusters.create_index("ncid")
    database.commit()
    if mark:
        mark(database)
    clusters.update_one({"_id": 4}, {"$set": {"n": 40}})
    clusters.update_one({"_id": 5}, {"$set": {"ncid": "ZZ5"}})  # migrates
    clusters.delete_many({"_id": 6})
    database.checkpoint()
    if mark:
        mark(database)
    scratch = database.create_collection("scratch", shards=2)
    scratch.insert_one({"_id": 1, "ncid": "BB1"})
    database.commit()
    if mark:
        mark(database)
    database.drop_collection("scratch")
    clusters.insert_one({"_id": 10, "ncid": "AA10", "n": 10})
    database.commit()
    if mark:
        mark(database)
    database.close()


def canonical(database):
    state = {}
    for name in database.collection_names():
        collection = database[name]
        state[name] = {
            "docs": sorted(
                json.dumps(doc, sort_keys=True) for doc in collection.all()
            ),
            "indexes": sorted(
                json.dumps(spec, sort_keys=True)
                for spec in collection.index_specs()
            ),
        }
    return json.dumps(state, sort_keys=True)


EMPTY = canonical(Database("db"))


def reload_state(directory):
    from repro.docstore.errors import StorageError

    try:
        return canonical(Database.load(directory))
    except StorageError:
        return EMPTY


def test_partition_wals_roundtrip(tmp_path):
    sharded_workload(tmp_path / "store")
    wals = sorted(p.name for p in (tmp_path / "store").glob("*.wal"))
    assert "clusters@p0.wal" in wals and "clusters@p2.wal" in wals
    reopened = DurableDatabase(tmp_path / "store", shards=3)
    clusters = reopened.get_collection("clusters")
    assert clusters.nshards == 3
    assert len(clusters) == 9  # 9 inserted - 1 deleted + 1 inserted
    assert clusters.find_one({"_id": 4})["n"] == 40
    assert clusters.find_one({"_id": 5})["ncid"] == "ZZ5"
    assert "scratch" not in reopened
    reopened.close(commit=False)


def test_sharded_crash_sweep(tmp_path):
    """Crash at every filesystem op; recovery must land on a committed
    state with the per-partition logs merged back in sequence order."""
    states = {EMPTY}
    sharded_workload(
        tmp_path / "reference", mark=lambda db: states.add(canonical(db))
    )
    total = faults.count_ops(lambda: sharded_workload(tmp_path / "count"))
    assert total > 0
    failures = []
    for n in range(1, total + 1):
        target = tmp_path / f"crash-{n}"
        plan = faults.FaultyFileSystem(fail_at=n, mode="crash")
        with faults.inject(plan):
            with pytest.raises(faults.CrashError):
                sharded_workload(target)
        recovered = reload_state(target)
        if recovered not in states:
            failures.append((n, plan.failed_op))
            continue
        reopened = DurableDatabase(target, shards=3)
        agreed = canonical(reopened)
        reopened.close(commit=False)
        if agreed != recovered:
            failures.append((n, f"reopen disagrees after {plan.failed_op}"))
    assert not failures, f"{len(failures)}/{total} crash points leaked: {failures}"


def test_sharded_torn_write_sweep(tmp_path):
    states = {EMPTY}
    sharded_workload(
        tmp_path / "reference", mark=lambda db: states.add(canonical(db))
    )
    total = faults.count_ops(
        lambda: sharded_workload(tmp_path / "count"), only=("write",)
    )
    failures = []
    for n in range(1, total + 1):
        target = tmp_path / f"torn-{n}"
        plan = faults.FaultyFileSystem(fail_at=n, mode="torn", only=("write",))
        with faults.inject(plan):
            with pytest.raises(faults.CrashError):
                sharded_workload(target)
        if reload_state(target) not in states:
            failures.append((n, plan.failed_op))
    assert not failures, f"{len(failures)}/{total} torn points leaked: {failures}"


def test_readers_pinned_across_durable_commit(tmp_path):
    database = DurableDatabase(tmp_path / "store", shards=2)
    collection = database.get_collection("c")
    collection.insert_one({"_id": 1, "ncid": "AA1", "n": 1})
    database.commit()
    snap = collection.snapshot()
    collection.update_one({"_id": 1}, {"$set": {"n": 2}})
    assert snap.find_one({"_id": 1})["n"] == 1  # staged write invisible
    database.commit()
    assert snap.find_one({"_id": 1})["n"] == 1  # pinned epoch survives
    assert collection.snapshot().find_one({"_id": 1})["n"] == 2
    database.close(commit=False)


# -------------------------------------------------------------------- stats


def test_database_stats_reports_shard_balance():
    database = Database("db", shards=4)
    collection = database.create_collection("clusters")
    collection.insert_many(
        {"_id": i, "ncid": f"AA{i}", "n": i} for i in range(40)
    )
    database.create_collection("plain", shards=1).insert_one({"_id": 1})
    stats = database.stats()
    entry = stats["collections"]["clusters"]
    assert entry["documents"] == 40
    assert entry["shards"] == 4
    assert entry["shard_key"] == "ncid"
    assert sum(entry["shard_documents"]) == 40
    assert entry["balance_factor"] >= 1.0
    assert stats["collections"]["plain"]["shards"] == 1
    assert stats["collections"]["plain"]["balance_factor"] == 1.0


def test_stats_render_table():
    from repro.report import render_shard_stats

    database = Database("db", shards=2)
    database.create_collection("c").insert_one({"_id": 1, "ncid": "AA1"})
    text = render_shard_stats(database.stats())
    assert "balance" in text and "c" in text
