"""Tests for JSONL persistence of databases."""

import pytest

from repro.docstore import Database


@pytest.fixture
def populated(tmp_path):
    db = Database("ncvoter")
    clusters = db["clusters"]
    clusters.insert_many(
        [
            {"_id": "AA1", "ncid": "AA1", "records": [{"person": {"last_name": "SMITH"}}]},
            {"_id": "AA2", "ncid": "AA2", "records": []},
        ]
    )
    clusters.create_index("ncid")
    db["versions"].insert_one({"_id": 1, "note": "initial"})
    return db, tmp_path


class TestRoundTrip:
    def test_save_creates_files(self, populated):
        db, tmp_path = populated
        db.save(tmp_path)
        assert (tmp_path / "manifest.json").exists()
        assert (tmp_path / "clusters.jsonl").exists()
        assert (tmp_path / "versions.jsonl").exists()

    def test_documents_survive(self, populated):
        db, tmp_path = populated
        db.save(tmp_path)
        loaded = Database.load(tmp_path)
        assert loaded["clusters"].count_documents() == 2
        doc = loaded["clusters"].find_one({"_id": "AA1"})
        assert doc["records"][0]["person"]["last_name"] == "SMITH"

    def test_indexes_rebuilt(self, populated):
        db, tmp_path = populated
        db.save(tmp_path)
        loaded = Database.load(tmp_path)
        assert loaded["clusters"].index_names() == ["ncid_hash"]
        assert loaded["clusters"].find({"ncid": "AA2"})[0]["_id"] == "AA2"

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Database.load(tmp_path / "nowhere")

    def test_unicode_values_survive(self, tmp_path):
        db = Database("u")
        db["c"].insert_one({"_id": 1, "name": "X ÆA-12 MÜLLER"})
        db.save(tmp_path)
        loaded = Database.load(tmp_path)
        assert loaded["c"].find_one({"_id": 1})["name"] == "X ÆA-12 MÜLLER"

    def test_save_is_deterministic(self, populated):
        db, tmp_path = populated
        db.save(tmp_path / "a")
        db.save(tmp_path / "b")
        content_a = (tmp_path / "a" / "clusters.jsonl").read_text()
        content_b = (tmp_path / "b" / "clusters.jsonl").read_text()
        assert content_a == content_b
