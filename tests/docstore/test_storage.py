"""Tests for JSONL persistence of databases."""

import json

import pytest

from repro.docstore import Database, DurableDatabase, StorageCorruptError
from repro.docstore.storage import RecoveryReport, load_database


@pytest.fixture
def populated(tmp_path):
    db = Database("ncvoter")
    clusters = db["clusters"]
    clusters.insert_many(
        [
            {"_id": "AA1", "ncid": "AA1", "records": [{"person": {"last_name": "SMITH"}}]},
            {"_id": "AA2", "ncid": "AA2", "records": []},
        ]
    )
    clusters.create_index("ncid")
    db["versions"].insert_one({"_id": 1, "note": "initial"})
    return db, tmp_path


class TestRoundTrip:
    def test_save_creates_files(self, populated):
        db, tmp_path = populated
        db.save(tmp_path)
        assert (tmp_path / "manifest.json").exists()
        assert (tmp_path / "clusters.jsonl").exists()
        assert (tmp_path / "versions.jsonl").exists()

    def test_documents_survive(self, populated):
        db, tmp_path = populated
        db.save(tmp_path)
        loaded = Database.load(tmp_path)
        assert loaded["clusters"].count_documents() == 2
        doc = loaded["clusters"].find_one({"_id": "AA1"})
        assert doc["records"][0]["person"]["last_name"] == "SMITH"

    def test_indexes_rebuilt(self, populated):
        db, tmp_path = populated
        db.save(tmp_path)
        loaded = Database.load(tmp_path)
        assert loaded["clusters"].index_names() == ["ncid_hash"]
        assert loaded["clusters"].find({"ncid": "AA2"})[0]["_id"] == "AA2"

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Database.load(tmp_path / "nowhere")

    def test_unicode_values_survive(self, tmp_path):
        db = Database("u")
        db["c"].insert_one({"_id": 1, "name": "X ÆA-12 MÜLLER"})
        db.save(tmp_path)
        loaded = Database.load(tmp_path)
        assert loaded["c"].find_one({"_id": 1})["name"] == "X ÆA-12 MÜLLER"

    def test_save_is_deterministic(self, populated):
        db, tmp_path = populated
        db.save(tmp_path / "a")
        db.save(tmp_path / "b")
        content_a = (tmp_path / "a" / "clusters.jsonl").read_text()
        content_b = (tmp_path / "b" / "clusters.jsonl").read_text()
        assert content_a == content_b

    def test_save_leaves_no_tmp_files(self, populated):
        db, tmp_path = populated
        db.save(tmp_path)
        assert list(tmp_path.glob("*.tmp")) == []


class TestCorruptSnapshots:
    def _store(self, tmp_path):
        db = Database("db")
        db["c"].insert_many(
            [{"_id": 1, "v": "one"}, {"_id": 2, "v": "two"}, {"_id": 3, "v": "three"}]
        )
        db.save(tmp_path)
        return tmp_path

    def test_truncated_line_raises_with_location(self, tmp_path):
        self._store(tmp_path)
        path = tmp_path / "c.jsonl"
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # tear line 2 mid-document
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(StorageCorruptError) as info:
            Database.load(tmp_path)
        assert info.value.line == 2
        assert info.value.path.endswith("c.jsonl")
        assert "unparseable" in info.value.reason

    def test_repair_salvages_complete_lines(self, tmp_path):
        self._store(tmp_path)
        path = tmp_path / "c.jsonl"
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]
        path.write_text("\n".join(lines) + "\n")
        report = RecoveryReport()
        db = load_database(tmp_path, repair=True, report=report)
        assert db["c"].count_documents() == 2
        assert {d["_id"] for d in db["c"].all()} == {1, 3}
        assert report.salvaged == {str(path): 1}
        assert not report.clean
        assert "line 2" in report.render()

    def test_corrupt_manifest_raises(self, tmp_path):
        self._store(tmp_path)
        (tmp_path / "manifest.json").write_text("{broken")
        with pytest.raises(StorageCorruptError) as info:
            Database.load(tmp_path)
        assert "manifest" in info.value.reason

    def test_clean_load_reports_clean(self, tmp_path):
        self._store(tmp_path)
        report = RecoveryReport()
        load_database(tmp_path, report=report)
        assert report.clean


class TestDurableRecoveryReport:
    def test_replayed_operations_reported(self, tmp_path):
        db = DurableDatabase(tmp_path)
        db["c"].insert_one({"_id": 1})
        db.commit()
        db.close()
        report = RecoveryReport()
        loaded = load_database(tmp_path, report=report)
        assert loaded["c"].count_documents() == 1
        assert report.committed_epoch == 1
        assert report.replayed["c"] >= 1
        assert "replayed" in report.render()

    def test_committed_data_loss_detected(self, tmp_path):
        db = DurableDatabase(tmp_path)
        db["c"].insert_one({"_id": 1})
        db.checkpoint()          # snapshot at epoch 1
        db["c"].insert_one({"_id": 2})
        db.commit()              # epoch 2 lives only in the WAL
        db.close()
        # Lose the committed WAL content but keep the COMMITTED epoch.
        (tmp_path / "c.wal").write_bytes(b"RWAL0001")
        with pytest.raises(StorageCorruptError) as info:
            Database.load(tmp_path)
        assert "committed records lost" in info.value.reason

    def test_checkpoint_then_plain_load_equal_state(self, tmp_path):
        db = DurableDatabase(tmp_path)
        db["c"].insert_one({"_id": 1, "v": "x"})
        db.checkpoint()
        db.close()
        loaded = Database.load(tmp_path)
        assert [d["_id"] for d in loaded["c"].all()] == [1]
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["epoch"] == 1
