"""Unit tests for copy-on-read views and the plan cache internals.

``DocumentView``/``ListView`` must be observably identical to the deep
copies they replace — equality, iteration, JSON, pickling — while keeping
caller mutations away from the wrapped storage.  ``PlanCache`` must key
strictly by value *and type*, bound its maps, and invalidate on epoch
moves.
"""

import copy
import json
import pickle

from repro.docstore import Collection
from repro.docstore.plancache import (
    PlanCache,
    _PREDICATE_CACHE,
    cached_predicate,
    freeze_query,
    freeze_value,
    query_shape,
)
from repro.docstore.views import DocumentView, ListView, lazy_document, thaw, wrap_value


def sample():
    return {"a": 1, "nested": {"x": [1, {"deep": 2}]}, "tags": ["p", "q"]}


class TestDocumentView:
    def test_reads_equal_the_wrapped_document(self):
        stored = sample()
        view = lazy_document(stored)
        assert view == stored
        assert dict(view) == stored
        assert view["nested"]["x"][1]["deep"] == 2
        assert sorted(view) == sorted(stored)
        assert len(view) == len(stored)
        assert json.dumps(view, sort_keys=True) == json.dumps(
            stored, sort_keys=True
        )

    def test_nested_access_returns_memoized_views(self):
        view = lazy_document(sample())
        assert isinstance(view["nested"], DocumentView)
        assert isinstance(view["tags"], ListView)
        assert view["nested"] is view["nested"]  # wrapped once, reused

    def test_mutations_stay_in_the_view(self):
        stored = sample()
        view = lazy_document(stored)
        view["a"] = 99
        view["nested"]["x"].append("extra")
        view["nested"]["x"][1]["deep"] = -1
        view["tags"].pop()
        del view["nested"]["x"][0]
        assert stored == sample()  # storage untouched
        assert view["a"] == 99
        assert view["nested"]["x"][0]["deep"] == -1

    def test_items_and_values_wrap_everything(self):
        view = lazy_document(sample())
        for _key, value in view.items():
            if isinstance(value, (dict, list)):
                assert isinstance(value, (DocumentView, ListView))
        assert all(
            not type(value) in (dict, list) for value in view.values()
        )

    def test_deepcopy_and_pickle_escape_to_plain_containers(self):
        view = lazy_document(sample())
        for clone in (copy.deepcopy(view), pickle.loads(pickle.dumps(view))):
            assert clone == sample()
            assert type(clone) is dict
            assert type(clone["nested"]) is dict
            assert type(clone["nested"]["x"]) is list

    def test_thaw_returns_independent_plain_copy(self):
        stored = sample()
        thawed = thaw(lazy_document(stored))
        assert type(thawed) is dict and thawed == stored
        thawed["nested"]["x"][1]["deep"] = -5
        assert stored == sample()

    def test_wrap_value_passes_scalars_and_views_through(self):
        assert wrap_value(7) == 7
        assert wrap_value("s") == "s"
        assert wrap_value(None) is None
        view = lazy_document(sample())
        assert wrap_value(view) is view
        assert isinstance(wrap_value([1, 2]), ListView)


class TestRawCopyEscapes:
    """C-level copy APIs must never expose the stored containers.

    ``dict(view)`` / ``{**view}`` / ``plain.update(view)`` normally take a
    raw-table fast path that ignores ``__getitem__``; the ``__iter__``
    override opts the views out of it, so every copy's nested containers
    are themselves views and mutating a copy can never reach the store.
    """

    def assert_store_safe(self, stored, copied):
        copied["nested"]["x"].append("poison")
        copied["nested"]["x"][1]["deep"] = "poison"
        copied["tags"].append("poison")
        assert stored == sample()

    def test_dict_constructor_wraps_nested_containers(self):
        stored = sample()
        self.assert_store_safe(stored, dict(lazy_document(stored)))

    def test_dict_unpacking_wraps_nested_containers(self):
        stored = sample()
        self.assert_store_safe(stored, {**lazy_document(stored)})

    def test_plain_dict_update_wraps_nested_containers(self):
        stored = sample()
        target = {}
        target.update(lazy_document(stored))
        self.assert_store_safe(stored, target)

    def test_view_copy_wraps_nested_containers(self):
        stored = sample()
        copied = lazy_document(stored).copy()
        assert type(copied) is dict
        self.assert_store_safe(stored, copied)

    def test_dict_union_wraps_nested_containers(self):
        stored = sample()
        self.assert_store_safe(stored, lazy_document(stored) | {"extra": 1})
        self.assert_store_safe(stored, {"extra": 1} | lazy_document(stored))

    def test_list_copy_concat_and_repeat_wrap_elements(self):
        stored = sample()
        view = lazy_document(stored)
        for copied in (
            view["tags"].copy(),
            view["tags"] + ["z"],
            ["z"] + view["tags"],
            view["tags"] * 2,
            2 * view["tags"],
            view["nested"]["x"] + view["nested"]["x"],
        ):
            assert type(copied) is list
            for element in copied:
                if isinstance(element, dict):
                    element["deep"] = "poison"
        assert stored == sample()

    def test_list_constructor_and_extend_wrap_elements(self):
        stored = sample()
        view = lazy_document(stored)
        target = list(view["nested"]["x"])
        target.extend(view["nested"]["x"])
        for element in target:
            if isinstance(element, dict):
                element["deep"] = "poison"
        assert stored == sample()


class TestWriteAfterReadStability:
    """Results handed out before a write must never change after it.

    Eager mode returned independent deep copies; lazy views must match
    that: an in-place update applied to a document a view was built over
    has to copy first (``Partition.expose`` drops in-place ownership on
    every lazy read), even inside one unpublished epoch.
    """

    def test_update_after_find_one_leaves_result_stable(self):
        collection = Collection("c")
        collection.insert_one({"_id": 1, "a": {"b": 1}, "tags": [1]})
        before = collection.find_one({"_id": 1})
        collection.update_one({"_id": 1}, {"$set": {"a.b": 2}})
        collection.update_one({"_id": 1}, {"$push": {"tags": 9}})
        assert before["a"]["b"] == 1
        assert before["tags"] == [1]
        assert collection.find_one({"_id": 1})["a"]["b"] == 2

    def test_update_after_find_leaves_results_stable_sharded(self):
        collection = Collection("c", shards=3)
        collection.insert_many(
            {"_id": i, "ncid": f"NC{i}", "a": {"b": i}} for i in range(6)
        )
        before = collection.find({}, sort=[("_id", 1)])
        collection.update_many({}, {"$set": {"a.b": -1}})
        assert [doc["a"]["b"] for doc in before] == list(range(6))

    def test_repeated_update_between_reads_copies_each_time(self):
        collection = Collection("c")
        collection.insert_one({"_id": 1, "a": {"b": 0}})
        held = []
        for expected in range(3):
            held.append(collection.find_one({"_id": 1}))
            collection.update_one({"_id": 1}, {"$inc": {"a.b": 1}})
        assert [doc["a"]["b"] for doc in held] == [0, 1, 2]

    def test_interleaved_all_iteration_stays_stable(self):
        collection = Collection("c")
        collection.insert_many({"_id": i, "a": {"b": i}} for i in range(4))
        stream = collection.all()
        held = [next(stream), next(stream)]
        collection.update_many({}, {"$set": {"a.b": -1}})
        held.extend(stream)
        assert [doc["a"]["b"] for doc in held[:2]] == [0, 1]
        # Documents materialized after the write see its effect, as eager
        # iteration over live state always did.
        assert [doc["a"]["b"] for doc in held[2:]] == [-1, -1]


class TestFreezing:
    def test_scalars_are_type_tagged(self):
        # 1, True and 1.0 are equal (and hash-equal) in Python but compile
        # to different predicates — their cache keys must differ.
        keys = {freeze_value(1), freeze_value(True), freeze_value(1.0)}
        assert len(keys) == 3

    def test_structures_freeze_hashable(self):
        frozen = freeze_value({"a": [1, {"b": (2, 3)}], "c": {"d": None}})
        assert hash(frozen) is not None

    def test_unfreezable_values_fall_back(self):
        class Opaque:
            __hash__ = None

        sentinel = freeze_value({"a": Opaque()})
        assert freeze_query({"a": Opaque()}, None) is sentinel

    def test_query_shape_ignores_constants_but_not_structure(self):
        assert query_shape({"a": 1}) == query_shape({"a": 2})
        assert query_shape({"a": 1}) != query_shape({"b": 1})
        assert query_shape({"a": 1}) != query_shape({"a": {"$gt": 1}})
        # None-ness is a planning branch, so it is part of the shape.
        assert query_shape({"a": None}) != query_shape({"a": 1})

    def test_cached_predicate_is_memoized_per_filter_value(self):
        _PREDICATE_CACHE.clear()
        first = cached_predicate({"a": {"$gte": 3}})
        assert cached_predicate({"a": {"$gte": 3}}) is first
        assert cached_predicate({"a": {"$gte": 4}}) is not first
        assert first({"a": 5}) and not first({"a": 1})


class TestPlanCache:
    def make(self, count=6):
        collection = Collection("c", shards=3)
        collection.create_index("ncid", "hash")
        collection.insert_many(
            {"_id": i, "ncid": f"NC{i}", "n": i} for i in range(count)
        )
        return collection

    def test_repeat_reads_hit_the_bound_plan_memo(self):
        collection = self.make()
        collection.find({"ncid": "NC1"})
        before = collection._plan_cache.stats()
        collection.find({"ncid": "NC1"})
        after = collection._plan_cache.stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_writes_invalidate_epoch_scoped_entries(self):
        collection = self.make()
        collection.find({"ncid": "NC1"})
        collection.insert_one({"_id": 99, "ncid": "NC99"})
        before = collection._plan_cache.stats()
        results = collection.find({"ncid": "NC99"})  # re-plans, sees the doc
        assert [doc["_id"] for doc in results] == [99]
        after = collection._plan_cache.stats()
        assert after["invalidated"] == before["invalidated"] + 1

    def test_route_cache_survives_epochs(self):
        collection = self.make()
        collection.find({"ncid": "NC1"})
        routes_before = dict(collection._plan_cache._routes)
        collection.insert_one({"_id": 98, "ncid": "NC98"})
        collection.find({"ncid": "NC1"})
        # The shard layout is immutable, so routes outlive the epoch bump.
        for key, value in routes_before.items():
            assert collection._plan_cache._routes[key] == value

    def test_maps_are_fifo_bounded(self):
        cache = PlanCache()
        collection = self.make()
        collection._plan_cache = cache
        for i in range(cache.LIMIT + 40):
            collection.find({"ncid": f"NC{i}", "probe": i})
        assert len(cache._plans) <= cache.LIMIT
        assert len(cache._templates) <= cache.LIMIT
        assert len(cache._routes) <= cache.LIMIT
        assert len(_PREDICATE_CACHE) <= 1024

    def test_disabled_cache_stays_cold_and_correct(self):
        collection = self.make()
        collection.plan_cache_enabled = False
        expected = collection.find({"ncid": "NC2"})
        assert collection.find({"ncid": "NC2"}) == expected
        assert collection._plan_cache.stats() == {
            "hits": 0,
            "misses": 0,
            "invalidated": 0,
        }
