"""Unit tests for copy-on-read views and the plan cache internals.

``DocumentView``/``ListView`` must be observably identical to the deep
copies they replace — equality, iteration, JSON, pickling — while keeping
caller mutations away from the wrapped storage.  ``PlanCache`` must key
strictly by value *and type*, bound its maps, and invalidate on epoch
moves.
"""

import copy
import json
import pickle

from repro.docstore import Collection
from repro.docstore.plancache import (
    PlanCache,
    _PREDICATE_CACHE,
    cached_predicate,
    freeze_query,
    freeze_value,
    query_shape,
)
from repro.docstore.views import DocumentView, ListView, lazy_document, thaw, wrap_value


def sample():
    return {"a": 1, "nested": {"x": [1, {"deep": 2}]}, "tags": ["p", "q"]}


class TestDocumentView:
    def test_reads_equal_the_wrapped_document(self):
        stored = sample()
        view = lazy_document(stored)
        assert view == stored
        assert dict(view) == stored
        assert view["nested"]["x"][1]["deep"] == 2
        assert sorted(view) == sorted(stored)
        assert len(view) == len(stored)
        assert json.dumps(view, sort_keys=True) == json.dumps(
            stored, sort_keys=True
        )

    def test_nested_access_returns_memoized_views(self):
        view = lazy_document(sample())
        assert isinstance(view["nested"], DocumentView)
        assert isinstance(view["tags"], ListView)
        assert view["nested"] is view["nested"]  # wrapped once, reused

    def test_mutations_stay_in_the_view(self):
        stored = sample()
        view = lazy_document(stored)
        view["a"] = 99
        view["nested"]["x"].append("extra")
        view["nested"]["x"][1]["deep"] = -1
        view["tags"].pop()
        del view["nested"]["x"][0]
        assert stored == sample()  # storage untouched
        assert view["a"] == 99
        assert view["nested"]["x"][0]["deep"] == -1

    def test_items_and_values_wrap_everything(self):
        view = lazy_document(sample())
        for _key, value in view.items():
            if isinstance(value, (dict, list)):
                assert isinstance(value, (DocumentView, ListView))
        assert all(
            not type(value) in (dict, list) for value in view.values()
        )

    def test_deepcopy_and_pickle_escape_to_plain_containers(self):
        view = lazy_document(sample())
        for clone in (copy.deepcopy(view), pickle.loads(pickle.dumps(view))):
            assert clone == sample()
            assert type(clone) is dict
            assert type(clone["nested"]) is dict
            assert type(clone["nested"]["x"]) is list

    def test_thaw_returns_independent_plain_copy(self):
        stored = sample()
        thawed = thaw(lazy_document(stored))
        assert type(thawed) is dict and thawed == stored
        thawed["nested"]["x"][1]["deep"] = -5
        assert stored == sample()

    def test_wrap_value_passes_scalars_and_views_through(self):
        assert wrap_value(7) == 7
        assert wrap_value("s") == "s"
        assert wrap_value(None) is None
        view = lazy_document(sample())
        assert wrap_value(view) is view
        assert isinstance(wrap_value([1, 2]), ListView)


class TestFreezing:
    def test_scalars_are_type_tagged(self):
        # 1, True and 1.0 are equal (and hash-equal) in Python but compile
        # to different predicates — their cache keys must differ.
        keys = {freeze_value(1), freeze_value(True), freeze_value(1.0)}
        assert len(keys) == 3

    def test_structures_freeze_hashable(self):
        frozen = freeze_value({"a": [1, {"b": (2, 3)}], "c": {"d": None}})
        assert hash(frozen) is not None

    def test_unfreezable_values_fall_back(self):
        class Opaque:
            __hash__ = None

        sentinel = freeze_value({"a": Opaque()})
        assert freeze_query({"a": Opaque()}, None) is sentinel

    def test_query_shape_ignores_constants_but_not_structure(self):
        assert query_shape({"a": 1}) == query_shape({"a": 2})
        assert query_shape({"a": 1}) != query_shape({"b": 1})
        assert query_shape({"a": 1}) != query_shape({"a": {"$gt": 1}})
        # None-ness is a planning branch, so it is part of the shape.
        assert query_shape({"a": None}) != query_shape({"a": 1})

    def test_cached_predicate_is_memoized_per_filter_value(self):
        _PREDICATE_CACHE.clear()
        first = cached_predicate({"a": {"$gte": 3}})
        assert cached_predicate({"a": {"$gte": 3}}) is first
        assert cached_predicate({"a": {"$gte": 4}}) is not first
        assert first({"a": 5}) and not first({"a": 1})


class TestPlanCache:
    def make(self, count=6):
        collection = Collection("c", shards=3)
        collection.create_index("ncid", "hash")
        collection.insert_many(
            {"_id": i, "ncid": f"NC{i}", "n": i} for i in range(count)
        )
        return collection

    def test_repeat_reads_hit_the_bound_plan_memo(self):
        collection = self.make()
        collection.find({"ncid": "NC1"})
        before = collection._plan_cache.stats()
        collection.find({"ncid": "NC1"})
        after = collection._plan_cache.stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_writes_invalidate_epoch_scoped_entries(self):
        collection = self.make()
        collection.find({"ncid": "NC1"})
        collection.insert_one({"_id": 99, "ncid": "NC99"})
        before = collection._plan_cache.stats()
        results = collection.find({"ncid": "NC99"})  # re-plans, sees the doc
        assert [doc["_id"] for doc in results] == [99]
        after = collection._plan_cache.stats()
        assert after["invalidated"] == before["invalidated"] + 1

    def test_route_cache_survives_epochs(self):
        collection = self.make()
        collection.find({"ncid": "NC1"})
        routes_before = dict(collection._plan_cache._routes)
        collection.insert_one({"_id": 98, "ncid": "NC98"})
        collection.find({"ncid": "NC1"})
        # The shard layout is immutable, so routes outlive the epoch bump.
        for key, value in routes_before.items():
            assert collection._plan_cache._routes[key] == value

    def test_maps_are_fifo_bounded(self):
        cache = PlanCache()
        collection = self.make()
        collection._plan_cache = cache
        for i in range(cache.LIMIT + 40):
            collection.find({"ncid": f"NC{i}", "probe": i})
        assert len(cache._plans) <= cache.LIMIT
        assert len(cache._templates) <= cache.LIMIT
        assert len(cache._routes) <= cache.LIMIT
        assert len(_PREDICATE_CACHE) <= 1024

    def test_disabled_cache_stays_cold_and_correct(self):
        collection = self.make()
        collection.plan_cache_enabled = False
        expected = collection.find({"ncid": "NC2"})
        assert collection.find({"ncid": "NC2"}) == expected
        assert collection._plan_cache.stats() == {
            "hits": 0,
            "misses": 0,
            "invalidated": 0,
        }
