"""Tests for collection CRUD, indexes and query routing."""

import pytest

from repro.docstore import Collection, Database, DuplicateKeyError, QueryError


@pytest.fixture
def people():
    collection = Collection("people")
    collection.insert_many(
        [
            {"_id": "p1", "name": "ANNA", "age": 33, "tags": ["a", "b"]},
            {"_id": "p2", "name": "BRUNO", "age": 41},
            {"_id": "p3", "name": "CARLA", "age": 27, "tags": ["b"]},
        ]
    )
    return collection


class TestInsert:
    def test_insert_assigns_integer_id(self):
        collection = Collection("c")
        assigned = collection.insert_one({"x": 1})
        assert isinstance(assigned, int)
        assert collection.find_one({"x": 1})["_id"] == assigned

    def test_explicit_id_preserved(self):
        collection = Collection("c")
        assert collection.insert_one({"_id": "abc"}) == "abc"

    def test_duplicate_id_rejected(self):
        collection = Collection("c")
        collection.insert_one({"_id": 1})
        with pytest.raises(DuplicateKeyError):
            collection.insert_one({"_id": 1})

    def test_non_dict_rejected(self):
        with pytest.raises(QueryError):
            Collection("c").insert_one([1, 2])

    def test_insert_copies_input(self):
        collection = Collection("c")
        document = {"x": {"y": 1}}
        collection.insert_one(document)
        document["x"]["y"] = 99
        assert collection.find_one({})["x"]["y"] == 1


class TestFind:
    def test_find_all(self, people):
        assert len(people.find()) == 3

    def test_find_filtered(self, people):
        results = people.find({"age": {"$gt": 30}})
        assert {doc["_id"] for doc in results} == {"p1", "p2"}

    def test_find_one(self, people):
        assert people.find_one({"name": "CARLA"})["_id"] == "p3"
        assert people.find_one({"name": "NOBODY"}) is None

    def test_find_returns_copies(self, people):
        result = people.find_one({"_id": "p1"})
        result["name"] = "MUTATED"
        assert people.find_one({"_id": "p1"})["name"] == "ANNA"

    def test_sort_and_limit(self, people):
        results = people.find(sort=[("age", -1)], limit=2)
        assert [doc["_id"] for doc in results] == ["p2", "p1"]

    def test_sort_ascending(self, people):
        results = people.find(sort=[("age", 1)])
        assert [doc["age"] for doc in results] == [27, 33, 41]

    def test_projection(self, people):
        results = people.find({"_id": "p1"}, projection={"name": 1, "_id": 0})
        assert results == [{"name": "ANNA"}]

    def test_count(self, people):
        assert people.count_documents() == 3
        assert people.count_documents({"tags": "b"}) == 2


class TestUpdate:
    def test_set(self, people):
        assert people.update_one({"_id": "p1"}, {"$set": {"age": 34}}) == 1
        assert people.find_one({"_id": "p1"})["age"] == 34

    def test_set_nested_path(self, people):
        people.update_one({"_id": "p1"}, {"$set": {"meta.score": 0.5}})
        assert people.find_one({"_id": "p1"})["meta"] == {"score": 0.5}

    def test_unset(self, people):
        people.update_one({"_id": "p1"}, {"$unset": {"tags": ""}})
        assert "tags" not in people.find_one({"_id": "p1"})

    def test_inc(self, people):
        people.update_one({"_id": "p2"}, {"$inc": {"age": 2}})
        assert people.find_one({"_id": "p2"})["age"] == 43

    def test_inc_creates_field(self, people):
        people.update_one({"_id": "p2"}, {"$inc": {"visits": 1}})
        assert people.find_one({"_id": "p2"})["visits"] == 1

    def test_push(self, people):
        people.update_one({"_id": "p3"}, {"$push": {"tags": "c"}})
        assert people.find_one({"_id": "p3"})["tags"] == ["b", "c"]

    def test_push_creates_array(self, people):
        people.update_one({"_id": "p2"}, {"$push": {"tags": "z"}})
        assert people.find_one({"_id": "p2"})["tags"] == ["z"]

    def test_update_many(self, people):
        touched = people.update_many({"age": {"$gt": 30}}, {"$set": {"adult": True}})
        assert touched == 2

    def test_update_requires_operators(self, people):
        with pytest.raises(QueryError):
            people.update_one({"_id": "p1"}, {"age": 1})

    def test_id_is_immutable(self, people):
        with pytest.raises(QueryError):
            people.update_one({"_id": "p1"}, {"$set": {"_id": "zz"}})

    def test_replace_one_keeps_id(self, people):
        assert people.replace_one({"_id": "p1"}, {"name": "NEW"}) == 1
        replaced = people.find_one({"_id": "p1"})
        assert replaced == {"_id": "p1", "name": "NEW"}

    def test_replace_missing_returns_zero(self, people):
        assert people.replace_one({"_id": "nope"}, {"x": 1}) == 0


class TestDelete:
    def test_delete_many(self, people):
        assert people.delete_many({"tags": "b"}) == 2
        assert people.count_documents() == 1

    def test_delete_frees_id(self, people):
        people.delete_many({"_id": "p1"})
        people.insert_one({"_id": "p1", "name": "REBORN"})
        assert people.find_one({"_id": "p1"})["name"] == "REBORN"


class TestIndexRouting:
    def test_hash_index_returns_same_results_as_scan(self, people):
        expected = people.find({"name": "ANNA"})
        people.create_index("name")
        assert people.find({"name": "ANNA"}) == expected

    def test_index_maintained_across_updates(self, people):
        people.create_index("name")
        people.update_one({"_id": "p1"}, {"$set": {"name": "ZARA"}})
        assert people.find({"name": "ZARA"})[0]["_id"] == "p1"
        assert people.find({"name": "ANNA"}) == []

    def test_index_maintained_across_deletes(self, people):
        people.create_index("name")
        people.delete_many({"_id": "p1"})
        assert people.find({"name": "ANNA"}) == []

    def test_id_lookup_fast_path(self, people):
        assert people.find({"_id": "p2"})[0]["name"] == "BRUNO"
        assert people.find({"_id": "unknown"}) == []

    def test_create_index_idempotent(self, people):
        first = people.create_index("name")
        second = people.create_index("name")
        assert first == second
        assert people.index_names() == ["name_hash"]

    def test_multikey_index_on_arrays(self, people):
        people.create_index("tags")
        results = people.find({"tags": "b"})
        assert {doc["_id"] for doc in results} == {"p1", "p3"}


class TestDatabase:
    def test_lazy_collection_creation(self):
        db = Database("test")
        db["one"].insert_one({"x": 1})
        assert db.collection_names() == ["one"]
        assert "one" in db

    def test_create_existing_rejected(self):
        db = Database("test")
        db.create_collection("c")
        with pytest.raises(Exception):
            db.create_collection("c")

    def test_get_without_create(self):
        from repro.docstore import CollectionNotFound

        db = Database("test")
        with pytest.raises(CollectionNotFound):
            db.get_collection("missing", create=False)

    def test_drop_collection(self):
        db = Database("test")
        db["a"].insert_one({})
        db.drop_collection("a")
        assert db.collection_names() == []
