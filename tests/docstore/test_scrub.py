"""Scrubber, quarantine/degraded-read and repair tests.

The robustness contract on top of crash recovery: corruption in one
partition's files takes exactly that partition dark (quarantine) instead
of failing the whole store; reads that only touch healthy shards keep
working bit-identically; reads that touch the dark shard raise a typed
error unless the caller opts into degraded results; writes to the dark
shard are refused; ``repair()`` salvages what the damaged files still
hold and lifts the quarantine.  ``scrub_database`` finds all of this
offline without modifying a byte.
"""

import json
import warnings
from pathlib import Path

import pytest

from repro.docstore import (
    Database,
    DegradedReadError,
    DegradedReadWarning,
    DegradedWriteError,
    DurableDatabase,
    StorageError,
    scrub_database,
    shard_key_shard,
)
from repro.docstore.errors import DocStoreError
from repro.docstore.scrub import repair_database
from repro.docstore.wal import WAL_MAGIC, wal_filename

#: ncids landing on shards 0, 1 and 2 of a 3-way layout (crc32 placement).
SNAP_IDS = ("AA1", "AA2", "AA7")
WAL_IDS = ("AA3", "AA5", "AA9")
DARK_SHARD = 2  # shard of AA7/AA9


def build_sharded_store(directory):
    """Snapshot holding SNAP_IDS, per-partition WALs holding WAL_IDS."""
    database = DurableDatabase(Path(directory), shards=3)
    docs = database["docs"]
    for ncid in SNAP_IDS:
        docs.insert_one({"_id": ncid, "ncid": ncid, "stage": "snapshot"})
    database.checkpoint()
    for ncid in WAL_IDS:
        docs.insert_one({"_id": ncid, "ncid": ncid, "stage": "wal"})
    database.commit()
    database.close()
    return Path(directory)


def build_checkpointed_store(directory):
    """Like :func:`build_sharded_store` but ending at the checkpoint, so
    the manifest checksum is authoritative (no interrupted-checkpoint
    window for a corrupt snapshot to hide in)."""
    database = DurableDatabase(Path(directory), shards=3)
    docs = database["docs"]
    for ncid in SNAP_IDS + WAL_IDS:
        docs.insert_one({"_id": ncid, "ncid": ncid, "stage": "snapshot"})
    database.checkpoint()
    database.close(commit=False)
    return Path(directory)


def corrupt_wal_frame(path):
    """Flip a payload byte of the first record; later frames stay valid."""
    data = bytearray(path.read_bytes())
    offset = len(WAL_MAGIC) + 8 + 4  # file magic + frame header + into payload
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


def dark_wal(store):
    return store / wal_filename("docs", DARK_SHARD, 3)


@pytest.fixture()
def degraded_store(tmp_path):
    """A sharded store reopened after mid-file WAL corruption on one shard."""
    store = build_sharded_store(tmp_path / "store")
    corrupt_wal_frame(dark_wal(store))
    return store


def test_shard_ids_cover_the_layout():
    assert [shard_key_shard(n, 3) for n in SNAP_IDS] == [0, 1, 2]
    assert [shard_key_shard(n, 3) for n in WAL_IDS] == [0, 1, 2]


class TestScrubFindings:
    def test_clean_store_is_clean(self, tmp_path):
        store = build_sharded_store(tmp_path / "store")
        report = scrub_database(store)
        assert report.ok and report.clean
        assert report.files_checked >= 4  # manifest, snapshot, 3 WALs
        assert report.bytes_checked > 0
        assert "no problems found" in report.render()

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(StorageError):
            scrub_database(tmp_path / "nowhere")

    def test_corrupt_wal_is_an_error(self, degraded_store):
        report = scrub_database(degraded_store)
        assert not report.ok
        kinds = {finding.kind for finding in report.errors}
        assert "wal-corrupt" in kinds
        [finding] = [f for f in report.errors if f.kind == "wal-corrupt"]
        assert finding.collection == "docs"
        assert finding.partition == DARK_SHARD

    def test_corrupt_snapshot_is_an_error(self, tmp_path):
        store = build_checkpointed_store(tmp_path / "store")
        path = store / "docs.jsonl"
        text = path.read_text()
        path.write_text(text.replace('"', "X", 1))
        report = scrub_database(store)
        kinds = {finding.kind for finding in report.errors}
        assert "snapshot-checksum" in kinds
        assert "snapshot-parse" in kinds  # deep pass parses every line

    def test_shallow_skips_line_parsing(self, tmp_path):
        store = build_checkpointed_store(tmp_path / "store")
        path = store / "docs.jsonl"
        path.write_text(path.read_text().replace('"', "X", 1))
        report = scrub_database(store, deep=False)
        kinds = {finding.kind for finding in report.errors}
        assert "snapshot-checksum" in kinds
        assert "snapshot-parse" not in kinds

    def test_interrupted_checkpoint_checksum_is_a_warning(self, tmp_path):
        """COMMITTED beyond the manifest epoch marks the repairable window."""
        store = build_sharded_store(tmp_path / "store")  # commit after ckpt
        path = store / "docs.jsonl"
        path.write_text(path.read_text() + "\n")  # size mismatch, still parses
        report = scrub_database(store)
        assert report.ok
        assert any(
            f.kind == "snapshot-checksum" and "interrupted checkpoint" in f.detail
            for f in report.warnings
        )

    def test_orphan_tmp_is_a_warning(self, tmp_path):
        store = build_sharded_store(tmp_path / "store")
        (store / "docs.jsonl.tmp").write_bytes(b"half")
        report = scrub_database(store)
        assert report.ok  # warnings do not fail a scrub
        assert {finding.kind for finding in report.warnings} == {"orphan-tmp"}

    def test_quarantine_flags_reported(self, degraded_store):
        DurableDatabase(degraded_store, shards=3).close(commit=False)
        report = scrub_database(degraded_store)
        assert report.quarantined == {"docs": [DARK_SHARD]}
        assert not report.ok
        assert any(f.kind == "quarantine" for f in report.warnings)

    def test_to_dict_round_trips_through_json(self, degraded_store):
        report = scrub_database(degraded_store)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is False
        assert payload["findings"]
        assert payload["committed_epoch"] == report.committed_epoch


class TestQuarantinedDegradedReads:
    def test_reopen_quarantines_only_the_corrupt_shard(self, degraded_store):
        database = DurableDatabase(degraded_store, shards=3)
        assert database.last_recovery.quarantined == {"docs": [DARK_SHARD]}
        assert database["docs"].quarantined_shards == [DARK_SHARD]
        database.close(commit=False)

    def test_healthy_shard_reads_are_bit_identical(self, tmp_path):
        pristine = build_sharded_store(tmp_path / "pristine")
        oracle = DurableDatabase(pristine, shards=3)
        expected = {
            ncid: oracle["docs"].find_one({"ncid": ncid})
            for ncid in ("AA1", "AA2", "AA3", "AA5")
        }
        oracle.close(commit=False)

        store = build_sharded_store(tmp_path / "store")
        corrupt_wal_frame(dark_wal(store))
        database = DurableDatabase(store, shards=3)
        for ncid, doc in expected.items():  # all route to healthy shards
            assert database["docs"].find_one({"ncid": ncid}) == doc
        database.close(commit=False)

    def test_dark_shard_point_read_raises(self, degraded_store):
        database = DurableDatabase(degraded_store, shards=3)
        with pytest.raises(DegradedReadError) as excinfo:
            database["docs"].find_one({"ncid": "AA7"})
        assert excinfo.value.shards == [DARK_SHARD]
        database.close(commit=False)

    def test_scatter_read_requires_opt_in(self, degraded_store):
        database = DurableDatabase(degraded_store, shards=3)
        docs = database["docs"]
        with pytest.raises(DegradedReadError):
            docs.find({})
        with pytest.warns(DegradedReadWarning):
            partial = docs.find({}, allow_degraded=True)
        assert {doc["ncid"] for doc in partial} == {"AA1", "AA2", "AA3", "AA5"}
        database.close(commit=False)

    def test_degraded_aggregate_and_count(self, degraded_store):
        database = DurableDatabase(degraded_store, shards=3)
        docs = database["docs"]
        with pytest.raises(DegradedReadError):
            docs.count_documents()
        with pytest.warns(DegradedReadWarning):
            assert docs.count_documents(allow_degraded=True) == 4
        with pytest.warns(DegradedReadWarning):
            rows = docs.aggregate(
                [{"$group": {"_id": None, "n": {"$sum": 1}}}],
                allow_degraded=True,
            )
        assert rows[0]["n"] == 4
        database.close(commit=False)

    def test_writes_to_dark_shard_refused(self, degraded_store):
        database = DurableDatabase(degraded_store, shards=3)
        docs = database["docs"]
        with pytest.raises(DegradedWriteError):
            docs.insert_one({"_id": "BA5", "ncid": "BA5"})  # routes to shard 2
        with pytest.raises(DegradedWriteError):
            docs.update_one({"ncid": "AA7"}, {"$set": {"x": 1}})
        with pytest.raises(DegradedWriteError):
            docs.delete_many({})  # scatter write touches the dark shard
        database.close(commit=False)

    def test_healthy_shard_writes_still_commit(self, degraded_store):
        database = DurableDatabase(degraded_store, shards=3)
        docs = database["docs"]
        docs.insert_one({"_id": "BA0", "ncid": "BA0", "stage": "post"})
        database.commit()
        database.close(commit=False)
        reopened = DurableDatabase(degraded_store, shards=3)
        assert reopened["docs"].find_one({"ncid": "BA0"}) is not None
        assert reopened["docs"].quarantined_shards == [DARK_SHARD]
        reopened.close(commit=False)

    def test_checkpoint_preserves_the_dark_shards_history(self, degraded_store):
        database = DurableDatabase(degraded_store, shards=3)
        database.checkpoint()  # must not fold healthy shards over the store
        database.close(commit=False)
        assert dark_wal(degraded_store).with_suffix(
            ".wal.quarantined"
        ).is_dir() or list(degraded_store.glob("*.quarantined"))
        report = repair_database(degraded_store)
        salvaged = DurableDatabase(degraded_store, shards=3)
        # The snapshot rows of the dark shard survived quarantine+repair.
        assert salvaged["docs"].find_one({"ncid": "AA7"}) is not None
        assert report.committed_epoch > 0
        salvaged.close(commit=False)

    def test_stats_surface_quarantine_and_degraded_reads(self, degraded_store):
        database = DurableDatabase(degraded_store, shards=3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedReadWarning)
            list(database["docs"].all(allow_degraded=True))
        stats = database.stats()
        entry = stats["collections"]["docs"]
        assert entry["quarantined_shards"] == [DARK_SHARD]
        assert entry["degraded_reads"] == 1
        assert stats["resilience"]["quarantined_shards"] == 1
        assert stats["resilience"]["degraded_reads"] == 1
        database.close(commit=False)


class TestRepair:
    def test_repair_lifts_quarantine_and_keeps_salvageable_data(
        self, degraded_store
    ):
        database = DurableDatabase(degraded_store, shards=3)
        report = database.repair()
        assert database.last_repair is report
        docs = database["docs"]
        assert docs.quarantined_shards == []
        # Snapshot rows of the dark shard and every healthy row survive;
        # only the corrupted committed frame (AA9) may be gone.
        present = {doc["ncid"] for doc in docs.all()}
        assert {"AA1", "AA2", "AA3", "AA5", "AA7"} <= present
        assert scrub_database(degraded_store).ok
        database.close()

    def test_repaired_store_accepts_all_writes_again(self, degraded_store):
        database = DurableDatabase(degraded_store, shards=3)
        database.repair()
        database["docs"].insert_one({"_id": "BA5", "ncid": "BA5"})  # shard 2
        database.commit()
        database.close()
        reopened = DurableDatabase(degraded_store, shards=3)
        assert reopened.last_recovery.clean
        assert reopened["docs"].find_one({"ncid": "BA5"}) is not None
        reopened.close(commit=False)

    def test_snapshot_corruption_darkens_whole_collection(self, tmp_path):
        store = build_sharded_store(tmp_path / "store")
        path = store / "docs.jsonl"
        path.write_text(path.read_text().replace('"', "X", 1))
        database = DurableDatabase(store, shards=3)
        docs = database["docs"]
        assert docs.quarantined_shards == [0, 1, 2]
        with pytest.raises(DegradedReadError):
            docs.find_one({"ncid": "AA1"})
        with pytest.warns(DegradedReadWarning):
            assert list(docs.all(allow_degraded=True)) == []
        database.repair()
        # Salvage drops only the mangled line; the rest returns to service.
        survivors = {doc["ncid"] for doc in database["docs"].all()}
        assert len(survivors) >= len(SNAP_IDS) + len(WAL_IDS) - 1
        database.close()

    def test_scrub_method_records_last_scrub_in_stats(self, tmp_path):
        store = build_sharded_store(tmp_path / "store")
        database = DurableDatabase(store, shards=3)
        report = database.scrub()
        assert report.ok
        storage = database.stats()["storage"]
        assert storage["last_scrub"] == {"ok": True, "errors": 0, "warnings": 0}
        assert storage["committed_epoch"] == database.committed_epoch
        database.close(commit=False)


class TestCompaction:
    def test_checkpoint_rotates_wal_to_header(self, tmp_path):
        database = DurableDatabase(tmp_path)
        docs = database["docs"]
        for index in range(20):
            docs.insert_one({"_id": f"a{index}", "ncid": f"a{index}"})
        database.commit()
        before = (tmp_path / "docs.wal").stat().st_size
        database.checkpoint()
        after = (tmp_path / "docs.wal").stat().st_size
        assert after < before
        assert after == len(WAL_MAGIC)
        database.close()
        reopened = DurableDatabase(tmp_path)
        assert reopened["docs"].count_documents() == 20
        reopened.close(commit=False)

    def test_auto_compact_checkpoints_after_threshold(self, tmp_path):
        database = DurableDatabase(tmp_path, auto_compact=10)
        docs = database["docs"]
        docs.insert_one({"_id": "a", "ncid": "a"})
        database.commit()
        assert database._ops_since_checkpoint > 0
        for index in range(12):
            docs.insert_one({"_id": f"b{index}", "ncid": f"b{index}"})
        database.commit()  # crosses the threshold: checkpoint fired
        assert database._ops_since_checkpoint == 0
        assert (tmp_path / "docs.wal").stat().st_size == len(WAL_MAGIC)
        database.close()

    def test_auto_compact_equivalent_to_manual(self, tmp_path):
        def run(directory, auto_compact):
            database = DurableDatabase(directory, auto_compact=auto_compact)
            docs = database["docs"]
            for index in range(15):
                docs.insert_one({"_id": f"a{index}", "ncid": f"a{index}", "n": index})
                database.commit()
            database.close()
            reopened = Database.load(directory)
            state = sorted(
                json.dumps(doc, sort_keys=True) for doc in reopened["docs"].all()
            )
            return state

        assert run(tmp_path / "auto", 4) == run(tmp_path / "manual", None)

    def test_auto_compact_validated(self, tmp_path):
        with pytest.raises(DocStoreError):
            DurableDatabase(tmp_path, auto_compact=0)
