"""Tests for the filter (query) language."""

import pytest

from repro.docstore.errors import QueryError
from repro.docstore.matching import compile_filter, equality_conditions, matches


class TestEquality:
    def test_literal_equality(self):
        assert matches({"a": 1}, {"a": 1})
        assert not matches({"a": 1}, {"a": 2})

    def test_nested_path(self):
        assert matches({"a": {"b": "x"}}, {"a.b": "x"})

    def test_missing_field_equals_none(self):
        assert matches({}, {"a": None})
        assert not matches({}, {"a": 1})

    def test_array_contains(self):
        assert matches({"tags": ["x", "y"]}, {"tags": "x"})
        assert not matches({"tags": ["x", "y"]}, {"tags": "z"})

    def test_whole_array_equality(self):
        assert matches({"tags": ["x", "y"]}, {"tags": ["x", "y"]})

    def test_empty_filter_matches_everything(self):
        assert matches({"anything": 1}, {})
        assert matches({}, None)


class TestComparisons:
    def test_gt_gte_lt_lte(self):
        doc = {"n": 5}
        assert matches(doc, {"n": {"$gt": 4}})
        assert not matches(doc, {"n": {"$gt": 5}})
        assert matches(doc, {"n": {"$gte": 5}})
        assert matches(doc, {"n": {"$lt": 6}})
        assert matches(doc, {"n": {"$lte": 5}})

    def test_combined_range(self):
        assert matches({"n": 5}, {"n": {"$gte": 2, "$lt": 9}})
        assert not matches({"n": 1}, {"n": {"$gte": 2, "$lt": 9}})

    def test_comparison_on_missing_field_is_false(self):
        assert not matches({}, {"n": {"$gt": 0}})

    def test_mixed_types_do_not_raise(self):
        assert not matches({"n": "abc"}, {"n": {"$gt": 5}})

    def test_array_any_semantics(self):
        assert matches({"n": [1, 10]}, {"n": {"$gt": 5}})
        assert not matches({"n": [1, 2]}, {"n": {"$gt": 5}})

    def test_ne(self):
        assert matches({"a": 1}, {"a": {"$ne": 2}})
        assert not matches({"a": 1}, {"a": {"$ne": 1}})


class TestSetOperators:
    def test_in(self):
        assert matches({"a": 2}, {"a": {"$in": [1, 2, 3]}})
        assert not matches({"a": 9}, {"a": {"$in": [1, 2, 3]}})

    def test_in_with_array_field(self):
        assert matches({"a": [7, 9]}, {"a": {"$in": [9]}})

    def test_in_missing_matches_none_member(self):
        assert matches({}, {"a": {"$in": [None, 1]}})
        assert not matches({}, {"a": {"$in": [1]}})

    def test_nin(self):
        assert matches({"a": 9}, {"a": {"$nin": [1, 2]}})
        assert not matches({"a": 1}, {"a": {"$nin": [1, 2]}})

    def test_in_requires_list(self):
        with pytest.raises(QueryError):
            matches({"a": 1}, {"a": {"$in": 1}})

    def test_all(self):
        assert matches({"a": [1, 2, 3]}, {"a": {"$all": [1, 3]}})
        assert not matches({"a": [1, 2]}, {"a": {"$all": [1, 3]}})


class TestExistsRegexSize:
    def test_exists(self):
        assert matches({"a": None}, {"a": {"$exists": True}})
        assert not matches({}, {"a": {"$exists": True}})
        assert matches({}, {"a": {"$exists": False}})

    def test_regex(self):
        assert matches({"name": "WILLIAMS"}, {"name": {"$regex": "^WIL"}})
        assert not matches({"name": "SMITH"}, {"name": {"$regex": "^WIL"}})

    def test_regex_on_non_string_is_false(self):
        assert not matches({"name": 42}, {"name": {"$regex": "4"}})

    def test_size(self):
        assert matches({"xs": [1, 2]}, {"xs": {"$size": 2}})
        assert not matches({"xs": [1]}, {"xs": {"$size": 2}})
        assert not matches({"xs": "ab"}, {"xs": {"$size": 2}})

    def test_elem_match(self):
        doc = {"records": [{"v": 1}, {"v": 5}]}
        assert matches(doc, {"records": {"$elemMatch": {"v": {"$gt": 3}}}})
        assert not matches(doc, {"records": {"$elemMatch": {"v": {"$gt": 9}}}})


class TestLogical:
    def test_and(self):
        assert matches({"a": 1, "b": 2}, {"$and": [{"a": 1}, {"b": 2}]})
        assert not matches({"a": 1, "b": 3}, {"$and": [{"a": 1}, {"b": 2}]})

    def test_or(self):
        assert matches({"a": 1}, {"$or": [{"a": 1}, {"a": 2}]})
        assert not matches({"a": 3}, {"$or": [{"a": 1}, {"a": 2}]})

    def test_nor(self):
        assert matches({"a": 3}, {"$nor": [{"a": 1}, {"a": 2}]})

    def test_not_operator(self):
        assert matches({"a": 1}, {"a": {"$not": {"$gt": 5}}})
        assert not matches({"a": 9}, {"a": {"$not": {"$gt": 5}}})

    def test_implicit_and_of_fields(self):
        assert matches({"a": 1, "b": 2}, {"a": 1, "b": 2})
        assert not matches({"a": 1, "b": 9}, {"a": 1, "b": 2})

    def test_unknown_top_level_operator(self):
        with pytest.raises(QueryError):
            matches({}, {"$xor": []})

    def test_unknown_field_operator(self):
        with pytest.raises(QueryError):
            matches({"a": 1}, {"a": {"$near": 1}})

    def test_filter_must_be_dict(self):
        with pytest.raises(QueryError):
            compile_filter([("a", 1)])


class TestEqualityExtraction:
    def test_extracts_literals_and_eq(self):
        filter_doc = {"a": 1, "b": {"$eq": "x"}, "c": {"$gt": 2}, "$or": [{"d": 1}]}
        assert equality_conditions(filter_doc) == {"a": 1, "b": "x"}

    def test_empty(self):
        assert equality_conditions({}) == {}
        assert equality_conditions(None) == {}
