"""Property-based tests of the document store (hypothesis)."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore import Collection
from repro.docstore.matching import matches

field_names = st.sampled_from(["a", "b", "c", "nested.x"])
scalars = st.one_of(
    st.integers(-50, 50),
    st.text(alphabet=string.ascii_lowercase, max_size=4),
    st.none(),
)
flat_docs = st.dictionaries(
    st.sampled_from(["a", "b", "c"]), scalars, min_size=0, max_size=3
)


@given(st.lists(flat_docs, max_size=20), st.sampled_from(["a", "b", "c"]), scalars)
@settings(max_examples=150)
def test_indexed_query_equals_scan(documents, field, value):
    """A hash index must never change query results."""
    plain = Collection("plain")
    indexed = Collection("indexed")
    indexed.create_index(field)
    for document in documents:
        plain.insert_one(dict(document))
        indexed.insert_one(dict(document))
    filter_doc = {field: value}
    plain_ids = sorted(doc["_id"] for doc in plain.find(filter_doc))
    indexed_ids = sorted(doc["_id"] for doc in indexed.find(filter_doc))
    assert plain_ids == indexed_ids


@given(st.lists(flat_docs, max_size=15))
@settings(max_examples=100)
def test_count_matches_find(documents):
    collection = Collection("c")
    collection.insert_many(documents)
    assert collection.count_documents({"a": {"$exists": True}}) == len(
        collection.find({"a": {"$exists": True}})
    )


@given(st.lists(flat_docs, max_size=15), st.integers(-50, 50))
@settings(max_examples=100)
def test_gt_and_lte_partition_numeric_values(documents, pivot):
    """For docs with numeric 'a', $gt and $lte partition them exactly."""
    collection = Collection("c")
    numeric_docs = [doc for doc in documents if isinstance(doc.get("a"), int)]
    collection.insert_many(numeric_docs)
    above = collection.count_documents({"a": {"$gt": pivot}})
    at_or_below = collection.count_documents({"a": {"$lte": pivot}})
    assert above + at_or_below == len(numeric_docs)


@given(flat_docs, flat_docs)
@settings(max_examples=150)
def test_document_matches_itself_as_filter(document, _other):
    """Any scalar document used as a filter matches itself."""
    assert matches(document, document)


@given(st.lists(st.integers(0, 20), min_size=0, max_size=30))
@settings(max_examples=100)
def test_group_sum_equals_python_sum(values):
    collection = Collection("c")
    collection.insert_many([{"v": value} for value in values])
    result = collection.aggregate([{"$group": {"_id": None, "s": {"$sum": "$v"}}}])
    if values:
        assert result[0]["s"] == sum(values)
    else:
        assert result == []


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=25))
@settings(max_examples=100)
def test_sort_stage_sorts(values):
    collection = Collection("c")
    collection.insert_many([{"v": value} for value in values])
    result = collection.aggregate([{"$sort": {"v": 1}}])
    assert [doc["v"] for doc in result] == sorted(values)


@given(
    st.lists(st.integers(-50, 50), max_size=25),
    st.integers(-50, 50),
    st.integers(-50, 50),
)
@settings(max_examples=150)
def test_sorted_index_range_equals_scan(values, low, high):
    """A sorted-index range scan must match a brute-force filter."""
    from repro.docstore.indexes import SortedIndex

    if low > high:
        low, high = high, low
    index = SortedIndex("n")
    for doc_id, value in enumerate(values):
        index.add(doc_id, {"n": value})
    expected = {
        doc_id for doc_id, value in enumerate(values) if low <= value <= high
    }
    assert index.range(low, high) == expected


@given(st.lists(st.integers(-50, 50), min_size=1, max_size=25))
@settings(max_examples=100)
def test_sorted_index_remove_inverts_add(values):
    from repro.docstore.indexes import SortedIndex

    index = SortedIndex("n")
    for doc_id, value in enumerate(values):
        index.add(doc_id, {"n": value})
    for doc_id, value in enumerate(values):
        index.remove(doc_id, {"n": value})
    assert len(index) == 0
    assert index.range() == set()
