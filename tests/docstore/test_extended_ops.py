"""Tests for the extended collection operations ($addToSet, $pull, $rename,
distinct, skip)."""

import pytest

from repro.docstore import Collection, QueryError


@pytest.fixture
def coll():
    collection = Collection("c")
    collection.insert_many(
        [
            {"_id": 1, "tags": ["a", "b"], "n": 5, "city": "DURHAM"},
            {"_id": 2, "tags": ["b"], "n": 3, "city": "RALEIGH"},
            {"_id": 3, "n": 8, "city": "DURHAM"},
        ]
    )
    return collection


class TestAddToSet:
    def test_adds_new_element(self, coll):
        coll.update_one({"_id": 2}, {"$addToSet": {"tags": "z"}})
        assert coll.find_one({"_id": 2})["tags"] == ["b", "z"]

    def test_skips_existing_element(self, coll):
        coll.update_one({"_id": 1}, {"$addToSet": {"tags": "a"}})
        assert coll.find_one({"_id": 1})["tags"] == ["a", "b"]

    def test_creates_array(self, coll):
        coll.update_one({"_id": 3}, {"$addToSet": {"tags": "x"}})
        assert coll.find_one({"_id": 3})["tags"] == ["x"]

    def test_non_array_target_rejected(self, coll):
        with pytest.raises(QueryError):
            coll.update_one({"_id": 1}, {"$addToSet": {"n": 1}})


class TestPull:
    def test_removes_matching_elements(self, coll):
        coll.update_one({"_id": 1}, {"$pull": {"tags": "a"}})
        assert coll.find_one({"_id": 1})["tags"] == ["b"]

    def test_missing_array_is_noop(self, coll):
        assert coll.update_one({"_id": 3}, {"$pull": {"tags": "a"}}) == 1
        assert "tags" not in coll.find_one({"_id": 3})

    def test_non_array_target_rejected(self, coll):
        with pytest.raises(QueryError):
            coll.update_one({"_id": 1}, {"$pull": {"n": 5}})


class TestRename:
    def test_renames_field(self, coll):
        coll.update_one({"_id": 1}, {"$rename": {"city": "town"}})
        doc = coll.find_one({"_id": 1})
        assert doc["town"] == "DURHAM"
        assert "city" not in doc

    def test_missing_source_is_noop(self, coll):
        coll.update_one({"_id": 1}, {"$rename": {"ghost": "spirit"}})
        assert "spirit" not in coll.find_one({"_id": 1})

    def test_nested_target(self, coll):
        coll.update_one({"_id": 1}, {"$rename": {"city": "address.city"}})
        assert coll.find_one({"_id": 1})["address"] == {"city": "DURHAM"}

    def test_id_protected(self, coll):
        with pytest.raises(QueryError):
            coll.update_one({"_id": 1}, {"$rename": {"_id": "other"}})

    def test_index_follows_rename(self, coll):
        coll.create_index("city")
        coll.update_one({"_id": 1}, {"$rename": {"city": "town"}})
        assert {d["_id"] for d in coll.find({"city": "DURHAM"})} == {3}


class TestDistinct:
    def test_scalar_values(self, coll):
        assert coll.distinct("city") == ["DURHAM", "RALEIGH"]

    def test_array_values_expanded(self, coll):
        assert coll.distinct("tags") == ["a", "b"]

    def test_with_filter(self, coll):
        assert coll.distinct("city", {"n": {"$gt": 4}}) == ["DURHAM"]

    def test_absent_path(self, coll):
        assert coll.distinct("ghost") == []


class TestSkip:
    def test_skip_with_sort(self, coll):
        results = coll.find(sort=[("n", 1)], skip=1)
        assert [d["n"] for d in results] == [5, 8]

    def test_skip_with_limit(self, coll):
        results = coll.find(sort=[("n", 1)], skip=1, limit=1)
        assert [d["n"] for d in results] == [5]

    def test_skip_past_end(self, coll):
        assert coll.find(skip=99) == []


class TestExplain:
    def test_full_scan_without_index(self, coll):
        plan = coll.explain({"city": "DURHAM"})
        assert plan["plan"] == "full_scan"
        assert plan["candidates"] == 3

    def test_index_lookup(self, coll):
        coll.create_index("city")
        plan = coll.explain({"city": "DURHAM"})
        assert plan["plan"] == "index_lookup"
        assert plan["candidates"] == 2

    def test_id_lookup(self, coll):
        plan = coll.explain({"_id": 2})
        assert plan["plan"] == "id_lookup"
        assert plan["candidates"] == 1

    def test_empty_filter_is_full_scan(self, coll):
        assert coll.explain()["plan"] == "full_scan"

    def test_operator_conditions_do_not_use_hash_index(self, coll):
        coll.create_index("n")
        plan = coll.explain({"n": {"$gt": 4}})
        assert plan["plan"] == "full_scan"
