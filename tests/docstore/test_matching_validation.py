"""Compile-time validation behaviour of ``compile_filter``.

These pin the guarantees the static analyzer builds on: malformed filters
fail when the filter is *compiled*, before any document is inspected, and
mixed operator/plain conditions are a hard error instead of silently
degrading to literal equality.
"""

import pytest

from repro.docstore.errors import QueryError
from repro.docstore.matching import compile_filter, matches


class TestCompileTimeErrors:
    def test_errors_raise_before_any_document_is_seen(self):
        for bad in (
            {"a": {"$in": 5}},
            {"a": {"$regex": "["}},
            {"a": {"$regex": 42}},
            {"a": {"$size": -1}},
            {"a": {"$size": True}},
            {"a": {"$elemMatch": [1]}},
            {"$and": {"a": 1}},
            {"a": {"$unknownOp": 1}},
        ):
            with pytest.raises(QueryError):
                compile_filter(bad)

    def test_elem_match_inner_filter_validated_at_compile_time(self):
        with pytest.raises(QueryError):
            compile_filter({"xs": {"$elemMatch": {"v": {"$regex": "["}}}})

    def test_not_operand_validated_at_compile_time(self):
        with pytest.raises(QueryError):
            compile_filter({"a": {"$not": {"$in": "abc"}}})


class TestMixedConditions:
    def test_mixed_dollar_and_plain_keys_raise(self):
        with pytest.raises(QueryError, match="mixes"):
            compile_filter({"a": {"$gt": 1, "b": 2}})

    def test_pure_plain_dict_is_literal_equality(self):
        assert matches({"a": {"b": 2}}, {"a": {"b": 2}})
        assert not matches({"a": {"b": 2, "c": 3}}, {"a": {"b": 2}})

    def test_pure_operator_dict_still_works(self):
        assert matches({"a": 5}, {"a": {"$gt": 1, "$lt": 9}})


class TestPrecompiledRegex:
    def test_regex_matches_after_compilation(self):
        predicate = compile_filter({"name": {"$regex": "^SM"}})
        assert predicate({"name": "SMITH"})
        assert not predicate({"name": "JONES"})

    def test_compiled_predicate_is_reusable(self):
        predicate = compile_filter({"n": {"$gte": 3}, "name": {"$regex": "H$"}})
        hits = [
            doc
            for doc in (
                {"n": 4, "name": "SMITH"},
                {"n": 2, "name": "SMITH"},
                {"n": 9, "name": "DOE"},
            )
            if predicate(doc)
        ]
        assert hits == [{"n": 4, "name": "SMITH"}]
