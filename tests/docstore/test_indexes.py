"""Tests for hash and sorted indexes."""

import pytest

from repro.docstore.indexes import HashIndex, SortedIndex, build_index


class TestHashIndex:
    def test_add_and_lookup(self):
        index = HashIndex("ncid")
        index.add(1, {"ncid": "AA1"})
        index.add(2, {"ncid": "AA2"})
        index.add(3, {"ncid": "AA1"})
        assert index.lookup("AA1") == {1, 3}
        assert index.lookup("AA2") == {2}
        assert index.lookup("ZZ9") == set()

    def test_remove(self):
        index = HashIndex("x")
        index.add(1, {"x": 5})
        index.remove(1, {"x": 5})
        assert index.lookup(5) == set()
        assert len(index) == 0

    def test_missing_field_indexed_under_none(self):
        index = HashIndex("x")
        index.add(1, {})
        assert index.lookup(None) == {1}

    def test_multikey(self):
        index = HashIndex("tags")
        index.add(1, {"tags": ["a", "b"]})
        assert index.lookup("a") == {1}
        assert index.lookup("b") == {1}
        index.remove(1, {"tags": ["a", "b"]})
        assert len(index) == 0


class TestSortedIndex:
    def make(self):
        index = SortedIndex("n")
        for doc_id, value in enumerate([5, 1, 9, 3, 7], start=1):
            index.add(doc_id, {"n": value})
        return index

    def test_closed_range(self):
        index = self.make()
        assert index.range(3, 7) == {1, 4, 5}  # values 5, 3, 7

    def test_open_ended_ranges(self):
        index = self.make()
        assert index.range(low=7) == {3, 5}  # 9, 7
        assert index.range(high=3) == {2, 4}  # 1, 3

    def test_exclusive_bounds(self):
        index = self.make()
        assert index.range(3, 7, include_low=False, include_high=False) == {1}

    def test_fully_open_scans_everything(self):
        index = self.make()
        assert index.range() == {1, 2, 3, 4, 5}

    def test_remove(self):
        index = self.make()
        index.remove(1, {"n": 5})
        assert index.range(5, 5) == set()
        assert len(index) == 4

    def test_mixed_types_do_not_raise(self):
        index = SortedIndex("n")
        index.add(1, {"n": 5})
        index.add(2, {"n": "abc"})
        assert index.range(1, 9) == {1}
        assert index.range("a", "z") == {2}

    def test_none_values_not_indexed(self):
        index = SortedIndex("n")
        index.add(1, {})
        assert len(index) == 0

    def test_first_ids(self):
        index = self.make()
        assert index.first_ids(2) == [2, 4]  # values 1 and 3


class TestBuildIndex:
    def test_factory(self):
        assert isinstance(build_index("hash", "x"), HashIndex)
        assert isinstance(build_index("sorted", "x"), SortedIndex)
        with pytest.raises(ValueError):
            build_index("btree", "x")


class TestWritePathFlushing:
    """Sorted-run merges happen at write end, never on a shared-state read.

    The collection/plan-cache contract allows sharing states across
    threads for reads; if reads triggered the deferred merge, two
    concurrent ``find``\\ s after a write could race inside ``flush``.
    Every collection write path therefore flushes before returning, so
    read methods only ever see an empty pending buffer (their own
    defensive ``flush`` reduces to a mutation-free no-op).
    """

    @staticmethod
    def pending(collection):
        return [
            entry
            for partition in collection._partitions
            for index in partition.live._indexes.values()
            if isinstance(index, SortedIndex)
            for entry in index._pending
        ]

    @pytest.mark.parametrize("shards", [1, 3])
    def test_every_write_path_leaves_no_pending_entries(self, shards):
        from repro.docstore import Collection

        collection = Collection("c", shards=shards)
        collection.insert_many(
            {"_id": i, "ncid": f"NC{i}", "n": i} for i in range(6)
        )
        collection.create_index("n", "sorted")
        assert self.pending(collection) == []
        collection.insert_one({"_id": 10, "ncid": "NC10", "n": 10})
        assert self.pending(collection) == []
        collection.insert_many(
            {"_id": 20 + i, "ncid": f"NC{20 + i}", "n": 20 + i} for i in range(4)
        )
        assert self.pending(collection) == []
        collection.update_one({"_id": 10}, {"$set": {"n": 11}})
        assert self.pending(collection) == []
        collection.update_many({"n": {"$gte": 20}}, {"$inc": {"n": 1}})
        assert self.pending(collection) == []
        collection.replace_one({"_id": 10}, {"ncid": "NC10", "n": 12})
        assert self.pending(collection) == []
        # Shard-key migration re-adds on the target partition.
        collection.update_one({"_id": 10}, {"$set": {"ncid": "NC99"}})
        assert self.pending(collection) == []
        collection.delete_many({"n": {"$gte": 23}})
        assert self.pending(collection) == []

    def test_standalone_reads_still_merge_pending_adds(self):
        # Outside a collection nothing flushes for the caller; the
        # defensive flush in the query methods keeps raw usage correct.
        index = SortedIndex("n")
        for doc_id, value in enumerate((5, 1, 3)):
            index.add(doc_id, {"n": value})
        assert index._pending
        assert index.range(1, 3) == {1, 2}
        assert index._pending == []
