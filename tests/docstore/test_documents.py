"""Tests for dotted-path document access."""

import pytest

from repro.docstore import get_path, set_path, unset_path
from repro.docstore.documents import MISSING, flatten, iter_index_keys, resolve_path


class TestGetPath:
    def test_top_level(self):
        assert get_path({"a": 1}, "a") == 1

    def test_nested(self):
        assert get_path({"a": {"b": {"c": 3}}}, "a.b.c") == 3

    def test_absent_returns_default(self):
        assert get_path({"a": 1}, "b") is None
        assert get_path({"a": 1}, "b", default=42) == 42

    def test_absent_intermediate(self):
        assert get_path({"a": {"b": 1}}, "a.c.d") is None

    def test_numeric_segment_indexes_lists(self):
        doc = {"records": [{"x": 1}, {"x": 2}]}
        assert get_path(doc, "records.1.x") == 2

    def test_numeric_segment_out_of_range(self):
        assert get_path({"records": [1]}, "records.5") is None

    def test_broadcast_over_list(self):
        doc = {"records": [{"x": 1}, {"x": 2}, {"y": 3}]}
        assert get_path(doc, "records.x") == [1, 2]

    def test_broadcast_no_hits(self):
        assert get_path({"records": [{"y": 1}]}, "records.x") is None

    def test_resolve_distinguishes_none_from_missing(self):
        assert resolve_path({"a": None}, "a") is None
        assert resolve_path({}, "a") is MISSING


class TestSetPath:
    def test_top_level(self):
        doc = {}
        set_path(doc, "a", 1)
        assert doc == {"a": 1}

    def test_creates_intermediates(self):
        doc = {}
        set_path(doc, "a.b.c", 3)
        assert doc == {"a": {"b": {"c": 3}}}

    def test_overwrites_scalar_intermediate(self):
        doc = {"a": 5}
        set_path(doc, "a.b", 1)
        assert doc == {"a": {"b": 1}}

    def test_list_element(self):
        doc = {"xs": [{"v": 1}, {"v": 2}]}
        set_path(doc, "xs.1.v", 9)
        assert doc["xs"][1]["v"] == 9


class TestUnsetPath:
    def test_removes_existing(self):
        doc = {"a": {"b": 1, "c": 2}}
        assert unset_path(doc, "a.b") is True
        assert doc == {"a": {"c": 2}}

    def test_absent_returns_false(self):
        assert unset_path({"a": 1}, "b") is False
        assert unset_path({"a": {"b": 1}}, "a.c") is False

    def test_through_list(self):
        doc = {"xs": [{"v": 1}]}
        assert unset_path(doc, "xs.0.v") is True
        assert doc == {"xs": [{}]}


class TestIterIndexKeys:
    def test_scalar(self):
        assert list(iter_index_keys({"a": 5}, "a")) == [5]

    def test_absent_yields_none(self):
        assert list(iter_index_keys({}, "a")) == [None]

    def test_multikey_arrays(self):
        assert list(iter_index_keys({"a": [1, 2, 3]}, "a")) == [1, 2, 3]

    def test_empty_array_yields_none(self):
        assert list(iter_index_keys({"a": []}, "a")) == [None]

    def test_dict_values_are_frozen_hashable(self):
        keys = list(iter_index_keys({"a": {"x": 1}}, "a"))
        assert len(keys) == 1
        hash(keys[0])  # must not raise


class TestFlatten:
    def test_flat_document(self):
        assert flatten({"a": 1, "b": 2}) == [("a", 1), ("b", 2)]

    def test_nested_document(self):
        assert flatten({"a": {"b": 1}, "c": 2}) == [("a.b", 1), ("c", 2)]
