"""Tests for the aggregation pipeline."""

import pytest

from repro.docstore import Collection
from repro.docstore.aggregation import evaluate, run_pipeline
from repro.docstore.errors import QueryError


@pytest.fixture
def sales():
    collection = Collection("sales")
    collection.insert_many(
        [
            {"_id": 1, "region": "east", "amount": 10, "items": ["a", "b"]},
            {"_id": 2, "region": "west", "amount": 25, "items": ["c"]},
            {"_id": 3, "region": "east", "amount": 5, "items": []},
            {"_id": 4, "region": "west", "amount": 40, "items": ["a"]},
        ]
    )
    return collection


class TestExpressions:
    def test_field_reference(self):
        assert evaluate("$a.b", {"a": {"b": 7}}) == 7

    def test_missing_reference_is_none(self):
        assert evaluate("$nope", {}) is None

    def test_literals_pass_through(self):
        assert evaluate(42, {}) == 42
        assert evaluate("plain", {}) == "plain"
        assert evaluate({"$literal": "$a"}, {"a": 1}) == "$a"

    def test_arithmetic(self):
        doc = {"a": 10, "b": 4}
        assert evaluate({"$add": ["$a", "$b", 1]}, doc) == 15
        assert evaluate({"$subtract": ["$a", "$b"]}, doc) == 6
        assert evaluate({"$multiply": ["$a", 2]}, doc) == 20
        assert evaluate({"$divide": ["$a", "$b"]}, doc) == 2.5

    def test_divide_by_zero_is_none(self):
        assert evaluate({"$divide": [1, 0]}, {}) is None

    def test_size_and_concat(self):
        doc = {"xs": [1, 2, 3], "a": "foo", "b": "bar"}
        assert evaluate({"$size": "$xs"}, doc) == 3
        assert evaluate({"$concat": ["$a", "-", "$b"]}, doc) == "foo-bar"

    def test_cond_and_ifnull(self):
        doc = {"n": 5}
        assert evaluate({"$cond": ["$n", "big", "small"]}, doc) == "big"
        assert evaluate({"$cond": {"if": "$missing", "then": "x", "else": "y"}}, doc) == "y"
        assert evaluate({"$ifNull": ["$missing", "fallback"]}, doc) == "fallback"
        assert evaluate({"$ifNull": ["$n", "fallback"]}, doc) == 5

    def test_min_max_avg(self):
        doc = {"a": 1, "b": 9}
        assert evaluate({"$min": ["$a", "$b"]}, doc) == 1
        assert evaluate({"$max": ["$a", "$b"]}, doc) == 9
        assert evaluate({"$avg": ["$a", "$b"]}, doc) == 5

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            evaluate({"$frobnicate": []}, {})


class TestStages:
    def test_match(self, sales):
        result = sales.aggregate([{"$match": {"region": "east"}}])
        assert {doc["_id"] for doc in result} == {1, 3}

    def test_project_inclusion(self, sales):
        result = sales.aggregate(
            [{"$match": {"_id": 1}}, {"$project": {"amount": 1, "_id": 0}}]
        )
        assert result == [{"amount": 10}]

    def test_project_computed(self, sales):
        result = sales.aggregate(
            [{"$match": {"_id": 2}}, {"$project": {"double": {"$multiply": ["$amount", 2]}, "_id": 0}}]
        )
        assert result == [{"double": 50}]

    def test_project_exclusion(self, sales):
        result = sales.aggregate([{"$match": {"_id": 1}}, {"$project": {"items": 0}}])
        assert result == [{"_id": 1, "region": "east", "amount": 10}]

    def test_add_fields(self, sales):
        result = sales.aggregate(
            [{"$match": {"_id": 1}}, {"$addFields": {"flag": True}}]
        )
        assert result[0]["flag"] is True
        assert result[0]["amount"] == 10

    def test_group_sum_avg(self, sales):
        result = sales.aggregate(
            [
                {"$group": {"_id": "$region", "total": {"$sum": "$amount"}, "mean": {"$avg": "$amount"}}},
                {"$sort": {"_id": 1}},
            ]
        )
        assert result == [
            {"_id": "east", "total": 15, "mean": 7.5},
            {"_id": "west", "total": 65, "mean": 32.5},
        ]

    def test_group_min_max_first_last(self, sales):
        result = sales.aggregate(
            [
                {"$sort": {"amount": 1}},
                {"$group": {"_id": None, "lo": {"$min": "$amount"}, "hi": {"$max": "$amount"},
                            "first": {"$first": "$_id"}, "last": {"$last": "$_id"}}},
            ]
        )
        assert result == [{"_id": None, "lo": 5, "hi": 40, "first": 3, "last": 4}]

    def test_group_push_and_add_to_set(self, sales):
        result = sales.aggregate(
            [
                {"$group": {"_id": "$region", "ids": {"$push": "$_id"}}},
                {"$sort": {"_id": 1}},
            ]
        )
        assert result[0]["ids"] == [1, 3]

    def test_group_count_via_sum_one(self, sales):
        result = sales.aggregate(
            [{"$group": {"_id": None, "n": {"$sum": 1}}}]
        )
        assert result == [{"_id": None, "n": 4}]

    def test_group_requires_id(self, sales):
        with pytest.raises(QueryError):
            sales.aggregate([{"$group": {"total": {"$sum": 1}}}])

    def test_unwind(self, sales):
        result = sales.aggregate(
            [{"$match": {"_id": 1}}, {"$unwind": "$items"}]
        )
        assert [doc["items"] for doc in result] == ["a", "b"]

    def test_unwind_drops_empty_arrays(self, sales):
        result = sales.aggregate([{"$unwind": "$items"}])
        assert all(doc["_id"] != 3 for doc in result)

    def test_unwind_preserve_empty(self, sales):
        result = sales.aggregate(
            [{"$unwind": {"path": "$items", "preserveNullAndEmptyArrays": True}}]
        )
        assert any(doc["_id"] == 3 for doc in result)

    def test_sort_skip_limit(self, sales):
        result = sales.aggregate(
            [{"$sort": {"amount": -1}}, {"$skip": 1}, {"$limit": 2}]
        )
        assert [doc["amount"] for doc in result] == [25, 10]

    def test_count_stage(self, sales):
        assert sales.aggregate(
            [{"$match": {"region": "west"}}, {"$count": "n"}]
        ) == [{"n": 2}]

    def test_unknown_stage(self, sales):
        with pytest.raises(QueryError):
            sales.aggregate([{"$lookup": {}}])

    def test_stage_must_be_single_key(self, sales):
        with pytest.raises(QueryError):
            sales.aggregate([{"$match": {}, "$limit": 1}])

    def test_pipeline_is_lazy_until_consumed(self):
        stream = run_pipeline(iter([{"a": 1}, {"a": 2}]), [{"$match": {"a": 1}}])
        assert list(stream) == [{"a": 1}]


class TestCustomizationStylePipeline:
    """The kind of pipeline the paper's users run to extract subsets."""

    def test_select_large_clusters_and_flatten(self):
        collection = Collection("clusters")
        collection.insert_many(
            [
                {"_id": "A", "records": [{"person": {"n": 1}}, {"person": {"n": 2}}]},
                {"_id": "B", "records": [{"person": {"n": 3}}]},
            ]
        )
        result = collection.aggregate(
            [
                {"$addFields": {"size": {"$size": "$records"}}},
                {"$match": {"size": {"$gte": 2}}},
                {"$unwind": "$records"},
                {"$project": {"n": "$records.person.n", "_id": 1}},
            ]
        )
        assert result == [{"_id": "A", "n": 1}, {"_id": "A", "n": 2}]


class TestReplaceRootAndSortByCount:
    def test_replace_root_promotes_subdocument(self):
        collection = Collection("clusters")
        collection.insert_one(
            {"_id": "A", "records": [{"person": {"n": 1}}, {"person": {"n": 2}}]}
        )
        result = collection.aggregate(
            [
                {"$unwind": "$records"},
                {"$replaceRoot": {"newRoot": "$records"}},
            ]
        )
        assert result == [{"person": {"n": 1}}, {"person": {"n": 2}}]

    def test_replace_root_requires_document(self):
        collection = Collection("c")
        collection.insert_one({"x": 5})
        with pytest.raises(QueryError):
            collection.aggregate([{"$replaceRoot": {"newRoot": "$x"}}])

    def test_replace_root_spec_validated(self):
        collection = Collection("c")
        collection.insert_one({"x": {}})
        with pytest.raises(QueryError):
            collection.aggregate([{"$replaceRoot": "$x"}])

    def test_sort_by_count(self, sales):
        result = sales.aggregate([{"$sortByCount": "$region"}])
        assert result == [
            {"_id": "east", "count": 2},
            {"_id": "west", "count": 2},
        ] or result == [
            {"_id": "west", "count": 2},
            {"_id": "east", "count": 2},
        ]

    def test_sort_by_count_orders_descending(self):
        collection = Collection("c")
        collection.insert_many(
            [{"k": "a"}, {"k": "a"}, {"k": "a"}, {"k": "b"}]
        )
        result = collection.aggregate([{"$sortByCount": "$k"}])
        assert result == [{"_id": "a", "count": 3}, {"_id": "b", "count": 1}]
