"""Crash-consistency property tests under deterministic fault injection.

The central invariant (the durability contract of
:class:`~repro.docstore.DurableDatabase`): *a crash at any filesystem
operation leaves the store recoverable to exactly the state of some
committed epoch* — never a half-applied commit, never lost committed
data.  The sweeps below enumerate every injection point of a workload
(``faults.count_ops`` makes the count deterministic), crash at each one,
and deep-compare the recovered state against the set of states the
workload committed.
"""

import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import faults
from repro.core import RemovalLevel, TestDataGenerator
from repro.docstore import Database, DurableDatabase
from repro.docstore.errors import StorageError
from repro.votersim.schema import empty_record
from repro.votersim.snapshots import Snapshot


def canonical(database):
    """Deep, order-insensitive fingerprint of a database's logical state."""
    state = {}
    for name in database.collection_names():
        collection = database[name]
        state[name] = {
            "docs": sorted(
                json.dumps(doc, sort_keys=True) for doc in collection.all()
            ),
            "indexes": sorted(
                json.dumps(spec, sort_keys=True)
                for spec in collection.index_specs()
            ),
        }
    return json.dumps(state, sort_keys=True)


EMPTY = canonical(Database("db"))


def reload_state(directory):
    """Canonical state of the directory as plain (read-only) recovery sees it."""
    try:
        return canonical(Database.load(directory))
    except StorageError:
        return EMPTY  # nothing durably created yet


def docstore_workload(directory, mark=None):
    """Insert/index/update/checkpoint/delete across two collections.

    ``mark`` is called with the database after every commit boundary so a
    fault-free run can record the exact set of committed states.
    """
    database = DurableDatabase(Path(directory))
    clusters = database.get_collection("clusters")
    clusters.insert_one({"_id": "a", "ncid": "a", "n": 1})
    clusters.insert_one({"_id": "b", "ncid": "b", "n": 2})
    clusters.create_index("ncid")
    database.commit()
    if mark:
        mark(database)
    clusters.update_one({"_id": "a"}, {"$set": {"n": 10}})
    versions = database.get_collection("versions")
    versions.insert_one({"_id": 1, "version": 1, "note": "first"})
    database.checkpoint()
    if mark:
        mark(database)
    clusters.delete_many({"_id": "b"})
    clusters.insert_one({"_id": "c", "ncid": "c", "n": 3})
    versions.insert_one({"_id": 2, "version": 2, "note": "second"})
    database.commit()
    if mark:
        mark(database)
    database.close()


def make_record(ncid, last_name="SMITH", **overrides):
    record = empty_record()
    record.update(
        ncid=ncid, last_name=last_name, first_name="JOHN",
        sex_code="M", age="40", snapshot_dt="2012-01-01",
    )
    record.update(overrides)
    return record


def generator_workload(directory, mark=None):
    """The acceptance workload: generate → save → update → save."""
    database = DurableDatabase(Path(directory), "ncvoter")
    generator = TestDataGenerator.from_database(database)
    generator.import_snapshot(
        Snapshot("2012-01-01", [make_record("AA1"), make_record("AA2")])
    )
    generator.publish(note="initial import")  # publish commits
    if mark:
        mark(database)
    database.save(Path(directory))  # checkpoint in place
    generator.import_snapshot(
        Snapshot(
            "2013-01-01",
            [make_record("AA1", last_name="SMYTH", snapshot_dt="2013-01-01")],
        )
    )
    generator.publish(note="update")
    if mark:
        mark(database)
    database.save(Path(directory))
    database.close()


def committed_states(workload, directory):
    """Run ``workload`` fault-free; return the committed canonical states."""
    states = {EMPTY}
    workload(directory, mark=lambda db: states.add(canonical(db)))
    return states


def sweep(workload, tmp_path, mode):
    """Crash at every injection point; assert recovery hits a committed state."""
    states = committed_states(workload, tmp_path / "reference")
    total = faults.count_ops(lambda: workload(tmp_path / "count"))
    assert total > 0
    failures = []
    for n in range(1, total + 1):
        target = tmp_path / f"{mode}-{n}"
        plan = faults.FaultyFileSystem(fail_at=n, mode=mode)
        with faults.inject(plan):
            with pytest.raises(faults.CrashError):
                workload(target)
        recovered = reload_state(target)
        if recovered not in states:
            failures.append((n, plan.failed_op))
            continue
        # The exclusive writer's recovery (replay + truncation) must agree.
        reopened = DurableDatabase(target)
        agreed = canonical(reopened)
        reopened.close(commit=False)
        if agreed != recovered:
            failures.append((n, f"reopen disagrees after {plan.failed_op}"))
    assert not failures, f"{len(failures)}/{total} crash points leaked: {failures}"


class TestCrashSweep:
    def test_docstore_workload_crash_mode(self, tmp_path):
        sweep(docstore_workload, tmp_path, "crash")

    def test_docstore_workload_torn_mode(self, tmp_path):
        sweep(docstore_workload, tmp_path, "torn")

    def test_generator_workload_crash_mode(self, tmp_path):
        sweep(generator_workload, tmp_path, "crash")

    def test_fault_free_run_is_clean(self, tmp_path):
        docstore_workload(tmp_path / "clean")
        report_db = DurableDatabase(tmp_path / "clean")
        assert report_db.last_recovery is not None
        assert report_db.last_recovery.clean
        report_db.close(commit=False)

    def test_op_count_is_deterministic(self, tmp_path):
        first = faults.count_ops(lambda: docstore_workload(tmp_path / "one"))
        second = faults.count_ops(lambda: docstore_workload(tmp_path / "two"))
        assert first == second


class TestFaultShim:
    def test_error_mode_raises_oserror_once(self, tmp_path):
        plan = faults.FaultyFileSystem(fail_at=1, mode="error")
        with faults.inject(plan):
            with pytest.raises(OSError):
                plan.open(tmp_path / "f", "wb")
            handle = plan.open(tmp_path / "f", "wb")  # next call succeeds
            handle.close()

    def test_only_filter_counts_selected_ops(self, tmp_path):
        total = faults.count_ops(
            lambda: docstore_workload(tmp_path / "a"), only=("fsync",)
        )
        everything = faults.count_ops(lambda: docstore_workload(tmp_path / "b"))
        assert 0 < total < everything

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            faults.FaultyFileSystem(fail_at=1, mode="explode")

    def test_unknown_only_op_rejected(self):
        with pytest.raises(ValueError):
            faults.FaultyFileSystem(fail_at=1, only=("format_disk",))


# ----------------------------------------------------------- property tests

_DOC_IDS = st.sampled_from(["a", "b", "c", "d", "e"])
_OPERATIONS = st.one_of(
    st.tuples(st.just("insert"), _DOC_IDS, st.integers(0, 99)),
    st.tuples(st.just("update"), _DOC_IDS, st.integers(0, 99)),
    st.tuples(st.just("delete"), _DOC_IDS, st.just(0)),
)


def apply_operations(collection, operations):
    for kind, doc_id, value in operations:
        if kind == "insert":
            if collection.count_documents({"_id": doc_id}):
                collection.replace_one(
                    {"_id": doc_id}, {"_id": doc_id, "value": value}
                )
            else:
                collection.insert_one({"_id": doc_id, "value": value})
        elif kind == "update":
            collection.update_one({"_id": doc_id}, {"$set": {"value": value}})
        elif kind == "delete":
            collection.delete_many({"_id": doc_id})


class TestRoundTripProperties:
    @given(operations=st.lists(_OPERATIONS, max_size=30))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_plain_save_load_roundtrip(self, operations, tmp_path_factory):
        directory = tmp_path_factory.mktemp("roundtrip")
        database = Database("db")
        apply_operations(database["docs"], operations)
        database["docs"].create_index("value", "sorted")
        database.save(directory)
        assert canonical(Database.load(directory)) == canonical(database)

    @given(
        committed=st.lists(_OPERATIONS, max_size=20),
        staged=st.lists(_OPERATIONS, min_size=1, max_size=10),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_durable_reload_drops_uncommitted_wal_tail(
        self, committed, staged, tmp_path_factory
    ):
        directory = tmp_path_factory.mktemp("durable")
        database = DurableDatabase(directory)
        apply_operations(database["docs"], committed)
        database.commit()
        expected = canonical(database)
        apply_operations(database["docs"], staged)
        database.close(commit=False)  # staged tail stays uncommitted
        assert reload_state(directory) == expected
        reopened = DurableDatabase(directory)
        assert canonical(reopened) == expected
        reopened.close(commit=False)
