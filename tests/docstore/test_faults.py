"""Crash-consistency property tests under deterministic fault injection.

The central invariant (the durability contract of
:class:`~repro.docstore.DurableDatabase`): *a crash at any filesystem
operation leaves the store recoverable to exactly the state of some
committed epoch* — never a half-applied commit, never lost committed
data.  The sweeps below enumerate every injection point of a workload
(``faults.count_ops`` makes the count deterministic), crash at each one,
and deep-compare the recovered state against the set of states the
workload committed.
"""

import errno
import json
import warnings
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import faults
from repro.core import RemovalLevel, TestDataGenerator
from repro.docstore import Database, DurableDatabase, shard_key_shard
from repro.docstore.errors import DegradedReadWarning, StorageError
from repro.docstore.wal import WalWriter, read_wal
from repro.votersim.schema import empty_record
from repro.votersim.snapshots import Snapshot


def canonical(database):
    """Deep, order-insensitive fingerprint of a database's logical state."""
    state = {}
    for name in database.collection_names():
        collection = database[name]
        state[name] = {
            "docs": sorted(
                json.dumps(doc, sort_keys=True) for doc in collection.all()
            ),
            "indexes": sorted(
                json.dumps(spec, sort_keys=True)
                for spec in collection.index_specs()
            ),
        }
    return json.dumps(state, sort_keys=True)


EMPTY = canonical(Database("db"))


def reload_state(directory):
    """Canonical state of the directory as plain (read-only) recovery sees it."""
    try:
        return canonical(Database.load(directory))
    except StorageError:
        return EMPTY  # nothing durably created yet


def docstore_workload(directory, mark=None):
    """Insert/index/update/checkpoint/delete across two collections.

    ``mark`` is called with the database after every commit boundary so a
    fault-free run can record the exact set of committed states.
    """
    database = DurableDatabase(Path(directory))
    clusters = database.get_collection("clusters")
    clusters.insert_one({"_id": "a", "ncid": "a", "n": 1})
    clusters.insert_one({"_id": "b", "ncid": "b", "n": 2})
    clusters.create_index("ncid")
    database.commit()
    if mark:
        mark(database)
    clusters.update_one({"_id": "a"}, {"$set": {"n": 10}})
    versions = database.get_collection("versions")
    versions.insert_one({"_id": 1, "version": 1, "note": "first"})
    database.checkpoint()
    if mark:
        mark(database)
    clusters.delete_many({"_id": "b"})
    clusters.insert_one({"_id": "c", "ncid": "c", "n": 3})
    versions.insert_one({"_id": 2, "version": 2, "note": "second"})
    database.commit()
    if mark:
        mark(database)
    database.close()


def make_record(ncid, last_name="SMITH", **overrides):
    record = empty_record()
    record.update(
        ncid=ncid, last_name=last_name, first_name="JOHN",
        sex_code="M", age="40", snapshot_dt="2012-01-01",
    )
    record.update(overrides)
    return record


def generator_workload(directory, mark=None):
    """The acceptance workload: generate → save → update → save."""
    database = DurableDatabase(Path(directory), "ncvoter")
    generator = TestDataGenerator.from_database(database)
    generator.import_snapshot(
        Snapshot("2012-01-01", [make_record("AA1"), make_record("AA2")])
    )
    generator.publish(note="initial import")  # publish commits
    if mark:
        mark(database)
    database.save(Path(directory))  # checkpoint in place
    generator.import_snapshot(
        Snapshot(
            "2013-01-01",
            [make_record("AA1", last_name="SMYTH", snapshot_dt="2013-01-01")],
        )
    )
    generator.publish(note="update")
    if mark:
        mark(database)
    database.save(Path(directory))
    database.close()


def committed_states(workload, directory):
    """Run ``workload`` fault-free; return the committed canonical states."""
    states = {EMPTY}
    workload(directory, mark=lambda db: states.add(canonical(db)))
    return states


def sweep(workload, tmp_path, mode):
    """Crash at every injection point; assert recovery hits a committed state."""
    states = committed_states(workload, tmp_path / "reference")
    total = faults.count_ops(lambda: workload(tmp_path / "count"))
    assert total > 0
    failures = []
    for n in range(1, total + 1):
        target = tmp_path / f"{mode}-{n}"
        plan = faults.FaultyFileSystem(fail_at=n, mode=mode)
        with faults.inject(plan):
            with pytest.raises(faults.CrashError):
                workload(target)
        recovered = reload_state(target)
        if recovered not in states:
            failures.append((n, plan.failed_op))
            continue
        # The exclusive writer's recovery (replay + truncation) must agree.
        reopened = DurableDatabase(target)
        agreed = canonical(reopened)
        reopened.close(commit=False)
        if agreed != recovered:
            failures.append((n, f"reopen disagrees after {plan.failed_op}"))
    assert not failures, f"{len(failures)}/{total} crash points leaked: {failures}"


class TestCrashSweep:
    def test_docstore_workload_crash_mode(self, tmp_path):
        sweep(docstore_workload, tmp_path, "crash")

    def test_docstore_workload_torn_mode(self, tmp_path):
        sweep(docstore_workload, tmp_path, "torn")

    def test_generator_workload_crash_mode(self, tmp_path):
        sweep(generator_workload, tmp_path, "crash")

    def test_fault_free_run_is_clean(self, tmp_path):
        docstore_workload(tmp_path / "clean")
        report_db = DurableDatabase(tmp_path / "clean")
        assert report_db.last_recovery is not None
        assert report_db.last_recovery.clean
        report_db.close(commit=False)

    def test_op_count_is_deterministic(self, tmp_path):
        first = faults.count_ops(lambda: docstore_workload(tmp_path / "one"))
        second = faults.count_ops(lambda: docstore_workload(tmp_path / "two"))
        assert first == second


class TestFaultShim:
    def test_error_mode_raises_oserror_once(self, tmp_path):
        plan = faults.FaultyFileSystem(fail_at=1, mode="error")
        with faults.inject(plan):
            with pytest.raises(OSError):
                plan.open(tmp_path / "f", "wb")
            handle = plan.open(tmp_path / "f", "wb")  # next call succeeds
            handle.close()

    def test_only_filter_counts_selected_ops(self, tmp_path):
        total = faults.count_ops(
            lambda: docstore_workload(tmp_path / "a"), only=("fsync",)
        )
        everything = faults.count_ops(lambda: docstore_workload(tmp_path / "b"))
        assert 0 < total < everything

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            faults.FaultyFileSystem(fail_at=1, mode="explode")

    def test_unknown_only_op_rejected(self):
        with pytest.raises(ValueError):
            faults.FaultyFileSystem(fail_at=1, only=("format_disk",))


# ------------------------------------------------ full fault-model sweeps

#: Shard-key values covering every shard of a 3-way layout twice
#: (``shard_key_shard`` placement: AA1/AA3 → 0, AA2/AA5 → 1, AA7/AA9 → 2).
_SHARDED_IDS = ("AA1", "AA2", "AA7", "AA3", "AA5", "AA9")


def sharded_workload(directory, mark=None):
    """Insert/index/update/checkpoint/delete over a 3-shard collection."""
    database = DurableDatabase(Path(directory), shards=3)
    docs = database.get_collection("docs")
    for index, ncid in enumerate(_SHARDED_IDS):
        docs.insert_one({"_id": ncid, "ncid": ncid, "n": index})
    docs.create_index("ncid")
    database.commit()
    if mark:
        mark(database)
    docs.update_one({"_id": "AA1"}, {"$set": {"n": 100}})
    database.checkpoint()
    if mark:
        mark(database)
    docs.delete_many({"_id": "AA2"})
    docs.insert_one({"_id": "BA1", "ncid": "BA1", "n": 7})
    database.commit()
    if mark:
        mark(database)
    database.close()


def doc_state(database):
    """Docs-only state (degraded-tolerant): healthy shards' documents."""
    state = {}
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedReadWarning)
        for name in database.collection_names():
            state[name] = sorted(
                json.dumps(doc, sort_keys=True)
                for doc in database[name].all(allow_degraded=True)
            )
    return state


def committed_doc_states(workload, directory):
    """Run ``workload`` fault-free; return the committed docs-only states."""
    states = [{}]
    workload(directory, mark=lambda db: states.append(doc_state(db)))
    return states


def healthy_projection(state, quarantined, shards):
    """Project a committed state onto the shards ``quarantined`` spares."""
    projected = {}
    for name, blobs in state.items():
        dark = quarantined.get(name, set())
        kept = []
        for blob in blobs:
            doc = json.loads(blob)
            if shard_key_shard(str(doc.get("ncid")), shards) not in dark:
                kept.append(blob)
        projected[name] = kept
    return projected


def check_recovered_or_quarantined(target, states, shards):
    """The tentpole invariant: recovered-or-quarantined, never silently wrong.

    Returns ``None`` when the reopened store's (degraded) state is the
    healthy-shard projection of some committed state, else a description
    of the violation.
    """
    try:
        reopened = DurableDatabase(target, shards=shards)
    except Exception as exc:  # noqa: BLE001 - any failure to open is the bug
        return f"reopen failed: {exc!r}"
    try:
        quarantined = {
            name: set(reopened[name].quarantined_shards)
            for name in reopened.collection_names()
            if reopened[name].quarantined_shards
        }
        actual = doc_state(reopened)
        for state in states:
            if actual == healthy_projection(state, quarantined, shards):
                return None
        return f"state not a committed projection (quarantined={quarantined})"
    finally:
        reopened.close(commit=False)


def fault_sweep(workload, tmp_path, mode, shards=3):
    """Inject ``mode`` at every op; assert the store is never silently wrong."""
    states = committed_doc_states(workload, tmp_path / "reference")
    total = faults.count_ops(lambda: workload(tmp_path / "count"))
    assert total > 0
    failures = []
    for plan in faults.fault_points(total, mode=mode):
        target = tmp_path / f"{mode}-{plan.fail_at}"
        with faults.inject(plan):
            try:
                workload(target)
            except (faults.CrashError, OSError):
                pass  # the fault surfaced; the store must still open below
        violation = check_recovered_or_quarantined(target, states, shards)
        if violation is not None:
            failures.append((plan.fail_at, plan.failed_op, violation))
    assert not failures, f"{len(failures)}/{total} fault points leaked: {failures}"


class TestFaultModeSweep:
    """The full I/O fault model over a sharded generate→commit→checkpoint run."""

    def test_sharded_workload_crash_mode(self, tmp_path):
        sweep(sharded_workload, tmp_path, "crash")

    def test_sharded_workload_torn_mode(self, tmp_path):
        fault_sweep(sharded_workload, tmp_path, "torn")

    def test_sharded_workload_eio_mode(self, tmp_path):
        fault_sweep(sharded_workload, tmp_path, "eio")

    def test_sharded_workload_enospc_mode(self, tmp_path):
        fault_sweep(sharded_workload, tmp_path, "enospc")

    def test_sharded_workload_partial_fsync_mode(self, tmp_path):
        fault_sweep(sharded_workload, tmp_path, "partial_fsync")

    def test_docstore_workload_enospc_mode(self, tmp_path):
        fault_sweep(docstore_workload, tmp_path, "enospc", shards=1)

    def test_docstore_workload_partial_fsync_mode(self, tmp_path):
        fault_sweep(docstore_workload, tmp_path, "partial_fsync", shards=1)

    def test_slow_mode_changes_nothing(self, tmp_path):
        """Latency alone must never change an outcome."""
        expected = committed_doc_states(sharded_workload, tmp_path / "ref")[-1]
        plan = faults.FaultyFileSystem(fail_at=5, mode="slow", delay=0.001)
        with faults.inject(plan):
            sharded_workload(tmp_path / "slow")
        assert plan.failed_op is not None  # the delay did fire
        reopened = DurableDatabase(tmp_path / "slow", shards=3)
        assert doc_state(reopened) == expected
        assert reopened.last_recovery.clean
        reopened.close(commit=False)


class TestFaultShimModes:
    def test_eio_mode_sets_errno_and_fires_once(self, tmp_path):
        plan = faults.FaultyFileSystem(fail_at=1, mode="eio")
        with faults.inject(plan):
            with pytest.raises(OSError) as excinfo:
                plan.read_bytes(tmp_path / "missing")
            assert excinfo.value.errno == errno.EIO
            (tmp_path / "f").write_bytes(b"ok")
            assert plan.read_bytes(tmp_path / "f") == b"ok"  # fires once

    def test_enospc_mode_persists_prefix_then_raises(self, tmp_path):
        plan = faults.FaultyFileSystem(fail_at=2, mode="enospc")
        with faults.inject(plan):
            handle = plan.open(tmp_path / "f", "wb", buffering=0)
            with pytest.raises(OSError) as excinfo:
                plan.write(handle, b"0123456789")
            handle.close()
        assert excinfo.value.errno == errno.ENOSPC
        assert (tmp_path / "f").read_bytes() == b"01234"  # half fit on disk

    def test_partial_fsync_rolls_back_to_durable_size(self, tmp_path):
        plan = faults.FaultyFileSystem(
            fail_at=2, mode="partial_fsync", only=("fsync",)
        )
        with faults.inject(plan):
            handle = plan.open(tmp_path / "f", "wb", buffering=0)
            plan.write(handle, b"durable!")
            plan.fsync(handle)                                 # fsync 1: ok
            plan.write(handle, b"lost")
            with pytest.raises(faults.CrashError):
                plan.fsync(handle)                             # fsync 2: fails
            handle.close()
        assert (tmp_path / "f").read_bytes() == b"durable!"

    def test_slow_mode_performs_the_operation(self, tmp_path):
        plan = faults.FaultyFileSystem(fail_at=1, mode="slow", delay=0.0)
        with faults.inject(plan):
            handle = plan.open(tmp_path / "f", "wb", buffering=0)
            handle.write(b"x")
            handle.close()
        assert (tmp_path / "f").read_bytes() == b"x"
        assert plan.failed_op is not None

    def test_fault_points_enumerates_every_index(self):
        plans = list(faults.fault_points(3, mode="enospc", only=("write",)))
        assert [plan.fail_at for plan in plans] == [1, 2, 3]
        assert all(plan.mode == "enospc" for plan in plans)
        assert all(plan.only == ("write",) for plan in plans)


class TestWalEnospcSafety:
    """Satellite: a failed append must leave the log on a frame boundary."""

    def _writer_with_one_commit(self, tmp_path):
        writer = WalWriter(tmp_path / "docs.wal")
        writer.log("insert", {"doc": {"_id": "a"}})
        writer.commit(1)
        return writer

    def test_failed_append_truncates_to_last_frame(self, tmp_path):
        writer = self._writer_with_one_commit(tmp_path)
        good_size = (tmp_path / "docs.wal").stat().st_size
        plan = faults.FaultyFileSystem(fail_at=1, mode="enospc", only=("write",))
        with faults.inject(plan):
            with pytest.raises(StorageError):
                writer.log("insert", {"doc": {"_id": "b"}})
        assert (tmp_path / "docs.wal").stat().st_size == good_size
        recovery = read_wal(tmp_path / "docs.wal", committed_epoch=1)
        assert [op["op"] for op in recovery.operations] == ["insert"]
        writer.close()

    def test_poisoned_writer_refuses_appends_until_reset(self, tmp_path):
        writer = self._writer_with_one_commit(tmp_path)
        plan = faults.FaultyFileSystem(fail_at=1, mode="enospc", only=("write",))
        with faults.inject(plan):
            with pytest.raises(StorageError):
                writer.log("insert", {"doc": {"_id": "b"}})
        with pytest.raises(StorageError):  # no fault active: still poisoned
            writer.log("insert", {"doc": {"_id": "c"}})
        writer.reset()
        writer.log("insert", {"doc": {"_id": "d"}})  # healthy again
        writer.close()

    def test_failed_commit_marker_poisons_writer(self, tmp_path):
        writer = self._writer_with_one_commit(tmp_path)
        writer.log("insert", {"doc": {"_id": "b"}})
        plan = faults.FaultyFileSystem(fail_at=1, mode="eio", only=("fsync",))
        with faults.inject(plan):
            with pytest.raises(StorageError):
                writer.commit(2)
        # Epoch 2 never became durable: replay must stop at epoch 1.
        recovery = read_wal(tmp_path / "docs.wal", committed_epoch=1)
        assert recovery.last_epoch == 1
        writer.close()


class TestOrphanCleanup:
    """Satellite: ``*.tmp`` leftovers from crashed atomic writes are swept."""

    def test_orphans_removed_and_counted_on_open(self, tmp_path):
        database = DurableDatabase(tmp_path)
        database["docs"].insert_one({"_id": "a", "ncid": "a"})
        database.checkpoint()
        database.close()
        (tmp_path / "docs.jsonl.tmp").write_bytes(b"half-written")
        (tmp_path / "manifest.json.tmp").write_bytes(b"{")
        reopened = DurableDatabase(tmp_path)
        assert reopened.last_recovery.orphans_removed == 2
        assert not list(tmp_path.glob("*.tmp"))
        assert [doc["_id"] for doc in reopened["docs"].all()] == ["a"]
        reopened.close(commit=False)


# ----------------------------------------------------------- property tests

_DOC_IDS = st.sampled_from(["a", "b", "c", "d", "e"])
_OPERATIONS = st.one_of(
    st.tuples(st.just("insert"), _DOC_IDS, st.integers(0, 99)),
    st.tuples(st.just("update"), _DOC_IDS, st.integers(0, 99)),
    st.tuples(st.just("delete"), _DOC_IDS, st.just(0)),
)


def apply_operations(collection, operations):
    for kind, doc_id, value in operations:
        if kind == "insert":
            if collection.count_documents({"_id": doc_id}):
                collection.replace_one(
                    {"_id": doc_id}, {"_id": doc_id, "value": value}
                )
            else:
                collection.insert_one({"_id": doc_id, "value": value})
        elif kind == "update":
            collection.update_one({"_id": doc_id}, {"$set": {"value": value}})
        elif kind == "delete":
            collection.delete_many({"_id": doc_id})


def apply_sharded_operations(collection, operations):
    """Like :func:`apply_operations` but stamps the shard key on every doc,
    so a fault oracle can project committed states onto healthy shards."""
    for kind, doc_id, value in operations:
        document = {"_id": doc_id, "ncid": doc_id, "value": value}
        if kind == "insert":
            if collection.count_documents({"_id": doc_id}):
                collection.replace_one({"_id": doc_id}, document)
            else:
                collection.insert_one(document)
        elif kind == "update":
            collection.update_one({"_id": doc_id}, {"$set": {"value": value}})
        elif kind == "delete":
            collection.delete_many({"_id": doc_id})


class TestRoundTripProperties:
    @given(operations=st.lists(_OPERATIONS, max_size=30))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_plain_save_load_roundtrip(self, operations, tmp_path_factory):
        directory = tmp_path_factory.mktemp("roundtrip")
        database = Database("db")
        apply_operations(database["docs"], operations)
        database["docs"].create_index("value", "sorted")
        database.save(directory)
        assert canonical(Database.load(directory)) == canonical(database)

    @given(
        committed=st.lists(_OPERATIONS, max_size=20),
        staged=st.lists(_OPERATIONS, min_size=1, max_size=10),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_durable_reload_drops_uncommitted_wal_tail(
        self, committed, staged, tmp_path_factory
    ):
        directory = tmp_path_factory.mktemp("durable")
        database = DurableDatabase(directory)
        apply_operations(database["docs"], committed)
        database.commit()
        expected = canonical(database)
        apply_operations(database["docs"], staged)
        database.close(commit=False)  # staged tail stays uncommitted
        assert reload_state(directory) == expected
        reopened = DurableDatabase(directory)
        assert canonical(reopened) == expected
        reopened.close(commit=False)

    @given(
        committed=st.lists(_OPERATIONS, max_size=12),
        staged=st.lists(_OPERATIONS, max_size=8),
        mode=st.sampled_from(["crash", "torn", "eio", "enospc", "partial_fsync"]),
        point=st.integers(1, 80),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_fault_never_silently_wrong(
        self, committed, staged, mode, point, tmp_path_factory
    ):
        """Random ops × random fault point × any mode → the invariant holds."""
        directory = tmp_path_factory.mktemp("fault")

        def workload(target, mark=None):
            database = DurableDatabase(Path(target), shards=2)
            docs = database["docs"]
            apply_sharded_operations(docs, committed)
            database.commit()
            if mark:
                mark(database)
            apply_sharded_operations(docs, staged)
            database.commit()
            if mark:
                mark(database)
            database.close()

        states = committed_doc_states(workload, directory / "reference")
        target = directory / "faulted"
        plan = faults.FaultyFileSystem(fail_at=point, mode=mode)
        with faults.inject(plan):
            try:
                workload(target)
            except (faults.CrashError, OSError):
                pass
        violation = check_recovered_or_quarantined(target, states, shards=2)
        assert violation is None, f"{plan.failed_op}: {violation}"
