"""Tests for the write-ahead log: framing, commit protocol, recovery.

The torn-write corpus (``TestTornWriteCorpus``) is a set of hand-built
damaged WAL files exercising every branch of the recovery classifier:
clean truncation points must be repaired silently, damage *inside* the
committed region or mid-file must raise :class:`StorageCorruptError` with
a precise location.
"""

import json
import struct
import zlib

import pytest

from repro.docstore import StorageCorruptError
from repro.docstore.errors import StorageError
from repro.docstore.wal import (
    WAL_MAGIC,
    WalWriter,
    atomic_write_text,
    encode_record,
    read_committed_epoch,
    read_wal,
    write_committed_epoch,
)


def _payload(operation: dict) -> bytes:
    return json.dumps(operation, sort_keys=True).encode("utf-8")


def _build_wal(path, operations):
    """Write a syntactically perfect WAL containing ``operations``."""
    data = WAL_MAGIC + b"".join(encode_record(_payload(op)) for op in operations)
    path.write_bytes(data)
    return data


class TestFraming:
    def test_encode_record_layout(self):
        record = encode_record(b"abc")
        length, crc = struct.unpack_from("<II", record)
        assert length == 3
        assert crc == zlib.crc32(b"abc")
        assert record[8:] == b"abc"

    def test_writer_writes_magic_once(self, tmp_path):
        writer = WalWriter(tmp_path / "c.wal")
        writer.log("insert", {"doc": {"_id": 1}})
        writer.close()
        writer.log("insert", {"doc": {"_id": 2}})
        writer.close()
        data = (tmp_path / "c.wal").read_bytes()
        assert data.startswith(WAL_MAGIC)
        assert data.count(WAL_MAGIC) == 1

    def test_negative_fsync_batch_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            WalWriter(tmp_path / "c.wal", fsync_batch=-1)


class TestCommitProtocol:
    def test_committed_operations_replayed(self, tmp_path):
        writer = WalWriter(tmp_path / "c.wal")
        writer.log("insert", {"doc": {"_id": 1}})
        writer.log("insert", {"doc": {"_id": 2}})
        writer.commit(1)
        writer.close()
        recovery = read_wal(tmp_path / "c.wal", committed_epoch=1)
        assert [op["doc"]["_id"] for op in recovery.operations] == [1, 2]
        assert recovery.last_epoch == 1
        assert recovery.discarded == 0

    def test_staged_but_uncommitted_discarded(self, tmp_path):
        writer = WalWriter(tmp_path / "c.wal")
        writer.log("insert", {"doc": {"_id": 1}})
        writer.commit(1)
        writer.log("insert", {"doc": {"_id": 2}})  # staged, never committed
        writer.close()
        recovery = read_wal(tmp_path / "c.wal", committed_epoch=1)
        assert [op["doc"]["_id"] for op in recovery.operations] == [1]
        assert recovery.discarded == 1
        assert recovery.notes

    def test_marker_past_committed_epoch_seals_the_log(self, tmp_path):
        # The marker reached the log but the COMMITTED rename never landed:
        # epoch 2 (and anything after it) must not be replayed.
        writer = WalWriter(tmp_path / "c.wal")
        writer.log("insert", {"doc": {"_id": 1}})
        writer.commit(1)
        writer.log("insert", {"doc": {"_id": 2}})
        writer.commit(2)
        writer.close()
        recovery = read_wal(tmp_path / "c.wal", committed_epoch=1)
        assert [op["doc"]["_id"] for op in recovery.operations] == [1]
        assert recovery.last_epoch == 1

    def test_truncation_removes_uncommitted_tail(self, tmp_path):
        writer = WalWriter(tmp_path / "c.wal")
        writer.log("insert", {"doc": {"_id": 1}})
        writer.commit(1)
        writer.log("insert", {"doc": {"_id": 2}})
        writer.close()
        first = read_wal(tmp_path / "c.wal", committed_epoch=1, truncate_torn=True)
        assert first.truncated_at == first.committed_end
        # After truncation the file re-reads cleanly with nothing to discard.
        second = read_wal(tmp_path / "c.wal", committed_epoch=1)
        assert second.discarded == 0
        assert [op["doc"]["_id"] for op in second.operations] == [1]

    def test_readonly_read_does_not_truncate(self, tmp_path):
        writer = WalWriter(tmp_path / "c.wal")
        writer.log("insert", {"doc": {"_id": 1}})
        writer.commit(1)
        writer.log("insert", {"doc": {"_id": 2}})
        writer.close()
        size = (tmp_path / "c.wal").stat().st_size
        read_wal(tmp_path / "c.wal", committed_epoch=1, truncate_torn=False)
        assert (tmp_path / "c.wal").stat().st_size == size

    def test_reset_truncates_to_header(self, tmp_path):
        writer = WalWriter(tmp_path / "c.wal")
        writer.log("insert", {"doc": {"_id": 1}})
        writer.commit(1)
        writer.reset()
        assert (tmp_path / "c.wal").read_bytes() == WAL_MAGIC
        # Appends continue after the header without rewriting the magic.
        writer.log("insert", {"doc": {"_id": 2}})
        writer.close()
        recovery = read_wal(tmp_path / "c.wal", committed_epoch=1, truncate_torn=False)
        assert recovery.discarded == 1


class TestTornWriteCorpus:
    """Hand-built damaged WAL files, one per recovery-classifier branch."""

    def _committed(self, tmp_path, extra=b""):
        ops = [
            {"op": "insert", "doc": {"_id": 1, "v": "x" * 40}},
            {"op": "commit", "epoch": 1},
        ]
        data = _build_wal(tmp_path / "c.wal", ops)
        (tmp_path / "c.wal").write_bytes(data + extra)
        return tmp_path / "c.wal", len(data)

    def test_empty_file(self, tmp_path):
        (tmp_path / "c.wal").write_bytes(b"")
        recovery = read_wal(tmp_path / "c.wal", committed_epoch=0)
        assert recovery.operations == []

    def test_header_only(self, tmp_path):
        (tmp_path / "c.wal").write_bytes(WAL_MAGIC)
        recovery = read_wal(tmp_path / "c.wal", committed_epoch=0)
        assert recovery.operations == []
        assert recovery.truncated_at is None

    def test_short_header(self, tmp_path):
        (tmp_path / "c.wal").write_bytes(WAL_MAGIC[:3])
        recovery = read_wal(tmp_path / "c.wal", committed_epoch=0)
        assert recovery.truncated_at == 0
        assert (tmp_path / "c.wal").read_bytes() == b""

    def test_bad_magic(self, tmp_path):
        (tmp_path / "c.wal").write_bytes(b"NOTAWAL!" + encode_record(b"{}"))
        with pytest.raises(StorageCorruptError) as info:
            read_wal(tmp_path / "c.wal", committed_epoch=0)
        assert info.value.offset == 0
        assert "magic" in info.value.reason

    def test_torn_record_prefix(self, tmp_path):
        path, end = self._committed(tmp_path, extra=b"\x05\x00")
        recovery = read_wal(path, committed_epoch=1)
        assert [op["doc"]["_id"] for op in recovery.operations] == [1]
        assert recovery.truncated_at == end
        assert path.stat().st_size == end

    def test_record_extends_past_eof(self, tmp_path):
        tail = encode_record(_payload({"op": "insert", "doc": {"_id": 2}}))
        path, end = self._committed(tmp_path, extra=tail[:-4])
        recovery = read_wal(path, committed_epoch=1)
        assert recovery.truncated_at == end
        assert [op["doc"]["_id"] for op in recovery.operations] == [1]

    def test_checksum_corrupt_tail_is_torn(self, tmp_path):
        tail = bytearray(encode_record(_payload({"op": "insert", "doc": {"_id": 2}})))
        tail[-1] ^= 0xFF
        path, end = self._committed(tmp_path, extra=bytes(tail))
        recovery = read_wal(path, committed_epoch=1)
        assert recovery.truncated_at == end
        assert any("checksum" in note for note in recovery.notes)

    def test_checksum_corrupt_mid_file_raises(self, tmp_path):
        ops = [
            {"op": "insert", "doc": {"_id": 1}},
            {"op": "insert", "doc": {"_id": 2}},
            {"op": "commit", "epoch": 1},
        ]
        data = bytearray(_build_wal(tmp_path / "c.wal", ops))
        # Flip a payload byte of the *first* record; two valid records follow.
        data[len(WAL_MAGIC) + 8 + 4] ^= 0xFF
        (tmp_path / "c.wal").write_bytes(bytes(data))
        with pytest.raises(StorageCorruptError) as info:
            read_wal(tmp_path / "c.wal", committed_epoch=1)
        assert info.value.offset == len(WAL_MAGIC)
        assert "checksum" in info.value.reason

    def test_non_object_payload_tail(self, tmp_path):
        path, end = self._committed(tmp_path, extra=encode_record(b"[1, 2]"))
        recovery = read_wal(path, committed_epoch=1)
        assert recovery.truncated_at == end
        assert any("not an operation" in note for note in recovery.notes)

    def test_unparseable_payload_mid_file_raises(self, tmp_path):
        bad = encode_record(b"\xff\xfe{{{")
        good = encode_record(_payload({"op": "commit", "epoch": 1}))
        (tmp_path / "c.wal").write_bytes(WAL_MAGIC + bad + good)
        with pytest.raises(StorageCorruptError) as info:
            read_wal(tmp_path / "c.wal", committed_epoch=1)
        assert info.value.offset == len(WAL_MAGIC)


class TestAtomicWrites:
    def test_no_tmp_file_left(self, tmp_path):
        atomic_write_text(tmp_path / "f.txt", "hello")
        assert (tmp_path / "f.txt").read_text() == "hello"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_overwrites_atomically(self, tmp_path):
        (tmp_path / "f.txt").write_text("old")
        atomic_write_text(tmp_path / "f.txt", "new")
        assert (tmp_path / "f.txt").read_text() == "new"


class TestCommittedEpochFile:
    def test_roundtrip(self, tmp_path):
        assert read_committed_epoch(tmp_path) == 0
        write_committed_epoch(tmp_path, 7)
        assert read_committed_epoch(tmp_path) == 7

    def test_garbage_epoch_file_raises(self, tmp_path):
        (tmp_path / "COMMITTED").write_text("not json")
        with pytest.raises(StorageCorruptError):
            read_committed_epoch(tmp_path)


class TestFsyncAccounting:
    """Pin the documented fsync policy on both append paths.

    ``fsync_batch`` meters *appends*; an ``append_many`` batch is one
    group-commit durability unit, so a bulk batch fsyncs once regardless
    of its record count — commit markers always fsync, which is the only
    fsync that affects what recovery replays.
    """

    @staticmethod
    def _fsyncs(fn) -> int:
        from repro import faults

        return faults.count_ops(fn, only=("fsync",))

    def test_per_op_appends_fsync_every_record(self, tmp_path):
        writer = WalWriter(tmp_path / "c.wal", fsync_batch=1)
        count = self._fsyncs(
            lambda: [writer.append({"op": "insert", "doc": {"_id": i}}) for i in range(5)]
        )
        writer.close()
        assert count == 5

    def test_append_many_is_one_durability_unit(self, tmp_path):
        writer = WalWriter(tmp_path / "c.wal", fsync_batch=1)
        count = self._fsyncs(
            lambda: writer.append_many(
                [{"op": "insert", "doc": {"_id": i}} for i in range(5)]
            )
        )
        writer.close()
        assert count == 1

    def test_commit_marker_always_fsyncs(self, tmp_path):
        writer = WalWriter(tmp_path / "c.wal", fsync_batch=0)
        staged = self._fsyncs(
            lambda: writer.append_many(
                [{"op": "insert", "doc": {"_id": i}} for i in range(5)]
            )
        )
        committed = self._fsyncs(lambda: writer.commit(1))
        writer.close()
        assert staged == 0
        assert committed == 1
