"""Query-planner tests: plan selection, pushdown, and full-scan equivalence.

The hypothesis properties are the load-bearing guarantee: for random
documents, random hash/sorted indexes and random filter / sort / skip /
limit / pipeline combinations, planned reads must be *exactly* equal —
same documents, same order — to the naive full-scan oracles in
``repro.docstore._reference``.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore import Collection
from repro.docstore._reference import (
    aggregate_full_scan,
    count_full_scan,
    distinct_full_scan,
    find_full_scan,
)
from repro.docstore.planner import (
    FULL_SCAN,
    ID_LOOKUP,
    INDEX_LOOKUP,
    INDEX_ORDER,
    INDEX_RANGE,
    plan_read,
    split_pushdown,
)

# --------------------------------------------------------------- strategies

fields = st.sampled_from(["a", "b", "c"])
scalars = st.one_of(
    st.integers(-5, 5),
    st.sampled_from(["x", "y", "zz"]),
    st.none(),
    st.booleans(),
)
values = st.one_of(scalars, st.lists(st.integers(-5, 5), max_size=3))

documents = st.lists(
    st.fixed_dictionaries(
        {},
        optional={
            "a": values,
            "b": st.integers(-5, 5),
            "c": st.text(alphabet=string.ascii_lowercase, max_size=2),
        },
    ),
    max_size=12,
)

index_specs = st.lists(
    st.tuples(fields, st.sampled_from(["hash", "sorted"])),
    unique=True,
    max_size=4,
)

simple_conditions = st.one_of(
    st.builds(lambda f, v: {f: v}, fields, scalars),
    st.builds(lambda f, v: {f: {"$eq": v}}, fields, values),
    st.builds(lambda f, vs: {f: {"$in": vs}}, fields, st.lists(scalars, max_size=3)),
    st.builds(
        lambda f, op, v: {f: {op: v}},
        fields,
        st.sampled_from(["$gt", "$gte", "$lt", "$lte"]),
        st.one_of(st.integers(-5, 5), st.sampled_from(["x", "y"])),
    ),
    st.builds(
        lambda f, lo, hi: {f: {"$gte": lo, "$lte": hi}},
        fields,
        st.integers(-5, 5),
        st.integers(-5, 5),
    ),
    st.builds(lambda f, v: {f: {"$ne": v}}, fields, scalars),
    st.builds(lambda f, e: {f: {"$exists": e}}, fields, st.booleans()),
)

filters = st.one_of(
    st.none(),
    simple_conditions,
    st.builds(
        lambda cs: {"$and": cs},
        st.lists(simple_conditions, min_size=1, max_size=3),
    ),
    st.builds(
        lambda cs: {"$or": cs},
        st.lists(simple_conditions, min_size=1, max_size=2),
    ),
)

sorts = st.one_of(
    st.none(),
    st.builds(lambda f, d: [(f, d)], fields, st.sampled_from([1, -1])),
    st.builds(
        lambda f1, d1, f2, d2: [(f1, d1), (f2, d2)],
        fields,
        st.sampled_from([1, -1]),
        fields,
        st.sampled_from([1, -1]),
    ),
)

head_stages = st.one_of(
    st.builds(lambda f: {"$match": f}, simple_conditions),
    st.builds(lambda f, d: {"$sort": {f: d}}, fields, st.sampled_from([1, -1])),
    st.builds(lambda n: {"$skip": n}, st.integers(-1, 4)),
    st.builds(lambda n: {"$limit": n}, st.integers(-1, 5)),
)
tails = st.sampled_from(
    [
        [],
        [{"$project": {"a": 1, "b": 1}}],
        [{"$group": {"_id": "$c", "n": {"$sum": 1}}}],
        [{"$count": "total"}],
    ]
)
pipelines = st.builds(
    lambda heads, tail: heads + tail, st.lists(head_stages, max_size=4), tails
)


def build_collection(docs, indexes):
    collection = Collection("c")
    for path, kind in indexes:
        collection.create_index(path, kind)
    collection.insert_many(dict(doc) for doc in docs)
    return collection


# ------------------------------------------------------- equivalence (find)


@given(
    documents,
    index_specs,
    filters,
    sorts,
    st.integers(0, 3),
    st.one_of(st.none(), st.integers(0, 4)),
)
@settings(max_examples=300)
def test_planned_find_equals_full_scan(docs, indexes, filter_doc, sort, skip, limit):
    collection = build_collection(docs, indexes)
    planned = collection.find(filter_doc, sort=sort, limit=limit, skip=skip)
    naive = find_full_scan(
        collection, filter_doc, sort=sort, limit=limit, skip=skip
    )
    assert planned == naive


@given(documents, index_specs, filters)
@settings(max_examples=200)
def test_planned_count_equals_full_scan(docs, indexes, filter_doc):
    collection = build_collection(docs, indexes)
    assert collection.count_documents(filter_doc) == count_full_scan(
        collection, filter_doc
    )


@given(documents, index_specs, fields, filters)
@settings(max_examples=150)
def test_planned_distinct_equals_full_scan(docs, indexes, path, filter_doc):
    collection = build_collection(docs, indexes)
    assert collection.distinct(path, filter_doc) == distinct_full_scan(
        collection, path, filter_doc
    )


@given(documents, index_specs, pipelines)
@settings(max_examples=300)
def test_planned_aggregate_equals_full_scan(docs, indexes, pipeline):
    collection = build_collection(docs, indexes)
    assert collection.aggregate(pipeline) == aggregate_full_scan(
        collection, pipeline
    )


@given(documents, index_specs, filters, sorts)
@settings(max_examples=200)
def test_explain_plan_matches_access_path(docs, indexes, filter_doc, sort):
    """The reported plan name must reflect the access path actually taken."""
    collection = build_collection(docs, indexes)
    plan = plan_read(collection, filter_doc, sort)
    explained = collection.explain(filter_doc, sort=sort)
    assert explained["plan"] == plan.plan_name
    if plan.plan_name == FULL_SCAN:
        assert plan.candidate_ids is None
        assert explained["candidates"] == len(collection)
    if plan.plan_name in (ID_LOOKUP, INDEX_LOOKUP, INDEX_RANGE):
        assert plan.candidate_ids is not None
        assert explained["candidates"] == len(plan.candidate_ids)
        # Candidates must be a superset of the true matches.
        matches = {
            doc["_id"] for doc in find_full_scan(collection, filter_doc)
        }
        candidate_user_ids = {
            collection._documents[i]["_id"] for i in plan.candidate_ids
        }
        assert matches <= candidate_user_ids
    if plan.plan_name == INDEX_ORDER:
        assert plan.order == "index"
        assert explained["order_index"] in explained["indexes_used"]


# ------------------------------------------------------------ plan selection


def make_people():
    collection = Collection("people")
    collection.create_index("city", "hash")
    collection.create_index("age", "sorted")
    collection.insert_many(
        [
            {"_id": 1, "city": "ac", "age": 34},
            {"_id": 2, "city": "bc", "age": 51},
            {"_id": 3, "city": "ac", "age": 18},
            {"_id": 4, "city": "cc", "age": 47},
            {"_id": 5, "city": "ac", "age": 29},
        ]
    )
    return collection


def test_eq_uses_hash_index():
    collection = make_people()
    plan = plan_read(collection, {"city": "ac"})
    assert plan.access == INDEX_LOOKUP
    assert plan.index_name == "city_hash"
    assert plan.residual is None  # fully covered: no re-matching needed
    assert len(plan.candidate_ids) == 3


def test_range_uses_sorted_index():
    collection = make_people()
    plan = plan_read(collection, {"age": {"$gte": 30, "$lt": 50}})
    assert plan.access == INDEX_RANGE
    assert plan.index_name == "age_sorted"
    assert plan.residual is None
    assert sorted(collection._documents[i]["_id"] for i in plan.candidate_ids) == [
        1,
        4,
    ]


def test_cheapest_branch_wins_and_residual_keeps_the_rest():
    collection = make_people()
    # city=ac has 3 candidates, age>45 has 2 — the range should win and
    # the city condition must remain in the residual.
    plan = plan_read(collection, {"city": "ac", "age": {"$gt": 45}})
    assert plan.access == INDEX_RANGE
    assert plan.residual == {"city": "ac"}
    assert collection.find({"city": "ac", "age": {"$gt": 45}}) == []


def test_id_lookup_beats_everything():
    collection = make_people()
    plan = plan_read(collection, {"_id": 3, "city": "ac"})
    assert plan.access == ID_LOOKUP
    assert plan.candidate_ids is not None and len(plan.candidate_ids) == 1


def test_and_branches_are_planned():
    collection = make_people()
    plan = plan_read(
        collection, {"$and": [{"city": "bc"}, {"age": {"$gte": 0}}]}
    )
    assert plan.access == INDEX_LOOKUP
    assert plan.index_name == "city_hash"


def test_unindexed_filter_full_scans():
    collection = make_people()
    plan = plan_read(collection, {"name": "ada"})
    assert plan.access == FULL_SCAN
    assert plan.candidate_ids is None


def test_or_is_not_planned_through_indexes():
    collection = make_people()
    plan = plan_read(collection, {"$or": [{"city": "ac"}, {"city": "bc"}]})
    assert plan.access == FULL_SCAN


def test_eq_none_narrows_but_keeps_residual():
    collection = Collection("c")
    collection.create_index("tag", "hash")
    collection.insert_many([{"tag": None}, {"tag": []}, {"tag": "v"}])
    plan = plan_read(collection, {"tag": None})
    assert plan.access == INDEX_LOOKUP
    # The None bucket also holds the empty-list document, so the
    # condition must stay in the residual...
    assert plan.residual == {"tag": None}
    # ...and the planned result must exclude the empty-list document.
    assert [doc["tag"] for doc in collection.find({"tag": None})] == [None]


def test_list_eq_does_not_use_multikey_hash_index():
    collection = Collection("c")
    collection.create_index("tags", "hash")
    collection.insert_many([{"tags": [1, 2]}, {"tags": [2]}])
    plan = plan_read(collection, {"tags": [1, 2]})
    assert plan.access == FULL_SCAN
    assert len(collection.find({"tags": [1, 2]})) == 1


def test_multikey_two_sided_range_is_exact():
    collection = Collection("c")
    collection.create_index("n", "sorted")
    collection.insert_many([{"n": [1, 20]}, {"n": 5}, {"n": 30}])
    # [1, 20] matches: 20 satisfies $gte 2, 1 satisfies $lte 10.
    results = collection.find({"n": {"$gte": 2, "$lte": 10}})
    assert sorted(doc["_id"] for doc in results) == [1, 2]
    plan = plan_read(collection, {"n": {"$gte": 2, "$lte": 10}})
    assert plan.access == INDEX_RANGE


# ------------------------------------------------------------- index order


def test_single_field_sort_streams_in_index_order():
    collection = make_people()
    plan = plan_read(collection, None, [("age", 1)])
    assert plan.plan_name == INDEX_ORDER
    assert plan.order == "index"
    ages = [doc["age"] for doc in collection.find(sort=[("age", 1)])]
    assert ages == sorted(ages)
    ages_desc = [doc["age"] for doc in collection.find(sort=[("age", -1)])]
    assert ages_desc == sorted(ages, reverse=True)


def test_multi_field_sort_falls_back_to_sorting():
    collection = make_people()
    plan = plan_read(collection, None, [("age", 1), ("city", 1)])
    assert plan.order == "sort"
    assert plan.plan_name == FULL_SCAN


def test_count_is_pure_index_count():
    collection = make_people()
    assert collection.count_documents({"city": "ac"}) == 3
    assert collection.count_documents({"age": {"$gt": 30}}) == 3


def test_distinct_reads_hash_index_keys():
    collection = make_people()
    assert collection.distinct("city") == ["ac", "bc", "cc"]


# ---------------------------------------------------------------- pushdown


def test_pushdown_absorbs_leading_window():
    pushdown = split_pushdown(
        [
            {"$match": {"a": 1}},
            {"$sort": {"b": 1}},
            {"$skip": 2},
            {"$limit": 3},
            {"$group": {"_id": "$a"}},
        ]
    )
    assert pushdown.pushed == ["$match", "$sort", "$skip", "$limit"]
    assert pushdown.filter_doc == {"a": 1}
    assert pushdown.sort_spec == [("b", 1)]
    assert pushdown.skip == 2 and pushdown.limit == 3
    assert pushdown.rest == [{"$group": {"_id": "$a"}}]


def test_pushdown_folds_windows_and_stops_at_second_sort():
    pushdown = split_pushdown(
        [{"$skip": 1}, {"$limit": 5}, {"$skip": 2}, {"$sort": {"a": 1}}]
    )
    assert pushdown.skip == 3 and pushdown.limit == 3
    assert pushdown.rest == [{"$sort": {"a": 1}}]
    second = split_pushdown([{"$sort": {"a": 1}}, {"$sort": {"b": 1}}])
    assert second.pushed == ["$sort"]
    assert second.rest == [{"$sort": {"b": 1}}]


def test_pushdown_stops_at_malformed_stage():
    pushdown = split_pushdown([{"$match": {"a": {"$wat": 1}}}, {"$limit": 2}])
    assert pushdown.pushed == []
    assert pushdown.rest == [{"$match": {"a": {"$wat": 1}}}, {"$limit": 2}]


def test_explain_reports_pushdown():
    collection = make_people()
    explained = collection.explain(
        pipeline=[
            {"$match": {"age": {"$gte": 30}}},
            {"$sort": {"age": 1}},
            {"$limit": 2},
            {"$group": {"_id": "$city"}},
        ]
    )
    assert explained["plan"] == INDEX_RANGE
    assert explained["pushdown"] == ["$match", "$sort", "$limit"]
    assert explained["remaining_stages"] == ["$group"]


def test_explain_reports_plan_cache_counters():
    collection = make_people()
    filter_doc = {"city": "ac"}

    explained = collection.explain(filter_doc)
    stats = explained["plan_cache"]
    assert set(stats) == {"hits", "misses", "invalidated"}
    # The very first planning of this query is a miss...
    assert stats["misses"] >= 1
    hits_before = stats["hits"]

    collection.find(filter_doc)
    # ...and an exact repeat replays the bound plan (a hit).
    assert collection.explain(filter_doc)["plan_cache"]["hits"] > hits_before

    # Any write moves the epoch: the next lookup invalidates and re-misses.
    before = collection.explain(filter_doc)["plan_cache"]
    collection.insert_one({"_id": 6, "city": "dc", "age": 61})
    after = collection.explain(filter_doc)["plan_cache"]
    assert after["invalidated"] == before["invalidated"] + 1
    assert after["misses"] == before["misses"] + 1


def test_explain_reports_plan_cache_when_disabled():
    collection = make_people()
    collection.plan_cache_enabled = False
    first = collection.explain({"city": "ac"})["plan_cache"]
    collection.find({"city": "ac"})
    second = collection.explain({"city": "ac"})["plan_cache"]
    # Cold planning never touches the memo: the counters stay put.
    assert first == second


def test_explain_reports_materialization_mode():
    collection = make_people()
    assert collection.explain({"city": "ac"})["materialization"] == "lazy"
    collection.copy_mode = "eager"
    assert collection.explain({"city": "ac"})["materialization"] == "eager"
    snapshot_mode = Collection("p2", copy_mode="eager")
    assert snapshot_mode.explain()["materialization"] == "eager"


def test_malformed_pipeline_errors_survive_pushdown():
    from repro.docstore.errors import QueryError

    collection = make_people()
    with pytest.raises(QueryError):
        collection.aggregate([{"$match": {"a": {"$wat": 1}}}])
    with pytest.raises(QueryError):
        collection.aggregate([{"$sort": {"age": 2}}])


# ------------------------------------------------------- update maintenance


class _CountingIndex:
    """Wraps an index, counting remove/add calls."""

    def __init__(self, inner):
        self._inner = inner
        self.path = inner.path
        self.kind = inner.kind
        self.removes = 0
        self.adds = 0

    def add(self, doc_id, document):
        self.adds += 1
        self._inner.add(doc_id, document)

    def remove(self, doc_id, document):
        self.removes += 1
        self._inner.remove(doc_id, document)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def test_update_maintains_only_touched_indexes():
    collection = Collection("c")
    collection.create_index("a", "hash")
    collection.create_index("b", "sorted")
    collection.insert_one({"_id": 1, "a": "x", "b": 3})
    spies = {
        name: _CountingIndex(index)
        for name, index in collection._indexes.items()
    }
    collection._indexes = dict(spies)
    baseline = {name: (spy.removes, spy.adds) for name, spy in spies.items()}

    collection.update_one({"_id": 1}, {"$set": {"a": "y"}})
    assert spies["a_hash"].removes == baseline["a_hash"][0] + 1
    assert spies["b_sorted"].removes == baseline["b_sorted"][0]

    collection.update_one({"_id": 1}, {"$inc": {"b": 2}})
    assert spies["b_sorted"].removes == baseline["b_sorted"][0] + 1

    # Queries through both indexes still see the updated document.
    assert collection.find({"a": "y"})[0]["b"] == 5
    assert collection.count_documents({"b": {"$gte": 5}}) == 1


def test_update_nested_and_rename_touch_the_right_indexes():
    collection = Collection("c")
    collection.create_index("meta.tag", "hash")
    collection.insert_one({"_id": 1, "meta": {"tag": "t1"}})
    collection.update_one({"_id": 1}, {"$set": {"meta": {"tag": "t2"}}})
    assert [doc["_id"] for doc in collection.find({"meta.tag": "t2"})] == [1]
    collection.update_one({"_id": 1}, {"$rename": {"meta": "info"}})
    assert collection.find({"meta.tag": "t2"}) == []


@given(documents, index_specs, st.data())
@settings(max_examples=100)
def test_updates_keep_indexes_consistent(docs, indexes, data):
    """After random updates, planned reads still equal full scans."""
    collection = build_collection(docs, indexes)
    update = data.draw(
        st.sampled_from(
            [
                {"$set": {"a": 9}},
                {"$set": {"b": -9, "c": "zz"}},
                {"$unset": {"a": ""}},
                {"$inc": {"b": 1}},
                {"$rename": {"a": "c"}},
            ]
        )
    )
    filter_doc = data.draw(filters)
    collection.update_many(filter_doc or {}, update)
    for probe in ({"a": 9}, {"b": {"$gte": -9}}, {"c": "zz"}):
        assert collection.find(probe) == find_full_scan(collection, probe)
