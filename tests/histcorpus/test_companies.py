"""Tests for the company-register domain (the generalised pipeline)."""

import statistics

import pytest

from repro.core import RemovalLevel, TestDataGenerator
from repro.core.clusters import record_view
from repro.core.versioning import UpdateProcess
from repro.histcorpus import (
    COMPANY_PROFILE,
    CompanyRegisterConfig,
    CompanyRegisterSimulator,
    company_pair_plausibility,
    score_company_cluster,
)
from repro.histcorpus.plausibility import company_cluster_plausibility


@pytest.fixture(scope="module")
def company_simulator():
    config = CompanyRegisterConfig(
        initial_companies=200,
        years=6,
        seed=5,
        id_reuse_rate=0.4,
        dissolution_rate=0.06,
    )
    sim = CompanyRegisterSimulator(config)
    sim._snapshots = list(sim.run())
    return sim


@pytest.fixture(scope="module")
def company_generator(company_simulator):
    generator = TestDataGenerator(
        removal=RemovalLevel.TRIMMED, profile=COMPANY_PROFILE
    )
    UpdateProcess(generator, plausibility_fn=score_company_cluster).run(
        company_simulator._snapshots
    )
    return generator


class TestProfile:
    def test_profile_shape(self):
        assert COMPANY_PROFILE.id_attribute == "reg_id"
        assert COMPANY_PROFILE.primary_group == "company"
        assert set(COMPANY_PROFILE.group_names) == {
            "company", "address", "officers", "meta",
        }

    def test_hash_exclusions_are_dates(self):
        assert set(COMPANY_PROFILE.hash_excluded) == {
            "snapshot_dt", "registr_dt", "dissolution_dt",
        }


class TestSimulator:
    def test_deterministic(self):
        config = CompanyRegisterConfig(initial_companies=40, years=3, seed=1)
        first = [s.records for s in CompanyRegisterSimulator(config).run()]
        second = [s.records for s in CompanyRegisterSimulator(config).run()]
        assert first == second

    def test_register_grows(self, company_simulator):
        sizes = [len(s) for s in company_simulator._snapshots]
        assert sizes[-1] > sizes[0]

    def test_records_cover_schema(self, company_simulator):
        record = company_simulator._snapshots[0].records[0]
        assert set(record) == set(COMPANY_PROFILE.all_attributes)

    def test_dissolved_companies_stay_in_register(self, company_simulator):
        last = company_simulator._snapshots[-1]
        statuses = {r["status"] for r in last.records}
        assert statuses == {"ACTIVE", "DISSOLVED"}

    def test_id_reuse_creates_unsound_clusters(self, company_simulator):
        assert company_simulator.unsound_ids

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CompanyRegisterSimulator(CompanyRegisterConfig(initial_companies=0))
        with pytest.raises(ValueError):
            CompanyRegisterSimulator(CompanyRegisterConfig(move_rate=1.5))


class TestGeneralizedPipeline:
    def test_clusters_keyed_by_reg_id(self, company_generator):
        cluster = next(company_generator.clusters())
        assert cluster["ncid"].startswith("C2")

    def test_records_split_into_company_groups(self, company_generator):
        cluster = company_generator.database["clusters"].find_one(
            {"records.0": {"$exists": True}}
        )
        record = cluster["records"][0]
        assert "company" in record and "address" in record
        assert "company_name" in record["company"]

    def test_overlap_compresses_like_voters(self, company_simulator):
        raw = sum(len(s) for s in company_simulator._snapshots)
        generator = TestDataGenerator(
            removal=RemovalLevel.TRIMMED, profile=COMPANY_PROFILE
        )
        generator.import_snapshots(company_simulator._snapshots)
        assert generator.record_count < 0.5 * raw

    def test_heterogeneity_maps_written(self, company_generator):
        for cluster in company_generator.clusters():
            if len(cluster["records"]) > 1:
                assert cluster["records"][1]["heterogeneity_person"]
                break

    def test_plausibility_separates_unsound(self, company_simulator, company_generator):
        unsound_ids = company_simulator.unsound_ids
        sound, unsound = [], []
        for cluster in company_generator.clusters():
            if len(cluster["records"]) < 2:
                continue
            score = company_cluster_plausibility(cluster)
            (unsound if cluster["ncid"] in unsound_ids else sound).append(score)
        assert unsound, "fixture must materialise unsound clusters"
        assert statistics.mean(unsound) < statistics.mean(sound) - 0.2


class TestCompanyPlausibility:
    def company(self, **overrides):
        base = {
            "company_name": "SUMMIT BUILDERS",
            "founding_year": "1995",
            "industry_code": "23",
            "state": "NC",
        }
        base.update(overrides)
        return base

    def test_identical(self):
        assert company_pair_plausibility(self.company(), self.company()) == 1.0

    def test_rename_hurts_but_other_evidence_remains(self):
        renamed = self.company(company_name="GRANITE HOLDINGS")
        score = company_pair_plausibility(self.company(), renamed)
        assert 0.3 < score < 0.9

    def test_typo_mostly_compensated(self):
        typo = self.company(company_name="SUMIT BUILDERS")
        assert company_pair_plausibility(self.company(), typo) > 0.9

    def test_token_swap_free(self):
        swapped = self.company(company_name="BUILDERS SUMMIT")
        assert company_pair_plausibility(self.company(), swapped) == 1.0

    def test_founding_year_tolerance(self):
        near = self.company(founding_year="1996")
        far = self.company(founding_year="1950")
        assert company_pair_plausibility(self.company(), near) == 1.0
        assert company_pair_plausibility(self.company(), far) < 1.0

    def test_missing_values_neutral(self):
        sparse = self.company(industry_code="", founding_year="")
        assert company_pair_plausibility(self.company(), sparse) == 1.0

    def test_different_company_scores_low(self):
        other = {
            "company_name": "COASTAL PHARMACY",
            "founding_year": "2011",
            "industry_code": "62",
            "state": "SC",
        }
        assert company_pair_plausibility(self.company(), other) < 0.4
