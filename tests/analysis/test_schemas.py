"""Tests for SchemaPaths, the schema builders and the operator registries."""

from repro.analysis import (
    ACCUMULATORS,
    EXPRESSION_OPERATORS,
    FILTER_OPERATORS,
    PIPELINE_STAGES,
    SchemaPaths,
    UPDATE_OPERATORS,
    cluster_schema,
    flat_record_schema,
    suggest,
)
from repro.analysis.schemas import normalize_path


class TestNormalizePath:
    def test_strips_numeric_segments(self):
        assert normalize_path("records.2.person.age") == "records.person.age"
        assert normalize_path("a.0.b.13.c") == "a.b.c"

    def test_plain_paths_unchanged(self):
        assert normalize_path("a.b") == "a.b"
        assert normalize_path("") == ""


class TestSchemaPaths:
    def test_exact_and_intermediate(self):
        schema = SchemaPaths(["a.b.c", "x"])
        assert schema.knows("a.b.c")
        assert schema.knows("a.b")  # intermediate sub-document node
        assert schema.knows("a")
        assert schema.knows("x")
        assert not schema.knows("a.b.d")
        assert not schema.knows("y")

    def test_leaves_are_terminal(self):
        # Going deeper than a declared leaf is unknown; dynamic
        # sub-documents must be declared as open_prefixes instead.
        schema = SchemaPaths(["a.b"])
        assert not schema.knows("a.b.anything")
        assert SchemaPaths(open_prefixes=["a.b"]).knows("a.b.anything")

    def test_open_prefixes(self):
        schema = SchemaPaths(["a"], open_prefixes=["meta.scores"])
        assert schema.knows("meta.scores")
        assert schema.knows("meta.scores.v3.anything")
        assert not schema.knows("meta.other")

    def test_permissive_knows_everything(self):
        schema = SchemaPaths(permissive=True)
        assert schema.knows("whatever.you.like")
        assert schema.suggest_path("whatever") is None

    def test_suggest_whole_path(self):
        schema = SchemaPaths(["ncid", "records.hash"])
        assert schema.suggest_path("ncide") == "ncid"

    def test_suggest_leaf_typo_in_deep_path(self):
        schema = cluster_schema()
        assert (
            schema.suggest_path("records.person.last_nme")
            == "records.person.last_name"
        )

    def test_descend(self):
        schema = SchemaPaths(["records.person.age", "records.hash", "top"])
        element = schema.descend("records")
        assert element.knows("person.age")
        assert element.knows("hash")
        assert not element.knows("top")

    def test_descend_into_open_prefix_is_permissive(self):
        schema = SchemaPaths(open_prefixes=["meta.scores"])
        assert schema.descend("meta.scores").permissive
        assert schema.descend("meta.scores.v1").permissive

    def test_from_documents(self):
        schema = SchemaPaths.from_documents(
            [
                {"a": 1, "b": {"c": "x"}},
                {"b": {"d": 2}, "tags": ["t1", "t2"], "e": [{"f": 1}]},
            ]
        )
        for path in ("a", "b.c", "b.d", "tags", "e.f"):
            assert schema.knows(path), path
        assert not schema.knows("z")


class TestClusterSchema:
    def test_core_cluster_paths(self):
        schema = cluster_schema()
        for path in (
            "_id",
            "ncid",
            "records.person.last_name",
            "records.district.county_id",
            "records.hash",
            "records.first_version",
            "meta.hashes",
            "meta.first_version",
        ):
            assert schema.knows(path), path

    def test_dynamic_maps_are_open(self):
        schema = cluster_schema()
        assert schema.knows("records.plausibility.7")
        assert schema.knows("records.heterogeneity.12")
        assert schema.knows("meta.inserts_per_snapshot.2008-01-01")

    def test_unknown_attribute_rejected(self):
        assert not cluster_schema().knows("records.person.shoe_size")

    def test_flat_record_schema_respects_groups(self):
        person_only = flat_record_schema(groups=("person",))
        assert person_only.knows("last_name")
        assert not person_only.knows("county_id")
        everything = flat_record_schema()
        assert everything.knows("county_id")


class TestRegistries:
    def test_pipeline_stages_match_dispatch_table(self):
        from repro.docstore.aggregation import _STAGES

        assert PIPELINE_STAGES == frozenset(_STAGES)

    def test_filter_operators_match_matching_module(self):
        """Every registry operator compiles; unknown ones raise.

        This pins the registry to ``compile_filter``'s actual dispatch so
        the two cannot drift apart.
        """
        from repro.docstore.errors import QueryError
        from repro.docstore.matching import compile_filter

        operand = {
            "$exists": True,
            "$regex": "x",
            "$in": [1],
            "$nin": [1],
            "$all": [1],
            "$size": 1,
            "$elemMatch": {"a": 1},
            "$not": {"$eq": 1},
        }
        for op in FILTER_OPERATORS:
            compile_filter({"field": {op: operand.get(op, 1)}})
        try:
            compile_filter({"field": {"$definitelyNot": 1}})
        except QueryError:
            pass
        else:  # pragma: no cover - the assertion is the point
            raise AssertionError("unknown operator must raise QueryError")

    def test_expression_operators_evaluate(self):
        from repro.docstore.aggregation import evaluate

        operands = {
            "$literal": 1,
            "$add": [1, 2],
            "$subtract": [3, 1],
            "$multiply": [2, 2],
            "$divide": [4, 2],
            "$size": "$xs",
            "$concat": ["a", "b"],
            "$cond": [True, 1, 2],
            "$ifNull": ["$missing", 0],
            "$min": [1, 2],
            "$max": [1, 2],
            "$avg": [1, 2],
        }
        assert set(operands) == set(EXPRESSION_OPERATORS)
        for op, operand in operands.items():
            evaluate({op: operand}, {"xs": [1, 2]})

    def test_accumulators_and_update_operators_accepted(self):
        from repro.docstore.aggregation import run_pipeline
        from repro.docstore.collection import Collection

        for op in ACCUMULATORS:
            list(
                run_pipeline(
                    [{"v": 1}], [{"$group": {"_id": None, "out": {op: "$v"}}}]
                )
            )
        for op in UPDATE_OPERATORS:
            collection = Collection("probe")
            collection.insert_one({"_id": 1, "a": 1, "xs": [1]})
            spec = {
                "$unset": {"a": ""},
                "$rename": {"a": "b"},
                "$push": {"xs": 2},
                "$addToSet": {"xs": 2},
                "$pull": {"xs": 1},
                "$inc": {"a": 1},
            }.get(op, {"a": 5})
            collection.update_one({"_id": 1}, {op: spec})


class TestSuggest:
    def test_within_distance(self):
        assert suggest("$grup", PIPELINE_STAGES) == "$group"
        assert suggest("$regx", FILTER_OPERATORS) == "$regex"

    def test_transposition_is_one_edit(self):
        assert suggest("$isze", {"$size"}) == "$size"

    def test_beyond_distance_returns_none(self):
        assert suggest("$completely_off", FILTER_OPERATORS) is None

    def test_deterministic_tie_break(self):
        assert suggest("ab", {"aa", "ac"}) == "aa"
