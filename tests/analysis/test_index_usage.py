"""Unit tests for the index-usage hint analyzer (I4xx codes).

One test class per code, mirroring ``tests/analysis/test_analyzer.py``;
every I4xx code documented in ``docs/static-analysis.md`` is pinned here.
"""

from repro.analysis import PUSHDOWN_STAGES, WARNING, analyze_index_usage
from repro.docstore import Collection


def codes(diagnostics):
    return [d.code for d in diagnostics]


HASH_ON_AGE = [{"path": "age", "kind": "hash"}]
SORTED_ON_AGE = [{"path": "age", "kind": "sorted"}]
BOTH = [{"path": "age", "kind": "hash"}, {"path": "age", "kind": "sorted"}]


class TestCleanShapes:
    def test_no_indexes_no_hints(self):
        assert analyze_index_usage({"age": {"$gt": 1}}, indexes=[]) == []

    def test_servable_conditions_are_silent(self):
        assert analyze_index_usage({"age": 3}, indexes=HASH_ON_AGE) == []
        assert analyze_index_usage({"age": {"$in": [1, 2]}}, indexes=HASH_ON_AGE) == []
        assert (
            analyze_index_usage({"age": {"$gte": 1, "$lt": 9}}, indexes=SORTED_ON_AGE)
            == []
        )

    def test_unindexed_path_is_silent(self):
        assert analyze_index_usage({"name": {"$regex": "a"}}, indexes=HASH_ON_AGE) == []

    def test_mixed_condition_with_servable_operator_is_silent(self):
        # The $eq can use the index; $regex just stays residual.
        diagnostics = analyze_index_usage(
            {"age": {"$eq": 3, "$exists": True}}, indexes=HASH_ON_AGE
        )
        assert diagnostics == []


class TestI401RangeOnHashIndex:
    def test_range_on_hash_only_path(self):
        diagnostics = analyze_index_usage({"age": {"$gt": 30}}, indexes=HASH_ON_AGE)
        assert codes(diagnostics) == ["I401"]
        assert diagnostics[0].severity == WARNING
        assert "sorted index" in diagnostics[0].hint

    def test_sorted_index_silences_it(self):
        assert analyze_index_usage({"age": {"$gt": 30}}, indexes=BOTH) == []

    def test_inside_and_branch(self):
        diagnostics = analyze_index_usage(
            {"$and": [{"age": {"$lt": 9}}]}, indexes=HASH_ON_AGE
        )
        assert codes(diagnostics) == ["I401"]
        assert "$and[0]" in diagnostics[0].path


class TestI402IndexBlindOperators:
    def test_ne_on_indexed_path(self):
        diagnostics = analyze_index_usage({"age": {"$ne": 3}}, indexes=BOTH)
        assert codes(diagnostics) == ["I402"]

    def test_regex_on_indexed_path(self):
        diagnostics = analyze_index_usage(
            {"age": {"$regex": "^4"}}, indexes=HASH_ON_AGE
        )
        assert codes(diagnostics) == ["I402"]


class TestI403OrOverIndexedPaths:
    def test_or_over_indexed_path(self):
        diagnostics = analyze_index_usage(
            {"$or": [{"age": 3}, {"age": 4}]}, indexes=HASH_ON_AGE
        )
        assert codes(diagnostics) == ["I403"]

    def test_or_over_unindexed_paths_is_silent(self):
        assert (
            analyze_index_usage(
                {"$or": [{"name": "a"}, {"name": "b"}]}, indexes=HASH_ON_AGE
            )
            == []
        )


class TestI404SortCannotUseIndex:
    def test_sort_on_hash_only_path(self):
        diagnostics = analyze_index_usage(
            None, sort=[("age", 1)], indexes=HASH_ON_AGE
        )
        assert codes(diagnostics) == ["I404"]

    def test_sort_on_sorted_path_is_silent(self):
        assert analyze_index_usage(None, sort=[("age", -1)], indexes=BOTH) == []

    def test_multi_field_sort_over_sorted_path(self):
        diagnostics = analyze_index_usage(
            None, sort=[("age", 1), ("name", 1)], indexes=SORTED_ON_AGE
        )
        assert codes(diagnostics) == ["I404"]

    def test_multi_field_sort_without_indexes_is_silent(self):
        assert (
            analyze_index_usage(
                None, sort=[("x", 1), ("y", 1)], indexes=SORTED_ON_AGE
            )
            == []
        )


class TestI405MatchBlockedFromPushdown:
    def test_match_after_group(self):
        diagnostics = analyze_index_usage(
            pipeline=[
                {"$group": {"_id": "$city", "age": {"$min": "$age"}}},
                {"$match": {"age": {"$gte": 30}}},
            ],
            indexes=SORTED_ON_AGE,
        )
        assert codes(diagnostics) == ["I405"]
        assert "stage[1]" in diagnostics[0].path

    def test_leading_match_is_analyzed_not_blocked(self):
        diagnostics = analyze_index_usage(
            pipeline=[{"$match": {"age": {"$gt": 1}}}, {"$group": {"_id": None}}],
            indexes=HASH_ON_AGE,
        )
        assert codes(diagnostics) == ["I401"]

    def test_match_on_unindexed_path_after_block_is_silent(self):
        assert (
            analyze_index_usage(
                pipeline=[{"$unwind": "$r"}, {"$match": {"r.x": 1}}],
                indexes=SORTED_ON_AGE,
            )
            == []
        )


class TestPushdownRegistryPin:
    def test_matches_planner(self):
        from repro.docstore.planner import split_pushdown

        pushdown = split_pushdown(
            [
                {"$match": {"a": 1}},
                {"$sort": {"a": 1}},
                {"$skip": 1},
                {"$limit": 1},
                {"$group": {"_id": None}},
            ]
        )
        assert set(pushdown.pushed) == PUSHDOWN_STAGES


class TestExplainSurfacesHints:
    def test_explain_includes_rendered_hints(self):
        collection = Collection("c")
        collection.create_index("age", "hash")
        collection.insert_many([{"age": n} for n in range(5)])
        explained = collection.explain({"age": {"$gt": 2}})
        assert explained["plan"] == "full_scan"
        assert any("I401" in hint for hint in explained["hints"])

    def test_explain_clean_query_has_no_hints(self):
        collection = Collection("c")
        collection.create_index("age", "sorted")
        collection.insert_many([{"age": n} for n in range(5)])
        explained = collection.explain({"age": {"$gt": 2}}, sort=[("age", 1)])
        assert explained["hints"] == []


class TestI407ShardScatter:
    def test_type_mismatched_shard_key_equality(self):
        diagnostics = analyze_index_usage(
            {"ncid": 7}, indexes=[], shard_key="ncid", shards=4
        )
        assert codes(diagnostics) == ["I407"]
        assert diagnostics[0].severity == WARNING
        assert "non-string operand" in diagnostics[0].message

    def test_in_with_non_string_element(self):
        diagnostics = analyze_index_usage(
            {"ncid": {"$in": ["AA1", 2]}}, indexes=[], shard_key="ncid", shards=4
        )
        assert codes(diagnostics) == ["I407"]

    def test_equality_buried_under_or(self):
        diagnostics = analyze_index_usage(
            {"$or": [{"ncid": "AA1"}, {"n": 2}]},
            indexes=[],
            shard_key="ncid",
            shards=4,
        )
        assert codes(diagnostics) == ["I407"]
        assert "disjunction" in diagnostics[0].message

    def test_routed_query_is_silent(self):
        assert (
            analyze_index_usage(
                {"ncid": "AA1"}, indexes=[], shard_key="ncid", shards=4
            )
            == []
        )
        assert (
            analyze_index_usage(
                {"$and": [{"ncid": "AA1"}, {"n": 1}]},
                indexes=[],
                shard_key="ncid",
                shards=4,
            )
            == []
        )

    def test_scatter_without_shard_key_mention_is_silent(self):
        assert (
            analyze_index_usage({"n": 1}, indexes=[], shard_key="ncid", shards=4)
            == []
        )

    def test_unsharded_collection_is_silent(self):
        assert analyze_index_usage({"ncid": 7}, indexes=[], shards=1) == []

    def test_pipeline_head_match_is_analyzed(self):
        diagnostics = analyze_index_usage(
            pipeline=[{"$match": {"ncid": 7}}, {"$group": {"_id": None}}],
            indexes=[],
            shard_key="ncid",
            shards=4,
        )
        assert codes(diagnostics) == ["I407"]

    def test_explain_surfaces_i407(self):
        collection = Collection("c", shards=4)
        collection.insert_many({"_id": i, "ncid": f"AA{i}"} for i in range(6))
        explained = collection.explain({"$or": [{"ncid": "AA1"}, {"_id": 5}]})
        assert explained["routing"] == "scatter"
        assert any("I407" in hint for hint in explained["hints"])
        routed = collection.explain({"ncid": "AA1"})
        assert routed["routing"] == "single"
        assert routed["hints"] == []
