"""Strict analysis mode on Collection / Database: reject before scanning."""

import pytest

from repro.analysis import SchemaPaths, cluster_schema
from repro.docstore import Database, DocStoreError, QueryError
from repro.docstore.collection import Collection


@pytest.fixture
def strict_collection():
    collection = Collection(
        "clusters", analysis_mode="strict", schema=cluster_schema()
    )
    collection.insert_one(
        {
            "_id": "AA1",
            "ncid": "AA1",
            "records": [{"person": {"last_name": "SMITH"}, "hash": "h1"}],
            "meta": {"hashes": ["h1"], "first_version": 1},
        }
    )
    return collection


class TestStrictCollection:
    def test_find_rejects_unknown_operator(self, strict_collection):
        with pytest.raises(QueryError, match="did you mean '\\$regex'"):
            strict_collection.find({"ncid": {"$regx": "^AA"}})

    def test_find_rejects_unknown_field_path(self, strict_collection):
        with pytest.raises(QueryError, match="Q007"):
            strict_collection.find({"records.person.last_nme": "SMITH"})

    def test_find_one_count_delete_also_guarded(self, strict_collection):
        with pytest.raises(QueryError):
            strict_collection.find_one({"nicd": {"$gtt": 1}})
        with pytest.raises(QueryError):
            strict_collection.count_documents({"ncid": {"$inn": ["AA1"]}})
        with pytest.raises(QueryError):
            strict_collection.delete_many({"ncid": {"$inn": ["AA1"]}})

    def test_aggregate_rejects_stage_order_hazard(self, strict_collection):
        with pytest.raises(QueryError, match="P105"):
            strict_collection.aggregate(
                [
                    {"$project": {"ncid": 1}},
                    {"$match": {"records.hash": "h1"}},
                ]
            )

    def test_update_rejects_unknown_update_operator(self, strict_collection):
        with pytest.raises(QueryError, match="U301"):
            strict_collection.update_many({"ncid": "AA1"}, {"$sett": {"x": 1}})

    def test_clean_queries_still_run(self, strict_collection):
        assert strict_collection.find({"records.person.last_name": "SMITH"})
        assert strict_collection.aggregate(
            [
                {"$match": {"ncid": {"$regex": "^AA"}}},
                {"$addFields": {"size": {"$size": "$records"}}},
                {"$group": {"_id": None, "n": {"$sum": "$size"}}},
            ]
        ) == [{"_id": None, "n": 1}]

    def test_warnings_do_not_block(self, strict_collection):
        # Vacuous $in is a warning, not an error: strict mode lets it run.
        assert strict_collection.find({"ncid": {"$in": []}}) == []


class TestLaxCollection:
    def test_lax_is_the_default_and_does_not_check_paths(self):
        collection = Collection("c")
        collection.insert_one({"_id": 1, "a": 1})
        assert collection.find({"no.such.path": 1}) == []

    def test_bad_mode_rejected(self):
        with pytest.raises(DocStoreError):
            Database().set_analysis_mode("paranoid")


class TestDatabaseMode:
    def test_applies_to_existing_and_future_collections(self):
        database = Database()
        existing = database["before"]
        database.set_analysis_mode("strict", schema=SchemaPaths(["a"]))
        created_after = database["after"]
        for collection in (existing, created_after):
            with pytest.raises(QueryError):
                collection.find({"b": {"$gtt": 1}})
        database.set_analysis_mode("lax")
        existing.insert_one({"_id": 1, "a": 1})
        assert existing.find({"b": "anything"}) == []
