"""Unit tests for the per-function effect inference (repro.analysis.effects)."""

from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.effects import (
    analyze_effects_sources,
    analyze_module_source,
)

PATH = Path("mod.py")


def summaries(source):
    return analyze_effects_sources([(source, PATH, "mod")]).functions


def summary(source, qualname="mod.f"):
    return summaries(source)[qualname]


class TestGlobalEffects:
    def test_read_write_mutate_are_distinguished(self):
        source = (
            "CACHE = {}\n"
            "LIMIT = 10\n"
            "def f(x):\n"
            "    CACHE[x] = x\n"
            "    return LIMIT\n"
            "def g():\n"
            "    global LIMIT\n"
            "    LIMIT = 20\n"
        )
        f = summary(source)
        assert "mod.CACHE" in f.mutates_globals
        assert "mod.LIMIT" in f.reads_globals
        assert not f.writes_globals
        g = summary(source, "mod.g")
        assert "mod.LIMIT" in g.writes_globals
        assert not g.mutates_globals

    def test_mutating_method_call_on_global(self):
        source = "ITEMS = []\ndef f(x):\n    ITEMS.append(x)\n"
        assert "mod.ITEMS" in summary(source).mutates_globals

    def test_local_shadowing_is_not_a_global_effect(self):
        source = "ITEMS = []\ndef f(x):\n    ITEMS = [x]\n    ITEMS.append(x)\n"
        f = summary(source)
        assert not f.mutates_globals
        assert not f.writes_globals

    def test_module_level_mutable_globals_are_recorded(self):
        source = "CACHE = {}\nNAMES = list()\nLIMIT = 3\n"
        module = analyze_module_source(source, PATH, "mod")
        assert set(module.mutable_globals) == {"CACHE", "NAMES"}
        line, label = module.mutable_globals["CACHE"]
        assert (line, label) == (1, "dict")


class TestParamAndClosureEffects:
    def test_direct_param_mutation(self):
        source = "def f(items):\n    items.append(1)\n"
        f = summary(source)
        assert "items" in f.mutates_params
        assert "items" in f.transitive_param_mutations

    def test_transitive_param_mutation_through_helper(self):
        source = (
            "def helper(bucket):\n"
            "    bucket.append(1)\n"
            "def f(items):\n"
            "    helper(items)\n"
        )
        f = summary(source)
        assert "items" not in f.mutates_params
        assert "items" in f.transitive_param_mutations

    def test_transitive_mutation_through_keyword_argument(self):
        source = (
            "def helper(bucket):\n"
            "    bucket.append(1)\n"
            "def f(items):\n"
            "    helper(bucket=items)\n"
        )
        assert "items" in summary(source).transitive_param_mutations

    def test_copied_param_is_not_a_transitive_mutation(self):
        source = (
            "def helper(bucket):\n"
            "    bucket.append(1)\n"
            "def f(items):\n"
            "    helper(list(items))\n"
        )
        assert "items" not in summary(source).transitive_param_mutations

    def test_closure_mutation(self):
        source = (
            "def f():\n"
            "    seen = []\n"
            "    def inner(x):\n"
            "        seen.append(x)\n"
            "    return inner\n"
        )
        inner = summaries(source)["mod.f.inner"]
        assert "seen" in inner.mutates_closure


class TestNondeterminismSources:
    def test_global_rng_and_time_and_env(self):
        source = (
            "import os\n"
            "import random\n"
            "import time\n"
            "def f():\n"
            "    return random.random(), time.time(), os.environ['HOME']\n"
        )
        f = summary(source)
        assert [e.target for e in f.rng] == ["random.random"]
        assert [e.target for e in f.time] == ["time.time"]
        assert [e.target for e in f.env] == ["os.environ"]

    def test_seeded_rng_is_not_flagged(self):
        source = (
            "import random\n"
            "def f(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.random()\n"
        )
        assert summary(source).rng == []

    def test_import_aliases_are_resolved(self):
        source = (
            "from random import random as roll\n"
            "def f():\n"
            "    return roll()\n"
        )
        assert [e.target for e in summary(source).rng] == ["random.random"]


class TestOrderAndDocstoreEffects:
    def test_set_iteration_feeding_append(self):
        source = (
            "def f(values):\n"
            "    out = []\n"
            "    for v in set(values):\n"
            "        out.append(v)\n"
            "    return out\n"
        )
        effects = summary(source).set_iterations
        assert [e.detail for e in effects] == ["list append"]

    def test_sorted_set_iteration_is_clean(self):
        source = (
            "def f(values):\n"
            "    out = []\n"
            "    for v in sorted(set(values)):\n"
            "        out.append(v)\n"
            "    return out\n"
        )
        assert summary(source).set_iterations == []

    def test_query_result_mutation(self):
        source = (
            "def f(collection):\n"
            "    for doc in collection.find({}):\n"
            "        doc['x'] = 1\n"
        )
        effects = summary(source).query_result_mutations
        assert [e.target for e in effects] == ["doc"]

    def test_docstore_private_write(self):
        source = "def f(collection, doc):\n    collection._documents[1] = doc\n"
        effects = summary(source).docstore_private_writes
        assert [e.target for e in effects] == ["_documents"]


class TestMutableDefaults:
    def test_location_points_at_the_default(self):
        source = "def f(x, seen={}):\n    return seen.get(x)\n"
        (effect,) = summary(source).mutable_defaults
        assert (effect.line, effect.col) == (1, 14)
        assert effect.target == "dict"


class TestCallGraph:
    def test_intra_module_calls_resolve(self):
        source = "def helper():\n    return 1\ndef f():\n    return helper()\n"
        calls = summary(source).calls
        resolved = [c for c in calls if c.callee == "mod.helper"]
        assert resolved and resolved[0].resolved

    def test_cross_module_import_alias_resolves(self):
        left = ("def target(x):\n    x.append(1)\n", Path("a.py"), "pkg.a")
        right = (
            "from pkg.a import target as t\ndef f(items):\n    t(items)\n",
            Path("b.py"),
            "pkg.b",
        )
        report = analyze_effects_sources([left, right])
        f = report.functions["pkg.b.f"]
        assert "items" in f.transitive_param_mutations


# ---------------------------------------------------------------- stability

_NAMES = st.sampled_from(["alpha", "beta", "gamma", "delta"])

_STATEMENTS = st.sampled_from(
    [
        "    {g}[x] = x",
        "    {g}.append(x)",
        "    out = []",
        "    out = [v for v in sorted({g})]",
        "    for v in set(range(x)):\n        pass",
        "    import random\n    y = random.random()",
        "    import time\n    y = time.time()",
        "    x.append(1)",
        "    return x",
    ]
)


@st.composite
def modules(draw):
    global_name = draw(_NAMES).upper()
    function_name = draw(_NAMES)
    body = draw(st.lists(_STATEMENTS, min_size=1, max_size=4))
    lines = [f"{global_name} = []", f"def {function_name}(x):"]
    lines.extend(statement.format(g=global_name) for statement in body)
    return "\n".join(lines) + "\n"


class TestStability:
    @given(modules())
    @settings(max_examples=60, deadline=None)
    def test_summaries_stable_across_reparses(self, source):
        first = analyze_module_source(source, PATH, "mod")
        second = analyze_module_source(source, PATH, "mod")
        assert set(first.functions) == set(second.functions)
        for qualname, left in first.functions.items():
            assert left.to_dict() == second.functions[qualname].to_dict()

    @given(modules())
    @settings(max_examples=30, deadline=None)
    def test_analysis_never_crashes(self, source):
        module = analyze_module_source(source, PATH, "mod")
        for summary_ in module.functions.values():
            summary_.to_dict()
