"""Property-based test: analyzer-clean specs never raise at evaluation time.

The analyzer may be *stricter* than the runtime (flagging hazards that would
merely misbehave), but it must never be *laxer* about errors: whenever
``analyze_filter`` / ``analyze_pipeline`` reports no error-severity
diagnostic, feeding the spec to the evaluator must not raise
:class:`QueryError`.  Hypothesis searches the spec space for
counterexamples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_filter, analyze_pipeline, has_errors
from repro.docstore.aggregation import run_pipeline
from repro.docstore.errors import QueryError
from repro.docstore.matching import matches

FIELDS = ["a", "b", "nested.x", "tags"]

scalars = st.one_of(
    st.integers(-10, 10),
    st.text("abc", max_size=3),
    st.booleans(),
    st.none(),
)

# Operator conditions drawn from both valid and invalid shapes, so the
# analyzer's verdict (not the generator) decides what must evaluate cleanly.
operator_conditions = st.dictionaries(
    st.sampled_from(
        ["$eq", "$ne", "$gt", "$gte", "$lt", "$lte", "$in", "$nin",
         "$exists", "$size", "$regex", "$regx", "$all"]
    ),
    st.one_of(scalars, st.lists(scalars, max_size=3)),
    min_size=1,
    max_size=2,
)

conditions = st.one_of(scalars, operator_conditions)

filters = st.recursive(
    st.dictionaries(st.sampled_from(FIELDS), conditions, max_size=3),
    lambda children: st.fixed_dictionaries(
        {}, optional={"$and": st.lists(children, max_size=2),
                      "$or": st.lists(children, max_size=2)}
    ),
    max_leaves=6,
)

documents = st.lists(
    st.fixed_dictionaries(
        {},
        optional={
            "a": scalars,
            "b": scalars,
            "nested": st.fixed_dictionaries({}, optional={"x": scalars}),
            "tags": st.lists(st.text("abc", max_size=2), max_size=3),
        },
    ),
    max_size=5,
)


@settings(max_examples=300, deadline=None)
@given(filter_doc=filters, docs=documents)
def test_clean_filters_never_raise(filter_doc, docs):
    if has_errors(analyze_filter(filter_doc)):
        return  # the analyzer rejected it; the runtime may do anything
    for document in docs:
        matches(document, filter_doc)  # must not raise QueryError


stages = st.one_of(
    st.fixed_dictionaries({"$match": filters}),
    st.fixed_dictionaries({"$limit": st.integers(-2, 5)}),
    st.fixed_dictionaries({"$skip": st.integers(-2, 5)}),
    st.fixed_dictionaries(
        {"$sort": st.dictionaries(
            st.sampled_from(FIELDS), st.sampled_from([1, -1, 0]), max_size=2
        )}
    ),
    st.fixed_dictionaries(
        {"$project": st.dictionaries(
            st.sampled_from(FIELDS), st.sampled_from([0, 1]), min_size=1,
            max_size=2,
        )}
    ),
    st.fixed_dictionaries(
        {"$group": st.fixed_dictionaries(
            {"_id": st.sampled_from([None, "$a", "$b"])},
            optional={"n": st.fixed_dictionaries({"$sum": st.just(1)})},
        )}
    ),
    st.fixed_dictionaries({"$count": st.sampled_from(["n", ""])}),
    st.fixed_dictionaries({"$unwind": st.sampled_from(["$tags", "tags"])}),
)

pipelines = st.lists(stages, max_size=4)


@settings(max_examples=200, deadline=None)
@given(pipeline=pipelines, docs=documents)
def test_clean_pipelines_never_raise(pipeline, docs):
    if has_errors(analyze_pipeline(pipeline)):
        return
    try:
        list(run_pipeline(docs, pipeline))
    except QueryError as exc:  # pragma: no cover - the property violation
        raise AssertionError(
            f"analyzer passed {pipeline!r} but evaluation raised {exc}"
        )
