"""Unit tests for the dedup-pipeline usage hints (I406, I408).

Mirrors ``tests/analysis/test_index_usage.py``: one class per code for
shapes that must warn, one for shapes that must stay silent, plus the
fixture corpus under ``fixtures/dedup_usage/``.  The analyzer is
AST-only — sources here are never executed.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import WARNING, analyze_dedup_usage

FIXTURES = Path(__file__).parent / "fixtures" / "dedup_usage"


def codes(diagnostics):
    return [d.code for d in diagnostics]


def analyze(source):
    return analyze_dedup_usage(textwrap.dedent(source), filename="check.py")


class TestI406Warns:
    def test_direct_nesting(self):
        diagnostics = analyze(
            """
            scores = score_candidates(
                records, multipass_sorted_neighborhood(records, keys, 20), matcher
            )
            """
        )
        assert codes(diagnostics) == ["I406"]
        assert diagnostics[0].severity == WARNING
        assert diagnostics[0].path == "check.py:2"
        assert "multipass_sorted_neighborhood" in diagnostics[0].message
        assert "pipeline" in diagnostics[0].hint

    def test_assignment_provenance(self):
        diagnostics = analyze(
            """
            def run(records, matcher):
                candidates = multipass_blocking(records, blockers)
                print(len(candidates))
                return score_candidates(records, candidates, matcher)
            """
        )
        assert codes(diagnostics) == ["I406"]
        assert "multipass_blocking" in diagnostics[0].message

    def test_keyword_candidates_argument(self):
        diagnostics = analyze(
            """
            pairs = multipass_sorted_neighborhood(records, keys)
            scores = score_candidates(records, matcher=m, candidates=pairs)
            """
        )
        assert codes(diagnostics) == ["I406"]

    def test_module_qualified_calls(self):
        diagnostics = analyze(
            """
            pairs = dedup.multipass_sorted_neighborhood(records, keys)
            scores = dedup.score_candidates(records, pairs, matcher)
            """
        )
        assert codes(diagnostics) == ["I406"]

    def test_enclosing_scope_binding_visible(self):
        diagnostics = analyze(
            """
            pairs = multipass_blocking(records, blockers)

            def run(matcher):
                return score_candidates(records, pairs, matcher)
            """
        )
        assert codes(diagnostics) == ["I406"]

    def test_one_warning_per_scoring_call(self):
        diagnostics = analyze(
            """
            pairs = multipass_blocking(records, blockers)
            a = score_candidates(records, pairs, m1)
            b = score_candidates(records, pairs, m2)
            """
        )
        assert codes(diagnostics) == ["I406", "I406"]


class TestI408Warns:
    def test_allpairs_combinations_into_score_candidates(self):
        diagnostics = analyze(
            """
            pairs = combinations(range(len(records)), 2)
            scores = score_candidates(records, pairs, matcher)
            """
        )
        assert codes(diagnostics) == ["I408"]
        assert diagnostics[0].severity == WARNING
        assert diagnostics[0].path == "check.py:3"
        assert "combinations" in diagnostics[0].message
        assert "O(n^2)" in diagnostics[0].message
        assert "lsh" in diagnostics[0].hint

    def test_allpairs_nested_and_module_qualified(self):
        diagnostics = analyze(
            """
            scores = score_candidates(
                records, itertools.combinations(range(n), 2), matcher
            )
            """
        )
        assert codes(diagnostics) == ["I408"]

    def test_pack_pairs_wrapped_allpairs_into_packed_scorer(self):
        diagnostics = analyze(
            """
            keys = pack_pairs(combinations(range(len(records)), 2), len(records))
            scores = score_candidates_packed(records, keys, matcher)
            """
        )
        assert codes(diagnostics) == ["I408"]
        assert "score_candidates_packed" in diagnostics[0].message

    def test_snm_only_tuple_unpacked_keys(self):
        diagnostics = analyze(
            """
            keys, stats = sorted_neighborhood_candidates(records, attrs, 20)
            scores = score_candidates_packed(records, keys, matcher)
            """
        )
        assert codes(diagnostics) == ["I408"]
        assert "sorted_neighborhood_candidates" in diagnostics[0].message
        assert "lsh_candidates" in diagnostics[0].hint

    def test_snm_only_subscript_projection(self):
        diagnostics = analyze(
            """
            keys = sorted_neighborhood_candidates(records, attrs, 20)[0]
            scores = score_candidates_packed(records, keys, matcher)
            """
        )
        assert codes(diagnostics) == ["I408"]

    def test_keys_keyword_argument(self):
        diagnostics = analyze(
            """
            keys, stats = sorted_neighborhood_candidates(records, attrs)
            scores = score_candidates_packed(records, matcher=m, keys=keys)
            """
        )
        assert codes(diagnostics) == ["I408"]

    def test_fixture_corpus_exact_codes(self):
        source = (FIXTURES / "naive_quadratic.py").read_text(encoding="utf-8")
        diagnostics = analyze_dedup_usage(source, filename="naive_quadratic.py")
        assert codes(diagnostics) == ["I408", "I408", "I408"]
        paths = [d.path for d in diagnostics]
        assert paths == [
            "naive_quadratic.py:22",
            "naive_quadratic.py:28",
            "naive_quadratic.py:34",
        ]
        allpairs_tuple, allpairs_packed, snm_only = diagnostics
        assert "score_candidates()" in allpairs_tuple.message
        assert "score_candidates_packed()" in allpairs_packed.message
        assert "lone" in snm_only.message
        assert all("lsh" in d.hint for d in diagnostics)


class TestI408Silent:
    def test_lsh_pass_is_silent(self):
        assert (
            analyze(
                """
                keys, stats = lsh_candidates(records, attrs, bands=16, rows=4)
                scores = score_candidates_packed(records, keys, matcher)
                """
            )
            == []
        )

    def test_multipass_snm_into_packed_scorer_is_silent(self):
        # Multi-pass provenance is not a lone pass; only the eager
        # tuple-set shape (I406) tracks multipass generators.
        assert (
            analyze(
                """
                keys = multipass_sorted_neighborhood(records, attrs, 20)
                scores = score_candidates_packed(records, keys, matcher)
                """
            )
            == []
        )

    def test_rebinding_kills_allpairs_provenance(self):
        assert (
            analyze(
                """
                pairs = combinations(range(len(records)), 2)
                pairs = prune(pairs)
                scores = score_candidates(records, pairs, matcher)
                """
            )
            == []
        )

    def test_stats_half_of_tuple_unpack_carries_nothing(self):
        assert (
            analyze(
                """
                keys, stats = sorted_neighborhood_candidates(records, attrs)
                scores = score_candidates_packed(records, stats, matcher)
                """
            )
            == []
        )

    def test_combinations_alone_is_silent(self):
        assert (
            analyze(
                """
                pairs = combinations(range(len(records)), 2)
                store(pairs)
                """
            )
            == []
        )


class TestI406Silent:
    def test_clean_pipeline_code(self):
        assert (
            analyze(
                """
                pipeline = DetectionPipeline(window=20, passes=5, workers=4)
                result = pipeline.detect(records, attributes, matcher, gold)
                """
            )
            == []
        )

    def test_rebinding_kills_provenance(self):
        assert (
            analyze(
                """
                pairs = multipass_blocking(records, blockers)
                pairs = prune(pairs)
                scores = score_candidates(records, pairs, matcher)
                """
            )
            == []
        )

    def test_untracked_candidates_are_silent(self):
        assert (
            analyze(
                """
                scores = score_candidates(records, load_pairs(path), matcher)
                """
            )
            == []
        )

    def test_generator_alone_is_silent(self):
        assert (
            analyze(
                """
                pairs = multipass_sorted_neighborhood(records, keys, 20)
                store(pairs)
                """
            )
            == []
        )

    def test_sibling_function_scopes_do_not_leak(self):
        assert (
            analyze(
                """
                def generate(records):
                    pairs = multipass_blocking(records, blockers)
                    return pairs

                def score(records, pairs, matcher):
                    return score_candidates(records, pairs, matcher)
                """
            )
            == []
        )

    def test_syntax_error_raises(self):
        with pytest.raises(SyntaxError):
            analyze_dedup_usage("def broken(:")
