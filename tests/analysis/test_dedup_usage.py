"""Unit tests for the dedup-pipeline usage hint (I406).

Mirrors ``tests/analysis/test_index_usage.py``: one class for shapes that
must warn, one for shapes that must stay silent.  The analyzer is
AST-only — sources here are never executed.
"""

import textwrap

import pytest

from repro.analysis import WARNING, analyze_dedup_usage


def codes(diagnostics):
    return [d.code for d in diagnostics]


def analyze(source):
    return analyze_dedup_usage(textwrap.dedent(source), filename="check.py")


class TestI406Warns:
    def test_direct_nesting(self):
        diagnostics = analyze(
            """
            scores = score_candidates(
                records, multipass_sorted_neighborhood(records, keys, 20), matcher
            )
            """
        )
        assert codes(diagnostics) == ["I406"]
        assert diagnostics[0].severity == WARNING
        assert diagnostics[0].path == "check.py:2"
        assert "multipass_sorted_neighborhood" in diagnostics[0].message
        assert "pipeline" in diagnostics[0].hint

    def test_assignment_provenance(self):
        diagnostics = analyze(
            """
            def run(records, matcher):
                candidates = multipass_blocking(records, blockers)
                print(len(candidates))
                return score_candidates(records, candidates, matcher)
            """
        )
        assert codes(diagnostics) == ["I406"]
        assert "multipass_blocking" in diagnostics[0].message

    def test_keyword_candidates_argument(self):
        diagnostics = analyze(
            """
            pairs = multipass_sorted_neighborhood(records, keys)
            scores = score_candidates(records, matcher=m, candidates=pairs)
            """
        )
        assert codes(diagnostics) == ["I406"]

    def test_module_qualified_calls(self):
        diagnostics = analyze(
            """
            pairs = dedup.multipass_sorted_neighborhood(records, keys)
            scores = dedup.score_candidates(records, pairs, matcher)
            """
        )
        assert codes(diagnostics) == ["I406"]

    def test_enclosing_scope_binding_visible(self):
        diagnostics = analyze(
            """
            pairs = multipass_blocking(records, blockers)

            def run(matcher):
                return score_candidates(records, pairs, matcher)
            """
        )
        assert codes(diagnostics) == ["I406"]

    def test_one_warning_per_scoring_call(self):
        diagnostics = analyze(
            """
            pairs = multipass_blocking(records, blockers)
            a = score_candidates(records, pairs, m1)
            b = score_candidates(records, pairs, m2)
            """
        )
        assert codes(diagnostics) == ["I406", "I406"]


class TestI406Silent:
    def test_clean_pipeline_code(self):
        assert (
            analyze(
                """
                pipeline = DetectionPipeline(window=20, passes=5, workers=4)
                result = pipeline.detect(records, attributes, matcher, gold)
                """
            )
            == []
        )

    def test_rebinding_kills_provenance(self):
        assert (
            analyze(
                """
                pairs = multipass_blocking(records, blockers)
                pairs = prune(pairs)
                scores = score_candidates(records, pairs, matcher)
                """
            )
            == []
        )

    def test_untracked_candidates_are_silent(self):
        assert (
            analyze(
                """
                scores = score_candidates(records, load_pairs(path), matcher)
                """
            )
            == []
        )

    def test_generator_alone_is_silent(self):
        assert (
            analyze(
                """
                pairs = multipass_sorted_neighborhood(records, keys, 20)
                store(pairs)
                """
            )
            == []
        )

    def test_sibling_function_scopes_do_not_leak(self):
        assert (
            analyze(
                """
                def generate(records):
                    pairs = multipass_blocking(records, blockers)
                    return pairs

                def score(records, pairs, matcher):
                    return score_candidates(records, pairs, matcher)
                """
            )
            == []
        )

    def test_syntax_error_raises(self):
        with pytest.raises(SyntaxError):
            analyze_dedup_usage("def broken(:")
