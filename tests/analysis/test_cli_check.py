"""Integration tests for the ``ncvoter-testdata check`` subcommand."""

import json

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(["check", *argv])
    return code, capsys.readouterr().out


class TestCheckFilters:
    def test_unknown_operator_fails_with_hint(self, capsys):
        code, out = run(
            capsys, "--filter", '{"ncid": {"$regx": "^AA"}}'
        )
        assert code == 1
        assert "Q001" in out
        assert "did you mean '$regex'?" in out

    def test_unknown_field_path_fails_with_hint(self, capsys):
        code, out = run(
            capsys, "--filter", '{"records.person.last_nme": "SMITH"}'
        )
        assert code == 1
        assert "Q007" in out
        assert "records.person.last_name" in out

    def test_clean_filter_passes(self, capsys):
        code, out = run(
            capsys, "--filter", '{"records.person.last_name": {"$regex": "^A"}}'
        )
        assert code == 0
        assert "no problems found" in out

    def test_warning_only_exits_zero(self, capsys):
        code, out = run(capsys, "--filter", '{"ncid": {"$in": []}}')
        assert code == 0
        assert "Q005" in out and "1 warning(s)" in out


class TestCheckPipelines:
    def test_stage_order_hazard_fails(self, capsys):
        pipeline = [
            {"$project": {"ncid": 1}},
            {"$match": {"records.hash": "x"}},
        ]
        code, out = run(capsys, "--pipeline", json.dumps(pipeline))
        assert code == 1
        assert "P105" in out

    def test_spec_file_argument(self, capsys, tmp_path):
        spec = tmp_path / "pipeline.json"
        spec.write_text(json.dumps([{"$grup": {"_id": None}}]))
        code, out = run(capsys, "--pipeline", str(spec))
        assert code == 1
        assert "P101" in out and "did you mean '$group'?" in out

    def test_no_schema_skips_field_checks(self, capsys):
        code, out = run(
            capsys, "--no-schema", "--filter", '{"no.such.path": 1}'
        )
        assert code == 0


class TestCheckCustomization:
    def test_bad_spec_fails(self, capsys):
        spec = {"groups": ["persn"], "h_lo": 0.9, "h_hi": 0.1}
        code, out = run(capsys, "--customize", json.dumps(spec))
        assert code == 1
        assert "C201" in out and "C202" in out


class TestCheckStoreSchema:
    def test_schema_inferred_from_store(self, capsys, tmp_path):
        from repro.docstore import Database

        database = Database()
        database["things"].insert_many(
            [{"_id": 1, "size": 3, "tags": ["a"]}, {"_id": 2, "size": 5}]
        )
        database.save(tmp_path / "store")
        code, out = run(
            capsys,
            "--store", str(tmp_path / "store"),
            "--collection", "things",
            "--filter", '{"siez": {"$gte": 3}}',
        )
        assert code == 1
        assert "Q007" in out and "did you mean 'size'?" in out


class TestCheckErrors:
    def test_nothing_to_check(self):
        with pytest.raises(SystemExit):
            main(["check"])

    def test_invalid_json(self):
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["check", "--filter", "{broken"])


FIXTURES = "tests/analysis/fixtures/concurrency"


class TestCheckConcurrency:
    def test_clean_tree_exits_zero(self, capsys):
        code, out = run(capsys, "--concurrency", f"{FIXTURES}/good_worker.py")
        assert code == 0
        assert "no concurrency findings" in out

    def test_findings_exit_one_with_counts(self, capsys):
        code, out = run(capsys, "--concurrency", f"{FIXTURES}/bad_order.py")
        assert code == 1
        assert "R103" in out and "PYTHONHASHSEED" in out
        assert "1 finding(s) (R103: 1)" in out

    def test_json_report_is_written(self, capsys, tmp_path):
        report = tmp_path / "rcodes.json"
        code, out = run(
            capsys,
            "--concurrency", f"{FIXTURES}/bad_worker.py",
            "--json", str(report),
        )
        assert code == 1
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["clean"] is False
        assert payload["counts"] == {"R101": 1, "R102": 2, "R106": 1}

    def test_repo_source_tree_is_clean(self, capsys):
        code, out = run(capsys, "--concurrency", "src/repro")
        assert code == 0
        assert "no concurrency findings" in out


class TestCheckShardHints:
    def _sharded_store(self, tmp_path):
        from repro.docstore import Database

        database = Database(shards=4)
        database["clusters"].insert_many(
            {"_id": i, "ncid": f"AA{i}", "n": i} for i in range(8)
        )
        database.save(tmp_path / "store")
        return str(tmp_path / "store")

    def test_scattering_shard_key_equality_warns_i407(self, capsys, tmp_path):
        store = self._sharded_store(tmp_path)
        code, out = run(
            capsys,
            "--store", store,
            "--collection", "clusters",
            "--filter", '{"ncid": 7}',
        )
        assert code == 0  # warnings only
        assert "I407" in out and "scatters" in out

    def test_routed_query_has_no_shard_hint(self, capsys, tmp_path):
        store = self._sharded_store(tmp_path)
        code, out = run(
            capsys,
            "--store", store,
            "--collection", "clusters",
            "--filter", '{"ncid": "AA1"}',
        )
        assert code == 0
        assert "I407" not in out

    def test_pipeline_head_match_gets_shard_hint(self, capsys, tmp_path):
        store = self._sharded_store(tmp_path)
        pipeline = [
            {"$match": {"$or": [{"ncid": "AA1"}, {"n": 3}]}},
            {"$group": {"_id": "$n", "total": {"$sum": 1}}},
        ]
        code, out = run(
            capsys,
            "--store", store,
            "--collection", "clusters",
            "--pipeline", json.dumps(pipeline),
        )
        assert code == 0
        assert "I407" in out and "disjunction" in out


class TestStatsLayout:
    def test_layout_table_lists_shards(self, capsys, tmp_path):
        from repro.cli import main as cli_main
        from repro.docstore import Database

        database = Database(shards=3)
        clusters = database["clusters"]
        clusters.insert_many(
            {"_id": i, "ncid": f"AA{i}", "records": [{"n": i}]} for i in range(9)
        )
        database["versions"].insert_one(
            {"_id": 1, "version": 1, "records": 9, "clusters": 9, "note": "seed"}
        )
        database.save(tmp_path / "store")
        code = cli_main(["stats", "--store", str(tmp_path / "store"), "--layout"])
        out = capsys.readouterr().out
        assert code == 0
        assert "storage layout:" in out
        assert "balance" in out
        assert "clusters" in out
