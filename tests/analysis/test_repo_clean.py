"""The repo-wide concurrency gate: ``src/repro`` must stay R-code clean.

This is the pytest face of ``make lint-concurrency``: zero unsuppressed
findings (errors *and* warnings), and every inline suppression in the tree
must still be load-bearing (stale ones surface as R100 and fail here too).
"""

from pathlib import Path

from repro.analysis.concurrency import analyze_concurrency

ROOT = Path(__file__).resolve().parents[2]


def _analyze_src():
    return analyze_concurrency([ROOT / "src" / "repro"])


class TestRepoIsConcurrencyClean:
    def test_no_unsuppressed_findings(self):
        report = _analyze_src()
        rendered = "\n".join(d.render() for d in report.all_findings)
        assert not report.all_findings, f"new R-code findings:\n{rendered}"

    def test_every_suppression_is_used(self):
        report = _analyze_src()
        stale = [d.render() for d in report.unused_suppressions]
        assert not stale, "stale suppressions:\n" + "\n".join(stale)

    def test_parallel_entry_points_are_analyzed(self):
        # Guard against the gate silently passing because the analyzer
        # stopped seeing the parallel paths it exists to protect.
        report = _analyze_src()
        functions = report.effects.functions
        assert "repro.core.parallel.run_shards" in functions
        assert "repro.core.parallel._score_shard" in functions
        assert "repro.dedup.pipeline._score_pairs_shard" in functions
