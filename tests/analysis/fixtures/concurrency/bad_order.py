"""Known-bad: set iteration feeds an order-sensitive sink.

Expected findings: R103 (the output list's order depends on
PYTHONHASHSEED).
"""

from __future__ import annotations


def collect(values):
    out = []
    for value in set(values):
        out.append(value)
    return out
