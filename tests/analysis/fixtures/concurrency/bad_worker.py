"""Known-bad: the worker touches shared state and nondeterminism sources.

Expected findings (asserted exactly by ``tests/analysis/test_concurrency``):
R101 (module-global mutation), R102 (RNG, wall clock), R106 (module-level
mutable cache without a registry entry).
"""

from __future__ import annotations

import random
import time

from repro.core.parallel import run_shards

TOTALS = {}


def work(shard):
    TOTALS[shard[0]] = len(shard)
    jitter = random.random()
    started = time.time()
    return len(shard), jitter, started


def dispatch(shards):
    return run_shards(work, shards, max_workers=2)
