"""Known-bad: borrowed-document mutation and journal-bypassing writes.

Expected findings: R104 (mutating a document obtained from a docstore
read) and R105 (writing docstore-private state from outside the store).
"""

from __future__ import annotations


def relabel(collection):
    for doc in collection.find({"kind": "person"}):
        doc["kind"] = "voter"
    return collection


def poke(collection, doc):
    collection._documents[1] = doc
