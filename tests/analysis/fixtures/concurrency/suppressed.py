"""Suppression behaviour: one used suppression, one stale one.

Expected findings: the R103 in ``collect`` is silenced by its inline
comment; the comment in ``fine`` matches nothing and is reported as R100.
"""

from __future__ import annotations


def collect(values):
    out = []
    for value in set(values):  # repro: ignore[R103]
        out.append(value)
    return out


def fine(values):
    return sorted(values)  # repro: ignore[R101]
