"""Known-bad: the worker mutates its argument (hazardous under retry).

Expected findings: R101 (worker argument mutation), including the
transitive case where the mutation happens in a helper the worker calls.
"""

from __future__ import annotations

from repro.core.parallel import run_shards


def _stamp(items):
    items.append("sentinel")


def accumulate(items):
    _stamp(items)
    return len(items)


def dispatch(shards):
    return run_shards(accumulate, shards, max_workers=2)
