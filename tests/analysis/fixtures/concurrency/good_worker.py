"""Known-good: a pure, deterministic worker — the analyzer stays silent.

The worker builds only local state, seeds its RNG from the shard
arguments, and iterates in sorted order.
"""

from __future__ import annotations

import random

from repro.core.parallel import run_shards

GREETING = "hello"


def work(seed, values):
    rng = random.Random(seed)
    out = []
    for value in sorted(set(values)):
        out.append((value, rng.random(), GREETING))
    return out


def dispatch(shards):
    return run_shards(work, shards, max_workers=2)
