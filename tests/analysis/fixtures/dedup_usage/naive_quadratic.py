"""Fixture: quadratic / window-bound candidate shapes the I408 hint flags.

Never imported or executed — ``tests/analysis/test_dedup_usage.py`` parses
this file and asserts exact codes and locations.  Each function below is a
call shape that is *correct* but stops scaling on large registers, where
the MinHash-LSH pass generates candidates sub-quadratically.
"""

from itertools import combinations

from repro.dedup import (
    pack_pairs,
    score_candidates,
    score_candidates_packed,
    sorted_neighborhood_candidates,
)


def allpairs_tuples(records, matcher):
    """O(n^2) tuple universe straight into the per-pair scorer."""
    pairs = combinations(range(len(records)), 2)
    return score_candidates(records, pairs, matcher)


def allpairs_packed(records, matcher):
    """Packing the O(n^2) universe does not make it smaller."""
    keys = pack_pairs(combinations(range(len(records)), 2), len(records))
    return score_candidates_packed(records, keys, matcher)


def snm_only(records, matcher):
    """A lone fixed-window SNM pass feeding the packed scorer."""
    keys, _stats = sorted_neighborhood_candidates(records, ("last_name",), 20)
    return score_candidates_packed(records, keys, matcher)
