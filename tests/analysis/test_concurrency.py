"""Tests for the R-code concurrency/determinism analyzer.

The fixture corpus under ``fixtures/concurrency/`` pins down exact codes,
locations and messages; inline sources cover suppressions and the
exemption registry.
"""

import importlib
import json
from pathlib import Path

from repro.analysis.concurrency import (
    PROCESS_LOCAL_CACHES,
    R_CODES,
    analyze_concurrency,
    analyze_concurrency_sources,
    write_json_report,
)

FIXTURES = Path(__file__).parent / "fixtures" / "concurrency"


def analyze_fixture(name):
    return analyze_concurrency([FIXTURES / f"{name}.py"])


def findings_of(name):
    return [
        (d.code, d.severity, d.path.rpartition("/")[2], d.message)
        for d in analyze_fixture(name).all_findings
    ]


class TestFixtureCorpus:
    def test_bad_worker(self):
        report = analyze_fixture("bad_worker")
        assert report.counts() == {"R101": 1, "R102": 2, "R106": 1}
        locations = {(d.code, d.path.rpartition("/")[2]) for d in report.findings}
        assert locations == {
            ("R101", "bad_worker.py:19:0"),
            ("R106", "bad_worker.py:19:0"),
            ("R102", "bad_worker.py:20:0"),
            ("R102", "bad_worker.py:21:0"),
        }
        (r101,) = [d for d in report.findings if d.code == "R101"]
        assert r101.message == (
            "worker 'work' mutates module global 'bad_worker.TOTALS'; the "
            "mutation is invisible to the parent process and makes retried "
            "shards non-reproducible"
        )
        rng, clock = [d for d in report.findings if d.code == "R102"]
        assert "worker 'work' calls random.random" in rng.message
        assert "worker 'work' calls time.time" in clock.message

    def test_bad_param_flags_transitive_argument_mutation(self):
        report = analyze_fixture("bad_param")
        assert report.counts() == {"R101": 1}
        (finding,) = report.findings
        assert finding.path.endswith("bad_param.py:17:0")
        assert finding.message == (
            "worker 'accumulate' mutates its argument 'items'; retried and "
            "in-process-degraded workers would see the mutated value"
        )

    def test_bad_order(self):
        report = analyze_fixture("bad_order")
        assert report.counts() == {"R103": 1}
        (finding,) = report.findings
        assert finding.path.endswith("bad_order.py:12:0")
        assert "order-sensitive sink (list append)" in finding.message
        assert "PYTHONHASHSEED" in finding.message

    def test_bad_docstore(self):
        report = analyze_fixture("bad_docstore")
        assert report.counts() == {"R104": 1, "R105": 1}
        r104, r105 = report.findings
        assert r104.path.endswith("bad_docstore.py:12:0")
        assert "'relabel' mutates 'doc'" in r104.message
        assert r105.path.endswith("bad_docstore.py:17:0")
        assert "'_documents'" in r105.message
        assert "bypasses the WAL journal" in r105.message

    def test_good_worker_is_clean(self):
        report = analyze_fixture("good_worker")
        assert report.all_findings == []

    def test_suppressions(self):
        report = analyze_fixture("suppressed")
        # The R103 is silenced by its inline comment ...
        assert [d.code for d in report.suppressed] == ["R103"]
        # ... and the stale comment is itself reported as R100.
        assert report.counts() == {"R100": 1}
        (stale,) = report.unused_suppressions
        assert stale.path.endswith("suppressed.py:18:0")
        assert "`# repro: ignore[R101]`" in stale.message

    def test_whole_corpus_counts(self):
        report = analyze_concurrency([FIXTURES])
        assert report.counts() == {
            "R100": 1,
            "R101": 2,
            "R102": 2,
            "R103": 1,
            "R104": 1,
            "R105": 1,
            "R106": 1,
        }

    def test_messages_name_no_internal_jargon(self):
        report = analyze_concurrency([FIXTURES])
        for finding in report.all_findings:
            assert "did you mean" not in finding.message
            assert finding.hint, finding


class TestExemptionRegistry:
    CACHE_MODULE = (
        "CACHE = {}\n"
        "def remember(key, value):\n"
        "    CACHE[key] = value\n"
        "    return value\n"
    )

    def analyze(self, exemptions):
        sources = [(self.CACHE_MODULE, Path("cachemod.py"), "cachemod")]
        return analyze_concurrency_sources(sources, exemptions=exemptions)

    def test_unregistered_cache_fires_r106(self):
        report = self.analyze(exemptions={})
        assert report.counts() == {"R106": 1}
        (finding,) = report.findings
        assert "'cachemod.CACHE'" in finding.message
        assert "PROCESS_LOCAL_CACHES" in finding.hint

    def test_registered_cache_is_exempt(self):
        report = self.analyze(exemptions={"cachemod.CACHE": "process-local"})
        assert report.all_findings == []

    def test_shared_matcher_cache_needs_its_registry_entry(self):
        # The registry is load-bearing: without it, the shared matcher
        # cache in repro.dedup.matching is (correctly) detected.
        matching = Path("src/repro/dedup/matching.py")
        assert matching.is_file()
        with_registry = analyze_concurrency([matching])
        assert with_registry.all_findings == []
        without = analyze_concurrency([matching], exemptions={})
        assert "R106" in without.counts()

    def test_registry_entries_point_at_real_objects(self):
        for qualified, invariant in PROCESS_LOCAL_CACHES.items():
            module_name, _, attribute = qualified.rpartition(".")
            module = importlib.import_module(module_name)
            assert hasattr(module, attribute), qualified
            assert invariant.strip(), qualified


class TestReportShape:
    def test_json_report(self, tmp_path):
        out = tmp_path / "rcodes.json"
        write_json_report(analyze_fixture("bad_order"), out)
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert payload["codes"] == R_CODES
        assert payload["clean"] is False
        assert payload["counts"] == {"R103": 1}
        (finding,) = payload["findings"]
        assert finding["code"] == "R103"
        assert finding["severity"] == "error"

    def test_clean_json_report(self, tmp_path):
        out = tmp_path / "rcodes.json"
        write_json_report(analyze_fixture("good_worker"), out)
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["clean"] is True
        assert payload["findings"] == []

    def test_docstring_examples_are_not_suppressions(self):
        source = (
            '"""Docs show ``# repro: ignore[R103]`` without using it."""\n'
            "def f(values):\n"
            "    return sorted(values)\n"
        )
        report = analyze_concurrency_sources([(source, Path("docmod.py"), "docmod")])
        assert report.all_findings == []
