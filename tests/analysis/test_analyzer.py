"""Unit tests for the query/pipeline/update static analyzer.

One test class per diagnostic code family, so every code documented in
``docs/static-analysis.md`` is pinned by at least one test.
"""

from repro.analysis import (
    analyze_filter,
    analyze_pipeline,
    analyze_update,
    cluster_schema,
    has_errors,
    require_clean,
)
from repro.docstore.errors import QueryError

import pytest


def codes(diagnostics):
    return [d.code for d in diagnostics]


def only(diagnostics, code):
    found = [d for d in diagnostics if d.code == code]
    assert found, f"expected a {code} in {[d.render() for d in diagnostics]}"
    return found[0]


class TestCleanSpecs:
    def test_empty_filter(self):
        assert analyze_filter({}) == []
        assert analyze_filter(None) == []

    def test_plain_equality(self):
        assert analyze_filter({"a": 1, "b.c": "x"}) == []

    def test_operators(self):
        assert (
            analyze_filter(
                {
                    "n": {"$gt": 1, "$lte": 9},
                    "s": {"$regex": "^A"},
                    "tags": {"$all": ["x"], "$size": 2},
                    "k": {"$in": [1, 2]},
                    "$or": [{"a": 1}, {"a": {"$exists": False}}],
                }
            )
            == []
        )

    def test_literal_subdocument_equality_is_not_mixed(self):
        # No $-keys at all: literal equality against a sub-document.
        assert analyze_filter({"a": {"b": 1, "c": 2}}) == []

    def test_clean_pipeline(self):
        assert (
            analyze_pipeline(
                [
                    {"$match": {"n": {"$gte": 2}}},
                    {"$addFields": {"double": {"$multiply": ["$n", 2]}}},
                    {"$group": {"_id": "$k", "total": {"$sum": "$double"}}},
                    {"$sort": {"total": -1}},
                    {"$limit": 10},
                ]
            )
            == []
        )

    def test_clean_update(self):
        assert analyze_update({"$set": {"a": 1}, "$inc": {"b": 2}}) == []


class TestQ001UnknownOperator:
    def test_typo_gets_hint(self):
        diagnostic = only(analyze_filter({"a": {"$regx": "x"}}), "Q001")
        assert diagnostic.severity == "error"
        assert "did you mean '$regex'?" in diagnostic.hint

    def test_far_off_name_has_no_hint(self):
        diagnostic = only(analyze_filter({"a": {"$frobnicate": 1}}), "Q001")
        assert diagnostic.hint is None

    def test_inside_not(self):
        assert "Q001" in codes(analyze_filter({"a": {"$not": {"$gtt": 3}}}))

    def test_inside_elem_match(self):
        assert "Q001" in codes(
            analyze_filter({"xs": {"$elemMatch": {"v": {"$gte2": 1}}}})
        )


class TestQ002UnknownTopLevel:
    def test_top_level_typo(self):
        diagnostic = only(analyze_filter({"$andd": [{"a": 1}]}), "Q002")
        assert "did you mean '$and'?" in diagnostic.hint

    def test_field_operator_at_top_level(self):
        # $gt only makes sense under a field; as a top-level key it is Q002.
        assert "Q002" in codes(analyze_filter({"$gt": 3}))


class TestQ003OperandShape:
    def test_in_requires_list(self):
        assert "Q003" in codes(analyze_filter({"a": {"$in": 5}}))

    def test_and_requires_list(self):
        assert "Q003" in codes(analyze_filter({"$and": {"a": 1}}))

    def test_size_rejects_negative_bool_and_str(self):
        assert "Q003" in codes(analyze_filter({"a": {"$size": -1}}))
        assert "Q003" in codes(analyze_filter({"a": {"$size": True}}))
        assert "Q003" in codes(analyze_filter({"a": {"$size": "2"}}))

    def test_elem_match_requires_dict(self):
        assert "Q003" in codes(analyze_filter({"a": {"$elemMatch": [1]}}))

    def test_expression_arity(self):
        assert "Q003" in codes(
            analyze_pipeline([{"$addFields": {"x": {"$subtract": ["$a"]}}}])
        )
        assert "Q003" in codes(
            analyze_pipeline([{"$addFields": {"x": {"$cond": [1, 2]}}}])
        )
        assert "Q003" in codes(
            analyze_pipeline([{"$addFields": {"x": {"$cond": {"if": 1}}}}])
        )
        assert "Q003" in codes(
            analyze_pipeline([{"$addFields": {"x": {"$add": 3}}}])
        )


class TestQ004Regex:
    def test_invalid_pattern_caught_statically(self):
        diagnostic = only(analyze_filter({"a": {"$regex": "["}}), "Q004")
        assert "invalid $regex" in diagnostic.message

    def test_non_string_pattern(self):
        assert "Q004" in codes(analyze_filter({"a": {"$regex": 42}}))

    def test_valid_pattern_is_clean(self):
        assert analyze_filter({"a": {"$regex": "^[A-Z]+$"}}) == []


class TestQ005Vacuous:
    def test_empty_in_warns(self):
        diagnostic = only(analyze_filter({"a": {"$in": []}}), "Q005")
        assert diagnostic.severity == "warning"
        assert "matches no document" in diagnostic.message

    def test_empty_or_and_nin(self):
        assert "Q005" in codes(analyze_filter({"$or": []}))
        assert "Q005" in codes(analyze_filter({"a": {"$nin": []}}))

    def test_warnings_do_not_fail_require_clean(self):
        require_clean(analyze_filter({"a": {"$in": []}}))  # must not raise


class TestQ006MixedKeys:
    def test_mixed_condition(self):
        diagnostic = only(analyze_filter({"a": {"$gt": 1, "b": 2}}), "Q006")
        assert "mixes $-operators" in diagnostic.message

    def test_pure_operator_condition_is_clean(self):
        assert analyze_filter({"a": {"$gt": 1, "$lt": 5}}) == []


class TestQ007UnknownFieldPath:
    def test_typo_in_leaf_gets_path_hint(self):
        schema = cluster_schema()
        diagnostic = only(
            analyze_filter({"records.person.last_nme": "X"}, schema), "Q007"
        )
        assert "records.person.last_name" in diagnostic.hint

    def test_array_indexes_are_transparent(self):
        schema = cluster_schema()
        assert analyze_filter({"records.0.person.last_name": "X"}, schema) == []

    def test_open_prefix_accepts_dynamic_keys(self):
        schema = cluster_schema()
        assert analyze_filter({"records.plausibility.3": {"$lt": 0.5}}, schema) == []

    def test_no_schema_no_field_checks(self):
        assert analyze_filter({"no.such.path": 1}) == []

    def test_intermediate_node_is_known(self):
        schema = cluster_schema()
        assert analyze_filter({"records.person": {"$exists": True}}, schema) == []


class TestQ008MalformedFilter:
    def test_non_dict_filter(self):
        assert "Q008" in codes(analyze_filter([("a", 1)]))

    def test_non_dict_logical_member(self):
        assert "Q008" in codes(analyze_filter({"$and": [{"a": 1}, 7]}))


class TestP101P102Stages:
    def test_unknown_stage_with_hint(self):
        diagnostic = only(analyze_pipeline([{"$grup": {"_id": None}}]), "P101")
        assert "did you mean '$group'?" in diagnostic.hint

    def test_multi_key_stage(self):
        assert "P102" in codes(analyze_pipeline([{"$match": {}, "$limit": 1}]))

    def test_non_dict_stage(self):
        assert "P102" in codes(analyze_pipeline(["$match"]))

    def test_non_list_pipeline(self):
        assert "P102" in codes(analyze_pipeline({"$match": {}}))

    def test_group_without_id(self):
        assert "P102" in codes(analyze_pipeline([{"$group": {"n": {"$sum": 1}}}]))

    def test_negative_limit_and_bool_skip(self):
        assert "P102" in codes(analyze_pipeline([{"$limit": -1}]))
        assert "P102" in codes(analyze_pipeline([{"$skip": True}]))

    def test_bad_sort_direction(self):
        assert "P102" in codes(analyze_pipeline([{"$sort": {"a": "up"}}]))

    def test_bad_unwind_path(self):
        assert "P102" in codes(analyze_pipeline([{"$unwind": "records"}]))

    def test_replace_root_needs_new_root(self):
        assert "P102" in codes(analyze_pipeline([{"$replaceRoot": {"to": "$a"}}]))

    def test_count_needs_name(self):
        assert "P102" in codes(analyze_pipeline([{"$count": ""}]))


class TestP103P104Expressions:
    def test_unknown_expression_operator(self):
        diagnostic = only(
            analyze_pipeline([{"$addFields": {"x": {"$multply": ["$a", 2]}}}]),
            "P103",
        )
        assert "did you mean '$multiply'?" in diagnostic.hint

    def test_unknown_accumulator(self):
        diagnostic = only(
            analyze_pipeline([{"$group": {"_id": None, "n": {"$summ": 1}}}]),
            "P104",
        )
        assert "did you mean '$sum'?" in diagnostic.hint

    def test_accumulator_must_be_single_op(self):
        assert "P102" in codes(
            analyze_pipeline([{"$group": {"_id": None, "n": 1}}])
        )


class TestP105StageOrderHazards:
    def test_match_on_field_dropped_by_project(self):
        diagnostics = analyze_pipeline(
            [{"$project": {"ncid": 1}}, {"$match": {"records.hash": "x"}}],
            cluster_schema(),
        )
        diagnostic = only(diagnostics, "P105")
        assert "available fields" in diagnostic.hint

    def test_match_on_field_excluded_by_project(self):
        diagnostics = analyze_pipeline(
            [{"$project": {"meta": 0}}, {"$match": {"meta.first_version": 1}}],
            cluster_schema(),
        )
        assert "removed by an earlier $project" in only(diagnostics, "P105").message

    def test_sort_on_field_dropped_by_group(self):
        diagnostics = analyze_pipeline(
            [
                {"$group": {"_id": "$ncid", "n": {"$sum": 1}}},
                {"$sort": {"ncid": 1}},
            ],
            cluster_schema(),
        )
        assert "P105" in codes(diagnostics)

    def test_group_output_fields_are_usable(self):
        assert (
            analyze_pipeline(
                [
                    {"$group": {"_id": "$ncid", "n": {"$sum": 1}}},
                    {"$match": {"n": {"$gte": 2}}},
                    {"$sort": {"_id": 1}},
                ],
                cluster_schema(),
            )
            == []
        )

    def test_added_fields_are_usable(self):
        assert (
            analyze_pipeline(
                [
                    {"$addFields": {"size": {"$size": "$records"}}},
                    {"$match": {"size": {"$gte": 2}}},
                ],
                cluster_schema(),
            )
            == []
        )

    def test_replace_root_descends_into_records(self):
        # The canonical unwind-and-promote pattern must stay clean.
        assert (
            analyze_pipeline(
                [
                    {"$unwind": "$records"},
                    {"$replaceRoot": {"newRoot": "$records"}},
                    {"$match": {"person.last_name": {"$exists": True}}},
                ],
                cluster_schema(),
            )
            == []
        )

    def test_replace_root_into_expression_disables_checks(self):
        assert (
            analyze_pipeline(
                [
                    {"$replaceRoot": {"newRoot": {"a": "$ncid"}}},
                    {"$match": {"anything.goes": 1}},
                ],
                cluster_schema(),
            )
            == []
        )


class TestP106SortAfterLimit:
    def test_warns(self):
        diagnostic = only(
            analyze_pipeline([{"$limit": 5}, {"$sort": {"a": 1}}]), "P106"
        )
        assert diagnostic.severity == "warning"

    def test_sort_before_limit_is_clean(self):
        assert analyze_pipeline([{"$sort": {"a": 1}}, {"$limit": 5}]) == []


class TestUpdates:
    def test_u301_unknown_operator(self):
        diagnostic = only(analyze_update({"$sett": {"a": 1}}), "U301")
        assert "did you mean '$set'?" in diagnostic.hint

    def test_u302_malformed(self):
        assert "U302" in codes(analyze_update([]))
        assert "U302" in codes(analyze_update({}))
        assert "U302" in codes(analyze_update({"$set": []}))

    def test_update_paths_checked_against_schema(self):
        diagnostics = analyze_update(
            {"$set": {"records.persn.age": "9"}}, cluster_schema()
        )
        assert "Q007" in codes(diagnostics)


class TestRequireClean:
    def test_raises_query_error_listing_all_errors(self):
        diagnostics = analyze_filter({"a": {"$regx": "x"}, "b": {"$in": 5}})
        with pytest.raises(QueryError) as excinfo:
            require_clean(diagnostics, "test filter")
        message = str(excinfo.value)
        assert "test filter" in message
        assert "Q001" in message and "Q003" in message

    def test_clean_is_silent(self):
        require_clean(analyze_filter({"a": 1}))
        assert not has_errors(analyze_filter({"a": 1}))
