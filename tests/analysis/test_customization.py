"""Tests for customisation-spec validation (C2xx) and spec-driven execution."""

import pytest

from repro.analysis import analyze_customization
from repro.core import customize_from_spec


def codes(diagnostics):
    return [d.code for d in diagnostics]


def only(diagnostics, code):
    found = [d for d in diagnostics if d.code == code]
    assert found, f"expected a {code} in {[d.render() for d in diagnostics]}"
    return found[0]


GOOD_SPEC = {
    "name": "nc2",
    "h_lo": 0.2,
    "h_hi": 0.4,
    "groups": ["person"],
    "target_clusters": 100,
    "min_cluster_size": 2,
    "seed": 0,
    "filter": {"records.person.last_name": {"$exists": True}},
    "transform": {
        "drop": ["age"],
        "merge": {"full_name": ["first_name", "midl_name", "last_name"]},
        "rename": {"birth_place": "place_of_birth"},
        "values": {"street_name": "title"},
    },
}


class TestAnalyzeCustomization:
    def test_good_spec_is_clean(self):
        assert analyze_customization(GOOD_SPEC) == []

    def test_c200_non_dict_spec(self):
        assert codes(analyze_customization(["not", "a", "dict"])) == ["C200"]

    def test_c200_malformed_transform_parts(self):
        spec = dict(GOOD_SPEC, transform={"drop": "age", "merge": ["x"]})
        assert codes(analyze_customization(spec)).count("C200") == 2

    def test_c201_unknown_group_with_hint(self):
        diagnostic = only(
            analyze_customization({"groups": ["persn"]}), "C201"
        )
        assert "did you mean 'person'?" in diagnostic.hint

    def test_c201_groups_must_be_list(self):
        assert "C201" in codes(analyze_customization({"groups": "person"}))

    def test_c202_range_errors(self):
        assert "C202" in codes(analyze_customization({"h_lo": -0.1}))
        assert "C202" in codes(analyze_customization({"h_hi": "high"}))
        assert "C202" in codes(analyze_customization({"h_lo": 0.6, "h_hi": 0.4}))

    def test_c203_unknown_attribute_with_hint(self):
        spec = {"groups": ["person"], "transform": {"drop": ["last_nam"]}}
        diagnostic = only(analyze_customization(spec), "C203")
        assert "did you mean 'last_name'?" in diagnostic.hint

    def test_c203_tracks_working_set_through_steps(self):
        # After dropping "age", the values step cannot touch it any more...
        spec = {
            "groups": ["person"],
            "transform": {"drop": ["age"], "values": {"age": "upper"}},
        }
        assert "C203" in codes(analyze_customization(spec))
        # ...but a merge target becomes available to later steps.
        spec = {
            "groups": ["person"],
            "transform": {
                "merge": {"full_name": ["first_name", "last_name"]},
                "values": {"full_name": "title"},
            },
        }
        assert analyze_customization(spec) == []

    def test_c204_count_errors(self):
        assert "C204" in codes(analyze_customization({"target_clusters": 0}))
        assert "C204" in codes(analyze_customization({"sample_clusters": "many"}))
        assert "C204" in codes(analyze_customization({"min_cluster_size": True}))

    def test_c205_unknown_key_warns(self):
        diagnostic = only(analyze_customization({"h_low": 0.2}), "C205")
        assert diagnostic.severity == "warning"
        assert "did you mean 'h_lo'?" in diagnostic.hint

    def test_c206_unknown_value_transform(self):
        spec = {"groups": ["person"], "transform": {"values": {"age": "titlecase"}}}
        assert "C206" in codes(analyze_customization(spec))

    def test_embedded_filter_is_analyzed_against_cluster_schema(self):
        spec = {"filter": {"records.person.last_nme": {"$regx": "x"}}}
        found = codes(analyze_customization(spec))
        assert "Q007" in found and "Q001" in found


class TestCustomizeFromSpec:
    def test_bad_spec_raises_before_generation(self, generator):
        with pytest.raises(ValueError) as excinfo:
            customize_from_spec(generator, {"groups": ["persn"], "h_lo": 2})
        message = str(excinfo.value)
        assert "C201" in message and "C202" in message

    def test_good_spec_runs(self, generator):
        result = customize_from_spec(
            generator,
            {
                "name": "spec-run",
                "h_lo": 0.0,
                "h_hi": 1.0,
                "groups": ["person"],
                "target_clusters": 20,
                "transform": {
                    "merge": {"full_name": ["first_name", "last_name"]},
                    "values": {"full_name": "title"},
                },
            },
        )
        assert result.name == "spec-run"
        assert result.cluster_count <= 20
        assert result.records
        sample = result.records[0]
        assert "full_name" in sample
        assert "first_name" not in sample

    def test_unknown_group_raises_with_hint_via_customize(self, generator):
        from repro.core import customize

        with pytest.raises(ValueError, match="did you mean 'person'"):
            customize(generator, 0.0, 1.0, groups=("persn",))
