"""Tests for the repo-invariant AST linter — and the repo-wide gate itself."""

from pathlib import Path

from repro.analysis.lint import lint_paths, lint_source, main

CLEAN = '''"""Module docstring."""

from __future__ import annotations


def f(x=None):
    if x is None:
        x = []
    return x
'''


def codes(findings):
    return [f.code for f in findings]


def lint(source, path="src/repro/mod.py", **kwargs):
    return lint_source(source, Path(path), **kwargs)


class TestLintRules:
    def test_clean_module(self):
        assert lint(CLEAN) == []

    def test_l000_syntax_error(self):
        assert codes(lint("def broken(:\n")) == ["L000"]

    def test_l001_mutable_defaults(self):
        source = CLEAN + "def g(a=[], b={}, c=set(), *, d=list()):\n    pass\n"
        assert codes(lint(source)).count("L001") == 4

    def test_l001_lambda_default(self):
        source = CLEAN + "g = lambda xs=[]: xs\n"
        assert "L001" in codes(lint(source))

    def test_l001_ignores_immutable_defaults(self):
        source = CLEAN + "def g(a=(), b=0, c='x', d=frozenset()):\n    pass\n"
        assert lint(source) == []

    def test_l002_bare_except(self):
        source = CLEAN + "try:\n    pass\nexcept:\n    pass\n"
        assert "L002" in codes(lint(source))
        narrow = CLEAN + "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert lint(narrow) == []

    def test_l003_print_in_library(self):
        source = CLEAN + "print('hello')\n"
        assert "L003" in codes(lint(source))

    def test_l003_allowed_in_cli_and_tests(self):
        source = CLEAN + "print('hello')\n"
        assert lint(source, path="src/repro/cli.py") == []
        assert lint(source, path="tests/test_x.py", is_library=False) == []

    def test_l004_docstore_foreign_raise(self):
        source = CLEAN + "def f():\n    raise ValueError('nope')\n"
        findings = lint(source, is_docstore=True)
        assert "L004" in codes(findings)

    def test_l004_hierarchy_and_reraise_allowed(self):
        source = CLEAN + (
            "def f():\n"
            "    try:\n"
            "        raise QueryError('bad')\n"
            "    except Exception:\n"
            "        raise\n"
        )
        assert lint(source, is_docstore=True) == []

    def test_l004_not_applied_outside_docstore(self):
        source = CLEAN + "def f():\n    raise ValueError('fine elsewhere')\n"
        assert lint(source, is_docstore=False) == []

    def test_l005_missing_future_import(self):
        source = '"""Doc."""\n\nX = 1\n'
        assert codes(lint(source)) == ["L005"]
        assert lint(source, is_library=False) == []

    def test_l006_non_optional_none_default(self):
        source = CLEAN + "def g(a: str = None):\n    return a\n"
        assert codes(lint(source)) == ["L006"]

    def test_l006_subscript_and_kwonly(self):
        source = CLEAN + (
            "def g(a: Sequence[str] = None, *, b: Dict[str, int] = None):\n"
            "    return a, b\n"
        )
        assert codes(lint(source)).count("L006") == 2

    def test_l006_allows_optional_spellings(self):
        source = CLEAN + (
            "def g(\n"
            "    a: Optional[str] = None,\n"
            "    b: typing.Optional[int] = None,\n"
            "    c: Union[str, None] = None,\n"
            "    d: 'str | None' = None,\n"
            "    e: Any = None,\n"
            "    f: object = None,\n"
            "    g: 'Optional[Sequence[str]]' = None,\n"
            "    h=None,\n"
            "):\n"
            "    pass\n"
        )
        assert lint(source) == []

    def test_l006_allows_pep604_union(self):
        source = CLEAN + "def g(a: str | None = None):\n    return a\n"
        assert lint(source) == []

    def test_l006_ignores_non_none_defaults(self):
        source = CLEAN + "def g(a: str = 'x', b: int = 0):\n    return a, b\n"
        assert lint(source) == []

    def test_l007_direct_open_for_write(self):
        source = CLEAN + "h = open('c.jsonl', 'w')\n"
        path = "src/repro/docstore/storage2.py"
        assert "L007" in codes(lint(source, path=path, is_docstore=True))

    def test_l007_mode_keyword_and_path_open(self):
        source = CLEAN + (
            "h = open('c.jsonl', mode='ab')\n"
            "g = p.open('wb')\n"
        )
        path = "src/repro/docstore/storage2.py"
        assert codes(lint(source, path=path, is_docstore=True)).count("L007") == 2

    def test_l007_write_text_and_write_bytes(self):
        source = CLEAN + "p.write_text('x')\np.write_bytes(b'y')\n"
        path = "src/repro/docstore/storage2.py"
        assert codes(lint(source, path=path, is_docstore=True)).count("L007") == 2

    def test_l007_read_modes_allowed(self):
        source = CLEAN + (
            "h = open('c.jsonl')\n"
            "g = open('c.jsonl', 'r')\n"
            "f = p.open('rb')\n"
            "t = p.read_text()\n"
        )
        path = "src/repro/docstore/storage2.py"
        assert lint(source, path=path, is_docstore=True) == []

    def test_l007_wal_module_exempt(self):
        source = CLEAN + "h = open('c.wal', 'wb')\n"
        assert lint(source, path="src/repro/docstore/wal.py", is_docstore=True) == []

    def test_l007_not_applied_outside_docstore_library(self):
        source = CLEAN + "h = open('c.jsonl', 'w')\n"
        assert lint(source, is_docstore=False) == []
        assert (
            lint(
                source,
                path="tests/docstore/test_x.py",
                is_library=False,
                is_docstore=True,
            )
            == []
        )

    def test_l007_dynamic_mode_not_guessed(self):
        source = CLEAN + "def f(m):\n    return open('c.jsonl', m)\n"
        path = "src/repro/docstore/storage2.py"
        assert lint(source, path=path, is_docstore=True) == []

    def test_l008_deep_copy_on_read_surface(self):
        source = CLEAN + (
            "def execute_find(state):\n"
            "    return [deep_copy(doc) for doc in state]\n"
        )
        path = "src/repro/docstore/planner2.py"
        assert "L008" in codes(lint(source, path=path, is_docstore=True))

    def test_l008_covers_attribute_calls_and_named_surfaces(self):
        source = CLEAN + (
            "def find(state):\n"
            "    return documents.deep_copy(state)\n"
        )
        path = "src/repro/docstore/collection2.py"
        assert "L008" in codes(lint(source, path=path, is_docstore=True))

    def test_l008_ignores_write_paths_and_other_modules(self):
        write_path = CLEAN + (
            "def insert_one(doc):\n"
            "    return deep_copy(doc)\n"
        )
        path = "src/repro/docstore/collection2.py"
        assert lint(write_path, path=path, is_docstore=True) == []
        read_surface = CLEAN + (
            "def find(state):\n"
            "    return deep_copy(state)\n"
        )
        # The materialization helpers themselves are home turf...
        home = "src/repro/docstore/documents.py"
        assert lint(read_surface, path=home, is_docstore=True) == []
        # ...and modules outside the docstore library are out of scope.
        assert lint(read_surface, path="src/repro/core/x.py") == []

    def test_l008_suppressed_by_inline_ignore(self):
        source = CLEAN + (
            "def find(state):\n"
            "    return deep_copy(state)  # repro: ignore[L008]\n"
        )
        path = "src/repro/docstore/collection2.py"
        assert lint(source, path=path, is_docstore=True) == []

    def test_l009_stale_suppression_is_flagged(self):
        source = CLEAN + "X = 1  # repro: ignore[L008]\n"
        path = "src/repro/docstore/collection2.py"
        assert codes(lint(source, path=path, is_docstore=True)) == ["L009"]

    def test_l009_skips_other_tools_codes(self):
        source = CLEAN + "X = 1  # repro: ignore[R104]\n"
        path = "src/repro/docstore/collection2.py"
        # R-codes belong to the concurrency analyzer; not our staleness call.
        assert lint(source, path=path, is_docstore=True) == []


class TestLintPaths:
    def test_classifies_by_location(self, tmp_path):
        src = tmp_path / "src" / "repro" / "docstore"
        src.mkdir(parents=True)
        bad = src / "bad.py"
        bad.write_text(
            "from __future__ import annotations\n"
            "def f():\n    raise KeyError('x')\n"
        )
        findings = lint_paths([tmp_path])
        assert codes(findings) == ["L004"]
        assert str(bad) in findings[0].path

    def test_main_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "ok.py"
        good.write_text("X = 1\n")
        assert main([str(good)]) == 0
        bad = tmp_path / "src" / "repro"
        bad.mkdir(parents=True)
        (bad / "bad.py").write_text("def f(x=[]):\n    return x\n")
        assert main([str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "L001" in captured.err and "L005" in captured.err


class TestRepoGate:
    def test_repo_is_lint_clean(self):
        """The enforced invariant: src and tests carry no lint findings."""
        root = Path(__file__).resolve().parents[2]
        findings = lint_paths([root / "src", root / "tests"])
        assert findings == [], "\n".join(f.render() for f in findings)
