"""A Febrl-style data synthesizer.

Generates person records entirely from frequency pools — the synthesization
family of Section 7 (DBGen, Febrl): very fast, arbitrarily scalable, but
every value is fictional and errors are injected synthetically.  Used by the
benchmark harness as the scalability/realism baseline.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Set, Tuple

from repro.pollute.corruptors import CorruptorSuite
from repro.votersim import names as name_pools
from repro.votersim.geography import COUNTIES, STREET_NAMES, STREET_TYPES

#: The classic Febrl generator's attribute set (slightly condensed).
FEBRL_ATTRIBUTES = (
    "given_name",
    "surname",
    "street_number",
    "address_1",
    "suburb",
    "postcode",
    "state",
    "date_of_birth",
    "phone_number",
)


@dataclasses.dataclass
class SynthesizerConfig:
    """Knobs of the Febrl-style generator (mirrors its CLI options)."""

    originals: int = 1000
    duplicates: int = 300
    max_duplicates_per_original: int = 4
    errors_per_duplicate: float = 1.0
    seed: int = 42

    def validate(self) -> None:
        """Raise ValueError when any knob is out of range."""
        if self.originals < 1:
            raise ValueError(f"originals must be >= 1, got {self.originals}")
        if self.duplicates < 0:
            raise ValueError(f"duplicates must be >= 0, got {self.duplicates}")
        if self.max_duplicates_per_original < 1:
            raise ValueError(
                "max_duplicates_per_original must be >= 1, got "
                f"{self.max_duplicates_per_original}"
            )


@dataclasses.dataclass
class SynthesizedDataset:
    """Generated records plus gold standard."""

    records: List[Dict[str, str]]
    cluster_of: List[int]
    gold_pairs: Set[Tuple[int, int]]

    @property
    def record_count(self) -> int:
        """Number of generated records (originals + duplicates)."""
        return len(self.records)


class FebrlStyleSynthesizer:
    """Generates a labeled person dataset from scratch."""

    def __init__(self, config: Optional[SynthesizerConfig] = None) -> None:
        self.config = config or SynthesizerConfig()
        self.config.validate()
        self.rng = random.Random(self.config.seed)
        self.suite = CorruptorSuite(
            {
                "typo": 4.0,
                "phonetic": 1.5,
                "ocr": 0.5,
                "missing": 1.0,
                "abbreviate": 1.0,
                "representation": 0.5,
            }
        )

    def _original(self) -> Dict[str, str]:
        rng = self.rng
        sex = rng.random()
        if sex < 0.5:
            given = rng.choice(name_pools.FEMALE_FIRST_NAMES)
        else:
            given = rng.choice(name_pools.MALE_FIRST_NAMES)
        _county_id, _county, city, zip_prefix = rng.choice(COUNTIES)
        return {
            "given_name": given,
            "surname": rng.choice(name_pools.LAST_NAMES),
            "street_number": str(rng.randrange(1, 9999)),
            "address_1": f"{rng.choice(STREET_NAMES)} {rng.choice(STREET_TYPES)}",
            "suburb": city,
            "postcode": f"{zip_prefix}{rng.randrange(100):02d}",
            "state": "NC",
            "date_of_birth": (
                f"{rng.randrange(1920, 2002)}"
                f"{rng.randrange(1, 13):02d}{rng.randrange(1, 29):02d}"
            ),
            "phone_number": f"{rng.randrange(200, 999)} {rng.randrange(100, 999)} {rng.randrange(1000, 9999)}",
        }

    def generate(self) -> SynthesizedDataset:
        """Generate originals and duplicates (Febrl's rec-org/rec-dup layout)."""
        config = self.config
        rng = self.rng
        records: List[Dict[str, str]] = []
        cluster_of: List[int] = []
        originals: List[Dict[str, str]] = []
        for cluster_id in range(config.originals):
            record = self._original()
            originals.append(record)
            records.append(record)
            cluster_of.append(cluster_id)
        produced = 0
        per_original: Dict[int, int] = {}
        while produced < config.duplicates:
            cluster_id = rng.randrange(config.originals)
            if per_original.get(cluster_id, 0) >= config.max_duplicates_per_original:
                continue
            per_original[cluster_id] = per_original.get(cluster_id, 0) + 1
            duplicate = self.suite.corrupt_record(
                originals[cluster_id], rng, FEBRL_ATTRIBUTES, config.errors_per_duplicate
            )
            records.append(duplicate)
            cluster_of.append(cluster_id)
            produced += 1
        gold_pairs: Set[Tuple[int, int]] = set()
        by_cluster: Dict[int, List[int]] = {}
        for record_id, cluster_id in enumerate(cluster_of):
            by_cluster.setdefault(cluster_id, []).append(record_id)
        for members in by_cluster.values():
            for j in range(1, len(members)):
                for i in range(j):
                    gold_pairs.add((members[i], members[j]))
        return SynthesizedDataset(
            records=records, cluster_of=cluster_of, gold_pairs=gold_pairs
        )
