"""Value corruptors shared by the pollution tools and dataset synthesizers.

Each corruptor takes ``(value, rng)`` and returns a corrupted value.  They
wrap the transcription-error primitives of :mod:`repro.votersim.errors`, so
baseline-generated errors and register errors come from the same families
(typo, OCR, phonetic, abbreviation, representation, token transposition,
missing).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.votersim.errors import (
    apply_ocr_error,
    apply_phonetic_error,
    apply_representation_change,
    apply_token_transposition,
    apply_typo,
)

Corruptor = Callable[[str, random.Random], str]


def corrupt_missing(value: str, rng: random.Random) -> str:
    """Blank the value out."""
    return ""


def corrupt_abbreviate(value: str, rng: random.Random) -> str:
    """Reduce the value (or its first token) to an initial."""
    if not value:
        return value
    token = value.split()[0]
    return token[0] + ("." if rng.random() < 0.5 else "")


def corrupt_truncate(value: str, rng: random.Random) -> str:
    """Keep only a prefix of the value (forgotten characters/tokens)."""
    if len(value) < 4:
        return value
    cut = rng.randrange(3, len(value))
    return value[:cut]


def corrupt_case(value: str, rng: random.Random) -> str:
    """Flip the casing style of the value."""
    if value.isupper():
        return value.title()
    return value.upper()


def default_corruptors() -> Dict[str, Corruptor]:
    """Name -> corruptor map of every supported error family."""
    return {
        "typo": apply_typo,
        "ocr": apply_ocr_error,
        "phonetic": apply_phonetic_error,
        "representation": apply_representation_change,
        "token_transposition": apply_token_transposition,
        "missing": corrupt_missing,
        "abbreviate": corrupt_abbreviate,
        "truncate": corrupt_truncate,
        "case": corrupt_case,
    }


def corrupt_value(
    value: str,
    rng: random.Random,
    corruptor_weights: Sequence[Tuple[str, float]],
    corruptors: Optional[Dict[str, Corruptor]] = None,
) -> str:
    """Apply one weighted-random corruptor to ``value``."""
    if corruptors is None:
        corruptors = default_corruptors()
    names = [name for name, _weight in corruptor_weights]
    weights = [weight for _name, weight in corruptor_weights]
    chosen = rng.choices(names, weights=weights, k=1)[0]
    return corruptors[chosen](value, rng)


class CorruptorSuite:
    """A reusable weighted mix of corruptors.

    ``weights`` maps corruptor names (see :func:`default_corruptors`) to
    relative weights.  :meth:`corrupt_record` applies ``errors_per_record``
    corruptions to randomly chosen non-empty attributes.
    """

    def __init__(
        self,
        weights: Dict[str, float],
        corruptors: Optional[Dict[str, Corruptor]] = None,
    ) -> None:
        registry = corruptors if corruptors is not None else default_corruptors()
        unknown = set(weights) - set(registry)
        if unknown:
            raise ValueError(f"unknown corruptors: {sorted(unknown)}")
        if not weights:
            raise ValueError("weights must not be empty")
        self._registry = registry
        self._weights = list(weights.items())

    def corrupt(self, value: str, rng: random.Random) -> str:
        """Apply one weighted-random corruptor to ``value``."""
        return corrupt_value(value, rng, self._weights, self._registry)

    def corrupt_record(
        self,
        record: Dict[str, str],
        rng: random.Random,
        attributes: Sequence[str],
        errors_per_record: float = 1.0,
    ) -> Dict[str, str]:
        """Return a corrupted copy of ``record``.

        ``errors_per_record`` may be fractional: 1.5 means one guaranteed
        corruption plus a 50 % chance of a second.
        """
        corrupted = dict(record)
        count = int(errors_per_record)
        if rng.random() < errors_per_record - count:
            count += 1
        candidates = [a for a in attributes if (corrupted.get(a) or "").strip()]
        for _ in range(count):
            if not candidates:
                break
            attribute = rng.choice(candidates)
            corrupted[attribute] = self.corrupt(corrupted[attribute], rng)
        return corrupted
