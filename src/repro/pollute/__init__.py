"""Baseline test-data generators from the related-work discussion.

Section 7 contrasts the paper's historical approach with two families of
automatic tools:

* **data synthesization** (DBGen, Febrl) — all values generated from
  scratch; fast and scalable but the values are fictional.
  :class:`FebrlStyleSynthesizer` implements this family.
* **data pollution** (GeCo, TDGen, DaPo) — a clean dataset is polluted with
  duplicates and errors; values are realistic but outdated values and their
  complex error patterns are hard to simulate.
  :class:`GeCoStylePolluter` implements this family.

Both are used by the benchmark harness to reproduce the qualitative
comparison (realistic error mix vs synthetic, scalability) and by the
comparison-dataset synthesizers in :mod:`repro.datasets`.
"""

from __future__ import annotations

from repro.pollute.corruptors import (
    CorruptorSuite,
    corrupt_value,
    default_corruptors,
)
from repro.pollute.polluter import GeCoStylePolluter, PollutionProfile
from repro.pollute.synthesizer import FebrlStyleSynthesizer

__all__ = [
    "CorruptorSuite",
    "corrupt_value",
    "default_corruptors",
    "GeCoStylePolluter",
    "PollutionProfile",
    "FebrlStyleSynthesizer",
]
