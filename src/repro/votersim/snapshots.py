"""Snapshot records and TSV serialisation.

A snapshot is the register's state at a publication date: one 90-attribute
record per retained registration.  Records are built from the voter's
*recorded* values (with their baked-in transcription errors), the
snapshot-dependent attributes (age, election participation, meta dates) and
the era-dependent district formats.
"""

from __future__ import annotations

import csv
import dataclasses
import zlib
from pathlib import Path
from typing import Dict, List

from repro.votersim.formats import age_group_label, district_description, pad_value
from repro.votersim.geography import county_districts
from repro.votersim.population import Registration, Voter
from repro.votersim.schema import ALL_ATTRIBUTES, empty_record

#: Person attributes copied verbatim from the recorded registration values.
_RECORDED_PERSON_ATTRIBUTES = (
    "first_name",
    "midl_name",
    "last_name",
    "name_sufx",
    "sex_code",
    "sex",
    "race_code",
    "race_desc",
    "ethnic_code",
    "ethnic_desc",
    "birth_place",
    "party_cd",
    "party_desc",
    "phone_num",
    "drivers_lic",
)

VOTING_METHODS = ("IN-PERSON", "ABSENTEE", "ABSENTEE ONESTOP", "CURBSIDE", "PROVISIONAL")

#: District types whose *_abbrv/_desc pairs exist in the schema.
_DISTRICT_TYPES = (
    "cong_dist",
    "super_court",
    "judic_dist",
    "nc_senate",
    "nc_house",
    "county_commiss",
    "township",
    "school_dist",
    "fire_dist",
    "water_dist",
    "sewer_dist",
    "sanit_dist",
    "rescue_dist",
    "munic_dist",
    "dist_1",
)

#: District types that only exist in some counties (sparse columns).
_OPTIONAL_DISTRICT_TYPES = frozenset(
    ("fire_dist", "water_dist", "sewer_dist", "sanit_dist", "rescue_dist", "munic_dist", "dist_1")
)


@dataclasses.dataclass
class Snapshot:
    """One published register snapshot."""

    date: str
    records: List[Dict[str, str]]

    @property
    def year(self) -> int:
        """The snapshot's publication year."""
        return int(self.date[:4])

    def __len__(self) -> int:
        return len(self.records)


def stable_hash(*parts: object) -> int:
    """Deterministic 32-bit hash (unlike ``hash()``, stable across runs)."""
    payload = "\x1f".join(str(part) for part in parts).encode("utf-8")
    return zlib.crc32(payload)


def birth_month(voter: Voter) -> int:
    """A stable pseudo birth month derived from the voter identity."""
    return stable_hash("birth-month", voter.ncid, voter.person_seq) % 12 + 1


def compute_age(voter: Voter, snapshot_date: str) -> int:
    """Age at the snapshot date given the (hidden) birth month."""
    year = int(snapshot_date[:4])
    month = int(snapshot_date[5:7])
    age = year - voter.birth_year
    if month < birth_month(voter):
        age -= 1
    return age


def last_election(snapshot_date: str) -> str:
    """Label of the most recent November election before the snapshot."""
    year = int(snapshot_date[:4])
    month = int(snapshot_date[5:7])
    election_year = year if month >= 11 else year - 1
    kind = "GENERAL" if election_year % 2 == 0 else "MUNICIPAL"
    return f"11/{(stable_hash('eday', election_year) % 7) + 2:02d}/{election_year} {kind}"


def _election_year(election_label: str) -> str:
    """Extract the 4-digit year from an election label like ``11/04/2018 GENERAL``."""
    return election_label[6:10]


def build_record(
    voter: Voter,
    registration: Registration,
    snapshot_date: str,
    era: int,
    padded: bool,
) -> Dict[str, str]:
    """Assemble the full 90-attribute snapshot record for one registration."""
    record = empty_record()
    record["ncid"] = voter.ncid
    for attribute in _RECORDED_PERSON_ATTRIBUTES:
        record[attribute] = registration.recorded.get(attribute, "")

    if registration.age_outlier is not None:
        age = registration.age_outlier
    else:
        age = compute_age(voter, snapshot_date)
    record["age"] = str(age)

    address = registration.address
    record["house_num"] = address.house_num
    record["street_dir"] = address.street_dir
    record["street_name"] = address.street_name
    record["street_type_cd"] = address.street_type
    record["res_city_desc"] = address.city
    record["state_cd"] = "NC"
    record["zip_code"] = address.zip_code
    if registration.recorded.get("mail_addr1", "__absent__") != "":
        # Mail address defaults to the residence address unless blanked.
        record["mail_addr1"] = (
            f"{address.house_num} "
            + (f"{address.street_dir} " if address.street_dir else "")
            + f"{address.street_name} {address.street_type}"
        )
        record["mail_city"] = address.city
        record["mail_state"] = "NC"
        record["mail_zipcode"] = address.zip_code

    _fill_district(record, address.county_id, address.county_name, era)
    _fill_election(record, voter, registration, snapshot_date, era, age)
    _fill_meta(record, registration, snapshot_date)

    if padded:
        for attribute, value in record.items():
            record[attribute] = pad_value(value)
    return record


def _fill_district(record: Dict[str, str], county_id: int, county_name: str, era: int) -> None:
    record["county_id"] = str(county_id)
    record["county_desc"] = county_name
    precinct = stable_hash("precinct", county_id) % 40 + 1
    record["precinct_abbrv"] = f"{precinct:02d}"
    record["precinct_desc"] = f"PRECINCT {precinct:02d}"
    if county_id % 3 == 0:
        record["municipality_abbrv"] = county_name[:3]
        record["municipality_desc"] = f"CITY OF {county_name}"
        ward = county_id % 8 + 1
        record["ward_abbrv"] = str(ward)
        record["ward_desc"] = district_description("ward", ward, era)
    numbers = county_districts(county_id)
    for district_type in _DISTRICT_TYPES:
        number = numbers[district_type]
        if district_type in _OPTIONAL_DISTRICT_TYPES:
            # Sparse columns: the district only exists in some counties.
            if stable_hash("has", district_type, county_id) % 100 >= 40:
                continue
        record[f"{district_type}_abbrv"] = str(number)
        record[f"{district_type}_desc"] = district_description(district_type, number, era)


def _fill_election(
    record: Dict[str, str],
    voter: Voter,
    registration: Registration,
    snapshot_date: str,
    era: int,
    age: int,
) -> None:
    # Election participation is recorded at registration time and stays
    # fixed on the record until the voter re-registers; this mirrors the
    # real register, where snapshot-to-snapshot record churn is low.
    election = last_election(registration.registr_dt)
    voted = stable_hash("voted", voter.ncid, voter.person_seq, election) % 100 < 60
    registered_before = True
    if voted and registered_before:
        record["election_lbl"] = election
        method = VOTING_METHODS[
            stable_hash("method", voter.ncid, election) % len(VOTING_METHODS)
        ]
        record["voting_method"] = method
        record["voted_party_cd"] = registration.recorded.get("party_cd", "")
        record["voted_party_desc"] = registration.recorded.get("party_desc", "")
        record["pct_label"] = record["precinct_abbrv"]
        record["pct_description"] = record["precinct_desc"]
        record["voted_county_id"] = record["county_id"]
        record["voted_county_desc"] = record["county_desc"]
        vtd = stable_hash("vtd", record["county_id"]) % 30 + 1
        record["vtd_abbrv"] = f"{vtd:02d}"
        record["vtd_label"] = f"VTD {vtd:02d}"
        record["absent_ind"] = "Y" if "ABSENTEE" in method else "N"
    previous = last_election(f"{int(_election_year(election)) - 1}-12-01")
    voted_previous = (
        stable_hash("voted", voter.ncid, voter.person_seq, previous) % 100 < 60
    )
    if voted_previous and registration.registr_dt[:4] <= _election_year(previous):
        record["prev_election_lbl"] = previous
        record["prev_voting_method"] = VOTING_METHODS[
            stable_hash("method", voter.ncid, previous) % len(VOTING_METHODS)
        ]
    if 18 <= age <= 130:
        record["age_group"] = age_group_label(age, era)


def _fill_meta(record: Dict[str, str], registration: Registration, snapshot_date: str) -> None:
    record["snapshot_dt"] = snapshot_date
    load_day = stable_hash("load", snapshot_date) % 10 + 1
    record["load_dt"] = f"{snapshot_date[:8]}{min(28, int(snapshot_date[8:]) + load_day):02d}"
    record["registr_dt"] = registration.registr_dt
    record["cancellation_dt"] = registration.cancellation_dt
    record["voter_reg_num"] = registration.voter_reg_num
    record["status_cd"] = registration.status_cd
    record["voter_status_desc"] = registration.status_desc
    record["reason_cd"] = registration.reason_cd
    record["voter_status_reason_desc"] = registration.reason_desc
    record["confidential_ind"] = "N"


def write_snapshot_tsv(snapshot: Snapshot, path: Path) -> None:
    """Write ``snapshot`` as a TSV file with the 90-attribute header."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle, delimiter="\t", lineterminator="\n")
        writer.writerow(ALL_ATTRIBUTES)
        for record in snapshot.records:
            writer.writerow([record.get(attribute, "") for attribute in ALL_ATTRIBUTES])


def read_snapshot_tsv(path: Path) -> Snapshot:
    """Read a snapshot TSV previously written by :func:`write_snapshot_tsv`.

    The snapshot date is taken from the ``snapshot_dt`` of the first record
    (trimmed, because padded snapshots pad meta values too).
    """
    path = Path(path)
    records: List[Dict[str, str]] = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle, delimiter="\t")
        header = next(reader)
        for row in reader:
            records.append(dict(zip(header, row)))
    date = records[0]["snapshot_dt"].strip() if records else ""
    return Snapshot(date=date, records=records)
