"""The 90-attribute snapshot schema, split into the paper's four groups.

Section 5 of the paper splits every record into four sub-documents —
``person``, ``district``, ``election`` and ``meta`` — because most users only
care about the personal data.  The attribute names below follow the real
NC State Board of Elections layout (``ncvhis``/``ncvoter`` files) where the
paper quotes them (``last_name``, ``midl_name``, ``race_desc`` ...) and fill
the district/election groups with the statutory district types the paper
mentions (congressional, NC house/senate, judicial, school, fire, water,
sewer, sanitation, rescue, municipal districts).
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Personal data: identity, demographics, contact and residence (28).
PERSON_ATTRIBUTES: Tuple[str, ...] = (
    "ncid",
    "last_name",
    "first_name",
    "midl_name",
    "name_sufx",
    "age",
    "sex_code",
    "sex",
    "race_code",
    "race_desc",
    "ethnic_code",
    "ethnic_desc",
    "birth_place",
    "party_cd",
    "party_desc",
    "drivers_lic",
    "phone_num",
    "house_num",
    "street_dir",
    "street_name",
    "street_type_cd",
    "res_city_desc",
    "state_cd",
    "zip_code",
    "mail_addr1",
    "mail_city",
    "mail_state",
    "mail_zipcode",
)

#: District assignments: county, precinct and statutory districts (38).
DISTRICT_ATTRIBUTES: Tuple[str, ...] = (
    "county_id",
    "county_desc",
    "precinct_abbrv",
    "precinct_desc",
    "municipality_abbrv",
    "municipality_desc",
    "ward_abbrv",
    "ward_desc",
    "cong_dist_abbrv",
    "cong_dist_desc",
    "super_court_abbrv",
    "super_court_desc",
    "judic_dist_abbrv",
    "judic_dist_desc",
    "nc_senate_abbrv",
    "nc_senate_desc",
    "nc_house_abbrv",
    "nc_house_desc",
    "county_commiss_abbrv",
    "county_commiss_desc",
    "township_abbrv",
    "township_desc",
    "school_dist_abbrv",
    "school_dist_desc",
    "fire_dist_abbrv",
    "fire_dist_desc",
    "water_dist_abbrv",
    "water_dist_desc",
    "sewer_dist_abbrv",
    "sewer_dist_desc",
    "sanit_dist_abbrv",
    "sanit_dist_desc",
    "rescue_dist_abbrv",
    "rescue_dist_desc",
    "munic_dist_abbrv",
    "munic_dist_desc",
    "dist_1_abbrv",
    "dist_1_desc",
)

#: Election participation of the most recent elections (14).
ELECTION_ATTRIBUTES: Tuple[str, ...] = (
    "election_lbl",
    "voting_method",
    "voted_party_cd",
    "voted_party_desc",
    "pct_label",
    "pct_description",
    "voted_county_id",
    "voted_county_desc",
    "vtd_abbrv",
    "vtd_label",
    "prev_election_lbl",
    "prev_voting_method",
    "absent_ind",
    "age_group",
)

#: Administrative metadata (10).
META_ATTRIBUTES: Tuple[str, ...] = (
    "snapshot_dt",
    "load_dt",
    "registr_dt",
    "cancellation_dt",
    "voter_reg_num",
    "status_cd",
    "voter_status_desc",
    "reason_cd",
    "voter_status_reason_desc",
    "confidential_ind",
)

#: The full 90-attribute schema in serialisation order.
ALL_ATTRIBUTES: Tuple[str, ...] = (
    PERSON_ATTRIBUTES + DISTRICT_ATTRIBUTES + ELECTION_ATTRIBUTES + META_ATTRIBUTES
)

_GROUPS: Dict[str, str] = {}
for _name in PERSON_ATTRIBUTES:
    _GROUPS[_name] = "person"
for _name in DISTRICT_ATTRIBUTES:
    _GROUPS[_name] = "district"
for _name in ELECTION_ATTRIBUTES:
    _GROUPS[_name] = "election"
for _name in META_ATTRIBUTES:
    _GROUPS[_name] = "meta"

#: Attributes excluded from the exact-duplicate record hash (Section 4):
#: dates and the age, which change without the person changing.
HASH_EXCLUDED_ATTRIBUTES: Tuple[str, ...] = (
    "snapshot_dt",
    "load_dt",
    "registr_dt",
    "cancellation_dt",
    "age",
)


def attribute_group(attribute: str) -> str:
    """Return ``person`` / ``district`` / ``election`` / ``meta`` for ``attribute``."""
    try:
        return _GROUPS[attribute]
    except KeyError:
        raise KeyError(f"unknown attribute {attribute!r}") from None


def group_attributes(group: str) -> Tuple[str, ...]:
    """Return the attribute tuple of ``group``."""
    groups = {
        "person": PERSON_ATTRIBUTES,
        "district": DISTRICT_ATTRIBUTES,
        "election": ELECTION_ATTRIBUTES,
        "meta": META_ATTRIBUTES,
    }
    try:
        return groups[group]
    except KeyError:
        raise KeyError(f"unknown group {group!r}") from None


def empty_record() -> Dict[str, str]:
    """A record with every attribute present and empty (sparse-data shape)."""
    return {attribute: "" for attribute in ALL_ATTRIBUTES}


assert len(ALL_ATTRIBUTES) == 90, f"schema must have 90 attributes, has {len(ALL_ATTRIBUTES)}"
assert len(set(ALL_ATTRIBUTES)) == 90, "schema attribute names must be unique"
