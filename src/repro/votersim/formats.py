"""Per-era rendering of district attributes and whitespace padding.

The paper observed that "in some snapshots the formats of one or two
attributes changed (e.g., from '64TH HOUSE' to 'NC HOUSE DISTRICT 64') so
that each of their records were considered to be 'new'" (Section 4) and that
"many values contain leading and trailing whitespaces" (Section 3.1.3).
This module reproduces both phenomena: district descriptions are rendered
through era-dependent templates, and whole snapshots may be serialised with
fixed-width padded values.
"""

from __future__ import annotations

from typing import Dict

_ORDINAL_SUFFIXES = {1: "ST", 2: "ND", 3: "RD"}


def ordinal(number: int) -> str:
    """``1 -> 1ST``, ``2 -> 2ND``, ``11 -> 11TH``, ``23 -> 23RD`` ..."""
    if 10 <= number % 100 <= 20:
        suffix = "TH"
    else:
        suffix = _ORDINAL_SUFFIXES.get(number % 10, "TH")
    return f"{number}{suffix}"


#: District description templates per era.  Era 0 is the oldest.  The
#: templates are modelled on the real drift the paper quotes:
#: '64TH HOUSE' vs 'NC HOUSE DISTRICT 64', '1ST CONGRESSIONAL' vs
#: 'CO. DISTRICT 1'.
_DISTRICT_TEMPLATES: Dict[str, tuple] = {
    "cong_dist": (
        lambda n: f"{ordinal(n)} CONGRESSIONAL",
        lambda n: f"CO. DISTRICT {n}",
        lambda n: f"CONGRESSIONAL DISTRICT {n}",
    ),
    "nc_house": (
        lambda n: f"{ordinal(n)} HOUSE",
        lambda n: f"NC HOUSE DISTRICT {n}",
        lambda n: f"NC HOUSE DIST {n}",
    ),
    "nc_senate": (
        lambda n: f"{ordinal(n)} SENATE",
        lambda n: f"NC SENATE DISTRICT {n}",
        lambda n: f"NC SENATE DIST {n}",
    ),
    "super_court": (
        lambda n: f"{ordinal(n)} SUPERIOR COURT",
        lambda n: f"SUPERIOR COURT {n}",
        lambda n: f"SUP. COURT DISTRICT {n}",
    ),
    "judic_dist": (
        lambda n: f"{ordinal(n)} JUDICIAL",
        lambda n: f"JUDICIAL DISTRICT {n}",
        lambda n: f"JUD. DIST {n}",
    ),
    "school_dist": (
        lambda n: f"SCHOOL #{n}",
        lambda n: f"SCHOOL DISTRICT {n}",
        lambda n: f"SCH DIST {n}",
    ),
    "county_commiss": (
        lambda n: f"COMMISSIONER #{n}",
        lambda n: f"COUNTY COMMISSIONER {n}",
        lambda n: f"COMM. DISTRICT {n}",
    ),
}

#: Generic fallback templates for district types without dedicated drift.
_GENERIC_TEMPLATES = (
    lambda label, n: f"{label} {n}",
    lambda label, n: f"{label} DISTRICT {n}",
    lambda label, n: f"{label} DIST {n}",
)

#: Age-group rendering drift the paper quotes ('66 AND ABOVE' vs 'Age Over 66').
_AGE_GROUP_TEMPLATES = (
    lambda low, high: f"{low} AND ABOVE" if high is None else f"{low} - {high}",
    lambda low, high: f"Age Over {low}" if high is None else f"Age {low} to {high}",
    lambda low, high: f"{low}+" if high is None else f"{low}-{high}",
)

AGE_GROUP_BOUNDS = ((18, 25), (26, 40), (41, 65), (66, None))


def district_description(district_type: str, number: int, era: int) -> str:
    """Render a district description in the style of ``era``."""
    templates = _DISTRICT_TEMPLATES.get(district_type)
    if templates is not None:
        return templates[era % len(templates)](number)
    label = district_type.replace("_", " ").upper()
    template = _GENERIC_TEMPLATES[era % len(_GENERIC_TEMPLATES)]
    return template(label, number)


def age_group_label(age: int, era: int) -> str:
    """Render the age-group attribute for ``age`` in the style of ``era``."""
    for low, high in AGE_GROUP_BOUNDS:
        if high is None or age <= high:
            template = _AGE_GROUP_TEMPLATES[era % len(_AGE_GROUP_TEMPLATES)]
            return template(low, high)
    raise AssertionError("unreachable: AGE_GROUP_BOUNDS covers all ages")


def pad_value(value: str, width: int = 0) -> str:
    """Right-pad ``value`` with spaces (fixed-width export style).

    With ``width=0`` a single trailing blank is appended to non-empty
    values — the paper's "leading and trailing whitespaces" removed by the
    trimming step.
    """
    if not value:
        return value
    if width <= len(value):
        return value + " "
    return value.ljust(width)
