"""Configuration of the voter register simulation."""

from __future__ import annotations

import dataclasses
from typing import Tuple


@dataclasses.dataclass
class ErrorRates:
    """Per-transcription probabilities of the manual-entry error families.

    A *transcription* happens whenever a voter's registration form is
    (re-)entered into the register — at first registration and at every
    re-registration after a move or other update.  The resulting erroneous
    values persist across snapshots until the next transcription, which is
    what creates both exact duplicates (unchanged records) and realistic
    persistent errors (the paper's Section 2 observation).

    Rates are per *record*, applied to a randomly chosen applicable
    attribute, except where noted.
    """

    #: One random character edit (insert/delete/substitute/transpose).
    typo: float = 0.04
    #: OCR-style digit/letter confusion (O->0, I->1, S->5, B->8 ...).
    ocr: float = 0.004
    #: Phonetic re-spelling preserving the Soundex code (IE<->EI, PH<->F ...).
    phonetic: float = 0.012
    #: Middle name reduced to an initial (optionally with a period).
    abbreviate_middle: float = 0.12
    #: A value blanked out (middle name, phone, mail address ...).
    missing: float = 0.10
    #: First/middle or first/last name values swapped (value confusion).
    value_confusion: float = 0.003
    #: Middle name token appended into the first- or last-name field.
    integrated_value: float = 0.004
    #: Name tokens re-distributed across two attributes (scattered values).
    scattered_value: float = 0.002
    #: Token order flipped inside a multi-token value.
    token_transposition: float = 0.004
    #: Hyphen/space/punctuation variation (different representation).
    representation: float = 0.015
    #: Implausible value (e.g. age 5069, a stray symbol in a name).
    outlier: float = 0.0008
    #: Probability that a *blankable* optional attribute is empty anyway
    #: (middle name, phone, mail address) — on top of :attr:`missing`.
    optional_blank: float = 0.18

    def validate(self) -> None:
        """Raise ValueError when any knob is out of range."""
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field.name} must be in [0, 1], got {value}")


@dataclasses.dataclass
class SimulationConfig:
    """Knobs of the register simulation.

    The defaults produce a small, laptop-friendly register (a few thousand
    voters over a dozen snapshots).  Benchmarks scale ``initial_voters`` and
    ``years`` up; tests scale them down.
    """

    #: Voters registered before the first snapshot.
    initial_voters: int = 2000
    #: First simulated snapshot year.
    start_year: int = 2008
    #: Number of simulated years.
    years: int = 12
    #: Snapshots taken per year (the real register: elections + New Year).
    snapshots_per_year: int = 2
    #: Fraction of the population newly registered per year.
    new_voter_rate: float = 0.05
    #: Fraction of voters moving (and re-registering) per year.
    move_rate: float = 0.08
    #: Fraction of voters changing their last name per year (marriage etc.).
    name_change_rate: float = 0.015
    #: Fraction of voters switching party per year.
    party_change_rate: float = 0.02
    #: Fraction of voters removed (moved away / deceased) per year.
    removal_rate: float = 0.02
    #: Fraction of active voters flagged INACTIVE per year (list
    #: maintenance: confirmation card not returned).
    inactivity_rate: float = 0.03
    #: Fraction of inactive voters reactivated per year (they voted again).
    reactivation_rate: float = 0.3
    #: Fraction of removed voters whose NCID is (incorrectly) reassigned to
    #: a brand-new person — the source of *unsound* clusters (Figure 3).
    ncid_reuse_rate: float = 0.002
    #: Fraction of new voters who join an existing voter's household:
    #: same last name and address, different person.  These are the
    #: confusable *non-duplicates* that make real voter data hard.
    household_rate: float = 0.15
    #: Fraction of re-registrations entered through a fresh manual form
    #: (and therefore re-exposed to transcription errors).
    reentry_rate: float = 0.75
    #: Error model applied at transcription time.
    error_rates: ErrorRates = dataclasses.field(default_factory=ErrorRates)
    #: Snapshot eras in which district formats drift (see formats.py):
    #: era index = (year - start_year) // era_length.
    format_era_length: int = 4
    #: Fraction of snapshots serialised with whitespace-padded values.
    padded_snapshot_rate: float = 0.3
    #: PRNG seed — the whole simulation is deterministic given the seed.
    seed: int = 20210323

    def validate(self) -> None:
        """Raise ValueError when any knob is out of range."""
        if self.initial_voters < 1:
            raise ValueError(f"initial_voters must be >= 1, got {self.initial_voters}")
        if self.years < 1:
            raise ValueError(f"years must be >= 1, got {self.years}")
        if self.snapshots_per_year < 1:
            raise ValueError(
                f"snapshots_per_year must be >= 1, got {self.snapshots_per_year}"
            )
        for name in (
            "new_voter_rate",
            "move_rate",
            "name_change_rate",
            "party_change_rate",
            "removal_rate",
            "inactivity_rate",
            "reactivation_rate",
            "ncid_reuse_rate",
            "household_rate",
            "reentry_rate",
            "padded_snapshot_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.error_rates.validate()

    def snapshot_dates(self) -> Tuple[str, ...]:
        """ISO dates of every snapshot, oldest first.

        Two canonical publication dates per year slot: January 1st and the
        November election; more slots spread across the year.
        """
        dates = []
        for year in range(self.start_year, self.start_year + self.years):
            if self.snapshots_per_year == 1:
                dates.append(f"{year}-01-01")
                continue
            months = _spread_months(self.snapshots_per_year)
            for month in months:
                dates.append(f"{year}-{month:02d}-01")
        return tuple(dates)


def _spread_months(count: int) -> Tuple[int, ...]:
    """Spread ``count`` snapshot months across a year (always includes 1 and 11)."""
    if count == 1:
        return (1,)
    if count == 2:
        return (1, 11)
    step = 10 / (count - 1)
    months = sorted({max(1, min(12, round(1 + index * step))) for index in range(count)})
    while len(months) < count:  # fill collisions deterministically
        for candidate in range(1, 13):
            if candidate not in months:
                months.append(candidate)
                break
        months.sort()
    return tuple(months[:count])
