"""Manual-form transcription errors.

Voters (re-)register through manually filled out forms; clerks transcribe
them into the register.  This module simulates that transcription: given the
voter's *true* personal values it produces the *recorded* values, possibly
corrupted by one or more of the error families the paper's Table 4 measures:

typos, OCR confusions, phonetic misspellings, abbreviations, missing values,
outliers, token transpositions, different representations, value confusions,
integrated values and scattered values.
"""

from __future__ import annotations

import random
import string
from typing import Dict

from repro.votersim.config import ErrorRates

#: OCR confusion pairs (letter <-> digit), applied in both directions.
OCR_CONFUSIONS = {
    "O": "0", "0": "O",
    "I": "1", "1": "I",
    "L": "1",
    "Z": "2", "2": "Z",
    "E": "3", "3": "E",
    "A": "4", "4": "A",
    "S": "5", "5": "S",
    "G": "6", "6": "G",
    "T": "7", "7": "T",
    "B": "8", "8": "B",
    "Q": "9", "9": "Q",
}

#: Phonetic substitutions that keep the Soundex code stable.  Soundex groups
#: {B,F,P,V}, {C,G,J,K,Q,S,X,Z}, {D,T}, {M,N} and ignores vowels + H/W/Y
#: after the first letter, so swapping those inside a name preserves the
#: code while changing the spelling.
PHONETIC_SUBSTITUTIONS = (
    ("PH", "F"), ("F", "PH"),
    ("CK", "K"), ("K", "CK"),
    ("IE", "EI"), ("EI", "IE"),
    ("EY", "Y"), ("Y", "EY"),
    ("EE", "EA"), ("EA", "EE"),
    ("OU", "OO"), ("OO", "OU"),
    ("AI", "AY"), ("AY", "AI"),
    ("SE", "CE"), ("CE", "SE"),
    ("KS", "X"), ("X", "KS"),
    ("DT", "TT"), ("TT", "DT"),
    ("MN", "NM"),
)

#: Attributes a typo/OCR/phonetic edit may hit (weighted toward names,
#: matching Table 4's "most common attribute" column).
EDITABLE_ATTRIBUTES = (
    "midl_name", "midl_name", "midl_name",
    "last_name", "last_name",
    "first_name", "first_name",
    "street_name", "res_city_desc", "birth_place", "mail_addr1",
)

#: Optional attributes that may be blank or dropped entirely.
BLANKABLE_ATTRIBUTES = (
    "midl_name", "name_sufx", "phone_num", "mail_addr1", "mail_city",
    "mail_state", "mail_zipcode", "drivers_lic", "street_dir", "birth_place",
)


def apply_typo(value: str, rng: random.Random) -> str:
    """One random character edit: insert, delete, substitute or transpose."""
    if len(value) < 3:  # Table 4 only counts typos in values longer than 2
        return value
    kind = rng.choice(("insert", "delete", "substitute", "transpose"))
    position = rng.randrange(len(value))
    letters = string.ascii_uppercase
    if kind == "insert":
        return value[:position] + rng.choice(letters) + value[position:]
    if kind == "delete":
        return value[:position] + value[position + 1 :]
    if kind == "substitute":
        replacement = rng.choice([ch for ch in letters if ch != value[position]])
        return value[:position] + replacement + value[position + 1 :]
    if position == len(value) - 1:
        position -= 1
    if value[position] == value[position + 1]:
        # Transposing equal neighbours is a no-op; substitute instead.
        replacement = rng.choice([ch for ch in letters if ch != value[position]])
        return value[:position] + replacement + value[position + 1 :]
    return (
        value[:position]
        + value[position + 1]
        + value[position]
        + value[position + 2 :]
    )


def apply_ocr_error(value: str, rng: random.Random) -> str:
    """Replace one confusable character by its OCR lookalike."""
    candidates = [i for i, ch in enumerate(value) if ch in OCR_CONFUSIONS]
    if not candidates:
        return value
    position = rng.choice(candidates)
    return value[:position] + OCR_CONFUSIONS[value[position]] + value[position + 1 :]


def apply_phonetic_error(value: str, rng: random.Random) -> str:
    """Re-spell ``value`` with a Soundex-preserving substitution."""
    options = [
        (pattern, replacement)
        for pattern, replacement in PHONETIC_SUBSTITUTIONS
        if pattern in value[1:]  # keep the first letter (Soundex anchor)
    ]
    if not options:
        return value
    pattern, replacement = rng.choice(options)
    index = value.find(pattern, 1)
    return value[:index] + replacement + value[index + len(pattern) :]


def apply_representation_change(value: str, rng: random.Random) -> str:
    """Vary non-alphabetical separators (hyphen <-> space, add period)."""
    if " " in value and rng.random() < 0.5:
        return value.replace(" ", "-", 1)
    if "-" in value:
        return value.replace("-", " ", 1)
    if " " in value:
        return value.replace(" ", "", 1)
    return value + "."


def apply_token_transposition(value: str, rng: random.Random) -> str:
    """Flip the order of two tokens inside a multi-token value."""
    tokens = value.split()
    if len(tokens) < 2:
        return value
    index = rng.randrange(len(tokens) - 1)
    tokens[index], tokens[index + 1] = tokens[index + 1], tokens[index]
    return " ".join(tokens)


class TranscriptionErrors:
    """Applies the configured error families to a person record.

    The record passed to :meth:`transcribe` is mutated *copy*, never the
    voter's true values; the caller keeps the truth for future
    re-registrations.
    """

    def __init__(self, rates: ErrorRates, rng: random.Random) -> None:
        rates.validate()
        self.rates = rates
        self.rng = rng

    def transcribe(self, record: Dict[str, str]) -> Dict[str, str]:
        """Return a recorded (possibly corrupted) copy of ``record``."""
        recorded = dict(record)
        rng = self.rng
        rates = self.rates

        for attribute in BLANKABLE_ATTRIBUTES:
            if recorded.get(attribute) and rng.random() < rates.optional_blank:
                recorded[attribute] = ""

        if rng.random() < rates.missing:
            attribute = rng.choice(BLANKABLE_ATTRIBUTES)
            recorded[attribute] = ""

        if rng.random() < rates.abbreviate_middle and recorded.get("midl_name"):
            initial = recorded["midl_name"][0]
            recorded["midl_name"] = initial + ("." if rng.random() < 0.3 else "")

        if rng.random() < rates.typo:
            self._edit(recorded, apply_typo)
        if rng.random() < rates.ocr:
            self._edit(recorded, apply_ocr_error)
        if rng.random() < rates.phonetic:
            self._edit(recorded, apply_phonetic_error)
        if rng.random() < rates.representation:
            self._edit(recorded, apply_representation_change)
        if rng.random() < rates.token_transposition:
            self._transpose_tokens(recorded)

        if rng.random() < rates.value_confusion:
            self._confuse_values(recorded)
        if rng.random() < rates.integrated_value:
            self._integrate_value(recorded)
        if rng.random() < rates.scattered_value:
            self._scatter_values(recorded)
        if rng.random() < rates.outlier:
            self._outlier(recorded)
        return recorded

    def _transpose_tokens(self, record: Dict[str, str]) -> None:
        """Flip token order in a multi-token value (race_desc, birth_place ...)."""
        candidates = [
            attribute
            for attribute in ("race_desc", "ethnic_desc", "birth_place", "first_name")
            if len((record.get(attribute) or "").split()) >= 2
        ]
        if not candidates:
            return
        attribute = self.rng.choice(candidates)
        record[attribute] = apply_token_transposition(record[attribute], self.rng)

    def _edit(self, record: Dict[str, str], editor) -> None:
        attribute = self.rng.choice(EDITABLE_ATTRIBUTES)
        value = record.get(attribute)
        if value:
            record[attribute] = editor(value, self.rng)

    def _confuse_values(self, record: Dict[str, str]) -> None:
        pair = self.rng.choice(
            (("first_name", "midl_name"), ("first_name", "last_name"), ("midl_name", "last_name"))
        )
        left, right = pair
        if record.get(left) and record.get(right):
            record[left], record[right] = record[right], record[left]

    def _integrate_value(self, record: Dict[str, str]) -> None:
        middle = record.get("midl_name")
        if not middle:
            return
        target = self.rng.choice(("first_name", "last_name"))
        if record.get(target):
            if target == "first_name":
                record[target] = f"{record[target]} {middle}"
            else:
                record[target] = f"{middle} {record[target]}"
            record["midl_name"] = ""

    def _scatter_values(self, record: Dict[str, str]) -> None:
        middle, last = record.get("midl_name"), record.get("last_name")
        if not middle or not last:
            return
        # Re-distribute the token set across the two attributes differently.
        record["midl_name"] = f"{middle} {last}".split()[0]
        record["last_name"] = " ".join(f"{middle} {last}".split()[1:]) or last

    def _outlier(self, record: Dict[str, str]) -> None:
        kind = self.rng.choice(("age", "symbol"))
        if kind == "age":
            # Plant an implausible age; the snapshot writer reports it
            # instead of the computed age (a corrupted birth date on file).
            record["age"] = str(self.rng.choice((999, 5069, 1200, 420)))
        else:
            attribute = self.rng.choice(("first_name", "midl_name"))
            if record.get(attribute):
                record[attribute] = (
                    record[attribute][:1]
                    + self.rng.choice("Æ@#*%0")
                    + record[attribute][1:]
                )
