"""The register simulator: population life cycle + snapshot emission."""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set

from repro.votersim.config import SimulationConfig
from repro.votersim.population import PopulationFactory, Voter
from repro.votersim.snapshots import Snapshot, build_record, write_snapshot_tsv


class VoterRegisterSimulator:
    """Simulates the historical NC voter register.

    Usage::

        sim = VoterRegisterSimulator(SimulationConfig(initial_voters=1000))
        snapshots = list(sim.run())

    The simulation is fully deterministic given ``config.seed``.  Ground
    truth the paper does not have — which NCIDs were reused and therefore
    form *unsound* clusters — is exposed through :attr:`unsound_ncids` so the
    test suite can validate the plausibility scoring.
    """

    def __init__(self, config: Optional[SimulationConfig] = None) -> None:
        self.config = config or SimulationConfig()
        self.config.validate()
        self.rng = random.Random(self.config.seed)
        self.factory = PopulationFactory(self.config, self.rng)
        #: All voter entities ever created, in creation order.
        self.voters: List[Voter] = []
        #: ncid -> number of distinct persons that carried it.
        self._persons_per_ncid: Dict[str, int] = {}
        self._started = False

    # ------------------------------------------------------------ population

    @property
    def unsound_ncids(self) -> Set[str]:
        """NCIDs carried by more than one person (ground-truth unsound)."""
        return {ncid for ncid, count in self._persons_per_ncid.items() if count > 1}

    def _add_voter(self, year: int, registration_year: Optional[int] = None) -> Voter:
        ncid = self.factory.next_ncid()
        person_seq = self._persons_per_ncid.get(ncid, 0)
        relative = None
        if self.voters and self.rng.random() < self.config.household_rate:
            # A household member of an existing voter: same surname and
            # address, different person — a deliberately hard non-duplicate.
            relative = self.rng.choice(self.voters)
        voter = self.factory.make_voter(
            year,
            ncid=ncid,
            person_seq=person_seq,
            registration_year=registration_year,
            relative=relative,
        )
        self._persons_per_ncid[ncid] = person_seq + 1
        self.voters.append(voter)
        return voter

    def _bootstrap(self) -> None:
        # The initial population registered over the two decades before the
        # first snapshot, so every one of them appears in it.
        year = self.config.start_year
        for _ in range(self.config.initial_voters):
            backdated = year - 1 - self.rng.randrange(0, 20)
            self._add_voter(year, registration_year=backdated)
        self._started = True

    # ---------------------------------------------------------------- events

    def _advance(self, year: int, fraction_of_year: float) -> None:
        """Apply life-cycle events over ``fraction_of_year`` ending in ``year``."""
        config = self.config
        rng = self.rng
        active = [voter for voter in self.voters if not voter.removed]

        for voter in active:
            if rng.random() < config.removal_rate * fraction_of_year:
                self.factory.mark_removed(voter, year)
                continue
            current = voter.current
            if current.status_cd == "A":
                if rng.random() < config.inactivity_rate * fraction_of_year:
                    # List maintenance: confirmation card not returned.
                    current.status_cd, current.status_desc = "I", "INACTIVE"
                    current.reason_cd = "IN"
                    current.reason_desc = "CONFIRMATION NOT RETURNED"
            elif current.status_cd == "I":
                if rng.random() < config.reactivation_rate * fraction_of_year:
                    # The voter voted again: back to active.
                    current.status_cd, current.status_desc = "A", "ACTIVE"
                    current.reason_cd = ""
                    current.reason_desc = ""
            if rng.random() < config.move_rate * fraction_of_year:
                self._move(voter, year)
            if rng.random() < config.name_change_rate * fraction_of_year:
                self._change_name(voter, year)
            if rng.random() < config.party_change_rate * fraction_of_year:
                self._change_party(voter)

        newcomers = int(round(len(active) * config.new_voter_rate * fraction_of_year))
        for _ in range(newcomers):
            self._add_voter(year)

    def _move(self, voter: Voter, year: int) -> None:
        """Move the voter; cross-county moves retire the old registration."""
        new_address = self.factory.make_address()
        old = voter.current
        if new_address.county_id != old.address.county_id:
            old.status_cd, old.status_desc = "R", "REMOVED"
            old.reason_cd = "RM"
            old.reason_desc = "REMOVED MOVED FROM COUNTY"
            old.cancellation_dt = f"{year}-{self.rng.randrange(1, 13):02d}-{self.rng.randrange(1, 28):02d}"
            fresh = self.rng.random() < self.config.reentry_rate
            self.factory.register(voter, year, fresh_form=fresh, address=new_address)
        else:
            old.address = new_address

    def _change_name(self, voter: Voter, year: int) -> None:
        """Change the true last name (marriage etc.) and re-register."""
        from repro.votersim import names as name_pools

        new_last = self.rng.choice(name_pools.LAST_NAMES)
        if new_last == voter.last_name:
            return
        if self.rng.random() < 0.25:
            # Keep the maiden name as the middle name (a common pattern the
            # paper's Figure 3 cluster DB175272 shows).
            voter.midl_name = voter.last_name
        voter.last_name = new_last
        fresh = self.rng.random() < self.config.reentry_rate
        self.factory.register(voter, year, fresh_form=True if fresh else False)

    def _change_party(self, voter: Voter) -> None:
        from repro.votersim import names as name_pools

        party_cd, party_desc, _weight = name_pools.PARTIES[
            self.rng.randrange(len(name_pools.PARTIES))
        ]
        voter.party_cd, voter.party_desc = party_cd, party_desc
        current = voter.current
        current.recorded["party_cd"] = party_cd
        current.recorded["party_desc"] = party_desc

    # ------------------------------------------------------------- snapshots

    def _emit(self, date: str) -> Snapshot:
        config = self.config
        year = int(date[:4])
        era = (year - config.start_year) // config.format_era_length
        padded = self.rng.random() < config.padded_snapshot_rate
        records = []
        for voter in self.voters:
            registrations = voter.registrations
            for index, registration in enumerate(registrations):
                is_current = index == len(registrations) - 1
                if not is_current:
                    # Retired registrations linger for a while, then vanish
                    # from later snapshots (they were purged server-side).
                    cancelled_year = int(registration.cancellation_dt[:4] or year)
                    if year - cancelled_year > 4:
                        continue
                if registration.registr_dt[:7] > date[:7]:
                    continue  # registered after this snapshot
                records.append(build_record(voter, registration, date, era, padded))
        return Snapshot(date=date, records=records)

    def run(self) -> Iterator[Snapshot]:
        """Yield every snapshot in chronological order."""
        if not self._started:
            self._bootstrap()
        dates = self.config.snapshot_dates()
        previous_date = None
        for date in dates:
            if previous_date is not None:
                fraction = _year_fraction(previous_date, date)
                self._advance(int(date[:4]), fraction)
            previous_date = date
            yield self._emit(date)

    def run_to_directory(self, directory: Path) -> List[Path]:
        """Run the simulation, writing one TSV per snapshot; returns paths."""
        directory = Path(directory)
        paths = []
        for snapshot in self.run():
            path = directory / f"ncvoter_{snapshot.date}.tsv"
            write_snapshot_tsv(snapshot, path)
            paths.append(path)
        return paths


def _year_fraction(start: str, end: str) -> float:
    """Approximate fraction of a year between two ISO dates."""
    start_value = int(start[:4]) * 12 + int(start[5:7])
    end_value = int(end[:4]) * 12 + int(end[5:7])
    return max(1, end_value - start_value) / 12.0
