"""The synthetic voter population and its life cycle.

Every voter has *true* attributes (who the person actually is) and one or
more *registrations* — what the register recorded about them at some point
in time.  Recorded values are produced by transcribing the true values
through the error model once per (re-)registration and then persist
unchanged until the next re-registration.  This separation is what creates
both the huge exact-duplicate overlap between snapshots and the realistic
persistent errors and outdated values the paper exploits.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Tuple

from repro.votersim import names as name_pools
from repro.votersim.config import SimulationConfig
from repro.votersim.errors import TranscriptionErrors
from repro.votersim.geography import (
    COUNTIES,
    STREET_DIRECTIONS,
    STREET_NAMES,
    STREET_TYPES,
)

STATUS_ACTIVE = ("A", "ACTIVE")
STATUS_INACTIVE = ("I", "INACTIVE")
STATUS_REMOVED = ("R", "REMOVED")

REMOVAL_REASONS = (
    ("RM", "REMOVED MOVED FROM COUNTY"),
    ("RD", "REMOVED DECEASED"),
    ("RF", "REMOVED FELONY CONVICTION"),
    ("RL", "REMOVED LIST MAINTENANCE"),
)


@dataclasses.dataclass
class Address:
    """A residence address plus the county that determines the districts."""

    county_id: int
    county_name: str
    city: str
    zip_code: str
    house_num: str
    street_dir: str
    street_name: str
    street_type: str


@dataclasses.dataclass
class Registration:
    """One register entry of a voter (the recorded, possibly erroneous view).

    ``recorded`` maps person-attribute names to recorded string values.
    ``age_outlier`` holds an implausible age the register will report instead
    of the computed one (a corrupted birth date on file).
    """

    voter_reg_num: str
    registr_dt: str
    address: Address
    recorded: Dict[str, str]
    status_cd: str = "A"
    status_desc: str = "ACTIVE"
    reason_cd: str = ""
    reason_desc: str = ""
    cancellation_dt: str = ""
    age_outlier: Optional[int] = None


@dataclasses.dataclass
class Voter:
    """A real-world person behind one NCID (one gold-standard cluster).

    ``person_seq`` distinguishes the different *persons* that ever carried
    this NCID: it starts at 0 and increments when the NCID is (incorrectly)
    reassigned.  Clusters with more than one person are *unsound* — the
    simulator records this so tests can check the plausibility scoring
    against ground truth the paper does not have.
    """

    ncid: str
    person_seq: int
    birth_year: int
    sex_code: str
    first_name: str
    midl_name: str
    last_name: str
    name_sufx: str
    race_code: str
    race_desc: str
    ethnic_code: str
    ethnic_desc: str
    birth_place: str
    party_cd: str
    party_desc: str
    phone_num: str
    drivers_lic: str
    registrations: List[Registration] = dataclasses.field(default_factory=list)
    removed: bool = False

    @property
    def current(self) -> Registration:
        """The voter's most recent registration."""
        return self.registrations[-1]

    @property
    def sex_desc(self) -> str:
        """Human-readable sex description for the code."""
        return {"M": "MALE", "F": "FEMALE", "U": "UNDESIGNATED"}[self.sex_code]

    def true_person_values(self) -> Dict[str, str]:
        """The voter's true personal values (pre-transcription)."""
        return {
            "first_name": self.first_name,
            "midl_name": self.midl_name,
            "last_name": self.last_name,
            "name_sufx": self.name_sufx,
            "sex_code": self.sex_code,
            "sex": self.sex_desc,
            "race_code": self.race_code,
            "race_desc": self.race_desc,
            "ethnic_code": self.ethnic_code,
            "ethnic_desc": self.ethnic_desc,
            "birth_place": self.birth_place,
            "party_cd": self.party_cd,
            "party_desc": self.party_desc,
            "phone_num": self.phone_num,
            "drivers_lic": self.drivers_lic,
        }


def _weighted_choice(rng: random.Random, table: Tuple[Tuple, ...]) -> Tuple:
    weights = [row[-1] for row in table]
    return rng.choices(table, weights=weights, k=1)[0]


class PopulationFactory:
    """Creates voters, addresses and registrations deterministically."""

    def __init__(self, config: SimulationConfig, rng: random.Random) -> None:
        self.config = config
        self.rng = rng
        self.errors = TranscriptionErrors(config.error_rates, rng)
        self._ncid_counter = 0
        self._reg_counter = 0
        #: NCIDs of removed voters eligible for (incorrect) reassignment.
        self.reusable_ncids: List[str] = []

    def next_ncid(self) -> str:
        """Allocate a fresh NCID, or rarely reuse a removed voter's one."""
        if self.reusable_ncids and self.rng.random() < 0.5:
            return self.reusable_ncids.pop(0)
        self._ncid_counter += 1
        prefix = self.rng.choice(("AA", "AB", "BY", "CW", "DB", "DR", "EH"))
        return f"{prefix}{100000 + self._ncid_counter}"

    def next_reg_num(self) -> str:
        """Allocate the next voter registration number."""
        self._reg_counter += 1
        return f"{self._reg_counter:09d}"

    def make_address(self) -> Address:
        """Generate a random residence address."""
        county_id, county_name, city, zip_prefix = self.rng.choice(COUNTIES)
        return Address(
            county_id=county_id,
            county_name=county_name,
            city=city,
            zip_code=f"{zip_prefix}{self.rng.randrange(100):02d}",
            house_num=str(self.rng.randrange(1, 9999)),
            street_dir=self.rng.choice(STREET_DIRECTIONS),
            street_name=self.rng.choice(STREET_NAMES),
            street_type=self.rng.choice(STREET_TYPES),
        )

    def make_voter(
        self,
        year: int,
        ncid: Optional[str] = None,
        person_seq: int = 0,
        registration_year: Optional[int] = None,
        relative: Optional["Voter"] = None,
    ) -> Voter:
        """Create a new adult voter; ``registration_year`` backdates the
        first registration (used when bootstrapping the initial population,
        whose members registered long before the first snapshot).

        ``relative`` makes the new voter a household member of an existing
        one: same last name, same residence address — a *different* person
        (different NCID, own first name, demographics and age) who is
        deliberately confusable with the relative.  Real voter data is full
        of these hard non-duplicates."""
        rng = self.rng
        sex_code = rng.choices(("F", "M", "U"), weights=(51, 47, 2), k=1)[0]
        if sex_code == "M":
            first = rng.choice(name_pools.MALE_FIRST_NAMES)
        elif sex_code == "F":
            first = rng.choice(name_pools.FEMALE_FIRST_NAMES)
        else:
            first = rng.choice(
                name_pools.MALE_FIRST_NAMES + name_pools.FEMALE_FIRST_NAMES
            )
        if relative is not None:
            race_code, race_desc = relative.race_code, relative.race_desc
            ethnic_code, ethnic_desc = relative.ethnic_code, relative.ethnic_desc
        else:
            race_code, race_desc, _w = _weighted_choice(rng, name_pools.RACES)
            ethnic_code, ethnic_desc, _w = _weighted_choice(
                rng, name_pools.ETHNICITIES
            )
        party_cd, party_desc, _w = _weighted_choice(rng, name_pools.PARTIES)
        has_middle = rng.random() < 0.85
        if relative is not None:
            last_name = relative.last_name
            # spouses are near the relative's age; children 20-40 years off
            if rng.random() < 0.5:
                birth_year = relative.birth_year + rng.randrange(-5, 6)
            else:
                birth_year = relative.birth_year + rng.randrange(20, 41)
            birth_year = min(birth_year, year - 18)
        else:
            last_name = rng.choice(name_pools.LAST_NAMES)
            birth_year = year - rng.randrange(18, 95)
        voter = Voter(
            ncid=ncid or self.next_ncid(),
            person_seq=person_seq,
            birth_year=birth_year,
            sex_code=sex_code,
            first_name=first,
            midl_name=rng.choice(name_pools.MIDDLE_NAMES) if has_middle else "",
            last_name=last_name,
            name_sufx=rng.choice(name_pools.NAME_SUFFIXES),
            race_code=race_code,
            race_desc=race_desc,
            ethnic_code=ethnic_code,
            ethnic_desc=ethnic_desc,
            birth_place=rng.choice(name_pools.BIRTH_PLACES),
            party_cd=party_cd,
            party_desc=party_desc,
            phone_num=f"{rng.randrange(200, 999)}{rng.randrange(2000000, 9999999)}",
            drivers_lic="Y" if rng.random() < 0.9 else "N",
        )
        address = None
        if relative is not None and relative.registrations:
            address = relative.current.address
        self.register(
            voter, registration_year or year, fresh_form=True, address=address
        )
        return voter

    def register(self, voter: Voter, year: int, fresh_form: bool, address: Optional[Address] = None) -> Registration:
        """Append a new registration for ``voter``.

        ``fresh_form=True`` re-transcribes the true values through the error
        model (a new manual form); otherwise the previous recorded values are
        carried over (a clerical copy), with only the address updated.
        """
        rng = self.rng
        if address is None:
            address = voter.registrations[-1].address if voter.registrations else self.make_address()
        if fresh_form or not voter.registrations:
            recorded = self.errors.transcribe(voter.true_person_values())
        else:
            recorded = dict(voter.registrations[-1].recorded)
        age_outlier = None
        if recorded.get("age", "") not in ("", None):
            # The error model may have planted an implausible age marker.
            try:
                age_outlier = int(recorded.pop("age"))
            except ValueError:
                recorded.pop("age", None)
        month = rng.randrange(1, 13)
        day = rng.randrange(1, 28)
        registration = Registration(
            voter_reg_num=self.next_reg_num(),
            registr_dt=f"{year}-{month:02d}-{day:02d}",
            address=address,
            recorded=recorded,
            age_outlier=age_outlier,
        )
        voter.registrations.append(registration)
        return registration

    def mark_removed(self, voter: Voter, year: int) -> None:
        """Flag the voter's current registration as removed."""
        reason_cd, reason_desc = self.rng.choice(REMOVAL_REASONS)
        current = voter.current
        current.status_cd, current.status_desc = STATUS_REMOVED
        current.reason_cd = reason_cd
        current.reason_desc = reason_desc
        current.cancellation_dt = f"{year}-{self.rng.randrange(1, 13):02d}-{self.rng.randrange(1, 28):02d}"
        voter.removed = True
        if self.rng.random() < self.config.ncid_reuse_rate:
            self.reusable_ncids.append(voter.ncid)
