"""Counties, cities, streets and district layouts for the simulator."""

from __future__ import annotations

from typing import Dict, Tuple

#: A representative subset of NC counties: (id, name, main city, zip prefix).
COUNTIES: Tuple[Tuple[int, str, str, str], ...] = (
    (1, "ALAMANCE", "BURLINGTON", "272"),
    (2, "ALEXANDER", "TAYLORSVILLE", "286"),
    (10, "BLADEN", "ELIZABETHTOWN", "283"),
    (12, "BUNCOMBE", "ASHEVILLE", "288"),
    (13, "BURKE", "MORGANTON", "286"),
    (18, "CATAWBA", "HICKORY", "286"),
    (25, "CUMBERLAND", "FAYETTEVILLE", "283"),
    (26, "CURRITUCK", "CURRITUCK", "279"),
    (31, "DURHAM", "DURHAM", "277"),
    (34, "FORSYTH", "WINSTON-SALEM", "271"),
    (36, "GASTON", "GASTONIA", "280"),
    (41, "GUILFORD", "GREENSBORO", "274"),
    (49, "IREDELL", "STATESVILLE", "286"),
    (51, "JOHNSTON", "SMITHFIELD", "275"),
    (60, "MECKLENBURG", "CHARLOTTE", "282"),
    (63, "NASH", "NASHVILLE", "278"),
    (64, "NEW HANOVER", "WILMINGTON", "284"),
    (65, "NORTHAMPTON", "JACKSON", "278"),
    (67, "ONSLOW", "JACKSONVILLE", "285"),
    (68, "ORANGE", "CHAPEL HILL", "275"),
    (74, "PITT", "GREENVILLE", "278"),
    (76, "RANDOLPH", "ASHEBORO", "272"),
    (78, "ROBESON", "LUMBERTON", "283"),
    (79, "ROCKINGHAM", "WENTWORTH", "273"),
    (80, "ROWAN", "SALISBURY", "281"),
    (86, "STANLY", "ALBEMARLE", "280"),
    (90, "UNION", "MONROE", "281"),
    (92, "WAKE", "RALEIGH", "276"),
    (95, "WATAUGA", "BOONE", "286"),
    (96, "WAYNE", "GOLDSBORO", "275"),
)

STREET_NAMES = (
    "MAIN", "OAK", "MAPLE", "ELM", "CEDAR", "PINE", "WALNUT", "CHURCH",
    "MILL", "RIVER", "LAKE", "HILL", "PARK", "SPRING", "FOREST", "DOGWOOD",
    "MAGNOLIA", "HOLLY", "LAUREL", "SYCAMORE", "CHESTNUT", "HICKORY",
    "BIRCH", "WILLOW", "ASHE", "FRANKLIN", "WASHINGTON", "JEFFERSON",
    "MADISON", "MONROE", "JACKSON", "HARRISON", "TYLER", "POLK", "GRANT",
    "MEADOW", "SUNSET", "RIDGE", "VALLEY", "CREEK", "JRS RIDGE", "GLEN",
    "FOX RUN", "DEER PATH", "QUAIL HOLLOW", "PEACHTREE", "AZALEA",
)

STREET_TYPES = ("RD", "ST", "AVE", "DR", "LN", "CT", "PL", "WAY", "BLVD", "CIR")

STREET_DIRECTIONS = ("", "", "", "", "", "", "N", "S", "E", "W")


def county_districts(county_id: int) -> Dict[str, int]:
    """Deterministic district numbers for a county.

    Real district assignments depend on the address; the simulator derives
    them from the county id so they are stable per voter residence and
    plausible in range.
    """
    return {
        "cong_dist": county_id % 13 + 1,  # 13 congressional districts
        "super_court": county_id % 30 + 1,
        "judic_dist": county_id % 30 + 1,
        "nc_senate": county_id % 50 + 1,
        "nc_house": county_id % 120 + 1,
        "county_commiss": county_id % 7 + 1,
        "township": county_id % 12 + 1,
        "school_dist": county_id % 9 + 1,
        "fire_dist": county_id % 15 + 1,
        "water_dist": county_id % 6 + 1,
        "sewer_dist": county_id % 6 + 1,
        "sanit_dist": county_id % 4 + 1,
        "rescue_dist": county_id % 8 + 1,
        "munic_dist": county_id % 10 + 1,
        "dist_1": county_id % 5 + 1,
    }


def counties_by_id() -> Dict[int, Tuple[int, str, str, str]]:
    """County tuples keyed by county id."""
    return {county[0]: county for county in COUNTIES}
