"""A generative simulator of the historical North Carolina voter register.

The paper's input is the real NC voter registration dataset: 40+ TSV
snapshots published between 2005 and 2020 with 90 attributes and > 500 M
records.  That data is not redistributable here, so this package simulates
the *process that produced it* (see DESIGN.md §2 for the substitution
argument):

* a persistent population of voters with stable NCIDs (:mod:`population`);
* life-cycle events — registrations, moves, marriages, party changes,
  removals — that make values go stale (:mod:`events`);
* manual-form transcription errors baked into the register at registration
  time and persisting across snapshots: typos, OCR confusions, phonetic
  misspellings, abbreviations, missing values, attribute confusions
  (:mod:`errors`);
* per-era rendering drift of district attributes and whitespace padding
  (:mod:`formats`);
* rare NCID reuse producing *unsound* clusters like Figure 3
  (:mod:`population`);
* snapshot serialisation to TSV files with the full 90-attribute schema
  (:mod:`snapshots`, :mod:`schema`).

The central entry point is :class:`VoterRegisterSimulator`.
"""

from __future__ import annotations

from repro.votersim.config import ErrorRates, SimulationConfig
from repro.votersim.schema import (
    ALL_ATTRIBUTES,
    DISTRICT_ATTRIBUTES,
    ELECTION_ATTRIBUTES,
    META_ATTRIBUTES,
    PERSON_ATTRIBUTES,
    attribute_group,
)
from repro.votersim.simulator import VoterRegisterSimulator
from repro.votersim.snapshots import Snapshot, write_snapshot_tsv, read_snapshot_tsv

__all__ = [
    "SimulationConfig",
    "ErrorRates",
    "VoterRegisterSimulator",
    "Snapshot",
    "write_snapshot_tsv",
    "read_snapshot_tsv",
    "ALL_ATTRIBUTES",
    "PERSON_ATTRIBUTES",
    "DISTRICT_ATTRIBUTES",
    "ELECTION_ATTRIBUTES",
    "META_ATTRIBUTES",
    "attribute_group",
]
