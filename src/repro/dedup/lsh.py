"""MinHash–LSH candidate generation: sub-quadratic, typo-robust blocking.

Sorted Neighborhood and key blocking — the candidate generators the
paper's Section 6.5 evaluation uses — are effectively quadratic in dense
registers (every window/block pair is emitted) and blind to typo-heavy
near-duplicates whose corrupted sort keys land them far apart.  This
module adds the vector path from ROADMAP item 3: records are shingled
into char-n-gram sets (:mod:`repro.dedup.embeddings`), MinHashed with
``bands * rows`` seeded universal-hash permutations, and bucketed by
band — two records become a candidate pair iff at least one band of
their signatures collides, which happens with probability
``1 - (1 - j**rows)**bands`` for shingle-Jaccard ``j`` (the classic
S-curve).  Candidate volume scales with the number of *colliding*
records, not with ``n**2``.

The module speaks the packed-pair dialect of :mod:`repro.dedup.pipeline`
end to end:

* :func:`iter_lsh_keys` streams canonical ``i < j`` packed 64-bit pair
  keys out of the band buckets, for :func:`~repro.dedup.pipeline.collect_candidates`
  to union and de-duplicate exactly like an SNM or blocking pass;
* oversized buckets (frequent-value pile-ups: empty names, common
  cities) are skipped with **explicit accounting** — bucket counts, a
  bucket-size distribution and the dropped pair count land in
  :class:`BucketStats`, mirroring the no-silent-caps contract of
  :class:`repro.dedup.blocking.BlockingStats`;
* signature computation is sharded over
  :func:`repro.core.parallel.run_shards` (contiguous record slices, the
  merge is by position) — a pure per-record function, so any
  ``(workers, shards)`` configuration is bit-identical and
  ``repro.sanitizers.determinism_check`` passes at (1,1)/(2,4)/(4,8);
* an optional exact TF-IDF cosine prefilter
  (:func:`repro.dedup.embeddings.cosine_prefilter`) thins the bucket
  pairs before the record matcher, with the filtered count reported —
  never silently.

Every hash is seeded and explicit (blake2b for the 64-bit shingle hash,
``(a * x + b) mod p`` universal hashing over the Mersenne prime
``2**61 - 1`` for the permutations); nothing depends on
``PYTHONHASHSEED``, process identity or iteration order of a set.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.parallel import effective_worker_count, run_shards
from repro.dedup.embeddings import (
    DEFAULT_NGRAM,
    record_shingles,
    shingle_record,
    tfidf_vectors,
)
from repro.dedup.pipeline import (
    CandidateStats,
    PassStats,
    _check_packable,
    collect_candidates,
)

#: One record's MinHash signature (``bands * rows`` minima), or ``None``
#: for a record with no shingles (nothing to hash — it lands in no
#: bucket, exactly like an empty blocking key blocks with nobody).
Signature = Optional[Tuple[int, ...]]

#: Mersenne prime for the universal hash family ``(a * x + b) mod p``.
_PRIME = (1 << 61) - 1

#: Default LSH geometry: 16 bands of 4 rows ≈ a 0.5 shingle-Jaccard
#: knee — pairs at j = 0.6 collide with p ≈ 0.90, pairs at j = 0.2 with
#: p ≈ 0.025 — tuned for typo-heavy voter records (see
#: ``docs/performance.md``, Layer 7, for the tuning table).
DEFAULT_BANDS = 16
DEFAULT_ROWS = 4

#: Default permutation seed (the paper's snapshot date, like the bench
#: seeds).  Signatures are a pure function of (record, seed, geometry).
DEFAULT_SEED = 20210323

#: Buckets larger than this are skipped (with accounting): a bucket of
#: ``k`` records emits ``k * (k - 1) / 2`` pairs, so one frequent-value
#: pile-up would reintroduce the quadratic blow-up LSH exists to avoid.
DEFAULT_MAX_BUCKET_SIZE = 500


@dataclasses.dataclass
class BucketStats:
    """What one LSH pass's band buckets did — including what they dropped.

    The LSH sibling of :class:`repro.dedup.blocking.BlockingStats`, with
    the same no-silent-caps contract: ``buckets_skipped`` counts the
    buckets over ``max_bucket_size``, ``pairs_dropped`` the candidate
    pairs those buckets would have emitted, and ``pairs_filtered`` the
    pairs the optional cosine prefilter refused to forward.  The size
    distribution (``bucket_sizes``: size → bucket count, across all
    bands) makes skew observable so callers can re-tune ``bands`` /
    ``rows`` / ``max_bucket_size`` instead of guessing.
    """

    buckets_total: int = 0
    buckets_skipped: int = 0
    records_bucketed: int = 0
    pairs_emitted: int = 0
    pairs_dropped: int = 0
    pairs_filtered: int = 0
    bucket_sizes: Dict[int, int] = dataclasses.field(default_factory=dict)

    def observe(self, size: int) -> None:
        """Record one bucket of ``size`` members in the distribution."""
        self.buckets_total += 1
        self.records_bucketed += size
        self.bucket_sizes[size] = self.bucket_sizes.get(size, 0) + 1

    @property
    def max_bucket(self) -> int:
        """The largest bucket seen (0 when no records bucketed)."""
        return max(self.bucket_sizes) if self.bucket_sizes else 0

    def merge(self, other: "BucketStats") -> None:
        """Accumulate another pass's counters into this one."""
        self.buckets_total += other.buckets_total
        self.buckets_skipped += other.buckets_skipped
        self.records_bucketed += other.records_bucketed
        self.pairs_emitted += other.pairs_emitted
        self.pairs_dropped += other.pairs_dropped
        self.pairs_filtered += other.pairs_filtered
        for size, count in other.bucket_sizes.items():
            self.bucket_sizes[size] = self.bucket_sizes.get(size, 0) + count

    def histogram(self) -> List[Tuple[int, int]]:
        """The bucket-size distribution as sorted ``(size, count)`` rows."""
        return sorted(self.bucket_sizes.items())

    def render(self) -> str:
        """One-line human-readable summary (CLI surfacing)."""
        line = (
            f"lsh buckets: {self.buckets_total} "
            f"(max size {self.max_bucket})"
        )
        if self.buckets_skipped:
            line += (
                f" [SKIPPED {self.buckets_skipped} oversized bucket(s), "
                f"{self.pairs_dropped} pairs dropped]"
            )
        if self.pairs_filtered:
            line += f" [{self.pairs_filtered} pairs below cosine floor]"
        return line


@dataclasses.dataclass
class LshPassStats(PassStats):
    """A :class:`~repro.dedup.pipeline.PassStats` carrying bucket detail."""

    buckets: Optional[BucketStats] = None


def permutation_params(count: int, seed: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """``count`` seeded universal-hash parameter pairs ``(a, b)``.

    Drawn from a :class:`random.Random` seeded with ``seed`` (explicitly
    seeded RNG — deterministic across processes and runs): ``a`` uniform
    in ``[1, p - 1]``, ``b`` uniform in ``[0, p - 1]`` over the Mersenne
    prime ``p = 2**61 - 1``.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = random.Random(seed)
    a_params = tuple(rng.randrange(1, _PRIME) for _ in range(count))
    b_params = tuple(rng.randrange(0, _PRIME) for _ in range(count))
    return a_params, b_params


def _shingle_hash(shingle: str) -> int:
    """A stable 64-bit hash of one shingle (blake2b, process-independent)."""
    return int.from_bytes(
        hashlib.blake2b(shingle.encode("utf-8"), digest_size=8).digest(), "big"
    )


def _signature_shard(
    records: Sequence[Dict[str, str]],
    attributes: Tuple[str, ...],
    ngram: int,
    a_params: Tuple[int, ...],
    b_params: Tuple[int, ...],
) -> List[Signature]:
    """Worker: MinHash signatures of one contiguous record slice.

    Pure — signatures depend only on the slice's records and the hash
    parameters, so :func:`repro.core.parallel.run_shards` may retry or
    degrade this worker freely and every ``(workers, shards)`` merge is
    bit-identical.  Per-shingle hash vectors are memoised in a local
    dict (voter values repeat heavily within a slice); the per-record
    signature is the elementwise minimum over its shingles' vectors.
    """
    vector_cache: Dict[str, Tuple[int, ...]] = {}
    signatures: List[Signature] = []
    params = tuple(zip(a_params, b_params))
    for record in records:
        shingles = shingle_record(record, attributes, ngram)
        if not shingles:
            signatures.append(None)
            continue
        vectors = []
        for shingle in shingles:
            vector = vector_cache.get(shingle)
            if vector is None:
                base = _shingle_hash(shingle)
                vector = tuple((a * base + b) % _PRIME for a, b in params)
                vector_cache[shingle] = vector
            vectors.append(vector)
        if len(vectors) == 1:
            signatures.append(vectors[0])
        else:
            signatures.append(tuple(map(min, *vectors)))
    return signatures


def minhash_signatures(
    records: Sequence[Dict[str, str]],
    attributes: Sequence[str],
    *,
    bands: int = DEFAULT_BANDS,
    rows: int = DEFAULT_ROWS,
    ngram: int = DEFAULT_NGRAM,
    seed: int = DEFAULT_SEED,
    shards: int = 1,
    max_workers: Optional[int] = None,
    max_retries: int = 2,
    timeout: Optional[float] = None,
    backoff: float = 0.1,
) -> List[Signature]:
    """One ``bands * rows`` MinHash signature per record, optionally sharded.

    ``max_workers=0``/``None`` computes in-process.  With workers, the
    records split into ``shards`` contiguous slices that fan out over
    :func:`repro.core.parallel.run_shards` (same retry / backoff /
    degradation contract as pair scoring) and merge back by position —
    the slice boundaries depend only on ``len(records)`` and ``shards``,
    and each signature only on its record, so every configuration
    returns the identical list.
    """
    if bands < 1 or rows < 1:
        raise ValueError(f"bands and rows must be >= 1, got {bands}x{rows}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    a_params, b_params = permutation_params(bands * rows, seed)
    attribute_tuple = tuple(attributes)
    max_workers = effective_worker_count(max_workers, label="minhash signatures")
    record_count = len(records)
    if not max_workers or shards == 1 or record_count < 2:
        return _signature_shard(records, attribute_tuple, ngram, a_params, b_params)
    records_list = list(records)
    bounds = [
        (shard * record_count // shards, (shard + 1) * record_count // shards)
        for shard in range(shards)
    ]
    shard_results = run_shards(
        _signature_shard,
        [
            (records_list[lo:hi], attribute_tuple, ngram, a_params, b_params)
            for lo, hi in bounds
        ],
        max_workers,
        max_retries=max_retries,
        timeout=timeout,
        backoff=backoff,
        label="minhash signatures",
    )
    signatures: List[Signature] = []
    for result in shard_results:
        signatures.extend(result)
    return signatures


def iter_lsh_keys(
    signatures: Sequence[Signature],
    record_count: int,
    *,
    bands: int = DEFAULT_BANDS,
    rows: int = DEFAULT_ROWS,
    max_bucket_size: int = DEFAULT_MAX_BUCKET_SIZE,
    stats: Optional[BucketStats] = None,
) -> Iterator[int]:
    """One banded-LSH pass as a stream of packed pair keys.

    Bucket membership lists are built in record-id order (band by band,
    records in input order), so the nested emission yields canonical
    ``i < j`` keys directly — the same invariant as
    :func:`~repro.dedup.pipeline.iter_blocking_keys`.  A pair colliding
    in several bands is emitted once per band; the consuming
    ``collect_candidates`` set collapses the duplicates (and counts them
    as emitted-but-not-new).  When ``stats`` is given it is filled
    in-place, including the bucket-size distribution and the oversized
    skips — dropped pairs are never silent.
    """
    if max_bucket_size < 2:
        raise ValueError(f"max_bucket_size must be >= 2, got {max_bucket_size}")
    _check_packable(record_count)
    buckets: Dict[Tuple[int, Tuple[int, ...]], List[int]] = {}
    for record_id, signature in enumerate(signatures):
        if signature is None:
            continue
        for band in range(bands):
            band_key = (band, signature[band * rows : (band + 1) * rows])
            buckets.setdefault(band_key, []).append(record_id)
    for members in buckets.values():
        size = len(members)
        if stats is not None:
            stats.observe(size)
        if size < 2:
            continue
        if size > max_bucket_size:
            if stats is not None:
                stats.buckets_skipped += 1
                stats.pairs_dropped += size * (size - 1) // 2
            continue
        if stats is not None:
            stats.pairs_emitted += size * (size - 1) // 2
        for position, left in enumerate(members):
            base = left * record_count
            for other_position in range(position + 1, size):
                yield base + members[other_position]


def lsh_candidates(
    records: Sequence[Dict[str, str]],
    attributes: Sequence[str],
    *,
    bands: int = DEFAULT_BANDS,
    rows: int = DEFAULT_ROWS,
    ngram: int = DEFAULT_NGRAM,
    seed: int = DEFAULT_SEED,
    max_bucket_size: int = DEFAULT_MAX_BUCKET_SIZE,
    cosine_floor: float = 0.0,
    shards: int = 1,
    max_workers: Optional[int] = None,
    max_retries: int = 2,
    timeout: Optional[float] = None,
    backoff: float = 0.1,
) -> Tuple[Set[int], CandidateStats]:
    """One MinHash–LSH candidate pass as packed keys with full accounting.

    The LSH counterpart of
    :func:`~repro.dedup.pipeline.sorted_neighborhood_candidates`:
    signatures (optionally sharded over worker processes), band buckets
    streamed through :func:`~repro.dedup.pipeline.collect_candidates`,
    and — when ``cosine_floor > 0`` — an exact TF-IDF cosine prefilter
    over the deduplicated pair set.  The returned
    :class:`~repro.dedup.pipeline.CandidateStats` carries a single
    :class:`LshPassStats` pass whose :class:`BucketStats` exposes the
    bucket-size distribution, oversized skips and filtered pair count.
    Deterministic for every ``(workers, shards)`` configuration.
    """
    record_count = len(records)
    signatures = minhash_signatures(
        records,
        attributes,
        bands=bands,
        rows=rows,
        ngram=ngram,
        seed=seed,
        shards=shards,
        max_workers=max_workers,
        max_retries=max_retries,
        timeout=timeout,
        backoff=backoff,
    )
    bucket_stats = BucketStats()
    stream = iter_lsh_keys(
        signatures,
        record_count,
        bands=bands,
        rows=rows,
        max_bucket_size=max_bucket_size,
        stats=bucket_stats,
    )
    keys, stats = collect_candidates((("lsh", stream),), record_count)
    if cosine_floor > 0.0 and keys:
        vectors = tfidf_vectors(
            records, attributes, ngram, shingles=record_shingles(records, attributes, ngram)
        )
        kept: Set[int] = set()
        cosine = vectors.cosine
        for key in sorted(keys):
            left, right = divmod(key, record_count)
            if cosine(left, right) >= cosine_floor:
                kept.add(key)
        bucket_stats.pairs_filtered = len(keys) - len(kept)
        keys = kept
    emitted = stats.passes[0]
    stats.passes[0] = LshPassStats(
        label="lsh",
        pairs_emitted=emitted.pairs_emitted,
        pairs_new=len(keys),
        blocks_skipped=bucket_stats.buckets_skipped,
        pairs_dropped=bucket_stats.pairs_dropped,
        buckets=bucket_stats,
    )
    return keys, stats


def lsh_band_collisions(
    left: Signature, right: Signature, *, bands: int, rows: int
) -> List[int]:
    """The band indices on which two signatures collide (oracle helper).

    A pair is an LSH candidate iff this list is non-empty (and neither
    bucket was skipped).  Used by the equivalence tests to verify that
    every emitted candidate is justified by an actual band collision —
    never by an implementation accident.
    """
    if left is None or right is None:
        return []
    return [
        band
        for band in range(bands)
        if left[band * rows : (band + 1) * rows]
        == right[band * rows : (band + 1) * rows]
    ]


def estimate_jaccard(left: Signature, right: Signature) -> Optional[float]:
    """The MinHash estimate of shingle-Jaccard: fraction of equal minima."""
    if left is None or right is None or not left:
        return None
    equal = sum(1 for a, b in zip(left, right) if a == b)
    return equal / len(left)
