"""Record similarity: weighted attribute average + 1:1 name matching.

"The similarity of two records was always computed as the weighted average
similarity of their values.  Since we observed that the name values are
often confused between the individual attributes, we matched every
combination of them and used the 1:1 matching with the highest similarity
for aggregation.  To weight the individual attributes we used again their
entropy." (Section 6.5)

Two call forms, bit-identical to each other:

* :meth:`RecordMatcher.similarity` — the per-pair path: strips and
  compares the raw record dicts on every call;
* :meth:`RecordMatcher.prepare` + :meth:`PreparedRecords.pair_similarity`
  — the batch path used by :mod:`repro.dedup.pipeline`: per-record value
  vectors (stripped, interned) are computed **once per record** instead of
  once per pair, and the name-permutation scores come from a per-pair
  score matrix instead of re-resolving the cache inside every permutation.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.heterogeneity import entropy_weights
from repro.textsim import fast
from repro.textsim.cache import LRUCache

SimilarityFn = Callable[[str, str], float]

#: The attribute group matched 1:1 in its best permutation.
DEFAULT_NAME_ATTRIBUTES = ("first_name", "midl_name", "last_name")

#: Shared bounded value-similarity cache.  Detection runs create many
#: matchers over the same snapshot values; a single LRU bounds the total
#: memory (the old per-matcher dicts grew without limit) while still
#: sharing hits across matchers.  Keys carry a per-matcher token so two
#: matchers with different measures can never collide.
#:
#: **Process-local by design**: every worker process spawned by
#: :func:`repro.core.parallel.run_shards` re-imports this module and gets
#: its own empty cache; entries are pure functions of their keys and
#: eviction can never change a result, so nothing a worker caches ever
#: needs to (or can) reach the parent.  This invariant is registered in
#: :data:`repro.analysis.concurrency.PROCESS_LOCAL_CACHES` and asserted
#: by ``tests/dedup/test_cache_isolation.py``.
_SHARED_CACHE: LRUCache = LRUCache(maxsize=131072)

#: Process-local counter namespacing matcher cache keys; only uniqueness
#: within one process matters (see PROCESS_LOCAL_CACHES), never the value.
_matcher_tokens = itertools.count(1)


class PreparedRecords:
    """Per-record prepared value vectors for one matcher (see ``prepare``).

    ``name_values[i]`` / ``other_values[i]`` hold record ``i``'s stripped,
    interned values aligned with the matcher's name attributes and
    (zero-weight-free) other attributes.  Scoring a pair through
    :meth:`pair_similarity` touches only these tuples — the record dicts
    are never consulted again.
    """

    __slots__ = ("matcher", "name_values", "other_values")

    def __init__(
        self,
        matcher: "RecordMatcher",
        name_values: List[Tuple[str, ...]],
        other_values: List[Tuple[str, ...]],
    ) -> None:
        self.matcher = matcher
        self.name_values = name_values
        self.other_values = other_values

    def __len__(self) -> int:
        return len(self.name_values)

    def pair_similarity(self, left_id: int, right_id: int) -> float:
        """Similarity of two prepared records, bit-identical to
        ``matcher.similarity(records[left_id], records[right_id])``."""
        matcher = self.matcher
        if matcher._total_weight == 0:
            return 0.0
        total = 0.0
        if matcher.name_attributes:
            total += matcher._name_assignment_score(
                self.name_values[left_id], self.name_values[right_id]
            )
        value_similarity = matcher._value_similarity
        left_values = self.other_values[left_id]
        right_values = self.other_values[right_id]
        for index, weight in enumerate(matcher._other_weights):
            total += weight * value_similarity(left_values[index], right_values[index])
        return total / matcher._total_weight


class RecordMatcher:
    """Computes record pair similarities for a fixed attribute weighting.

    Parameters
    ----------
    measure:
        Value similarity function (e.g. a :class:`~repro.textsim.MongeElkan`
        instance) — "the same for all attributes" as in the paper.
    weights:
        ``attribute -> weight``; use :meth:`from_records` for entropy
        weights computed over all records including duplicates (the user
        cannot know the duplicates in advance).
    name_attributes:
        Attributes matched in their best 1:1 permutation before
        aggregation; set to ``()`` to disable.
    """

    def __init__(
        self,
        measure: SimilarityFn,
        weights: Dict[str, float],
        name_attributes: Sequence[str] = DEFAULT_NAME_ATTRIBUTES,
    ) -> None:
        if not weights:
            raise ValueError("weights must not be empty")
        self.measure = measure
        self.weights = dict(weights)
        self.name_attributes = tuple(a for a in name_attributes if a in self.weights)
        # Zero-weight attributes are dropped up front: their terms were
        # always skipped, so the (order-preserving) filter keeps the
        # accumulation sequence — and hence every float — unchanged.
        self._other_attributes = tuple(
            a
            for a in self.weights
            if a not in self.name_attributes and self.weights[a] != 0.0
        )
        self._other_weights = tuple(self.weights[a] for a in self._other_attributes)
        self._name_weights = tuple(self.weights[a] for a in self.name_attributes)
        # Hoisted out of similarity(): it was recomputed for every pair.
        self._total_weight = sum(self.weights.values())
        self._cache = _SHARED_CACHE
        self._cache_token = next(_matcher_tokens)

    @classmethod
    def from_records(
        cls,
        records: Sequence[Dict[str, str]],
        attributes: Sequence[str],
        measure: SimilarityFn,
        name_attributes: Sequence[str] = DEFAULT_NAME_ATTRIBUTES,
    ) -> "RecordMatcher":
        """Entropy-weight the attributes from the records themselves."""
        return cls(measure, entropy_weights(records, attributes), name_attributes)

    def _value_similarity(self, left: str, right: str) -> float:
        if left == right:
            return 1.0
        if left <= right:
            key = (self._cache_token, left, right)
        else:
            key = (self._cache_token, right, left)
        cached = self._cache.get(key)
        if cached is None:
            cached = self.measure(key[1], key[2])
            self._cache.put(key, cached)
        return cached

    def _name_assignment_score(
        self, left_values: Sequence[str], right_values: Sequence[str]
    ) -> float:
        """Best 1:1 name permutation score over pre-stripped value tuples.

        Every permutation of the right-hand values is scored against the
        left-hand attribute slots; weights stay attached to the left-hand
        attribute (the column being filled).  The per-slot similarities
        are computed once into a matrix (|names|² measure lookups instead
        of |names|! · |names|), and the accumulation order inside each
        permutation matches the historical per-permutation loop exactly —
        the result is bit-identical.
        """
        weights = self._name_weights
        count = len(weights)
        if left_values == right_values:
            first = left_values[0] if left_values else ""
            if all(value == first for value in left_values):
                # All name values are pairwise equal: every matrix entry is
                # exactly 1.0 for any measure, so every permutation totals
                # the same sum — accumulate it in slot order and exit early.
                total = 0.0
                for weight in weights:
                    total += weight * 1.0
                return total
        value_similarity = self._value_similarity
        scores = [
            [value_similarity(left_value, right_value) for right_value in right_values]
            for left_value in left_values
        ]
        best = -1.0
        for permutation in itertools.permutations(range(count)):
            total = 0.0
            for index in range(count):
                total += weights[index] * scores[index][permutation[index]]
            if total > best:
                best = total
        return best

    def _best_name_assignment(
        self, left: Dict[str, str], right: Dict[str, str]
    ) -> float:
        """Weighted similarity of the best 1:1 name attribute permutation."""
        attributes = self.name_attributes
        left_values = tuple((left.get(a) or "").strip() for a in attributes)
        right_values = tuple((right.get(a) or "").strip() for a in attributes)
        return self._name_assignment_score(left_values, right_values)

    def prepare(self, records: Sequence[Dict[str, str]]) -> PreparedRecords:
        """Precompute per-record value vectors for batch pair scoring.

        Stripping, ``None`` handling and the name-value tuples happen once
        per record here instead of once per pair inside ``similarity``;
        values are interned (:func:`repro.textsim.fast.intern_values`) so
        the equality short-circuits and cache-key comparisons in the hot
        loop compare by pointer in the common case.  Scoring through the
        returned :class:`PreparedRecords` is bit-identical to calling
        :meth:`similarity` on the raw records.
        """
        name_attributes = self.name_attributes
        other_attributes = self._other_attributes
        name_values: List[Tuple[str, ...]] = []
        other_values: List[Tuple[str, ...]] = []
        for record in records:
            name_values.append(
                fast.intern_values(
                    (record.get(a) or "").strip() for a in name_attributes
                )
            )
            other_values.append(
                fast.intern_values(
                    (record.get(a) or "").strip() for a in other_attributes
                )
            )
        return PreparedRecords(self, name_values, other_values)

    def similarity(self, left: Dict[str, str], right: Dict[str, str]) -> float:
        """Weighted average value similarity of two flat records."""
        if self._total_weight == 0:
            return 0.0
        total = 0.0
        if self.name_attributes:
            total += self._best_name_assignment(left, right)
        for index, attribute in enumerate(self._other_attributes):
            total += self._other_weights[index] * self._value_similarity(
                (left.get(attribute) or "").strip(),
                (right.get(attribute) or "").strip(),
            )
        return total / self._total_weight

    def __call__(self, left: Dict[str, str], right: Dict[str, str]) -> float:
        return self.similarity(left, right)
