"""Record similarity: weighted attribute average + 1:1 name matching.

"The similarity of two records was always computed as the weighted average
similarity of their values.  Since we observed that the name values are
often confused between the individual attributes, we matched every
combination of them and used the 1:1 matching with the highest similarity
for aggregation.  To weight the individual attributes we used again their
entropy." (Section 6.5)
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Sequence

from repro.core.heterogeneity import entropy_weights
from repro.textsim.cache import LRUCache

SimilarityFn = Callable[[str, str], float]

#: The attribute group matched 1:1 in its best permutation.
DEFAULT_NAME_ATTRIBUTES = ("first_name", "midl_name", "last_name")

#: Shared bounded value-similarity cache.  Detection runs create many
#: matchers over the same snapshot values; a single LRU bounds the total
#: memory (the old per-matcher dicts grew without limit) while still
#: sharing hits across matchers.  Keys carry a per-matcher token so two
#: matchers with different measures can never collide.
_SHARED_CACHE: LRUCache = LRUCache(maxsize=131072)

_matcher_tokens = itertools.count(1)


class RecordMatcher:
    """Computes record pair similarities for a fixed attribute weighting.

    Parameters
    ----------
    measure:
        Value similarity function (e.g. a :class:`~repro.textsim.MongeElkan`
        instance) — "the same for all attributes" as in the paper.
    weights:
        ``attribute -> weight``; use :meth:`from_records` for entropy
        weights computed over all records including duplicates (the user
        cannot know the duplicates in advance).
    name_attributes:
        Attributes matched in their best 1:1 permutation before
        aggregation; set to ``()`` to disable.
    """

    def __init__(
        self,
        measure: SimilarityFn,
        weights: Dict[str, float],
        name_attributes: Sequence[str] = DEFAULT_NAME_ATTRIBUTES,
    ) -> None:
        if not weights:
            raise ValueError("weights must not be empty")
        self.measure = measure
        self.weights = dict(weights)
        self.name_attributes = tuple(a for a in name_attributes if a in self.weights)
        self._other_attributes = tuple(
            a for a in self.weights if a not in self.name_attributes
        )
        self._cache = _SHARED_CACHE
        self._cache_token = next(_matcher_tokens)

    @classmethod
    def from_records(
        cls,
        records: Sequence[Dict[str, str]],
        attributes: Sequence[str],
        measure: SimilarityFn,
        name_attributes: Sequence[str] = DEFAULT_NAME_ATTRIBUTES,
    ) -> "RecordMatcher":
        """Entropy-weight the attributes from the records themselves."""
        return cls(measure, entropy_weights(records, attributes), name_attributes)

    def _value_similarity(self, left: str, right: str) -> float:
        if left == right:
            return 1.0
        if left <= right:
            key = (self._cache_token, left, right)
        else:
            key = (self._cache_token, right, left)
        cached = self._cache.get(key)
        if cached is None:
            cached = self.measure(key[1], key[2])
            self._cache.put(key, cached)
        return cached

    def _best_name_assignment(
        self, left: Dict[str, str], right: Dict[str, str]
    ) -> float:
        """Weighted similarity of the best 1:1 name attribute permutation.

        Every permutation of the right-hand name values is scored against
        the left-hand attributes; weights stay attached to the left-hand
        attribute (the column being filled).
        """
        attributes = self.name_attributes
        left_values = [(left.get(a) or "").strip() for a in attributes]
        right_values = [(right.get(a) or "").strip() for a in attributes]
        best = -1.0
        for permutation in itertools.permutations(range(len(attributes))):
            total = 0.0
            for index, attribute in enumerate(attributes):
                score = self._value_similarity(
                    left_values[index], right_values[permutation[index]]
                )
                total += self.weights[attribute] * score
            if total > best:
                best = total
        return best

    def similarity(self, left: Dict[str, str], right: Dict[str, str]) -> float:
        """Weighted average value similarity of two flat records."""
        total_weight = sum(self.weights.values())
        if total_weight == 0:
            return 0.0
        total = 0.0
        if self.name_attributes:
            total += self._best_name_assignment(left, right)
        for attribute in self._other_attributes:
            weight = self.weights[attribute]
            if weight == 0.0:
                continue
            total += weight * self._value_similarity(
                (left.get(attribute) or "").strip(),
                (right.get(attribute) or "").strip(),
            )
        return total / total_weight

    def __call__(self, left: Dict[str, str], right: Dict[str, str]) -> float:
        return self.similarity(left, right)
