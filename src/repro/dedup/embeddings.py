"""Char-n-gram TF-IDF record embeddings and a vectorized cosine prefilter.

The vector half of the sub-quadratic candidate path (ROADMAP item 3).
Duplicate records in a noisy register rarely *sort* together — a typo in
the first character of the blocking key throws Sorted Neighborhood off —
but they still *share most of their character n-grams*.  This module
turns each record into a sparse TF-IDF vector over its char-n-gram
shingles so that

* :mod:`repro.dedup.lsh` can MinHash the shingle sets into sub-quadratic
  candidate buckets, and
* :func:`cosine_prefilter` can cheaply re-rank / thin those buckets with
  an exact sparse cosine before the expensive record matcher runs.

Everything here is deterministic and dependency-free:

* **Shingling** (:func:`record_shingles`) strips each attribute value
  exactly like the record matcher does (``(value or "").strip()``),
  shingles it with :func:`repro.textsim.tokens.qgrams` (unpadded), and
  interns the grams through :func:`repro.textsim.fast.intern_values` so
  repeated shingles across millions of records share one string object —
  the same interning discipline as prepared record vectors.
* **Vocabulary and weights** (:func:`tfidf_vectors`) assign term ids in
  sorted shingle order (stable across runs and processes) and use the
  standard smoothed idf ``log((1 + n) / (1 + df)) + 1`` with L2
  normalisation.
* **Sparse rows** are a pair of parallel :mod:`array` arrays per record —
  ``array("q")`` term ids (sorted ascending) and ``array("d")`` weights —
  one machine word per entry instead of a boxed-int dict, mirroring the
  packed-pair representation of :mod:`repro.dedup.pipeline`.

No NumPy: ``array`` + merge-joins keep the hot loop allocation-free and
the module importable everywhere the rest of the pipeline is.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.textsim.fast import intern_values
from repro.textsim.tokens import qgrams

#: Default shingle width; 3-grams survive single-character typos while
#: still discriminating between unrelated values (van Gennip et al. use
#: character n-grams for exactly this noisy/incomplete-field regime).
DEFAULT_NGRAM = 3


def shingle_record(
    record: Dict[str, str],
    attributes: Sequence[str],
    ngram: int = DEFAULT_NGRAM,
) -> Tuple[str, ...]:
    """The sorted, interned char-n-gram shingle tuple of one record.

    Each attribute value is stripped exactly like the record matcher
    strips it, shingled independently (grams never span attribute
    boundaries), and the per-value gram lists are unioned.  Values
    shorter than ``ngram`` contribute themselves as a single shingle
    (the :func:`~repro.textsim.tokens.qgrams` convention), so short zip
    or middle-initial values still participate.  Returns a *sorted*
    tuple — a canonical form that is stable across processes, which the
    MinHash workers rely on.
    """
    if ngram < 1:
        raise ValueError(f"ngram must be >= 1, got {ngram}")
    grams: Set[str] = set()
    for attribute in attributes:
        value = (record.get(attribute) or "").strip()
        if not value:
            continue
        grams.update(qgrams(value, ngram, pad=False))
    return intern_values(sorted(grams))


def record_shingles(
    records: Sequence[Dict[str, str]],
    attributes: Sequence[str],
    ngram: int = DEFAULT_NGRAM,
) -> List[Tuple[str, ...]]:
    """Shingle every record; one sorted, interned tuple per record."""
    return [shingle_record(record, attributes, ngram) for record in records]


class TfidfVectors:
    """Sparse TF-IDF rows over a shared shingle vocabulary.

    ``indices[i]`` / ``weights[i]`` are parallel arrays holding record
    ``i``'s non-zero terms: ``indices`` is an ``array("q")`` of term ids
    sorted ascending, ``weights`` an ``array("d")`` of the matching L2-
    normalised TF-IDF weights.  Rows of empty records are empty arrays.
    """

    __slots__ = ("vocabulary", "indices", "weights")

    def __init__(
        self,
        vocabulary: Dict[str, int],
        indices: List[array],
        weights: List[array],
    ) -> None:
        self.vocabulary = vocabulary
        self.indices = indices
        self.weights = weights

    def __len__(self) -> int:
        return len(self.indices)

    def cosine(self, left_id: int, right_id: int) -> float:
        """Exact cosine similarity of two rows (a sorted merge-join).

        Rows are L2-normalised, so the dot product *is* the cosine.  An
        empty row has no direction: its cosine with anything is 0.0.
        """
        left_index = self.indices[left_id]
        right_index = self.indices[right_id]
        if not left_index or not right_index:
            return 0.0
        left_weight = self.weights[left_id]
        right_weight = self.weights[right_id]
        total = 0.0
        i = j = 0
        left_len, right_len = len(left_index), len(right_index)
        while i < left_len and j < right_len:
            left_term = left_index[i]
            right_term = right_index[j]
            if left_term == right_term:
                total += left_weight[i] * right_weight[j]
                i += 1
                j += 1
            elif left_term < right_term:
                i += 1
            else:
                j += 1
        return total


def tfidf_vectors(
    records: Sequence[Dict[str, str]],
    attributes: Sequence[str],
    ngram: int = DEFAULT_NGRAM,
    *,
    shingles: Optional[Sequence[Tuple[str, ...]]] = None,
) -> TfidfVectors:
    """Embed every record as a sparse L2-normalised TF-IDF row.

    Term ids are assigned in sorted shingle order — a pure function of
    the corpus, never of iteration order — and the idf is the standard
    smoothed form ``log((1 + n) / (1 + df)) + 1`` (never negative, never
    a division by zero).  Shingles are binary per record (a gram either
    occurs in a value or does not — :func:`shingle_record` returns sets),
    so tf is 1 and each row is just the idf vector of its shingles,
    normalised.  Pass precomputed ``shingles`` (from
    :func:`record_shingles`) to avoid re-shingling when the MinHash pass
    already did.
    """
    if shingles is None:
        shingles = record_shingles(records, attributes, ngram)
    document_frequency: Dict[str, int] = {}
    for grams in shingles:
        for gram in grams:
            document_frequency[gram] = document_frequency.get(gram, 0) + 1
    vocabulary = {
        gram: term_id for term_id, gram in enumerate(sorted(document_frequency))
    }
    record_count = len(shingles)
    idf = {
        gram: math.log((1 + record_count) / (1 + frequency)) + 1.0
        for gram, frequency in document_frequency.items()
    }
    indices: List[array] = []
    weights: List[array] = []
    for grams in shingles:
        row_index = array("q", (vocabulary[gram] for gram in grams))
        row_weight = array("d", (idf[gram] for gram in grams))
        norm = math.sqrt(sum(weight * weight for weight in row_weight))
        if norm > 0.0:
            for position in range(len(row_weight)):
                row_weight[position] /= norm
        indices.append(row_index)
        weights.append(row_weight)
    return TfidfVectors(vocabulary, indices, weights)


def cosine_prefilter(
    vectors: TfidfVectors,
    keys: Iterable[int],
    record_count: int,
    floor: float,
) -> Iterator[int]:
    """Yield the packed pair keys whose TF-IDF cosine reaches ``floor``.

    The exactness contract of the candidate stage is *subset*, not
    threshold semantics: every surviving pair is still scored by the full
    record matcher, the prefilter only refuses to forward pairs whose
    embeddings point in clearly different directions.  ``floor <= 0``
    passes everything through unchanged (and skips the merge-joins).
    """
    if floor <= 0.0:
        yield from keys
        return
    cosine = vectors.cosine
    for key in keys:
        left, right = divmod(key, record_count)
        if cosine(left, right) >= floor:
            yield key
