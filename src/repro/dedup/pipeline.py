"""Streaming, parallel duplicate-detection pipeline (Section 6.5 at scale).

The paper's headline evaluation runs a multi-pass Sorted Neighborhood
(window 20, one pass per highly unique attribute) and scores every
candidate pair with the weighted 1:1-name record matcher.  At register
scale that is tens of millions of candidate pairs, and the naive framework
in this package — tuple sets unioned eagerly, one ``similarity()`` call
per pair in a single process — becomes the bottleneck.  This module is the
scaled path, **bit-identical** to the naive one (enforced against the
oracles in :mod:`repro.dedup._reference` by
``tests/dedup/test_pipeline_equivalence.py``):

* **Packed candidate pairs.**  A pair ``(i, j)`` with ``i < j < n`` is one
  ``int``: ``i * n + j`` (:func:`pack_pair`).  Candidate passes stream
  their pairs as iterators of packed keys into a single ``set[int]`` —
  cross-pass dedup happens on integer hashes (no tuple re-hashing on
  union) and the pair set costs one machine word per pair instead of a
  tuple object plus two boxed ints (~4x less memory, measured in
  ``benchmarks/dedup_bench.py``).
* **Prepared record vectors.**  Scoring uses
  :meth:`repro.dedup.matching.RecordMatcher.prepare`: stripping, ``None``
  handling, name-value tuples and weight normalisation happen once per
  record instead of once per pair, with interned values
  (:func:`repro.textsim.fast.intern_values`) so the hot-loop equality
  checks compare by pointer.
* **Batched scoring** (:func:`score_pairs_batch`) walks packed keys in
  sorted order and shares the matcher's bounded LRU; the similarity
  measures route through the thresholded/banded kernels of
  :mod:`repro.textsim.fast` exactly as the per-pair path does.
* **Sharded parallel scoring** (:func:`score_candidates_packed` with
  ``max_workers > 0``) fans the packed keys over worker processes through
  :func:`repro.core.parallel.run_shards` — deterministic shard-by-pair-key
  (:func:`repro.core.parallel.shard_of_int`), the same retry /
  backoff / in-process-degradation semantics as parallel cluster scoring,
  and a merge that is order-independent because pair scores are pure
  functions of the two records.

:class:`DetectionPipeline` wires the stages together and feeds
:func:`repro.dedup.evaluate.evaluate_thresholds` directly; the CLI exposes
it as ``ncvoter-testdata detect``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.parallel import effective_worker_count, run_shards, shard_of_int
from repro.dedup.blocking import (
    BlockingStats,
    SortedNeighborhood,
    StandardBlocking,
    pick_blocking_keys,
)
from repro.dedup.evaluate import (
    EvaluationPoint,
    best_f1,
    evaluate_thresholds,
)
from repro.dedup.matching import PreparedRecords, RecordMatcher

Pair = Tuple[int, int]

#: The paper's threshold sweep (Figure 5): 0.20, 0.25, …, 0.95.
DEFAULT_THRESHOLDS: Tuple[float, ...] = tuple(t / 20 for t in range(4, 20))


# ------------------------------------------------------------- packed pairs


class PairKeyOverflowError(ValueError):
    """Packing pairs for this record count would overflow 64-bit keys.

    ``pack_pair`` encodes ``(i, j)`` as ``i * n + j``; for
    ``n > MAX_PACKABLE_RECORDS`` (≈3.04 billion, i.e. ``n`` approaching
    ``2**32``) the largest key no longer fits in a signed 64-bit word,
    so two distinct pairs could silently alias once keys cross a
    fixed-width boundary (an ``array``/mmap spill, a numpy view, a wire
    format).  Every packing entry point raises this typed error instead
    of producing keys that are only *sometimes* safe.
    """

    def __init__(self, record_count: int) -> None:
        self.record_count = record_count
        super().__init__(
            f"record_count {record_count} exceeds MAX_PACKABLE_RECORDS "
            f"({MAX_PACKABLE_RECORDS}): packed pair keys (i * n + j) would "
            "overflow 64-bit integers and could alias; shard the register "
            "before candidate generation"
        )


#: The largest record count whose packed pair keys all fit in a signed
#: 64-bit integer: ``floor(sqrt(2**63 - 1))``, since the largest key is
#: ``(n - 2) * n + (n - 1) < n**2``.
MAX_PACKABLE_RECORDS = 3_037_000_499


def _check_packable(record_count: int) -> None:
    """Raise :class:`PairKeyOverflowError` if keys for ``record_count``
    records cannot be represented in 64 bits."""
    if record_count > MAX_PACKABLE_RECORDS:
        raise PairKeyOverflowError(record_count)


def pack_pair(left: int, right: int, record_count: int) -> int:
    """Pack the pair ``(left, right)`` with ``left < right`` into one int.

    The packing is ``left * record_count + right`` — unique for
    ``0 <= left < right < record_count`` and reversible via
    :func:`unpack_pair`.  At the paper's scale (millions of records) the
    packed key still fits comfortably in 64 bits; record counts beyond
    :data:`MAX_PACKABLE_RECORDS` (``n**2 >= 2**63``, ``n`` near
    ``2**32``) raise :class:`PairKeyOverflowError` instead of silently
    aliasing.  CPython small-int hashing makes set membership and union
    much cheaper than tuple hashing.
    """
    _check_packable(record_count)
    if not 0 <= left < right < record_count:
        raise ValueError(
            f"pair ({left}, {right}) is not ordered inside range({record_count})"
        )
    return left * record_count + right


def unpack_pair(key: int, record_count: int) -> Pair:
    """Invert :func:`pack_pair`.

    Validates the same bounds: a ``record_count`` beyond
    :data:`MAX_PACKABLE_RECORDS` raises :class:`PairKeyOverflowError`,
    and a ``key`` outside ``[0, record_count**2)`` raises
    :class:`ValueError` — such a key cannot have come from
    :func:`pack_pair` with this ``record_count``, so decoding it would
    fabricate a pair that aliases someone else's.
    """
    _check_packable(record_count)
    if not 0 <= key < record_count * record_count:
        raise ValueError(
            f"key {key} is outside [0, {record_count}**2) and cannot be a "
            f"packed pair for {record_count} records"
        )
    return divmod(key, record_count)


def pack_pairs(pairs: Iterable[Pair], record_count: int) -> Set[int]:
    """Pack an iterable of ``(i, j)`` pairs into a packed-key set."""
    return {pack_pair(left, right, record_count) for left, right in pairs}


def unpack_pairs(keys: Iterable[int], record_count: int) -> Set[Pair]:
    """Unpack a packed-key set back into ``(i, j)`` tuples."""
    return {divmod(key, record_count) for key in keys}


# -------------------------------------------------- streaming candidate gen


def iter_sorted_neighborhood_keys(
    records: Sequence[Dict[str, str]], key_attribute: str, window: int
) -> Iterator[int]:
    """One Sorted Neighborhood pass as a stream of packed pair keys.

    Same sort and same sliding window as
    :class:`repro.dedup.blocking.SortedNeighborhood`, but pairs are
    yielded lazily as packed ints — nothing per-pass is materialized, and
    duplicates within the window (impossible for SNM, possible for
    blocking) would simply collapse in the consuming set.
    """
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    record_count = len(records)
    _check_packable(record_count)
    order = sorted(
        range(record_count),
        key=lambda index: (records[index].get(key_attribute) or "").strip(),
    )
    for position, record_id in enumerate(order):
        stop = min(position + window, record_count)
        for other_position in range(position + 1, stop):
            other_id = order[other_position]
            if record_id < other_id:
                yield record_id * record_count + other_id
            else:
                yield other_id * record_count + record_id


def iter_blocking_keys(
    records: Sequence[Dict[str, str]],
    blocker: StandardBlocking,
    stats: Optional[BlockingStats] = None,
) -> Iterator[int]:
    """One standard-blocking pass as a stream of packed pair keys.

    Block membership lists are in record-id order, so the nested loop
    yields canonical ``i < j`` keys directly.  When ``stats`` is given it
    is filled in-place (the no-silent-caps counters of
    :class:`~repro.dedup.blocking.BlockingStats`), because a generator
    cannot also return a value to its consumer.
    """
    record_count = len(records)
    _check_packable(record_count)
    for members in blocker.blocks(records).values():
        size = len(members)
        if stats is not None:
            stats.blocks_total += 1
            stats.records_blocked += size
        if size > blocker.max_block_size:
            if stats is not None:
                stats.blocks_skipped += 1
                stats.pairs_dropped += size * (size - 1) // 2
            continue
        if stats is not None:
            stats.pairs_emitted += size * (size - 1) // 2
        for position, left in enumerate(members):
            base = left * record_count
            for other_position in range(position + 1, size):
                yield base + members[other_position]


@dataclasses.dataclass
class PassStats:
    """One candidate pass: what it emitted and what was new."""

    label: str
    pairs_emitted: int = 0
    pairs_new: int = 0
    blocks_skipped: int = 0
    pairs_dropped: int = 0


@dataclasses.dataclass
class CandidateStats:
    """Streaming candidate generation, pass by pass.

    ``pairs_dropped`` > 0 means a blocking pass hit its ``max_block_size``
    cap — candidates that were *not* generated.  Surfaced (never silent)
    by the CLI and the benchmark.
    """

    record_count: int
    passes: List[PassStats] = dataclasses.field(default_factory=list)

    @property
    def pairs_emitted(self) -> int:
        return sum(p.pairs_emitted for p in self.passes)

    @property
    def unique_pairs(self) -> int:
        return sum(p.pairs_new for p in self.passes)

    @property
    def pairs_dropped(self) -> int:
        return sum(p.pairs_dropped for p in self.passes)

    def render(self) -> str:
        """Human-readable per-pass summary (CLI surfacing)."""
        lines = []
        for stats in self.passes:
            line = (
                f"pass {stats.label}: {stats.pairs_emitted} pairs, "
                f"{stats.pairs_new} new"
            )
            if stats.pairs_dropped:
                line += (
                    f" [DROPPED {stats.pairs_dropped} pairs in "
                    f"{stats.blocks_skipped} oversized block(s)]"
                )
            lines.append(line)
            # LSH passes carry bucket-level accounting (size distribution,
            # oversized skips, cosine-filtered pairs) — surface it here so
            # no cap or filter is ever silent on the CLI.
            buckets = getattr(stats, "buckets", None)
            if buckets is not None:
                lines.append(f"  {buckets.render()}")
        lines.append(
            f"total: {self.unique_pairs} unique of {self.pairs_emitted} "
            f"emitted ({self.record_count} records)"
        )
        return "\n".join(lines)


def collect_candidates(
    passes: Iterable[Tuple[str, Iterator[int]]],
    record_count: int,
) -> Tuple[Set[int], CandidateStats]:
    """Union labelled streams of packed keys with cross-pass dedup.

    Every pass streams into the same ``set[int]``; per-pass emitted/new
    counts are tracked on the fly, so no pass is ever materialized on its
    own (the eager tuple-set union kept every pass's set alive at once).
    """
    _check_packable(record_count)
    keys: Set[int] = set()
    stats = CandidateStats(record_count=record_count)
    for label, stream in passes:
        pass_stats = PassStats(label=label)
        before = len(keys)
        for key in stream:
            keys.add(key)
            pass_stats.pairs_emitted += 1
        pass_stats.pairs_new = len(keys) - before
        stats.passes.append(pass_stats)
    return keys, stats


def sorted_neighborhood_candidates(
    records: Sequence[Dict[str, str]],
    key_attributes: Iterable[str],
    window: int = 20,
) -> Tuple[Set[int], CandidateStats]:
    """Multi-pass SNM candidates as packed keys, one streamed pass per key.

    Equals ``pack_pairs(multipass_sorted_neighborhood(records, keys, w))``
    — asserted by the equivalence suite — without ever materializing a
    per-pass tuple set.
    """
    return collect_candidates(
        (
            (attribute, iter_sorted_neighborhood_keys(records, attribute, window))
            for attribute in key_attributes
        ),
        len(records),
    )


def blocking_candidates(
    records: Sequence[Dict[str, str]],
    blockers: Sequence[StandardBlocking],
) -> Tuple[Set[int], CandidateStats]:
    """Multi-pass standard blocking as packed keys with drop accounting."""
    keys: Set[int] = set()
    stats = CandidateStats(record_count=len(records))
    for position, blocker in enumerate(blockers):
        block_stats = BlockingStats()
        pass_stats = PassStats(label=f"block[{position}]")
        before = len(keys)
        for key in iter_blocking_keys(records, blocker, block_stats):
            keys.add(key)
        pass_stats.pairs_emitted = block_stats.pairs_emitted
        pass_stats.pairs_new = len(keys) - before
        pass_stats.blocks_skipped = block_stats.blocks_skipped
        pass_stats.pairs_dropped = block_stats.pairs_dropped
        stats.passes.append(pass_stats)
    return keys, stats


# ------------------------------------------------------------ pair scoring


def score_pairs_batch(
    prepared: PreparedRecords,
    keys: Iterable[int],
    record_count: int,
) -> Dict[Pair, float]:
    """Score a batch of packed candidate keys through prepared vectors.

    Returns ``{(i, j): similarity}`` with every float bit-identical to
    ``matcher.similarity(records[i], records[j])`` — prepared vectors only
    hoist work out of the pair loop, they never change an operation order.
    """
    pair_similarity = prepared.pair_similarity
    similarities: Dict[Pair, float] = {}
    for key in keys:
        pair = divmod(key, record_count)
        similarities[pair] = pair_similarity(pair[0], pair[1])
    return similarities


def _score_pairs_shard(
    records: Sequence[Dict[str, str]],
    measure: object,
    weights: Dict[str, float],
    name_attributes: Tuple[str, ...],
    keys: Sequence[int],
    record_count: int,
) -> Dict[Pair, float]:
    """Worker: rebuild the matcher, prepare once, score this shard's keys.

    Only plain data (records, weights, the picklable measure, packed keys)
    crosses the process boundary; each worker keeps its own caches.  Pure —
    safe to retry (see :func:`repro.core.parallel.run_shards`).
    """
    matcher = RecordMatcher(measure, weights, name_attributes)  # type: ignore[arg-type]
    prepared = matcher.prepare(records)
    return score_pairs_batch(prepared, keys, record_count)


def score_candidates_packed(
    records: Sequence[Dict[str, str]],
    keys: Iterable[int],
    matcher: RecordMatcher,
    *,
    shards: int = 1,
    max_workers: Optional[int] = None,
    max_retries: int = 2,
    timeout: Optional[float] = None,
    backoff: float = 0.1,
) -> Dict[Pair, float]:
    """Similarity of every packed candidate key, optionally sharded.

    ``max_workers=0``/``None`` scores in-process through one prepared
    vector table.  With workers, keys shard deterministically by
    ``shard_of_int(key, shards)`` and fan out over
    :func:`repro.core.parallel.run_shards` — worker crashes and timeouts
    retry with exponential backoff and ultimately degrade to in-process
    scoring, exactly like parallel cluster scoring.  Because every score
    is a pure function of the two records, any shard and worker count
    (including zero) produces an identical result map; parallel workers
    additionally require ``matcher.measure`` to be picklable.

    Worker counts beyond the machine's CPU count are clamped (with a
    once-per-process :class:`repro.core.parallel.WorkerClampWarning`)
    before deciding between the in-process and sharded paths.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    max_workers = effective_worker_count(max_workers, label="parallel pair scoring")
    record_count = len(records)
    ordered = sorted(keys)
    if not max_workers or shards == 1:
        # A single shard gains nothing from a process round-trip.
        return score_pairs_batch(matcher.prepare(records), ordered, record_count)
    buckets: List[List[int]] = [[] for _ in range(shards)]
    for key in ordered:
        buckets[shard_of_int(key, shards)].append(key)
    records_list = list(records)
    shard_results = run_shards(
        _score_pairs_shard,
        [
            (
                records_list,
                matcher.measure,
                matcher.weights,
                matcher.name_attributes,
                bucket,
                record_count,
            )
            for bucket in buckets
        ],
        max_workers,
        max_retries=max_retries,
        timeout=timeout,
        backoff=backoff,
        label="parallel pair scoring",
    )
    similarities: Dict[Pair, float] = {}
    for result in shard_results:
        similarities.update(result)
    return similarities


# ------------------------------------------------------------ the pipeline


@dataclasses.dataclass
class DetectionResult:
    """Everything one end-to-end detection run produced."""

    record_count: int
    candidate_keys: Set[int]
    candidate_stats: CandidateStats
    similarities: Dict[Pair, float]
    points: List[EvaluationPoint]
    gold_size: int = 0
    gold_missed: int = 0

    @property
    def best(self) -> EvaluationPoint:
        """The evaluation point with the highest F1."""
        return best_f1(self.points)


#: Candidate pass types :class:`DetectionPipeline` knows how to run.
CANDIDATE_PASS_TYPES = ("snm", "lsh")


class DetectionPipeline:
    """Candidate generation → batched pair scoring → threshold sweep.

    The end-to-end form of the paper's Section 6.5 evaluation, built from
    the streaming pieces of this module.  ``workers=0`` (the default) runs
    everything in-process; any worker count produces bit-identical
    similarities, evaluation points and best-F1 thresholds.

    Parameters mirror the paper's setup: ``passes`` most unique attributes
    (entropy-ranked) as SNM sort keys with window ``window``.  Pass
    ``key_attributes`` to pin the sort keys explicitly instead.

    ``candidate_passes`` selects the generator family: ``("snm",)`` (the
    default) runs the paper's multi-pass Sorted Neighborhood, ``("lsh",)``
    the sub-quadratic MinHash–LSH pass of :mod:`repro.dedup.lsh` over the
    same entropy-picked attributes, and ``("snm", "lsh")`` unions both
    through one deduplicating packed-key set.  The LSH geometry is tuned
    with ``bands`` / ``rows`` / ``ngram`` / ``max_bucket_size`` /
    ``cosine_floor`` (see ``docs/performance.md``, Layer 7); its
    signature computation shares the pipeline's ``workers`` / ``shards``
    settings and stays bit-identical for every configuration.
    """

    def __init__(
        self,
        *,
        window: int = 20,
        passes: int = 5,
        key_attributes: Optional[Sequence[str]] = None,
        thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
        workers: int = 0,
        shards: Optional[int] = None,
        max_retries: int = 2,
        timeout: Optional[float] = None,
        backoff: float = 0.1,
        candidate_passes: Sequence[str] = ("snm",),
        bands: int = 16,
        rows: int = 4,
        ngram: int = 3,
        lsh_seed: int = 20210323,
        max_bucket_size: int = 500,
        cosine_floor: float = 0.0,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if passes < 1:
            raise ValueError(f"passes must be >= 1, got {passes}")
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.candidate_passes = tuple(candidate_passes)
        if not self.candidate_passes:
            raise ValueError("candidate_passes must name at least one pass")
        unknown = [
            p for p in self.candidate_passes if p not in CANDIDATE_PASS_TYPES
        ]
        if unknown:
            raise ValueError(
                f"unknown candidate pass(es) {unknown}; "
                f"supported: {CANDIDATE_PASS_TYPES}"
            )
        self.window = window
        self.passes = passes
        self.key_attributes = tuple(key_attributes) if key_attributes else None
        self.thresholds = tuple(thresholds)
        self.workers = workers
        self.shards = shards if shards is not None else max(workers, 1)
        self.max_retries = max_retries
        self.timeout = timeout
        self.backoff = backoff
        self.bands = bands
        self.rows = rows
        self.ngram = ngram
        self.lsh_seed = lsh_seed
        self.max_bucket_size = max_bucket_size
        self.cosine_floor = cosine_floor

    def candidates(
        self,
        records: Sequence[Dict[str, str]],
        attributes: Sequence[str],
    ) -> Tuple[Set[int], CandidateStats]:
        """Streamed candidates as packed keys, one pass set per type.

        SNM passes stream lazily; an LSH pass is generated through
        :func:`repro.dedup.lsh.lsh_candidates` (sharded signatures, bucket
        accounting, optional cosine prefilter) and its deduplicated keys
        join the same union, so cross-family overlaps are counted like
        cross-pass overlaps always were.
        """
        keys = self.key_attributes or pick_blocking_keys(
            records, attributes, self.passes
        )
        if self.candidate_passes == ("snm",):
            return sorted_neighborhood_candidates(records, keys, self.window)
        # Imported here: repro.dedup.lsh imports this module's streaming
        # primitives, so the dependency must stay one-directional at
        # import time.
        from repro.dedup.lsh import lsh_candidates

        streams: List[Tuple[str, Iterator[int]]] = []
        lsh_stats: Optional[CandidateStats] = None
        for pass_type in self.candidate_passes:
            if pass_type == "snm":
                streams.extend(
                    (
                        attribute,
                        iter_sorted_neighborhood_keys(
                            records, attribute, self.window
                        ),
                    )
                    for attribute in keys
                )
            else:
                lsh_keys, lsh_stats = lsh_candidates(
                    records,
                    keys,
                    bands=self.bands,
                    rows=self.rows,
                    ngram=self.ngram,
                    seed=self.lsh_seed,
                    max_bucket_size=self.max_bucket_size,
                    cosine_floor=self.cosine_floor,
                    shards=self.shards,
                    max_workers=self.workers,
                    max_retries=self.max_retries,
                    timeout=self.timeout,
                    backoff=self.backoff,
                )
                streams.append(("lsh", iter(sorted(lsh_keys))))
        candidate_keys, stats = collect_candidates(streams, len(records))
        if lsh_stats is not None:
            # Graft the LSH pass's bucket accounting onto the union's
            # per-pass stats: pairs_new stays what collect_candidates
            # measured against the cross-family union, everything else
            # (bucket histogram, skips, filtered pairs) comes from the
            # pass itself.
            detailed = lsh_stats.passes[0]
            for position, pass_stats in enumerate(stats.passes):
                if pass_stats.label == "lsh":
                    detailed = dataclasses.replace(
                        detailed,
                        pairs_emitted=pass_stats.pairs_emitted,
                        pairs_new=pass_stats.pairs_new,
                    )
                    stats.passes[position] = detailed
        return candidate_keys, stats

    def score(
        self,
        records: Sequence[Dict[str, str]],
        candidate_keys: Set[int],
        matcher: RecordMatcher,
    ) -> Dict[Pair, float]:
        """Score packed candidates (sharded over workers when configured)."""
        return score_candidates_packed(
            records,
            candidate_keys,
            matcher,
            shards=self.shards,
            max_workers=self.workers,
            max_retries=self.max_retries,
            timeout=self.timeout,
            backoff=self.backoff,
        )

    def detect(
        self,
        records: Sequence[Dict[str, str]],
        attributes: Sequence[str],
        matcher: RecordMatcher,
        gold: Optional[Set[Pair]] = None,
        thresholds: Optional[Sequence[float]] = None,
    ) -> DetectionResult:
        """Run the full pipeline and sweep the thresholds against ``gold``."""
        candidate_keys, stats = self.candidates(records, attributes)
        similarities = self.score(records, candidate_keys, matcher)
        gold = gold or set()
        sweep = tuple(thresholds) if thresholds is not None else self.thresholds
        points = evaluate_thresholds(similarities, gold, sweep)
        record_count = len(records)
        gold_missed = sum(
            1
            for left, right in gold
            if left * record_count + right not in candidate_keys
        )
        return DetectionResult(
            record_count=record_count,
            candidate_keys=candidate_keys,
            candidate_stats=stats,
            similarities=similarities,
            points=points,
            gold_size=len(gold),
            gold_missed=gold_missed,
        )
