"""Candidate generation: multi-pass Sorted Neighborhood Method.

The paper reduces the search space with "a multi pass of the Sorted
Neighborhood Method by using one pass for each of the five most unique
attributes and a window of size w = 20" and reports that no true duplicate
was lost (Section 6.5).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.heterogeneity import entropy


def pick_blocking_keys(
    records: Sequence[Dict[str, str]],
    attributes: Sequence[str],
    count: int = 5,
) -> List[str]:
    """The ``count`` most unique attributes, measured by value entropy."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    scored = [
        (entropy((record.get(attribute) or "").strip() for record in records), attribute)
        for attribute in attributes
    ]
    scored.sort(key=lambda item: (-item[0], item[1]))
    return [attribute for _score, attribute in scored[:count]]


class SortedNeighborhood:
    """A single Sorted Neighborhood pass.

    Records are sorted by the value of ``key_attribute``; every pair within
    a sliding window of ``window`` records becomes a candidate.
    """

    def __init__(self, key_attribute: str, window: int = 20) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.key_attribute = key_attribute
        self.window = window

    def candidates(self, records: Sequence[Dict[str, str]]) -> Set[Tuple[int, int]]:
        """Candidate record-id pairs ``(i, j)`` with ``i < j``."""
        order = sorted(
            range(len(records)),
            key=lambda index: (records[index].get(self.key_attribute) or "").strip(),
        )
        pairs: Set[Tuple[int, int]] = set()
        for position, record_id in enumerate(order):
            stop = min(position + self.window, len(order))
            for other_position in range(position + 1, stop):
                other_id = order[other_position]
                pair = (record_id, other_id) if record_id < other_id else (other_id, record_id)
                pairs.add(pair)
        return pairs


def multipass_sorted_neighborhood(
    records: Sequence[Dict[str, str]],
    key_attributes: Iterable[str],
    window: int = 20,
) -> Set[Tuple[int, int]]:
    """Union of the candidate pairs of one pass per key attribute."""
    pairs: Set[Tuple[int, int]] = set()
    for key_attribute in key_attributes:
        pairs |= SortedNeighborhood(key_attribute, window).candidates(records)
    return pairs


@dataclasses.dataclass
class BlockingStats:
    """What a standard-blocking pass did — including what it dropped.

    Oversized blocks used to be skipped *silently*; a blocking pass that
    quietly drops its largest blocks reads as "covered everything" when it
    did not.  The stats make the cap observable: ``blocks_skipped`` counts
    the blocks over ``max_block_size`` and ``pairs_dropped`` the candidate
    pairs those blocks would have produced.  The CLI surfaces them, and
    callers can decide to raise the cap or switch blocking keys.
    """

    blocks_total: int = 0
    blocks_skipped: int = 0
    records_blocked: int = 0
    pairs_emitted: int = 0
    pairs_dropped: int = 0

    def merge(self, other: "BlockingStats") -> None:
        """Accumulate another pass's counters into this one."""
        self.blocks_total += other.blocks_total
        self.blocks_skipped += other.blocks_skipped
        self.records_blocked += other.records_blocked
        self.pairs_emitted += other.pairs_emitted
        self.pairs_dropped += other.pairs_dropped


class StandardBlocking:
    """Classic key-based blocking: equal blocking keys become candidates.

    ``key_function`` maps a record to its blocking key (e.g. the Soundex
    code of the last name plus the zip prefix).  Unlike Sorted
    Neighborhood, block sizes are unbounded — ``max_block_size`` guards
    against quadratic blow-up on frequent keys by skipping oversized
    blocks (a standard production safeguard).  Skips are never silent:
    :meth:`candidates_with_stats` reports how many blocks and pairs the
    cap dropped.
    """

    def __init__(
        self,
        key_function,
        max_block_size: int = 500,
    ) -> None:
        if max_block_size < 2:
            raise ValueError(f"max_block_size must be >= 2, got {max_block_size}")
        self.key_function = key_function
        self.max_block_size = max_block_size

    @classmethod
    def on_attribute(cls, attribute: str, transform=None, max_block_size: int = 500):
        """Block on one attribute, optionally transformed (e.g. soundex)."""

        def key_function(record: Dict[str, str]) -> str:
            value = (record.get(attribute) or "").strip()
            return transform(value) if transform else value

        return cls(key_function, max_block_size)

    def blocks(self, records: Sequence[Dict[str, str]]) -> Dict[str, List[int]]:
        """``key -> [record ids]`` in first-seen order; empty keys dropped."""
        blocks: Dict[str, List[int]] = {}
        for record_id, record in enumerate(records):
            key = self.key_function(record)
            if key in (None, ""):
                continue  # empty keys never block together
            blocks.setdefault(key, []).append(record_id)
        return blocks

    def candidates_with_stats(
        self, records: Sequence[Dict[str, str]]
    ) -> Tuple[Set[Tuple[int, int]], BlockingStats]:
        """Candidate pairs plus the pass's :class:`BlockingStats`."""
        stats = BlockingStats()
        pairs: Set[Tuple[int, int]] = set()
        for members in self.blocks(records).values():
            stats.blocks_total += 1
            stats.records_blocked += len(members)
            if len(members) > self.max_block_size:
                stats.blocks_skipped += 1
                stats.pairs_dropped += len(members) * (len(members) - 1) // 2
                continue
            # Members are in record-id order, so combinations already
            # yields normalised (i, j) pairs with i < j.
            before = len(pairs)
            pairs.update(itertools.combinations(members, 2))
            stats.pairs_emitted += len(pairs) - before
        return pairs, stats

    def candidates(self, records: Sequence[Dict[str, str]]) -> Set[Tuple[int, int]]:
        """Candidate record-id pairs ``(i, j)`` with ``i < j``."""
        pairs, _stats = self.candidates_with_stats(records)
        return pairs


def multipass_blocking_with_stats(
    records: Sequence[Dict[str, str]],
    blockers: Iterable["StandardBlocking"],
) -> Tuple[Set[Tuple[int, int]], BlockingStats]:
    """Union of several blocking passes plus their merged stats."""
    pairs: Set[Tuple[int, int]] = set()
    stats = BlockingStats()
    for blocker in blockers:
        pass_pairs, pass_stats = blocker.candidates_with_stats(records)
        pairs |= pass_pairs
        stats.merge(pass_stats)
    return pairs, stats


def multipass_blocking(
    records: Sequence[Dict[str, str]],
    blockers: Iterable["StandardBlocking"],
) -> Set[Tuple[int, int]]:
    """Union of the candidate pairs of several standard-blocking passes."""
    pairs, _stats = multipass_blocking_with_stats(records, blockers)
    return pairs
