"""Threshold sweeps and precision / recall / F1 (Figure 5)."""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Sequence, Set, Tuple

Pair = Tuple[int, int]


@dataclasses.dataclass
class EvaluationPoint:
    """Quality of one similarity threshold."""

    threshold: float
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was predicted."""
        predicted = self.true_positives + self.false_positives
        return self.true_positives / predicted if predicted else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when the gold standard is empty."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall."""
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def confusion_counts(
    predicted: Set[Pair], gold: Set[Pair]
) -> Tuple[int, int, int]:
    """(TP, FP, FN) of a predicted duplicate pair set against the gold."""
    true_positives = len(predicted & gold)
    return (
        true_positives,
        len(predicted) - true_positives,
        len(gold) - true_positives,
    )


def precision_recall_f1(predicted: Set[Pair], gold: Set[Pair]) -> Tuple[float, float, float]:
    """(precision, recall, F1) of a predicted pair set."""
    tp, fp, fn = confusion_counts(predicted, gold)
    point = EvaluationPoint(0.0, tp, fp, fn)
    return point.precision, point.recall, point.f1


def score_candidates(
    records: Sequence[Dict[str, str]],
    candidates: Iterable[Pair],
    matcher: Callable[[Dict[str, str], Dict[str, str]], float],
) -> Dict[Pair, float]:
    """Similarity of every candidate pair (computed once for all sweeps)."""
    return {
        pair: matcher(records[pair[0]], records[pair[1]])
        for pair in candidates
    }


def evaluate_thresholds(
    similarities: Dict[Pair, float],
    gold: Set[Pair],
    thresholds: Sequence[float],
) -> List[EvaluationPoint]:
    """One evaluation point per threshold.

    Pairs never scored (not candidates) count as non-duplicates, so recall
    is measured against the *full* gold standard, exactly as in the paper
    (blocking happened to lose no true duplicate there; here it would show
    up as irreducible false negatives).
    """
    # Sort pairs by similarity descending; sweep thresholds descending so
    # each pair is classified exactly once across the whole sweep.
    ordered = sorted(similarities.items(), key=lambda item: -item[1])
    points: List[EvaluationPoint] = []
    thresholds_desc = sorted(thresholds, reverse=True)
    index = 0
    true_positives = 0
    false_positives = 0
    gold_total = len(gold)
    for threshold in thresholds_desc:
        while index < len(ordered) and ordered[index][1] >= threshold:
            pair = ordered[index][0]
            if pair in gold:
                true_positives += 1
            else:
                false_positives += 1
            index += 1
        points.append(
            EvaluationPoint(
                threshold=threshold,
                true_positives=true_positives,
                false_positives=false_positives,
                false_negatives=gold_total - true_positives,
            )
        )
    points.reverse()  # return in ascending threshold order
    return points


def best_f1(points: Sequence[EvaluationPoint]) -> EvaluationPoint:
    """The evaluation point with the highest F1 (ties: lower threshold)."""
    if not points:
        raise ValueError("no evaluation points")
    return max(points, key=lambda point: (point.f1, -point.threshold))
