"""Naive reference implementations of the detection pipeline (the oracle).

The straightforward tuple-set / per-pair implementations that
:mod:`repro.dedup.pipeline` replaces on the hot path, kept in-tree for the
same two reasons as :mod:`repro.textsim._reference`:

* the equivalence suite (``tests/dedup/test_pipeline_equivalence.py``)
  asserts that packed-key candidate generation and prepared/batched/
  parallel pair scoring are **bit-identical** to these oracles;
* the detection benchmark (``benchmarks/dedup_bench.py``) measures the
  streaming pipeline's speedup against them.

Nothing outside tests and benchmarks should import this module — the
public framework in :mod:`repro.dedup` is exactly as accurate, only
faster.  The scoring oracle deliberately reproduces the *historical*
per-pair matcher: per-call weight totals, per-pair stripping, permutation
re-evaluation and no cross-pair caching.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, Sequence, Set, Tuple

Pair = Tuple[int, int]
SimilarityFn = Callable[[str, str], float]


def sorted_neighborhood_pairs_reference(
    records: Sequence[Dict[str, str]], key_attribute: str, window: int
) -> Set[Pair]:
    """One SNM pass as an eager tuple set (the historical implementation)."""
    order = sorted(
        range(len(records)),
        key=lambda index: (records[index].get(key_attribute) or "").strip(),
    )
    pairs: Set[Pair] = set()
    for position, record_id in enumerate(order):
        stop = min(position + window, len(order))
        for other_position in range(position + 1, stop):
            other_id = order[other_position]
            pair = (record_id, other_id) if record_id < other_id else (other_id, record_id)
            pairs.add(pair)
    return pairs


def multipass_pairs_reference(
    records: Sequence[Dict[str, str]],
    key_attributes: Iterable[str],
    window: int,
) -> Set[Pair]:
    """Eager union of per-pass tuple sets."""
    pairs: Set[Pair] = set()
    for key_attribute in key_attributes:
        pairs |= sorted_neighborhood_pairs_reference(records, key_attribute, window)
    return pairs


def blocking_pairs_reference(
    records: Sequence[Dict[str, str]], key_function, max_block_size: int
) -> Set[Pair]:
    """One standard-blocking pass with the historical O(k²) inner loop."""
    blocks: Dict[str, list] = {}
    for record_id, record in enumerate(records):
        key = key_function(record)
        if key in (None, ""):
            continue
        blocks.setdefault(key, []).append(record_id)
    pairs: Set[Pair] = set()
    for members in blocks.values():
        if len(members) > max_block_size:
            continue
        for j in range(1, len(members)):
            for i in range(j):
                pairs.add((members[i], members[j]))
    return pairs


def shingle_set_reference(
    record: Dict[str, str], attributes: Sequence[str], ngram: int = 3
) -> Set[str]:
    """Naive char-n-gram shingle set of one record (no interning, no sort).

    Character n-grams of each stripped attribute value, unioned; values
    shorter than ``ngram`` contribute themselves (so short zips and
    initials still participate) and grams never span attribute
    boundaries — the exact contract
    :func:`repro.dedup.embeddings.shingle_record` optimises.
    """
    grams: Set[str] = set()
    for attribute in attributes:
        value = (record.get(attribute) or "").strip()
        if not value:
            continue
        if len(value) < ngram:
            grams.add(value)
            continue
        for start in range(len(value) - ngram + 1):
            grams.add(value[start : start + ngram])
    return grams


def shingle_jaccard_reference(left: Set[str], right: Set[str]) -> float:
    """Exact Jaccard similarity of two shingle sets (empty sets score 0)."""
    if not left or not right:
        return 0.0
    intersection = len(left & right)
    union = len(left) + len(right) - intersection
    return intersection / union


def allpairs_shingle_jaccard_reference(
    records: Sequence[Dict[str, str]],
    attributes: Sequence[str],
    ngram: int = 3,
    threshold: float = 0.5,
) -> Set[Pair]:
    """All-pairs exact shingle-Jaccard candidates — the O(n²) LSH oracle.

    Every pair whose exact char-n-gram Jaccard reaches ``threshold``.
    This is the ground truth MinHash–LSH (:mod:`repro.dedup.lsh`)
    approximates sub-quadratically: the equivalence suite measures LSH
    candidate recall against exactly this set, and the benchmark uses it
    as the quadratic baseline the banded pass must undercut.
    """
    shingles = [
        shingle_set_reference(record, attributes, ngram) for record in records
    ]
    pairs: Set[Pair] = set()
    for right_id in range(1, len(records)):
        right_shingles = shingles[right_id]
        for left_id in range(right_id):
            similarity = shingle_jaccard_reference(
                shingles[left_id], right_shingles
            )
            if similarity >= threshold:
                pairs.add((left_id, right_id))
    return pairs


def _value_similarity_reference(measure: SimilarityFn, left: str, right: str) -> float:
    """Per-pair value similarity exactly as the matcher resolves it.

    Equal values short-circuit to 1.0 and unequal values are evaluated in
    canonical (sorted) argument order — the two behaviours the matcher's
    cache layer imposes — but nothing is cached.
    """
    if left == right:
        return 1.0
    if left <= right:
        return measure(left, right)
    return measure(right, left)


def record_similarity_reference(
    measure: SimilarityFn,
    weights: Dict[str, float],
    left: Dict[str, str],
    right: Dict[str, str],
    name_attributes: Sequence[str] = ("first_name", "midl_name", "last_name"),
) -> float:
    """The historical ``RecordMatcher.similarity``, recomputed from scratch.

    Weight totals per call, values stripped per pair, every name
    permutation re-scored value-by-value, zero-weight attributes skipped
    inside the loop — the exact float-accumulation order of the original
    per-pair matcher, against which every optimised path is asserted
    bit-identical.
    """
    usable_names = tuple(a for a in name_attributes if a in weights)
    total_weight = sum(weights.values())
    if total_weight == 0:
        return 0.0
    total = 0.0
    if usable_names:
        left_values = [(left.get(a) or "").strip() for a in usable_names]
        right_values = [(right.get(a) or "").strip() for a in usable_names]
        best = -1.0
        for permutation in itertools.permutations(range(len(usable_names))):
            assignment = 0.0
            for index, attribute in enumerate(usable_names):
                score = _value_similarity_reference(
                    measure, left_values[index], right_values[permutation[index]]
                )
                assignment += weights[attribute] * score
            if assignment > best:
                best = assignment
        total += best
    for attribute in weights:
        if attribute in usable_names:
            continue
        weight = weights[attribute]
        if weight == 0.0:
            continue
        total += weight * _value_similarity_reference(
            measure,
            (left.get(attribute) or "").strip(),
            (right.get(attribute) or "").strip(),
        )
    return total / total_weight


def score_candidates_reference(
    records: Sequence[Dict[str, str]],
    candidates: Iterable[Pair],
    measure: SimilarityFn,
    weights: Dict[str, float],
    name_attributes: Sequence[str] = ("first_name", "midl_name", "last_name"),
) -> Dict[Pair, float]:
    """Per-pair scoring over tuple candidates (the historical hot loop)."""
    return {
        pair: record_similarity_reference(
            measure, weights, records[pair[0]], records[pair[1]], name_attributes
        )
        for pair in candidates
    }
