"""From matched pairs to duplicate clusters (transitive closure).

The paper evaluates pair classification; real duplicate-detection systems
add a clustering step: matched pairs are closed transitively into
predicted duplicate clusters.  This module provides the closure plus the
standard cluster-level quality metrics, so users of the generated test
datasets can evaluate complete pipelines:

* **connected components** over the predicted pair graph;
* **cluster precision / recall / F1** — exact-cluster match counting;
* **pair completeness after closure** — the closure can *add* pairs the
  matcher never scored (a transitively implied duplicate), which the
  pair-level sweep cannot see.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

Pair = Tuple[int, int]


def connected_components(pairs: Iterable[Pair], record_count: int) -> List[List[int]]:
    """Transitive closure: components of the pair graph over all records.

    Every record id in ``range(record_count)`` appears in exactly one
    component; unmatched records become singletons.  Components are sorted
    by their smallest member.
    """
    parent = list(range(record_count))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for left, right in pairs:
        if not (0 <= left < record_count and 0 <= right < record_count):
            raise ValueError(f"pair ({left}, {right}) outside record range")
        root_left, root_right = find(left), find(right)
        if root_left != root_right:
            parent[root_right] = root_left

    components: Dict[int, List[int]] = {}
    for record_id in range(record_count):
        components.setdefault(find(record_id), []).append(record_id)
    return sorted(components.values(), key=lambda component: component[0])


def pairs_of_clusters(clusters: Iterable[Sequence[int]]) -> Set[Pair]:
    """All record pairs implied by a clustering."""
    pairs: Set[Pair] = set()
    for members in clusters:
        ordered = sorted(members)
        for j in range(1, len(ordered)):
            for i in range(j):
                pairs.add((ordered[i], ordered[j]))
    return pairs


def closure_pair_metrics(
    predicted_pairs: Set[Pair], gold_pairs: Set[Pair], record_count: int
) -> Tuple[float, float, float]:
    """(precision, recall, F1) of the pairs implied by the closure.

    The closure may imply pairs the matcher never predicted directly;
    counting them captures both the benefit (recovered missed duplicates)
    and the risk (error propagation through chains) of clustering.
    """
    closed = pairs_of_clusters(connected_components(predicted_pairs, record_count))
    true_positives = len(closed & gold_pairs)
    precision = true_positives / len(closed) if closed else 1.0
    recall = true_positives / len(gold_pairs) if gold_pairs else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return precision, recall, f1


def cluster_metrics(
    predicted: Iterable[Sequence[int]], gold: Iterable[Sequence[int]]
) -> Tuple[float, float, float]:
    """Exact-cluster (closed-cluster) precision, recall and F1.

    A predicted cluster counts as correct only when it matches a gold
    cluster exactly — the strictest cluster-level measure, common for
    evaluating end-to-end dedup output.  Singletons participate too.
    """
    predicted_sets = {frozenset(members) for members in predicted}
    gold_sets = {frozenset(members) for members in gold}
    if not predicted_sets and not gold_sets:
        return 1.0, 1.0, 1.0
    correct = len(predicted_sets & gold_sets)
    precision = correct / len(predicted_sets) if predicted_sets else 1.0
    recall = correct / len(gold_sets) if gold_sets else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return precision, recall, f1


def clusters_from_labels(labels: Sequence) -> List[List[int]]:
    """Group record ids by a label sequence (gold ``cluster_of`` lists)."""
    groups: Dict[object, List[int]] = {}
    for record_id, label in enumerate(labels):
        groups.setdefault(label, []).append(record_id)
    return sorted(groups.values(), key=lambda component: component[0])
