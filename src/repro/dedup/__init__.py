"""The duplicate-detection framework used in the paper's evaluation.

Section 6.5's setup:

* candidate generation with a multi-pass Sorted Neighborhood Method —
  one pass per highly unique attribute, window size 20
  (:mod:`repro.dedup.blocking`);
* record similarity as the entropy-weighted average of attribute value
  similarities, with the three name attributes matched 1:1 in their best
  permutation (:mod:`repro.dedup.matching`);
* classification by similarity threshold and evaluation as precision /
  recall / F1 over a threshold sweep (:mod:`repro.dedup.evaluate`);
* a streaming, parallel end-to-end pipeline for all of the above at
  register scale — packed candidate pairs, prepared record vectors,
  sharded pair scoring — bit-identical to the naive framework
  (:mod:`repro.dedup.pipeline`).
"""

from __future__ import annotations

from repro.dedup.blocking import (
    BlockingStats,
    SortedNeighborhood,
    StandardBlocking,
    multipass_blocking,
    multipass_blocking_with_stats,
    multipass_sorted_neighborhood,
    pick_blocking_keys,
)
from repro.dedup.pipeline import (
    CANDIDATE_PASS_TYPES,
    MAX_PACKABLE_RECORDS,
    CandidateStats,
    DetectionPipeline,
    DetectionResult,
    PairKeyOverflowError,
    PassStats,
    blocking_candidates,
    collect_candidates,
    pack_pair,
    pack_pairs,
    score_candidates_packed,
    score_pairs_batch,
    sorted_neighborhood_candidates,
    unpack_pair,
    unpack_pairs,
)
from repro.dedup.embeddings import (
    TfidfVectors,
    cosine_prefilter,
    record_shingles,
    shingle_record,
    tfidf_vectors,
)
from repro.dedup.lsh import (
    BucketStats,
    LshPassStats,
    estimate_jaccard,
    iter_lsh_keys,
    lsh_band_collisions,
    lsh_candidates,
    minhash_signatures,
)
from repro.dedup.evaluate import (
    EvaluationPoint,
    best_f1,
    confusion_counts,
    evaluate_thresholds,
    f1_score,
    precision_recall_f1,
    score_candidates,
)
from repro.dedup.clustering import (
    closure_pair_metrics,
    cluster_metrics,
    clusters_from_labels,
    connected_components,
    pairs_of_clusters,
)
from repro.dedup.matching import PreparedRecords, RecordMatcher

__all__ = [
    "SortedNeighborhood",
    "StandardBlocking",
    "BlockingStats",
    "multipass_blocking",
    "multipass_blocking_with_stats",
    "multipass_sorted_neighborhood",
    "pick_blocking_keys",
    "RecordMatcher",
    "PreparedRecords",
    "DetectionPipeline",
    "DetectionResult",
    "CandidateStats",
    "PassStats",
    "pack_pair",
    "unpack_pair",
    "pack_pairs",
    "unpack_pairs",
    "PairKeyOverflowError",
    "MAX_PACKABLE_RECORDS",
    "CANDIDATE_PASS_TYPES",
    "collect_candidates",
    "sorted_neighborhood_candidates",
    "blocking_candidates",
    "lsh_candidates",
    "minhash_signatures",
    "iter_lsh_keys",
    "lsh_band_collisions",
    "estimate_jaccard",
    "BucketStats",
    "LshPassStats",
    "TfidfVectors",
    "tfidf_vectors",
    "record_shingles",
    "shingle_record",
    "cosine_prefilter",
    "score_pairs_batch",
    "score_candidates_packed",
    "EvaluationPoint",
    "best_f1",
    "score_candidates",
    "evaluate_thresholds",
    "precision_recall_f1",
    "confusion_counts",
    "f1_score",
    "connected_components",
    "pairs_of_clusters",
    "closure_pair_metrics",
    "cluster_metrics",
    "clusters_from_labels",
]
