"""The duplicate-detection framework used in the paper's evaluation.

Section 6.5's setup:

* candidate generation with a multi-pass Sorted Neighborhood Method —
  one pass per highly unique attribute, window size 20
  (:mod:`repro.dedup.blocking`);
* record similarity as the entropy-weighted average of attribute value
  similarities, with the three name attributes matched 1:1 in their best
  permutation (:mod:`repro.dedup.matching`);
* classification by similarity threshold and evaluation as precision /
  recall / F1 over a threshold sweep (:mod:`repro.dedup.evaluate`).
"""

from __future__ import annotations

from repro.dedup.blocking import (
    SortedNeighborhood,
    StandardBlocking,
    multipass_blocking,
    multipass_sorted_neighborhood,
    pick_blocking_keys,
)
from repro.dedup.evaluate import (
    EvaluationPoint,
    best_f1,
    confusion_counts,
    evaluate_thresholds,
    f1_score,
    precision_recall_f1,
    score_candidates,
)
from repro.dedup.clustering import (
    closure_pair_metrics,
    cluster_metrics,
    clusters_from_labels,
    connected_components,
    pairs_of_clusters,
)
from repro.dedup.matching import RecordMatcher

__all__ = [
    "SortedNeighborhood",
    "StandardBlocking",
    "multipass_blocking",
    "multipass_sorted_neighborhood",
    "pick_blocking_keys",
    "RecordMatcher",
    "EvaluationPoint",
    "best_f1",
    "score_candidates",
    "evaluate_thresholds",
    "precision_recall_f1",
    "confusion_counts",
    "f1_score",
    "connected_components",
    "pairs_of_clusters",
    "closure_pair_metrics",
    "cluster_metrics",
    "clusters_from_labels",
]
