"""The four duplicate-removal strictness levels of Table 2."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional, Tuple

from repro.votersim.schema import (
    ALL_ATTRIBUTES,
    HASH_EXCLUDED_ATTRIBUTES,
    PERSON_ATTRIBUTES,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.profile import SchemaProfile


class RemovalLevel(enum.Enum):
    """How aggressively (near-)exact duplicate records are dropped on import.

    * ``NONE`` — every record is imported (Table 2 row 1).
    * ``EXACT`` — records whose raw values (dates and age excluded) already
      exist in the cluster are dropped (row 2).
    * ``TRIMMED`` — like ``EXACT`` but values are trimmed first (row 3).
      This is the level the published 120 M-record dataset uses.
    * ``PERSON`` — like ``TRIMMED`` but only the personal attributes are
      hashed (row 4).
    """

    NONE = "none"
    EXACT = "exact"
    TRIMMED = "trimming"
    PERSON = "person"

    @property
    def trims(self) -> bool:
        """Whether values are trimmed before hashing."""
        return self in (RemovalLevel.TRIMMED, RemovalLevel.PERSON)

    @property
    def hash_attributes(self) -> Optional[Tuple[str, ...]]:
        """Attributes entering the record hash for the NC voter schema.

        ``None`` means no dedup at all.  For other domains use
        :meth:`hash_attributes_for` with their schema profile.
        """
        if self is RemovalLevel.NONE:
            return None
        excluded = set(HASH_EXCLUDED_ATTRIBUTES)
        if self is RemovalLevel.PERSON:
            pool = PERSON_ATTRIBUTES
        else:
            pool = ALL_ATTRIBUTES
        return tuple(attribute for attribute in pool if attribute not in excluded)

    def hash_attributes_for(self, profile: "SchemaProfile") -> Optional[Tuple[str, ...]]:
        """Attributes entering the record hash under ``profile``."""
        if self is RemovalLevel.NONE:
            return None
        return profile.hash_attributes(primary_only=self is RemovalLevel.PERSON)
