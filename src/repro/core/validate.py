"""Integrity validation of a generated cluster store.

A published test dataset is only useful if its invariants actually hold —
a corrupted gold standard "can render evaluation results completely
useless" (Section 3.1.1).  :func:`validate_store` checks every structural
invariant the pipeline guarantees and returns a report of violations, so
dataset publishers can gate releases on it (and users can verify what they
downloaded):

* cluster documents are well-formed and keyed consistently;
* ``meta.hashes`` mirrors the record hashes, without duplicates;
* every record's hash matches a recomputation from its values;
* ``first_version`` tags are within the published version range;
* version-similarity map indices reference earlier records only;
* version documents count exactly what the clusters contain.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.clusters import full_view
from repro.core.hashing import record_hash
from repro.core.profile import NC_VOTER_PROFILE, SchemaProfile
from repro.docstore import Database

SIMILARITY_KINDS = ("plausibility", "heterogeneity", "heterogeneity_person")


@dataclasses.dataclass
class ValidationReport:
    """Outcome of a store validation run."""

    clusters_checked: int
    records_checked: int
    errors: List[str]

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.errors


def validate_cluster(
    cluster: dict,
    profile: SchemaProfile = NC_VOTER_PROFILE,
    max_version: Optional[int] = None,
    check_hashes: bool = True,
    hash_attributes: Optional[tuple] = None,
    trim: bool = True,
) -> List[str]:
    """Violations of one cluster document's invariants (empty = sound).

    ``hash_attributes`` / ``trim`` must match the removal level the store
    was generated with (``validate_store`` derives them from the version
    metadata); they default to the ``trimming`` level.
    """
    errors: List[str] = []
    ncid = cluster.get("ncid")
    prefix = f"cluster {ncid!r}"
    if not ncid:
        errors.append(f"{prefix}: missing ncid")
    if cluster.get("_id") != ncid:
        errors.append(f"{prefix}: _id {cluster.get('_id')!r} != ncid")
    records = cluster.get("records")
    if not isinstance(records, list):
        errors.append(f"{prefix}: records is not a list")
        return errors
    meta = cluster.get("meta") or {}
    hashes = meta.get("hashes")
    if hashes is None:
        errors.append(f"{prefix}: meta.hashes missing")
    else:
        if len(hashes) != len(set(hashes)):
            errors.append(f"{prefix}: duplicate hashes in meta.hashes")
        record_hashes = [record.get("hash") for record in records]
        if sorted(hashes) != sorted(h for h in record_hashes if h is not None):
            errors.append(f"{prefix}: meta.hashes does not mirror record hashes")

    for index, record in enumerate(records):
        where = f"{prefix} record {index}"
        if "first_version" not in record:
            errors.append(f"{where}: missing first_version")
        elif max_version is not None and not 1 <= record["first_version"] <= max_version:
            errors.append(
                f"{where}: first_version {record['first_version']} outside "
                f"[1, {max_version}]"
            )
        if check_hashes and record.get("hash"):
            flat = {}
            for group in profile.group_names:
                flat.update(record.get(group) or {})
            attributes = hash_attributes or profile.hash_attributes()
            recomputed = record_hash(flat, attributes, trim=trim)
            if recomputed != record["hash"]:
                errors.append(f"{where}: stored hash does not match values")
        for kind in SIMILARITY_KINDS:
            for version_key, row in (record.get(kind) or {}).items():
                if not str(version_key).isdigit():
                    errors.append(f"{where}: non-numeric {kind} version key {version_key!r}")
                    continue
                for other_key, score in row.items():
                    if not str(other_key).isdigit() or int(other_key) >= index:
                        errors.append(
                            f"{where}: {kind} references record {other_key} "
                            f"(must be an earlier index)"
                        )
                    elif not 0.0 <= float(score) <= 1.0:
                        errors.append(
                            f"{where}: {kind} score {score} outside [0, 1]"
                        )
    return errors


def validate_store(
    database: Database,
    profile: SchemaProfile = NC_VOTER_PROFILE,
    check_hashes: bool = True,
) -> ValidationReport:
    """Validate every invariant of a generated store."""
    from repro.core.levels import RemovalLevel

    errors: List[str] = []
    clusters = database.get_collection("clusters", create=False)
    versions = database.get_collection("versions", create=False)
    version_docs = versions.find(sort=[("version", 1)])
    max_version: Optional[int] = None
    hash_attributes = profile.hash_attributes()
    trim = True
    if version_docs and version_docs[-1].get("removal"):
        removal = RemovalLevel(version_docs[-1]["removal"])
        if removal is RemovalLevel.NONE:
            check_hashes = False
        else:
            hash_attributes = removal.hash_attributes_for(profile)
            trim = removal.trims
    if version_docs:
        numbers = [doc["version"] for doc in version_docs]
        if numbers != list(range(1, len(numbers) + 1)):
            errors.append(f"version numbers not contiguous: {numbers}")
        max_version = numbers[-1]
        for earlier, later in zip(version_docs, version_docs[1:]):
            if later["records"] < earlier["records"]:
                errors.append(
                    f"version {later['version']} has fewer records than "
                    f"version {earlier['version']} (dataset must grow monotonically)"
                )
    else:
        errors.append("no version documents — store was never published")

    clusters_checked = 0
    records_checked = 0
    total_records = 0
    for cluster in clusters.all():
        clusters_checked += 1
        record_count = len(cluster.get("records") or [])
        records_checked += record_count
        total_records += record_count
        errors.extend(
            validate_cluster(
                cluster,
                profile,
                max_version=max_version,
                check_hashes=check_hashes,
                hash_attributes=hash_attributes,
                trim=trim,
            )
        )

    if version_docs:
        latest = version_docs[-1]
        if latest["records"] != total_records:
            errors.append(
                f"latest version documents {latest['records']} records, "
                f"store contains {total_records}"
            )
        if latest["clusters"] != clusters_checked:
            errors.append(
                f"latest version documents {latest['clusters']} clusters, "
                f"store contains {clusters_checked}"
            )
    return ValidationReport(
        clusters_checked=clusters_checked,
        records_checked=records_checked,
        errors=errors,
    )
