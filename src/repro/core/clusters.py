"""Cluster document layout and helpers (Section 5).

One document per voter (duplicate cluster)::

    {
      "_id": "<ncid>",
      "ncid": "<ncid>",
      "records": [
        {
          "person":   {...},       # personal attributes
          "district": {...},       # district attributes
          "election": {...},       # election attributes
          "meta":     {...},       # administrative attributes
          "hash": "<md5>",
          "first_version": 3,       # version that introduced this record
          "snapshots": ["2012-01-01", ...],   # snapshots containing it
          "plausibility": {"<v>": {"<j>": s, ...}},     # version-similarity
          "heterogeneity": {"<v>": {"<j>": s, ...}},    # maps (Section 5.2)
          "heterogeneity_person": {"<v>": {"<j>": s, ...}}
        }, ...
      ],
      "meta": {
        "hashes": [...],                       # for import-time dedup
        "inserts_per_snapshot": {"<date>": n}, # stats reconstruction
        "first_version": 1
      }
    }

Records inside a cluster never change order, which is what makes the
version-similarity maps reconstructible (Section 5.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.profile import SchemaProfile

from repro.votersim.schema import (
    DISTRICT_ATTRIBUTES,
    ELECTION_ATTRIBUTES,
    META_ATTRIBUTES,
    PERSON_ATTRIBUTES,
)

_GROUP_ATTRIBUTES = (
    ("person", PERSON_ATTRIBUTES),
    ("district", DISTRICT_ATTRIBUTES),
    ("election", ELECTION_ATTRIBUTES),
    ("meta", META_ATTRIBUTES),
)


def split_record(
    record: Dict[str, str], profile: Optional["SchemaProfile"] = None
) -> Dict[str, Dict[str, str]]:
    """Split a flat record into the profile's sub-documents.

    ``profile`` defaults to the NC voter schema (the paper's four
    ``person`` / ``district`` / ``election`` / ``meta`` groups).  Empty
    values are dropped — this is the sparse-data handling the paper chose
    the document model for: records with no district data simply have no
    ``district`` keys instead of 38 nulls.
    """
    if profile is None:
        group_attributes = _GROUP_ATTRIBUTES
    else:
        group_attributes = tuple(profile.groups.items())
    parts: Dict[str, Dict[str, str]] = {}
    for group, attributes in group_attributes:
        sub = {}
        for attribute in attributes:
            value = record.get(attribute)
            if value is not None and str(value).strip() != "":
                sub[attribute] = value
        parts[group] = sub
    return parts


def record_view(record_doc: Dict[str, Dict[str, str]], groups: Tuple[str, ...] = ("person",)) -> Dict[str, str]:
    """Flatten the chosen sub-documents of a stored record back into one dict."""
    flat: Dict[str, str] = {}
    for group in groups:
        flat.update(record_doc.get(group, {}))
    return flat


def full_view(record_doc: Dict[str, Dict[str, str]]) -> Dict[str, str]:
    """Flatten all four sub-documents of a stored record."""
    return record_view(record_doc, ("person", "district", "election", "meta"))


def cluster_pairs(cluster: Dict) -> Iterator[Tuple[int, int]]:
    """Yield every index pair ``(i, j)`` with ``i < j`` of a cluster's records."""
    count = len(cluster.get("records", ()))
    for j in range(1, count):
        for i in range(j):
            yield i, j


def duplicate_pair_count(cluster_size: int) -> int:
    """Number of duplicate pairs a cluster of ``cluster_size`` contributes."""
    return cluster_size * (cluster_size - 1) // 2
