"""Heterogeneity-bounded customisation — the NC1/NC2/NC3 procedure.

Section 6.5, three steps:

1. fix a heterogeneity range ``[h_lo, h_hi]``;
2. sample clusters, scan each cluster's records in order and drop every
   record whose heterogeneity to the preceding *kept* records falls outside
   the range;
3. sort the reduced clusters by size and keep the ``k`` largest as the
   customised test dataset.

The output is a flat test dataset: records (restricted to the requested
attribute groups) plus the gold standard implied by the surviving clusters.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.clusters import record_view
from repro.core.generator import TestDataGenerator
from repro.core.heterogeneity import HeterogeneityScorer


@dataclasses.dataclass
class CustomizationResult:
    """A customised test dataset (e.g. NC1, NC2 or NC3)."""

    name: str
    heterogeneity_range: Tuple[float, float]
    #: Flat records; position is the record id used in ``gold_pairs``.
    records: List[Dict[str, str]]
    #: record id -> cluster id (NCID).
    cluster_of: List[str]
    #: Gold standard over record ids.
    gold_pairs: Set[Tuple[int, int]]

    @property
    def record_count(self) -> int:
        """Number of records in the dataset."""
        return len(self.records)

    @property
    def cluster_count(self) -> int:
        """Number of distinct clusters in the dataset."""
        return len(set(self.cluster_of))

    def cluster_sizes(self) -> Dict[str, int]:
        """Map of cluster id to its record count."""
        sizes: Dict[str, int] = {}
        for ncid in self.cluster_of:
            sizes[ncid] = sizes.get(ncid, 0) + 1
        return sizes

    @property
    def max_cluster_size(self) -> int:
        """Size of the largest cluster."""
        sizes = self.cluster_sizes()
        return max(sizes.values()) if sizes else 0

    @property
    def avg_cluster_size(self) -> float:
        """Average records per cluster."""
        sizes = self.cluster_sizes()
        return len(self.cluster_of) / len(sizes) if sizes else 0.0

    def heterogeneity_stats(self, scorer: HeterogeneityScorer) -> Tuple[float, float]:
        """(average, maximum) pair heterogeneity of the dataset."""
        by_cluster: Dict[str, List[Dict[str, str]]] = {}
        for record, ncid in zip(self.records, self.cluster_of):
            by_cluster.setdefault(ncid, []).append(record)
        scores: List[float] = []
        for records in by_cluster.values():
            scores.extend(scorer.pair_heterogeneities(records))
        if not scores:
            return 0.0, 0.0
        return sum(scores) / len(scores), max(scores)


def reduce_cluster(
    flats: Sequence[Dict[str, str]],
    scorer: HeterogeneityScorer,
    h_lo: float,
    h_hi: float,
) -> List[int]:
    """Indices of the records kept by the in-order heterogeneity scan.

    The first record is always kept; each later record is kept only when
    its heterogeneity to *every* preceding kept record lies in
    ``[h_lo, h_hi]``.
    """
    kept: List[int] = []
    for index, flat in enumerate(flats):
        if not kept:
            kept.append(index)
            continue
        in_range = True
        for kept_index in kept:
            score = scorer.pair_heterogeneity(flats[kept_index], flat)
            if not h_lo <= score <= h_hi:
                in_range = False
                break
        if in_range:
            kept.append(index)
    return kept


def _validate_groups(groups: Sequence[str], generator: TestDataGenerator) -> None:
    """Reject unknown attribute groups before any cluster is scanned.

    A typo'd group would silently produce empty record views (and thus an
    empty or degenerate dataset); failing fast with a did-you-mean hint is
    the whole point of the static-analysis front-end.
    """
    known = tuple(generator.profile.groups)
    unknown = [group for group in groups if group not in generator.profile.groups]
    if not unknown:
        return
    from repro.analysis.registry import did_you_mean

    hints = []
    for group in unknown:
        hint = did_you_mean(str(group), known)
        hints.append(f"{group!r}" + (f" ({hint})" if hint else ""))
    raise ValueError(
        f"unknown attribute group(s) {', '.join(hints)}; "
        f"profile {generator.profile.name!r} has {sorted(known)}"
    )


def customize_from_spec(
    generator: TestDataGenerator,
    spec: Dict[str, Any],
) -> CustomizationResult:
    """Validate a JSON-able customisation spec, then execute it.

    The spec (see :mod:`repro.analysis.customization` for the format) is
    statically validated against the generator's schema profile *before*
    generation starts; error diagnostics raise :class:`ValueError` listing
    every problem (with did-you-mean hints), so a typo'd group, attribute or
    filter operator can never silently distort the dataset.
    """
    from repro.analysis import analyze_customization, errors_only

    diagnostics = analyze_customization(spec, generator.profile)
    errors = errors_only(diagnostics)
    if errors:
        rendered = "\n".join(f"  {d.render()}" for d in errors)
        raise ValueError(
            f"customisation spec rejected by static analysis "
            f"({len(errors)} error(s)):\n{rendered}"
        )
    result = customize(
        generator,
        float(spec.get("h_lo", 0.0)),
        float(spec.get("h_hi", 1.0)),
        target_clusters=int(spec.get("target_clusters", 10_000)),
        sample_clusters=spec.get("sample_clusters"),
        groups=tuple(spec.get("groups") or (generator.profile.primary_group,)),
        name=str(spec.get("name", "custom")),
        seed=int(spec.get("seed", 0)),
        min_cluster_size=int(spec.get("min_cluster_size", 2)),
    )
    transform = spec.get("transform")
    if transform:
        from repro.core.transform import apply_transform_spec

        result = apply_transform_spec(result, transform)
    return result


def customize(
    generator: TestDataGenerator,
    h_lo: float,
    h_hi: float,
    target_clusters: int = 10_000,
    sample_clusters: Optional[int] = None,
    groups: Tuple[str, ...] = ("person",),
    scorer: Optional[HeterogeneityScorer] = None,
    name: str = "custom",
    seed: int = 0,
    min_cluster_size: int = 2,
) -> CustomizationResult:
    """Build a customised test dataset from a generated cluster store.

    ``sample_clusters`` bounds the number of clusters scanned (step 2 picks
    a random sample; ``None`` scans all).  ``scorer`` defaults to entropy
    weights over one record per cluster, the same weights the stored
    heterogeneity scores use.
    """
    if not 0.0 <= h_lo <= h_hi <= 1.0:
        raise ValueError(f"need 0 <= h_lo <= h_hi <= 1, got [{h_lo}, {h_hi}]")
    if target_clusters < 1:
        raise ValueError(f"target_clusters must be >= 1, got {target_clusters}")
    _validate_groups(groups, generator)
    clusters = list(generator.clusters())
    rng = random.Random(seed)
    if sample_clusters is not None and sample_clusters < len(clusters):
        clusters = rng.sample(clusters, sample_clusters)
    if scorer is None:
        scorer = HeterogeneityScorer.from_clusters(clusters, groups)

    reduced: List[Tuple[str, List[Dict[str, str]]]] = []
    for cluster in clusters:
        flats = [record_view(record, groups) for record in cluster["records"]]
        kept = reduce_cluster(flats, scorer, h_lo, h_hi)
        if len(kept) < min_cluster_size:
            continue
        reduced.append((cluster["ncid"], [flats[i] for i in kept]))

    reduced.sort(key=lambda item: (-len(item[1]), item[0]))
    selected = reduced[:target_clusters]

    records: List[Dict[str, str]] = []
    cluster_of: List[str] = []
    gold_pairs: Set[Tuple[int, int]] = set()
    for ncid, flats in selected:
        first_id = len(records)
        for flat in flats:
            records.append(flat)
            cluster_of.append(ncid)
        for j in range(first_id + 1, first_id + len(flats)):
            for i in range(first_id, j):
                gold_pairs.add((i, j))
    return CustomizationResult(
        name=name,
        heterogeneity_range=(h_lo, h_hi),
        records=records,
        cluster_of=cluster_of,
        gold_pairs=gold_pairs,
    )
