"""Augmentation: historical data + data pollution (the DaPo future work).

Section 8's second future-work item: "combine our approach with a scalable
data pollution tool, such as DaPo, to unite the strengths of having real
outdated values and being able to inject additional errors at will.  Our
goal here is to increase the flexibility for customization".

The :class:`Augmenter` takes a generated cluster store and injects
*synthetic* duplicate records: copies of existing records whose primary-
group values are corrupted by the pollution corruptors.  Because every
synthetic record is derived from a record of the same cluster, the gold
standard stays sound; because the source records already carry the
register's organic outdated values and errors, the synthetic errors stack
on top of real history — exactly the combination the paper wants.

Synthetic records are first-class pipeline citizens: they carry their
introducing version (so reconstruction keeps working), their hash (so
future imports dedup against them) and full provenance (``synthetic``,
``augmented_from``, ``corruptions``) so users can filter them out again.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.generator import TestDataGenerator
from repro.core.hashing import record_hash
from repro.pollute.corruptors import CorruptorSuite, default_corruptors


@dataclasses.dataclass
class AugmentationPlan:
    """How much pollution to inject.

    ``share_of_clusters`` of all clusters receive ``duplicates_per_cluster``
    synthetic records each; every synthetic record gets
    ``errors_per_duplicate`` corruptions (fractional = probabilistic) drawn
    from ``corruptor_weights``.
    """

    share_of_clusters: float = 0.3
    duplicates_per_cluster: int = 1
    errors_per_duplicate: float = 1.5
    corruptor_weights: Dict[str, float] = dataclasses.field(
        default_factory=lambda: {
            "typo": 4.0,
            "phonetic": 2.0,
            "ocr": 0.5,
            "abbreviate": 1.0,
            "missing": 1.0,
            "representation": 1.0,
            "token_transposition": 0.5,
        }
    )
    #: Attributes eligible for corruption; default: the profile's primary
    #: attributes minus its id attribute.
    attributes: Optional[Sequence[str]] = None
    seed: int = 0

    def validate(self) -> None:
        """Raise ValueError when any knob is out of range."""
        if not 0.0 <= self.share_of_clusters <= 1.0:
            raise ValueError(
                f"share_of_clusters must be in [0, 1], got {self.share_of_clusters}"
            )
        if self.duplicates_per_cluster < 1:
            raise ValueError(
                "duplicates_per_cluster must be >= 1, got "
                f"{self.duplicates_per_cluster}"
            )
        if self.errors_per_duplicate < 0:
            raise ValueError(
                f"errors_per_duplicate must be >= 0, got {self.errors_per_duplicate}"
            )


@dataclasses.dataclass
class AugmentStats:
    """What an augmentation pass did."""

    clusters_touched: int
    records_added: int


class Augmenter:
    """Injects synthetic duplicates into a generated cluster store."""

    def __init__(self, generator: TestDataGenerator, plan: Optional[AugmentationPlan] = None) -> None:
        self.generator = generator
        self.plan = plan or AugmentationPlan()
        self.plan.validate()
        self.rng = random.Random(self.plan.seed)
        self.suite = CorruptorSuite(self.plan.corruptor_weights)

    def _corruptible_attributes(self) -> Tuple[str, ...]:
        if self.plan.attributes is not None:
            return tuple(self.plan.attributes)
        profile = self.generator.profile
        return tuple(
            a for a in profile.primary_attributes() if a != profile.id_attribute
        )

    def _synthesize(self, cluster: dict, attributes: Tuple[str, ...]) -> dict:
        """Build one synthetic record from a random source record."""
        import copy

        profile = self.generator.profile
        source_index = self.rng.randrange(len(cluster["records"]))
        source = cluster["records"][source_index]
        synthetic = {
            group: copy.deepcopy(source.get(group, {}))
            for group in profile.group_names
        }
        primary = synthetic[profile.primary_group]
        corruptions: List[str] = []
        count = int(self.plan.errors_per_duplicate)
        if self.rng.random() < self.plan.errors_per_duplicate - count:
            count += 1
        registry = default_corruptors()
        names = list(self.plan.corruptor_weights)
        weights = list(self.plan.corruptor_weights.values())
        candidates = [a for a in attributes if (primary.get(a) or "").strip()]
        for _ in range(count):
            if not candidates:
                break
            attribute = self.rng.choice(candidates)
            corruptor = self.rng.choices(names, weights=weights, k=1)[0]
            primary[attribute] = registry[corruptor](primary[attribute], self.rng)
            corruptions.append(f"{corruptor}:{attribute}")
            if not (primary.get(attribute) or "").strip():
                primary.pop(attribute, None)
                candidates = [a for a in candidates if a != attribute]

        flat = {}
        for group in profile.group_names:
            flat.update(synthetic.get(group, {}))
        removal = self.generator.removal
        hash_attributes = (
            removal.hash_attributes_for(profile) or profile.hash_attributes()
        )
        digest = record_hash(flat, hash_attributes, trim=removal.trims)
        synthetic["hash"] = digest
        synthetic["first_version"] = self.generator.pending_version
        synthetic["snapshots"] = []
        synthetic["synthetic"] = True
        synthetic["augmented_from"] = source_index
        synthetic["corruptions"] = corruptions
        synthetic["plausibility"] = {}
        synthetic["heterogeneity"] = {}
        synthetic["heterogeneity_person"] = {}
        return synthetic

    def augment(self) -> AugmentStats:
        """Inject synthetic duplicates according to the plan.

        Call between :meth:`TestDataGenerator.import_snapshot` and
        :meth:`~repro.core.versioning.UpdateProcess.update_statistics` /
        :meth:`TestDataGenerator.publish` so the synthetic records are
        scored and versioned like imported ones.
        """
        attributes = self._corruptible_attributes()
        clusters_touched = 0
        records_added = 0
        for cluster in self.generator.clusters():
            if not cluster["records"]:
                continue
            if self.rng.random() >= self.plan.share_of_clusters:
                continue
            clusters_touched += 1
            for _ in range(self.plan.duplicates_per_cluster):
                synthetic = self._synthesize(cluster, attributes)
                if synthetic["hash"] in cluster["meta"]["hashes"]:
                    continue  # corruption produced an existing record
                cluster["records"].append(synthetic)
                cluster["meta"]["hashes"].append(synthetic["hash"])
                records_added += 1
            self.generator._dirty.add(cluster["ncid"])
        return AugmentStats(
            clusters_touched=clusters_touched, records_added=records_added
        )


def strip_synthetic(cluster: dict) -> List[dict]:
    """The cluster's organic (non-augmented) records — the user-side filter."""
    return [
        record for record in cluster["records"] if not record.get("synthetic")
    ]
