"""Naive reference cluster scoring (the oracle for the batched fast paths).

Mirrors :func:`repro.core.plausibility.score_cluster` and
:meth:`repro.core.heterogeneity.HeterogeneityScorer.score_cluster_document`
but computes every record pair from scratch through the naive string kernels
in :mod:`repro.textsim._reference` — no caching, no pair deduplication, no
prefix stripping.  Tests assert the production paths are bit-identical to
this module; the scoring benchmark measures their speedup against it.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Optional, Tuple

from repro.core.clusters import record_view
from repro.core.plausibility import (
    WEIGHTS,
    name_tokens,
    sex_similarity,
    year_of_birth,
    year_of_birth_similarity,
)
from repro.textsim import _reference as textref


def name_similarity_reference(left: Dict[str, str], right: Dict[str, str]) -> float:
    """Best-permutation name similarity via the naive kernels."""
    tokens_left = name_tokens(left)
    tokens_right = name_tokens(right)
    best = 0.0
    for permutation in itertools.permutations(range(3)):
        total = sum(
            textref.extended_damerau_levenshtein_similarity(
                tokens_left[index], tokens_right[permutation[index]]
            )
            for index in range(3)
        )
        best = max(best, total / 3.0)
        if best == 1.0:
            break
    return best


def pair_plausibility_reference(
    left: Dict[str, str],
    right: Dict[str, str],
    snapshot_left: Optional[str] = None,
    snapshot_right: Optional[str] = None,
) -> float:
    """Weighted pair plausibility via the naive kernels."""
    scores = {
        "name": name_similarity_reference(left, right),
        "sex": sex_similarity(left, right),
        "yob": year_of_birth_similarity(
            year_of_birth(left, snapshot_left), year_of_birth(right, snapshot_right)
        ),
        "birth_place": textref.extended_damerau_levenshtein_similarity(
            (left.get("birth_place") or "").strip(),
            (right.get("birth_place") or "").strip(),
        ),
    }
    total_weight = sum(WEIGHTS.values())
    return sum(WEIGHTS[key] * scores[key] for key in scores) / total_weight


def _flat(record_doc: dict) -> Tuple[Dict[str, str], str]:
    flat = record_view(record_doc, ("person",))
    snapshots = record_doc.get("snapshots") or []
    return flat, (snapshots[0] if snapshots else "")


def score_cluster_reference(
    cluster: dict, version: Optional[int] = None
) -> Dict[int, Dict[int, float]]:
    """Naive plausibility maps ``{j: {i: score}}`` for one cluster."""
    records = cluster["records"]
    flats = [_flat(record) for record in records]
    maps: Dict[int, Dict[int, float]] = {}
    for j in range(1, len(records)):
        if version is not None and records[j]["first_version"] != version:
            continue
        row: Dict[int, float] = {}
        for i in range(j):
            left, snap_left = flats[i]
            right, snap_right = flats[j]
            row[i] = pair_plausibility_reference(left, right, snap_left, snap_right)
        maps[j] = row
    return maps


def score_plausibility_reference(
    clusters: Iterable[dict], version: Optional[int] = None
) -> Dict[str, Dict[int, Dict[int, float]]]:
    """Naive plausibility maps for many clusters, keyed by ``ncid``."""
    return {
        cluster["ncid"]: score_cluster_reference(cluster, version)
        for cluster in clusters
    }


def pair_heterogeneity_reference(
    weights: Dict[str, float], left: Dict[str, str], right: Dict[str, str]
) -> float:
    """Weighted average inverse value similarity via the naive kernels."""
    total = 0.0
    for attribute, weight in weights.items():
        if weight == 0.0:
            continue
        value_left = (left.get(attribute) or "").strip()
        value_right = (right.get(attribute) or "").strip()
        similarity = textref.four_way_similarity(value_left, value_right)
        total += weight * (1.0 - similarity)
    return total


def score_heterogeneity_reference(
    weights: Dict[str, float],
    clusters: Iterable[dict],
    groups: Tuple[str, ...] = ("person",),
    version: Optional[int] = None,
) -> Dict[str, Dict[int, Dict[int, float]]]:
    """Naive heterogeneity maps for many clusters, keyed by ``ncid``."""
    results: Dict[str, Dict[int, Dict[int, float]]] = {}
    for cluster in clusters:
        records = cluster["records"]
        flats = [record_view(record, groups) for record in records]
        maps: Dict[int, Dict[int, float]] = {}
        for j in range(1, len(records)):
            if version is not None and records[j]["first_version"] != version:
                continue
            row: Dict[int, float] = {}
            for i in range(j):
                row[i] = pair_heterogeneity_reference(weights, flats[i], flats[j])
            maps[j] = row
        results[cluster["ncid"]] = maps
    return results
