"""The paper's contribution: test-data generation from historical snapshots.

Pipeline overview (Sections 4 and 5 of the paper):

1. :mod:`repro.core.hashing` — MD5 record hashes over configurable attribute
   sets (dates and age excluded) used to detect (near-)exact duplicates.
2. :mod:`repro.core.levels` — the four duplicate-removal strictness levels of
   Table 2 (``none`` / ``exact`` / ``trimming`` / ``person``).
3. :mod:`repro.core.generator` — :class:`TestDataGenerator`: imports
   snapshots into an aggregate-per-cluster document store, maintains the
   gold standard, versions and publishes the dataset.
4. :mod:`repro.core.plausibility` / :mod:`repro.core.heterogeneity` —
   the precalculated similarity scores of Sections 6.2 and 6.3.
5. :mod:`repro.core.irregularities` — the error-type census of Section 6.4.
6. :mod:`repro.core.customize` — heterogeneity-bounded customisation
   (the NC1/NC2/NC3 procedure of Section 6.5).
7. :mod:`repro.core.statistics` — the generation statistics behind
   Tables 1/2 and Figure 1.
"""

from __future__ import annotations

from repro.core.augment import AugmentationPlan, Augmenter, strip_synthetic
from repro.core.clusters import cluster_pairs, record_view, split_record
from repro.core.customize import (
    CustomizationResult,
    customize,
    customize_from_spec,
)
from repro.core.generator import ImportStats, TestDataGenerator
from repro.core.hashing import record_hash
from repro.core.profile import NC_VOTER_PROFILE, SchemaProfile
from repro.core.repair import apply_repair, repair_clusters, split_cluster
from repro.core.transform import (
    apply_transform_spec,
    drop_attributes,
    merge_attributes,
    select_by_cluster_size,
    transform_result,
)
from repro.core.heterogeneity import HeterogeneityScorer, entropy_weights
from repro.core.irregularities import IrregularityCensus
from repro.core.levels import RemovalLevel
from repro.core.plausibility import (
    cluster_plausibility,
    name_similarity,
    pair_plausibility,
    sex_similarity,
    year_of_birth_similarity,
)

__all__ = [
    "TestDataGenerator",
    "ImportStats",
    "RemovalLevel",
    "record_hash",
    "split_record",
    "record_view",
    "cluster_pairs",
    "pair_plausibility",
    "cluster_plausibility",
    "name_similarity",
    "sex_similarity",
    "year_of_birth_similarity",
    "HeterogeneityScorer",
    "entropy_weights",
    "IrregularityCensus",
    "customize",
    "customize_from_spec",
    "CustomizationResult",
    "SchemaProfile",
    "NC_VOTER_PROFILE",
    "Augmenter",
    "AugmentationPlan",
    "strip_synthetic",
    "split_cluster",
    "repair_clusters",
    "apply_repair",
    "drop_attributes",
    "merge_attributes",
    "transform_result",
    "apply_transform_spec",
    "select_by_cluster_size",
]
