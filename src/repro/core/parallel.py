"""Parallel snapshot import (Figure 2: "parallel or sequential import").

Clusters are independent by entity id, so the import is embarrassingly
parallel across id shards: every worker imports the full snapshot stream
filtered to its shard with a private :class:`TestDataGenerator`, and the
shard results merge by simple union.  The merge is deterministic: shard
assignment depends only on the entity id (a stable hash), so the resulting
cluster store is identical to a sequential import — per-snapshot statistics
are summed across shards.
"""

from __future__ import annotations

import concurrent.futures
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.generator import ImportStats, TestDataGenerator
from repro.core.levels import RemovalLevel
from repro.core.profile import NC_VOTER_PROFILE, SchemaProfile
from repro.votersim.snapshots import Snapshot


def shard_of(entity_id: str, shards: int) -> int:
    """Stable shard index of an entity id (crc32-based, seed-free)."""
    return zlib.crc32(entity_id.strip().encode("utf-8")) % shards


def _filter_snapshot(snapshot: Snapshot, shard: int, shards: int, id_attribute: str) -> Snapshot:
    records = [
        record
        for record in snapshot.records
        if shard_of(record.get(id_attribute) or "", shards) == shard
    ]
    return Snapshot(date=snapshot.date, records=records)


def _import_shard(
    shard: int,
    shards: int,
    snapshots: Sequence[Snapshot],
    removal_value: str,
    profile: SchemaProfile,
) -> Tuple[int, Dict[str, dict], List[dict]]:
    """Worker: import one shard's records; returns its clusters and stats."""
    generator = TestDataGenerator(
        removal=RemovalLevel(removal_value), profile=profile
    )
    for snapshot in snapshots:
        generator.import_snapshot(
            _filter_snapshot(snapshot, shard, shards, profile.id_attribute)
        )
    stats = [
        {
            "snapshot_date": s.snapshot_date,
            "rows": s.rows,
            "new_records": s.new_records,
            "new_clusters": s.new_clusters,
            "skipped": s.skipped,
        }
        for s in generator.import_stats
    ]
    return shard, generator._clusters, stats


def import_snapshots_parallel(
    generator: TestDataGenerator,
    snapshots: Sequence[Snapshot],
    shards: int = 4,
    max_workers: Optional[int] = None,
) -> List[ImportStats]:
    """Import ``snapshots`` into ``generator`` using sharded parallelism.

    The generator must be empty (parallel import builds the initial load;
    incremental updates go through the sequential path, which dedups
    against existing clusters).  ``max_workers=0`` runs the shards
    sequentially in-process — same results, no process overhead (useful
    for tests and small loads).
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if generator.cluster_count:
        raise ValueError(
            "parallel import requires an empty generator; use the "
            "sequential import for incremental updates"
        )
    snapshots = list(snapshots)
    results: List[Tuple[int, Dict[str, dict], List[dict]]] = []
    if not max_workers:
        for shard in range(shards):
            results.append(
                _import_shard(
                    shard, shards, snapshots, generator.removal.value, generator.profile
                )
            )
    else:
        with concurrent.futures.ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(
                    _import_shard,
                    shard,
                    shards,
                    snapshots,
                    generator.removal.value,
                    generator.profile,
                )
                for shard in range(shards)
            ]
            for future in futures:
                results.append(future.result())

    results.sort(key=lambda item: item[0])
    merged_stats: List[ImportStats] = []
    for shard, clusters, stats in results:
        overlap = set(clusters) & set(generator._clusters)
        if overlap:  # pragma: no cover - shard function guarantees disjoint
            raise RuntimeError(f"shards overlap on ids: {sorted(overlap)[:5]}")
        generator._clusters.update(clusters)
        generator._dirty.update(clusters)
        if not merged_stats:
            merged_stats = [
                ImportStats(
                    snapshot_date=row["snapshot_date"],
                    rows=row["rows"],
                    new_records=row["new_records"],
                    new_clusters=row["new_clusters"],
                    skipped=row["skipped"],
                )
                for row in stats
            ]
        else:
            for target, row in zip(merged_stats, stats):
                target.rows += row["rows"]
                target.new_records += row["new_records"]
                target.new_clusters += row["new_clusters"]
                target.skipped += row["skipped"]
    generator.import_stats.extend(merged_stats)
    generator._imported_snapshots.extend(s.date for s in snapshots)
    return merged_stats
