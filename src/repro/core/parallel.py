"""Parallel snapshot import and parallel cluster scoring.

Two embarrassingly parallel stages share the same sharding scheme
(:func:`shard_of`, a stable seed-free hash of the entity id):

* **Import** (Figure 2: "parallel or sequential import") — every worker
  imports the full snapshot stream filtered to its shard with a private
  :class:`TestDataGenerator`; shard results merge by simple union.
* **Scoring** (Sections 6.2–6.3) — plausibility and heterogeneity maps are
  independent per cluster, so clusters are sharded by ncid and scored with
  the batched fast paths (:func:`repro.core.plausibility.score_clusters`,
  :meth:`repro.core.heterogeneity.HeterogeneityScorer.score_clusters`);
  each worker keeps its own pair-deduplication caches.

Both merges are deterministic: shard assignment depends only on the entity
id, the scored maps are pure functions of the cluster documents, and the
per-cluster results are disjoint — so any shard count (including the
``max_workers=0`` in-process fallback) produces identical output.

Both stages are also fault tolerant (:func:`run_shards`): a crashed or
timed-out worker retries its shard with exponential backoff, and repeated
failure degrades that shard to in-process execution with a structured
:class:`ParallelDegradedWarning` instead of losing the run.
"""

from __future__ import annotations

import concurrent.futures
import functools
import os
import time
import warnings
import zlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.generator import ImportStats, TestDataGenerator
from repro.core.heterogeneity import HeterogeneityScorer
from repro.core.levels import RemovalLevel
from repro.core.plausibility import score_clusters as _score_plausibility_clusters
from repro.core.profile import NC_VOTER_PROFILE, SchemaProfile
from repro.votersim.snapshots import Snapshot

#: ``{ncid: {kind: {j: {i: score}}}}`` — the result layout of parallel scoring.
ScoredMaps = Dict[str, Dict[str, Dict[int, Dict[int, float]]]]


class ParallelDegradedWarning(UserWarning):
    """Parallel execution degraded to in-process after repeated failures.

    Carries the structured context (:attr:`label`, :attr:`shard_indices`,
    :attr:`attempts`, :attr:`cause`) so callers and log processors can act
    on it without parsing the message.  The run still completes — the
    failed shards are recomputed in the parent process — it just loses the
    process-level parallelism for those shards.
    """

    def __init__(
        self,
        label: str,
        shard_indices: Sequence[int],
        attempts: int,
        cause: Optional[BaseException],
    ) -> None:
        self.label = label
        self.shard_indices = list(shard_indices)
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"{label}: shard(s) {self.shard_indices} failed "
            f"{attempts} attempt(s) in worker processes "
            f"({cause!r}); degrading to in-process execution"
        )


#: Failures worth retrying: a crashed/killed worker (the pool breaks), a
#: per-shard timeout, or an OS-level resource failure.  Deterministic
#: Python exceptions raised *by the workload itself* propagate unchanged —
#: retrying a genuine bug would only hide it.
_RETRYABLE = (concurrent.futures.BrokenExecutor, TimeoutError, OSError)


class WorkerClampWarning(UserWarning):
    """A requested worker count exceeded the machine's CPU count.

    Oversubscribing processes (or threads doing pure-Python work under the
    GIL) only adds scheduling overhead, so the pool is clamped to
    ``os.cpu_count()``.  Warned once per call-site label per process.
    """

    def __init__(self, label: str, requested: int, effective: int) -> None:
        self.label = label
        self.requested = requested
        self.effective = effective
        super().__init__(
            f"{label}: requested {requested} workers on a machine with "
            f"{effective} CPU(s); clamping to {effective}"
        )


#: Labels that already warned about clamping (warn-once per process).
#: Process-local by design: each worker process re-warns at most once, and
#: the set only ever grows — no cross-process coordination is needed for
#: correctness because clamping itself is derived purely from os.cpu_count().
_CLAMP_WARNED: set = set()


#: Process-local resilience telemetry for :func:`run_shards`: how many
#: pooled runs happened, how many shard attempts had to be retried, and how
#: many shards ultimately degraded to in-process execution.  Diagnostic
#: counters only — never read back to make decisions — so workers keeping
#: their own (discarded) copies is correct by construction.
_RESILIENCE: Dict[str, int] = {
    "pool_runs": 0,
    "shard_retries": 0,
    "degraded_shards": 0,
}


def resilience_counters() -> Dict[str, int]:
    """A snapshot copy of the process-local resilience counters."""
    return dict(_RESILIENCE)


def reset_resilience_counters() -> None:
    """Zero the resilience counters (test isolation hook)."""
    for key in _RESILIENCE:
        _RESILIENCE[key] = 0


@functools.lru_cache(maxsize=1)
def _cpu_count() -> int:
    """``os.cpu_count()`` memoized: constant per process, queried on every
    routed read (the docstore's scatter-gather fan-out sizes its pool per
    query), so the OS lookup is paid once instead of per operation."""
    return os.cpu_count() or 1


def effective_worker_count(
    requested: Optional[int], label: str = "parallel shards", warn: bool = True
) -> int:
    """``requested`` clamped to the machine's CPU count (0/None stay 0).

    Returns the worker count a pool should actually be sized to.  The first
    time a ``label`` clamps in this process a :class:`WorkerClampWarning`
    is emitted (suppress with ``warn=False``).
    """
    if not requested:
        return 0
    cpus = _cpu_count()
    if requested <= cpus:
        return requested
    if warn and label not in _CLAMP_WARNED:
        _CLAMP_WARNED.add(label)
        warnings.warn(WorkerClampWarning(label, requested, cpus), stacklevel=3)
    return cpus


def run_shards(
    worker: Callable[..., Any],
    shard_args: Sequence[Tuple],
    max_workers: Optional[int],
    *,
    max_retries: int = 2,
    timeout: Optional[float] = None,
    backoff: float = 0.1,
    label: str = "parallel shards",
) -> List[Any]:
    """Run ``worker(*args)`` per shard with retries and graceful fallback.

    The fault-tolerance contract of every parallel stage in this module:

    * ``max_workers=0``/``None`` — run in-process, sequentially;
    * a worker crash (``BrokenProcessPool``), per-shard ``timeout`` or OS
      failure retries only the failed shards, with exponential backoff
      (``backoff * 2**attempt`` seconds) and a fresh pool each round;
    * after ``max_retries`` retry rounds the surviving failures degrade to
      in-process execution with a :class:`ParallelDegradedWarning` — the
      run never loses data because a worker died.

    Results are returned in ``shard_args`` order.  Shard functions must be
    pure (workers may be retried and re-executed), which every worker in
    this module is by construction.

    A request for more workers than the machine has CPUs is clamped to
    ``os.cpu_count()`` (with a once-per-label :class:`WorkerClampWarning`)
    — oversubscribed process pools only add scheduling overhead.
    """
    max_workers = effective_worker_count(max_workers, label=label)
    if not max_workers:
        return [worker(*args) for args in shard_args]
    _RESILIENCE["pool_runs"] += 1
    results: List[Any] = [None] * len(shard_args)
    pending = list(range(len(shard_args)))
    last_error: Optional[BaseException] = None
    attempts = 0
    for attempt in range(max_retries + 1):
        if not pending:
            break
        if attempt and backoff:
            time.sleep(backoff * (2 ** (attempt - 1)))
        attempts = attempt + 1
        failed: List[int] = []
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(max_workers, len(pending))
        )
        try:
            futures = {
                index: pool.submit(worker, *shard_args[index]) for index in pending
            }
            for index, future in futures.items():
                try:
                    results[index] = future.result(timeout=timeout)
                except _RETRYABLE as exc:
                    failed.append(index)
                    last_error = exc
        finally:
            # wait=False so a hung worker cannot hang the retry loop; the
            # abandoned process exits with the interpreter.
            pool.shutdown(wait=False, cancel_futures=True)
        _RESILIENCE["shard_retries"] += len(failed)
        pending = failed
    if pending:
        _RESILIENCE["degraded_shards"] += len(pending)
        warnings.warn(
            ParallelDegradedWarning(label, pending, attempts, last_error),
            stacklevel=2,
        )
        for index in pending:
            results[index] = worker(*shard_args[index])
    return results


def run_read_shards(
    worker: Callable[..., Any],
    shard_args: Sequence[Tuple],
    max_workers: Optional[int],
    *,
    label: str = "parallel read shards",
) -> List[Any]:
    """Run ``worker(*args)`` per shard in *threads*; results in input order.

    The thread-based sibling of :func:`run_shards`, for read-only fan-out
    over shared in-memory state (the docstore's scatter-gather reads):
    nothing is pickled and workers may hold references into live data
    structures, which a process pool cannot.  Worker counts clamp to the
    CPU count like :func:`run_shards`; note that pure-Python scans gain no
    CPU parallelism under the GIL — the fan-out exists for structure and
    for workloads that release the GIL.  Exceptions propagate unchanged
    (reads are not retried: they are deterministic, so a failure is a bug).
    """
    max_workers = effective_worker_count(max_workers, label=label)
    if max_workers <= 1 or len(shard_args) <= 1:
        return [worker(*args) for args in shard_args]
    with concurrent.futures.ThreadPoolExecutor(
        max_workers=min(max_workers, len(shard_args))
    ) as pool:
        futures = [pool.submit(worker, *args) for args in shard_args]
        return [future.result() for future in futures]


def shard_of(entity_id: str, shards: int) -> int:
    """Stable shard index of an entity id (crc32-based, seed-free)."""
    return zlib.crc32(entity_id.strip().encode("utf-8")) % shards


def shard_of_int(key: int, shards: int) -> int:
    """Stable shard index of a non-negative integer key (seed-free).

    Used by the duplicate-detection pipeline to shard packed 64-bit pair
    keys (``i * n + j``, see :mod:`repro.dedup.pipeline`).  Plain modulo is
    deliberate: packed keys are already well spread over the key space, the
    assignment depends only on the key and the shard count, and — like
    :func:`shard_of` — it is identical in every process and on every run,
    which is what makes sharded results order-independent and mergeable.
    """
    return key % shards


def _filter_snapshot(snapshot: Snapshot, shard: int, shards: int, id_attribute: str) -> Snapshot:
    records = [
        record
        for record in snapshot.records
        if shard_of(record.get(id_attribute) or "", shards) == shard
    ]
    return Snapshot(date=snapshot.date, records=records)


def _import_shard(
    shard: int,
    shards: int,
    snapshots: Sequence[Snapshot],
    removal_value: str,
    profile: SchemaProfile,
) -> Tuple[int, Dict[str, dict], List[dict]]:
    """Worker: import one shard's records; returns its clusters and stats."""
    generator = TestDataGenerator(
        removal=RemovalLevel(removal_value), profile=profile
    )
    for snapshot in snapshots:
        generator.import_snapshot(
            _filter_snapshot(snapshot, shard, shards, profile.id_attribute)
        )
    stats = [
        {
            "snapshot_date": s.snapshot_date,
            "rows": s.rows,
            "new_records": s.new_records,
            "new_clusters": s.new_clusters,
            "skipped": s.skipped,
        }
        for s in generator.import_stats
    ]
    return shard, generator._clusters, stats


def import_snapshots_parallel(
    generator: TestDataGenerator,
    snapshots: Sequence[Snapshot],
    shards: int = 4,
    max_workers: Optional[int] = None,
    *,
    max_retries: int = 2,
    timeout: Optional[float] = None,
    backoff: float = 0.1,
) -> List[ImportStats]:
    """Import ``snapshots`` into ``generator`` using sharded parallelism.

    The generator must be empty (parallel import builds the initial load;
    incremental updates go through the sequential path, which dedups
    against existing clusters).  ``max_workers=0`` runs the shards
    sequentially in-process — same results, no process overhead (useful
    for tests and small loads).  Worker crashes and timeouts are retried
    and ultimately degrade to in-process import (see :func:`run_shards`).
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if generator.cluster_count:
        raise ValueError(
            "parallel import requires an empty generator; use the "
            "sequential import for incremental updates"
        )
    snapshots = list(snapshots)
    results: List[Tuple[int, Dict[str, dict], List[dict]]] = run_shards(
        _import_shard,
        [
            (shard, shards, snapshots, generator.removal.value, generator.profile)
            for shard in range(shards)
        ],
        max_workers,
        max_retries=max_retries,
        timeout=timeout,
        backoff=backoff,
        label="parallel snapshot import",
    )
    results.sort(key=lambda item: item[0])
    merged_stats: List[ImportStats] = []
    for shard, clusters, stats in results:
        overlap = set(clusters) & set(generator._clusters)
        if overlap:  # pragma: no cover - shard function guarantees disjoint
            raise RuntimeError(f"shards overlap on ids: {sorted(overlap)[:5]}")
        generator._clusters.update(clusters)
        generator._dirty.update(clusters)
        if not merged_stats:
            merged_stats = [
                ImportStats(
                    snapshot_date=row["snapshot_date"],
                    rows=row["rows"],
                    new_records=row["new_records"],
                    new_clusters=row["new_clusters"],
                    skipped=row["skipped"],
                )
                for row in stats
            ]
        else:
            for target, row in zip(merged_stats, stats):
                target.rows += row["rows"]
                target.new_records += row["new_records"]
                target.new_clusters += row["new_clusters"]
                target.skipped += row["skipped"]
    generator.import_stats.extend(merged_stats)
    generator._imported_snapshots.extend(s.date for s in snapshots)
    return merged_stats


# ------------------------------------------------------------ parallel scoring


def _score_shard(
    clusters: List[dict],
    version: Optional[int],
    with_plausibility: bool,
    weights_all: Optional[Dict[str, float]],
    weights_primary: Optional[Dict[str, float]],
    all_groups: Tuple[str, ...],
    primary_groups: Tuple[str, ...],
) -> ScoredMaps:
    """Worker: score one shard's clusters with the batched fast paths.

    Runs in a worker process (or inline for ``max_workers=0``); only plain
    dicts/tuples cross the process boundary.  Each invocation builds its own
    pair-deduplication caches — the heavy-tailed value distributions repeat
    within a shard just as they do globally.
    """
    merged: ScoredMaps = {ncid: {} for ncid in (c["ncid"] for c in clusters)}
    if with_plausibility:
        for ncid, maps in _score_plausibility_clusters(clusters, version).items():
            merged[ncid]["plausibility"] = maps
    if weights_all is not None:
        scorer = HeterogeneityScorer(weights_all)
        for ncid, maps in scorer.score_clusters(
            clusters, all_groups, version=version
        ).items():
            merged[ncid]["heterogeneity"] = maps
    if weights_primary is not None:
        scorer = HeterogeneityScorer(weights_primary)
        for ncid, maps in scorer.score_clusters(
            clusters, primary_groups, version=version
        ).items():
            merged[ncid]["heterogeneity_person"] = maps
    return merged


def score_clusters_parallel(
    clusters: Sequence[dict],
    version: Optional[int] = None,
    *,
    with_plausibility: bool = True,
    heterogeneity_all: Optional[HeterogeneityScorer] = None,
    heterogeneity_primary: Optional[HeterogeneityScorer] = None,
    all_groups: Tuple[str, ...] = ("person",),
    primary_groups: Tuple[str, ...] = ("person",),
    shards: int = 4,
    max_workers: Optional[int] = None,
    max_retries: int = 2,
    timeout: Optional[float] = None,
    backoff: float = 0.1,
) -> ScoredMaps:
    """Score ``clusters`` in ncid shards; returns ``{ncid: {kind: maps}}``.

    The entropy-weighted scorers are built by the caller over *all* clusters
    (weights are global) and only their weight maps are shipped to the
    workers.  Sharding uses :func:`shard_of`, so the partition — and, since
    scores are pure functions of each cluster document, the merged result —
    is identical for every shard count and worker count.  ``max_workers=0``
    runs the shards sequentially in-process (same results, no process
    overhead); the default runs one process per shard.  Worker crashes and
    timeouts retry the shard with exponential backoff and finally degrade
    to in-process scoring with a :class:`ParallelDegradedWarning` — a dead
    worker can cost time, never the run (see :func:`run_shards`).
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    weights_all = dict(heterogeneity_all.weights) if heterogeneity_all else None
    weights_primary = (
        dict(heterogeneity_primary.weights) if heterogeneity_primary else None
    )
    buckets: List[List[dict]] = [[] for _ in range(shards)]
    for cluster in clusters:
        buckets[shard_of(cluster["ncid"], shards)].append(cluster)
    merged: ScoredMaps = {}
    shard_results = run_shards(
        _score_shard,
        [
            (
                bucket,
                version,
                with_plausibility,
                weights_all,
                weights_primary,
                all_groups,
                primary_groups,
            )
            for bucket in buckets
        ],
        max_workers,
        max_retries=max_retries,
        timeout=timeout,
        backoff=backoff,
        label="parallel cluster scoring",
    )
    for result in shard_results:
        overlap = set(result) & set(merged)
        if overlap:  # pragma: no cover - shard_of guarantees disjoint buckets
            raise RuntimeError(f"shards overlap on ids: {sorted(overlap)[:5]}")
        merged.update(result)
    return merged
