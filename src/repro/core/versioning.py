"""The update process of Figure 2 and version-similarity map maintenance.

An update is triggered because new snapshots are available or new statistics
are required.  It runs in three steps:

1. import the new snapshots (skipped for statistics-only updates);
2. update statistics — plausibility and heterogeneity scores are computed
   for every record pair where at least one side is new, and appended to
   the records' version-similarity maps keyed by the pending version;
3. assign the new version number, update version metadata and publish.

Because the maps are keyed by version and record order never changes, the
scores of any earlier version can be reconstructed without recomputation
(Section 5.2).

Plausibility is domain-specific (Section 6.2: it "heavily depends on the
domain of the data"), so :class:`UpdateProcess` accepts a custom
``plausibility_fn``; the built-in voter scorer is used for the NC profile
and plausibility is skipped for other domains unless a scorer is supplied.
Heterogeneity is domain-independent by design (entropy weights, same
measure everywhere) and always computed.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.generator import TestDataGenerator
from repro.core.heterogeneity import HeterogeneityScorer
from repro.core.plausibility import score_cluster
from repro.core.profile import NC_VOTER_PROFILE
from repro.votersim.snapshots import Snapshot

#: Signature of a plausibility scorer: ``(cluster, version) -> {j: {i: s}}``.
PlausibilityFn = Callable[[dict, Optional[int]], Dict[int, Dict[int, float]]]


class UpdateProcess:
    """Runs import → statistics → publish cycles on a generator."""

    def __init__(
        self,
        generator: TestDataGenerator,
        plausibility_fn: Optional[PlausibilityFn] = None,
    ) -> None:
        self.generator = generator
        if plausibility_fn is None and generator.profile is NC_VOTER_PROFILE:
            plausibility_fn = lambda cluster, version: score_cluster(
                cluster, version=version
            )
        self.plausibility_fn = plausibility_fn

    def run(
        self,
        snapshots: Iterable[Snapshot] = (),
        compute_statistics: bool = True,
        note: str = "",
    ) -> int:
        """Execute one full update; returns the published version number."""
        stats = self.generator.import_snapshots(snapshots)
        if compute_statistics:
            self.update_statistics()
        label = note or (
            f"import of {len(stats)} snapshot(s)" if stats else "statistics update"
        )
        return self.generator.publish(note=label)

    def update_statistics(self) -> None:
        """Step 2: extend the version-similarity maps for new records."""
        generator = self.generator
        profile = generator.profile
        version = generator.pending_version
        clusters = list(generator.clusters())
        all_groups = profile.group_names
        primary_groups = (profile.primary_group,)
        heterogeneity_all = _build_scorer(clusters, all_groups, None)
        heterogeneity_primary = _build_scorer(
            clusters,
            primary_groups,
            tuple(
                a for a in profile.primary_attributes() if a != profile.id_attribute
            ),
        )
        for cluster in clusters:
            if self.plausibility_fn is not None:
                _apply_maps(
                    cluster,
                    "plausibility",
                    self.plausibility_fn(cluster, version),
                    version,
                )
            if heterogeneity_all is not None:
                _apply_maps(
                    cluster,
                    "heterogeneity",
                    heterogeneity_all.score_cluster_document(
                        cluster, all_groups, version=version
                    ),
                    version,
                )
            if heterogeneity_primary is not None:
                _apply_maps(
                    cluster,
                    "heterogeneity_person",
                    heterogeneity_primary.score_cluster_document(
                        cluster, primary_groups, version=version
                    ),
                    version,
                )
            generator._dirty.add(cluster["ncid"])


def _build_scorer(
    clusters: List[dict],
    groups: Tuple[str, ...],
    attributes: Optional[Tuple[str, ...]],
) -> Optional[HeterogeneityScorer]:
    if not clusters:
        return None
    return HeterogeneityScorer.from_clusters(clusters, groups, attributes)


def _apply_maps(
    cluster: dict,
    kind: str,
    maps: Dict[int, Dict[int, float]],
    version: int,
) -> None:
    """Append ``{j: {i: score}}`` maps under ``version`` in each record."""
    records = cluster["records"]
    for j, row in maps.items():
        store = records[j].setdefault(kind, {})
        store[str(version)] = {str(i): round(score, 6) for i, score in row.items()}


def similarity_at_version(record_doc: dict, kind: str, version: int) -> Dict[int, float]:
    """Scores of ``record_doc`` against earlier records, as of ``version``.

    Merges every version-similarity map with version <= ``version``; later
    maps never overwrite earlier pairs (record order is immutable), so the
    merge is exactly the historical state.
    """
    merged: Dict[int, float] = {}
    for version_key, row in sorted(
        (record_doc.get(kind) or {}).items(), key=lambda item: int(item[0])
    ):
        if int(version_key) > version:
            continue
        for index_key, score in row.items():
            merged[int(index_key)] = score
    return merged
