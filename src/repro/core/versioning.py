"""The update process of Figure 2 and version-similarity map maintenance.

An update is triggered because new snapshots are available or new statistics
are required.  It runs in three steps:

1. import the new snapshots (skipped for statistics-only updates);
2. update statistics — plausibility and heterogeneity scores are computed
   for every record pair where at least one side is new, and appended to
   the records' version-similarity maps keyed by the pending version;
3. assign the new version number, update version metadata and publish.

Because the maps are keyed by version and record order never changes, the
scores of any earlier version can be reconstructed without recomputation
(Section 5.2).

Plausibility is domain-specific (Section 6.2: it "heavily depends on the
domain of the data"), so :class:`UpdateProcess` accepts a custom
``plausibility_fn``; the built-in voter scorer is used for the NC profile
and plausibility is skipped for other domains unless a scorer is supplied.
Heterogeneity is domain-independent by design (entropy weights, same
measure everywhere) and always computed.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.generator import TestDataGenerator
from repro.core.heterogeneity import HeterogeneityScorer
from repro.core.levels import RemovalLevel
from repro.core.parallel import score_clusters_parallel
from repro.core.plausibility import score_cluster
from repro.core.profile import NC_VOTER_PROFILE, SchemaProfile
from repro.votersim.snapshots import Snapshot

#: Signature of a plausibility scorer: ``(cluster, version) -> {j: {i: s}}``.
PlausibilityFn = Callable[[dict, Optional[int]], Dict[int, Dict[int, float]]]


class UpdateProcess:
    """Runs import → statistics → publish cycles on a generator.

    ``workers``/``shards`` control the scoring stage: ``workers=0`` (the
    default) scores all clusters in-process through the batched fast paths;
    ``workers=N`` shards the clusters by ncid and fans the scoring out over
    a process pool.  Results are identical either way — scores are pure
    functions of the cluster documents and the shard merge is deterministic
    (see :mod:`repro.core.parallel`).  A custom ``plausibility_fn`` is
    always applied in-process (it may close over arbitrary state); the
    built-in voter scorer ships to the workers.
    """

    def __init__(
        self,
        generator: TestDataGenerator,
        plausibility_fn: Optional[PlausibilityFn] = None,
        workers: int = 0,
        shards: Optional[int] = None,
        max_retries: int = 2,
        worker_timeout: Optional[float] = None,
    ) -> None:
        self.generator = generator
        self._builtin_plausibility = (
            plausibility_fn is None and generator.profile is NC_VOTER_PROFILE
        )
        if self._builtin_plausibility:
            plausibility_fn = lambda cluster, version: score_cluster(
                cluster, version=version
            )
        self.plausibility_fn = plausibility_fn
        self.workers = workers
        self.shards = shards
        #: Retry rounds before a failed scoring shard degrades in-process.
        self.max_retries = max_retries
        #: Per-shard timeout (seconds) for worker processes; ``None`` waits.
        self.worker_timeout = worker_timeout

    @classmethod
    def resume(
        cls,
        store: Path,
        *,
        removal: RemovalLevel = RemovalLevel.TRIMMED,
        profile: SchemaProfile = NC_VOTER_PROFILE,
        plausibility_fn: Optional[PlausibilityFn] = None,
        workers: int = 0,
        shards: Optional[int] = None,
        durable: bool = True,
        fsync_batch: int = 0,
    ) -> "UpdateProcess":
        """Reopen ``store`` and continue from the last committed version.

        Opens the directory as a :class:`~repro.docstore.DurableDatabase`
        (running crash recovery if the previous run died mid-update) and
        rebuilds the generator from the published clusters and version
        metadata.  Snapshots that the last durably committed version
        already ingested are skipped by :meth:`run_incremental`, so an
        interrupted multi-snapshot ingest restarts exactly where it left
        off.  ``durable=False`` resumes from a plain snapshot directory
        without write-ahead logging.
        """
        from repro.docstore import Database, DurableDatabase

        if durable:
            database: Database = DurableDatabase(
                Path(store), profile.name, fsync_batch=fsync_batch
            )
        else:
            database = Database.load(Path(store), profile.name)
        generator = TestDataGenerator.from_database(
            database, removal=removal, profile=profile
        )
        return cls(
            generator,
            plausibility_fn=plausibility_fn,
            workers=workers,
            shards=shards,
        )

    def run(
        self,
        snapshots: Iterable[Snapshot] = (),
        compute_statistics: bool = True,
        note: str = "",
    ) -> int:
        """Execute one full update; returns the published version number."""
        stats = self.generator.import_snapshots(snapshots)
        if compute_statistics:
            self.update_statistics()
        label = note or (
            f"import of {len(stats)} snapshot(s)" if stats else "statistics update"
        )
        return self.generator.publish(note=label)

    def run_incremental(
        self,
        snapshots: Iterable[Snapshot],
        compute_statistics: bool = True,
        checkpoint_every: int = 0,
    ) -> List[int]:
        """Import each snapshot as its own published (committed) version.

        Snapshots whose date the generator has already ingested — tracked
        in the version metadata, restored by :meth:`resume` — are skipped,
        so rerunning the same snapshot list after a crash continues from
        the first unfinished snapshot instead of re-importing.  Each
        snapshot is published (and, on a durable database, committed)
        before the next begins; ``checkpoint_every=N`` additionally folds
        the write-ahead logs into a fresh snapshot after every N versions.
        Returns the version numbers published by this call.
        """
        done = set(self.generator._imported_snapshots)
        published: List[int] = []
        for snapshot in snapshots:
            if snapshot.date in done:
                continue
            stats = self.generator.import_snapshot(snapshot)
            done.add(snapshot.date)
            if compute_statistics:
                self.update_statistics()
            version = self.generator.publish(
                note=f"incremental import of {stats.snapshot_date}"
            )
            published.append(version)
            if checkpoint_every and len(published) % checkpoint_every == 0:
                checkpoint = getattr(self.generator.database, "checkpoint", None)
                if callable(checkpoint):
                    checkpoint()
        return published

    def update_statistics(
        self, workers: Optional[int] = None, shards: Optional[int] = None
    ) -> None:
        """Step 2: extend the version-similarity maps for new records.

        All clusters are scored through the batched fast paths (global pair
        deduplication); with ``workers > 0`` the batch is sharded by ncid
        and scored in a process pool — bit-identical results either way.
        """
        generator = self.generator
        profile = generator.profile
        version = generator.pending_version
        clusters = list(generator.clusters())
        if not clusters:
            return
        if workers is None:
            workers = self.workers
        if shards is None:
            shards = self.shards
        if shards is None:
            shards = workers if workers else 1
        all_groups = profile.group_names
        primary_groups = (profile.primary_group,)
        heterogeneity_all = _build_scorer(clusters, all_groups, None)
        heterogeneity_primary = _build_scorer(
            clusters,
            primary_groups,
            tuple(
                a for a in profile.primary_attributes() if a != profile.id_attribute
            ),
        )
        scored = score_clusters_parallel(
            clusters,
            version,
            with_plausibility=self._builtin_plausibility,
            heterogeneity_all=heterogeneity_all,
            heterogeneity_primary=heterogeneity_primary,
            all_groups=all_groups,
            primary_groups=primary_groups,
            shards=shards,
            max_workers=workers,
            max_retries=self.max_retries,
            timeout=self.worker_timeout,
        )
        for cluster in clusters:
            maps_by_kind = scored.get(cluster["ncid"], {})
            if "plausibility" in maps_by_kind:
                _apply_maps(
                    cluster, "plausibility", maps_by_kind["plausibility"], version
                )
            elif self.plausibility_fn is not None:
                # Custom scorers may close over arbitrary state — in-process.
                _apply_maps(
                    cluster,
                    "plausibility",
                    self.plausibility_fn(cluster, version),
                    version,
                )
            for kind in ("heterogeneity", "heterogeneity_person"):
                if kind in maps_by_kind:
                    _apply_maps(cluster, kind, maps_by_kind[kind], version)
            generator._dirty.add(cluster["ncid"])


def _build_scorer(
    clusters: List[dict],
    groups: Tuple[str, ...],
    attributes: Optional[Tuple[str, ...]],
) -> Optional[HeterogeneityScorer]:
    if not clusters:
        return None
    return HeterogeneityScorer.from_clusters(clusters, groups, attributes)


def _apply_maps(
    cluster: dict,
    kind: str,
    maps: Dict[int, Dict[int, float]],
    version: int,
) -> None:
    """Append ``{j: {i: score}}`` maps under ``version`` in each record."""
    records = cluster["records"]
    for j, row in maps.items():
        store = records[j].setdefault(kind, {})
        store[str(version)] = {str(i): round(score, 6) for i, score in row.items()}


def similarity_at_version(record_doc: dict, kind: str, version: int) -> Dict[int, float]:
    """Scores of ``record_doc`` against earlier records, as of ``version``.

    Merges every version-similarity map with version <= ``version``; later
    maps never overwrite earlier pairs (record order is immutable), so the
    merge is exactly the historical state.
    """
    merged: Dict[int, float] = {}
    for version_key, row in sorted(
        (record_doc.get(kind) or {}).items(), key=lambda item: int(item[0])
    ):
        if int(version_key) > version:
            continue
        for index_key, score in row.items():
            merged[int(index_key)] = score
    return merged
