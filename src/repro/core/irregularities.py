"""The irregularity census of Section 6.4 (Table 4).

Thirteen error-type detectors, split into *singletons* (evaluated per
record, normalised by the record count) and *pair-based* irregularities
(evaluated per duplicate pair, normalised by the pair count).  The
definitions follow the paper exactly; see each detector's docstring.
"""

from __future__ import annotations

import dataclasses
import re
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.textsim.levenshtein import damerau_levenshtein_within
from repro.textsim.phonetic import soundex
from repro.textsim.tokens import strip_non_alnum

SINGLETON_TYPES = ("outlier", "abbreviation", "missing")
PAIR_TYPES = (
    "typo",
    "ocr",
    "phonetic",
    "prefix",
    "postfix",
    "formatting",
    "token_transposition",
    "value_confusion",
    "integrated_value",
    "scattered_value",
)

_ABBREVIATION = re.compile(r"^[A-Za-z][.,]?$")
_MISSING_MARKERS = frozenset(("", "-", "--", "N/A", "NA", "NULL", "NONE", "UNKNOWN"))
_NAME_CHARS = re.compile(r"^[A-Za-z ,.'\-]*$")
_TRAILING_PUNCT = re.compile(r"[.,;]$")

#: Attributes treated as names for the outlier character check.
_NAME_ATTRIBUTES = frozenset(
    ("first_name", "midl_name", "last_name", "name_sufx", "birth_place")
)


def is_outlier(attribute: str, value: str) -> bool:
    """Out-of-range age or a character unusual for the attribute's domain."""
    value = value.strip()
    if not value:
        return False
    if attribute == "age":
        try:
            age = int(value)
        except ValueError:
            return True
        return not 16 <= age <= 110
    if attribute in _NAME_ATTRIBUTES:
        return not _NAME_CHARS.match(value)
    return False


def is_abbreviation(value: str) -> bool:
    """A single letter, possibly followed by a punctuation mark."""
    return bool(_ABBREVIATION.match(value.strip()))


def is_missing(value: Optional[str]) -> bool:
    """Null, empty, or a marker value indicating missing information."""
    if value is None:
        return True
    return value.strip().upper() in _MISSING_MARKERS


def is_typo(left: str, right: str) -> bool:
    """Damerau-Levenshtein distance 1 between lowercased values (len > 2)."""
    left, right = left.strip(), right.strip()
    if len(left) <= 2 or len(right) <= 2:
        return False
    left_lower, right_lower = left.lower(), right.lower()
    if left_lower == right_lower:
        return False
    # Thresholded kernel: bails out via the Ukkonen band instead of running
    # the full DP when the values are clearly more than one edit apart.
    return damerau_levenshtein_within(left_lower, right_lower, 1) == 1


def is_ocr_error(left: str, right: str) -> bool:
    """Distinct equal-length values differing only where one has a digit."""
    left, right = left.strip(), right.strip()
    if left == right or len(left) != len(right) or not left:
        return False
    for ch_left, ch_right in zip(left, right):
        if ch_left == ch_right:
            continue
        if ch_left.isdigit() and ch_right.isdigit():
            return False  # both digits must be identical
        if not ch_left.isdigit() and not ch_right.isdigit():
            return False  # a difference position needs a digit on one side
    return True


def is_phonetic_error(left: str, right: str) -> bool:
    """Same soundex, different letters-only forms, both longer than 2."""
    left_letters = "".join(ch for ch in left.strip() if ch.isalpha())
    right_letters = "".join(ch for ch in right.strip() if ch.isalpha())
    if len(left_letters) <= 2 or len(right_letters) <= 2:
        return False
    if left_letters == right_letters:
        return False
    code = soundex(left_letters)
    return bool(code) and code == soundex(right_letters)


def _strip_trailing_punct(value: str) -> str:
    return _TRAILING_PUNCT.sub("", value)


def is_prefix(left: str, right: str) -> bool:
    """The shorter value is a prefix of the longer (abbreviations)."""
    left, right = left.strip(), right.strip()
    if left == right or not left or not right:
        return False
    shorter, longer = sorted((left, right), key=len)
    shorter = _strip_trailing_punct(shorter)
    return bool(shorter) and len(shorter) < len(longer) and longer.startswith(shorter)


def is_postfix(left: str, right: str) -> bool:
    """The shorter value is a postfix of the longer (forgotten prefixes)."""
    left, right = left.strip(), right.strip()
    if left == right or not left or not right:
        return False
    shorter, longer = sorted((left, right), key=len)
    shorter = _strip_trailing_punct(shorter)
    return bool(shorter) and len(shorter) < len(longer) and longer.endswith(shorter)


def is_different_representation(left: str, right: str) -> bool:
    """Values differing only in non-alphanumeric characters."""
    left, right = left.strip(), right.strip()
    if left == right:
        return False
    stripped_left = strip_non_alnum(left)
    stripped_right = strip_non_alnum(right)
    return bool(stripped_left) and stripped_left == stripped_right


def is_token_transposition(left: str, right: str) -> bool:
    """Identical token sets in different order."""
    tokens_left = left.split()
    tokens_right = right.split()
    if tokens_left == tokens_right or len(tokens_left) < 2:
        return False
    return sorted(tokens_left) == sorted(tokens_right) and len(tokens_left) == len(
        tokens_right
    )


def is_value_confusion(
    record_a: Dict[str, str], record_b: Dict[str, str], attr1: str, attr2: str
) -> bool:
    """The two attribute values are swapped between the records."""
    a1 = (record_a.get(attr1) or "").strip()
    a2 = (record_a.get(attr2) or "").strip()
    b1 = (record_b.get(attr1) or "").strip()
    b2 = (record_b.get(attr2) or "").strip()
    if not a1 or not a2 or a1 == a2:
        return False
    return a1 == b2 and a2 == b1


def is_integrated_value(
    record_a: Dict[str, str], record_b: Dict[str, str], attr1: str, attr2: str
) -> bool:
    """One record integrates the other's ``attr2`` value into ``attr1``."""
    for first, second in ((record_a, record_b), (record_b, record_a)):
        a1 = (first.get(attr1) or "").strip()
        a2 = (first.get(attr2) or "").strip()
        b1 = (second.get(attr1) or "").strip()
        b2 = (second.get(attr2) or "").strip()
        if not a1 or not a2 or b2:
            continue
        combined = sorted((a1 + " " + a2).split())
        if sorted(b1.split()) == combined and b1 != a1:
            return True
    return False


def is_scattered_value(
    record_a: Dict[str, str], record_b: Dict[str, str], attr1: str, attr2: str
) -> bool:
    """Same token set over (attr1, attr2), distributed differently.

    Confusions and integrations are excluded (they are counted separately).
    """
    a1 = (record_a.get(attr1) or "").strip()
    a2 = (record_a.get(attr2) or "").strip()
    b1 = (record_b.get(attr1) or "").strip()
    b2 = (record_b.get(attr2) or "").strip()
    if (a1, a2) == (b1, b2):
        return False
    if not (a1 or a2) or not (b1 or b2):
        return False
    tokens_a = sorted((a1 + " " + a2).split())
    tokens_b = sorted((b1 + " " + b2).split())
    if tokens_a != tokens_b or len(tokens_a) < 2:
        return False
    if is_value_confusion(record_a, record_b, attr1, attr2):
        return False
    if is_integrated_value(record_a, record_b, attr1, attr2):
        return False
    return True


@dataclasses.dataclass
class IrregularityCount:
    """Occurrences of one irregularity type."""

    error_type: str
    total: int
    by_attribute: Dict[str, int]
    normaliser: int

    @property
    def percentage(self) -> float:
        """Occurrences normalised by records (singletons) or pairs."""
        return self.total / self.normaliser if self.normaliser else 0.0

    @property
    def most_common_attribute(self) -> str:
        """The attribute (or attribute pair) hit most often."""
        if not self.by_attribute:
            return ""
        return max(self.by_attribute.items(), key=lambda item: item[1])[0]


class IrregularityCensus:
    """Counts the thirteen irregularity types over records and pairs.

    ``attributes`` restricts the analysis (the paper uses the personal
    attributes).  ``multi_attribute_pairs`` lists the attribute pairs
    checked for confusions/integrations/scattering (default: the three name
    attributes, where the paper found them).
    """

    def __init__(
        self,
        attributes: Sequence[str],
        multi_attribute_pairs: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> None:
        if not attributes:
            raise ValueError("attributes must not be empty")
        self.attributes = tuple(attributes)
        if multi_attribute_pairs is None:
            multi_attribute_pairs = (
                ("first_name", "midl_name"),
                ("first_name", "last_name"),
                ("midl_name", "last_name"),
            )
        self.multi_attribute_pairs = tuple(multi_attribute_pairs)
        self._singletons: Dict[str, Counter] = {t: Counter() for t in SINGLETON_TYPES}
        self._pairs: Dict[str, Counter] = {t: Counter() for t in PAIR_TYPES}
        self._examples: Dict[str, List[str]] = {}
        self.max_examples = 3
        self.records_seen = 0
        self.pairs_seen = 0

    def _remember_example(self, error_type: str, example: str) -> None:
        bucket = self._examples.setdefault(error_type, [])
        if len(bucket) < self.max_examples:
            bucket.append(example)

    def examples(self, error_type: str) -> List[str]:
        """Captured example values of one irregularity type (Table 4 style)."""
        return list(self._examples.get(error_type, ()))

    # ----------------------------------------------------------------- feeds

    def add_record(self, record: Dict[str, str]) -> None:
        """Feed one record through the singleton detectors."""
        self.records_seen += 1
        for attribute in self.attributes:
            value = record.get(attribute)
            if is_missing(value):
                self._singletons["missing"][attribute] += 1
                self._remember_example("missing", f"{attribute} = {value!r}")
                continue
            if is_outlier(attribute, value):
                self._singletons["outlier"][attribute] += 1
                self._remember_example("outlier", f"{attribute} = {value!r}")
            if is_abbreviation(value):
                self._singletons["abbreviation"][attribute] += 1
                self._remember_example("abbreviation", f"{attribute} = {value!r}")

    def add_pair(self, left: Dict[str, str], right: Dict[str, str]) -> None:
        """Feed one duplicate record pair through the pair detectors."""
        self.pairs_seen += 1
        for attribute in self.attributes:
            value_left = (left.get(attribute) or "").strip()
            value_right = (right.get(attribute) or "").strip()
            if not value_left or not value_right or value_left == value_right:
                continue
            pair_example = f"{value_left!r} vs {value_right!r}"
            if is_typo(value_left, value_right):
                self._pairs["typo"][attribute] += 1
                self._remember_example("typo", pair_example)
            if is_ocr_error(value_left, value_right):
                self._pairs["ocr"][attribute] += 1
                self._remember_example("ocr", pair_example)
            if is_phonetic_error(value_left, value_right):
                self._pairs["phonetic"][attribute] += 1
                self._remember_example("phonetic", pair_example)
            if is_prefix(value_left, value_right):
                self._pairs["prefix"][attribute] += 1
                self._remember_example("prefix", pair_example)
            if is_postfix(value_left, value_right):
                self._pairs["postfix"][attribute] += 1
                self._remember_example("postfix", pair_example)
            if is_different_representation(value_left, value_right):
                self._pairs["formatting"][attribute] += 1
                self._remember_example("formatting", pair_example)
            if is_token_transposition(value_left, value_right):
                self._pairs["token_transposition"][attribute] += 1
                self._remember_example("token_transposition", pair_example)
        for attr1, attr2 in self.multi_attribute_pairs:
            label = f"{attr1}/{attr2}"
            confusion_example = (
                f"({(left.get(attr1) or '').strip()}, {(left.get(attr2) or '').strip()}) vs "
                f"({(right.get(attr1) or '').strip()}, {(right.get(attr2) or '').strip()})"
            )
            if is_value_confusion(left, right, attr1, attr2):
                self._pairs["value_confusion"][label] += 1
                self._remember_example("value_confusion", confusion_example)
            if is_integrated_value(left, right, attr1, attr2):
                self._pairs["integrated_value"][label] += 1
                self._remember_example("integrated_value", confusion_example)
            if is_scattered_value(left, right, attr1, attr2):
                self._pairs["scattered_value"][label] += 1
                self._remember_example("scattered_value", confusion_example)

    def add_cluster(self, records: Sequence[Dict[str, str]]) -> None:
        """Feed every record and every duplicate pair of one cluster."""
        for record in records:
            self.add_record(record)
        for j in range(1, len(records)):
            for i in range(j):
                self.add_pair(records[i], records[j])

    # --------------------------------------------------------------- results

    def counts(self) -> List[IrregularityCount]:
        """Table 4: one row per irregularity type."""
        rows = []
        for error_type in SINGLETON_TYPES:
            counter = self._singletons[error_type]
            rows.append(
                IrregularityCount(
                    error_type=error_type,
                    total=sum(counter.values()),
                    by_attribute=dict(counter),
                    normaliser=self.records_seen,
                )
            )
        for error_type in PAIR_TYPES:
            counter = self._pairs[error_type]
            rows.append(
                IrregularityCount(
                    error_type=error_type,
                    total=sum(counter.values()),
                    by_attribute=dict(counter),
                    normaliser=self.pairs_seen,
                )
            )
        return rows

    def count(self, error_type: str) -> IrregularityCount:
        """The row of one specific irregularity type."""
        for row in self.counts():
            if row.error_type == error_type:
                return row
        raise KeyError(f"unknown error type {error_type!r}")
