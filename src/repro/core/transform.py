"""Dataset transformations for customisation (Section 3.2).

Beyond the heterogeneity-bounded subset selection of Section 6.5, the paper
lists "further options for customization": "the removal and merge of
attributes, changing the character of the attributes' values" and adapting
"the number of clusters [and] the cluster sizes".  This module implements
those operations on flat record lists and on
:class:`~repro.core.customize.CustomizationResult` datasets; none of them
touches the gold standard, which stays sound by construction.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.customize import CustomizationResult
from repro.core.generator import TestDataGenerator

Records = List[Dict[str, str]]

#: Named value transforms usable from JSON customisation specs ("changing
#: the character of the attributes' values" without shipping code).
VALUE_TRANSFORMS: Dict[str, Callable[[str], str]] = {
    "title": str.title,
    "upper": str.upper,
    "lower": str.lower,
    "strip": str.strip,
}


def drop_attributes(records: Sequence[Dict[str, str]], attributes: Sequence[str]) -> Records:
    """Remove ``attributes`` from every record (attribute removal)."""
    doomed = set(attributes)
    return [
        {k: v for k, v in record.items() if k not in doomed} for record in records
    ]


def merge_attributes(
    records: Sequence[Dict[str, str]],
    target: str,
    sources: Sequence[str],
    separator: str = " ",
) -> Records:
    """Merge ``sources`` into a single ``target`` attribute.

    Non-empty source values are joined with ``separator`` in source order;
    the source attributes are removed.  Merging the three name attributes
    into one ``full_name`` is the paper's canonical example.
    """
    if not sources:
        raise ValueError("sources must not be empty")
    source_set = set(sources)
    merged = []
    for record in records:
        parts = [
            (record.get(source) or "").strip()
            for source in sources
            if (record.get(source) or "").strip()
        ]
        clone = {k: v for k, v in record.items() if k not in source_set}
        clone[target] = separator.join(parts)
        merged.append(clone)
    return merged


def rename_attribute(records: Sequence[Dict[str, str]], old: str, new: str) -> Records:
    """Rename attribute ``old`` to ``new`` in every record."""
    renamed = []
    for record in records:
        clone = dict(record)
        if old in clone:
            clone[new] = clone.pop(old)
        renamed.append(clone)
    return renamed


def map_values(
    records: Sequence[Dict[str, str]],
    attributes: Sequence[str],
    transform: Callable[[str], str],
) -> Records:
    """Apply ``transform`` to the values of ``attributes``.

    "Changing the character of the attributes' values" — e.g. title-casing
    all-caps names (``str.title``), truncation, or re-encoding.
    """
    targets = set(attributes)
    mapped = []
    for record in records:
        clone = dict(record)
        for attribute in targets:
            if attribute in clone and clone[attribute]:
                clone[attribute] = transform(clone[attribute])
        mapped.append(clone)
    return mapped


def transform_result(
    result: CustomizationResult,
    drop: Sequence[str] = (),
    merge: Optional[Dict[str, Sequence[str]]] = None,
    value_transforms: Optional[Dict[str, Callable[[str], str]]] = None,
) -> CustomizationResult:
    """Apply attribute transformations to a customised dataset.

    Record ids, cluster assignment and the gold standard are preserved —
    only record contents change.
    """
    records: Records = [dict(record) for record in result.records]
    if drop:
        records = drop_attributes(records, drop)
    for target, sources in (merge or {}).items():
        records = merge_attributes(records, target, sources)
    for attribute, transform in (value_transforms or {}).items():
        records = map_values(records, (attribute,), transform)
    return CustomizationResult(
        name=result.name,
        heterogeneity_range=result.heterogeneity_range,
        records=records,
        cluster_of=list(result.cluster_of),
        gold_pairs=set(result.gold_pairs),
    )


def apply_transform_spec(
    result: CustomizationResult, transform: Dict[str, Any]
) -> CustomizationResult:
    """Apply a JSON-able ``transform`` sub-spec to a customised dataset.

    Steps apply in a fixed order — ``drop``, ``merge``, ``rename``,
    ``values`` — matching what
    :func:`repro.analysis.analyze_customization` validates.  Use
    :func:`repro.core.customize.customize_from_spec` to validate *and*
    execute a full spec; this function assumes the spec is sound.
    """
    records: Records = [dict(record) for record in result.records]
    drop = tuple(transform.get("drop") or ())
    if drop:
        records = drop_attributes(records, drop)
    merge: Dict[str, Sequence[str]] = dict(transform.get("merge") or {})
    for target, sources in merge.items():
        records = merge_attributes(records, target, tuple(sources))
    rename: Dict[str, str] = dict(transform.get("rename") or {})
    for old, new in rename.items():
        records = rename_attribute(records, old, new)
    values: Dict[str, str] = dict(transform.get("values") or {})
    for attribute, name in values.items():
        try:
            value_transform = VALUE_TRANSFORMS[name]
        except KeyError:
            raise ValueError(
                f"unknown value transform {name!r} "
                f"(available: {sorted(VALUE_TRANSFORMS)})"
            ) from None
        records = map_values(records, (attribute,), value_transform)
    return CustomizationResult(
        name=result.name,
        heterogeneity_range=result.heterogeneity_range,
        records=records,
        cluster_of=list(result.cluster_of),
        gold_pairs=set(result.gold_pairs),
    )


def select_by_cluster_size(
    generator: TestDataGenerator,
    size_distribution: Dict[int, int],
    groups: Tuple[str, ...] = ("person",),
    seed: int = 0,
    name: str = "size-selected",
) -> CustomizationResult:
    """Build a dataset with a prescribed cluster-size distribution.

    ``size_distribution`` maps cluster size -> number of clusters wanted;
    clusters larger than a requested size are truncated down to it (records
    are kept in order, matching the reproducibility rule).  Raises when the
    store cannot satisfy the request.
    """
    from repro.core.clusters import record_view

    if not size_distribution:
        raise ValueError("size_distribution must not be empty")
    for size, count in size_distribution.items():
        if size < 1 or count < 0:
            raise ValueError(f"invalid entry {size}: {count}")

    rng = random.Random(seed)
    clusters = list(generator.clusters())
    rng.shuffle(clusters)

    wanted = sorted(size_distribution.items(), key=lambda item: -item[0])
    picked: List[Tuple[str, List[Dict[str, str]]]] = []
    used: Set[str] = set()
    for size, count in wanted:
        remaining = count
        for cluster in clusters:
            if remaining == 0:
                break
            if cluster["ncid"] in used or len(cluster["records"]) < size:
                continue
            used.add(cluster["ncid"])
            flats = [
                record_view(record, groups)
                for record in cluster["records"][:size]
            ]
            picked.append((cluster["ncid"], flats))
            remaining -= 1
        if remaining:
            raise ValueError(
                f"store has too few clusters of size >= {size}: "
                f"{count - remaining} of {count} found"
            )

    records: Records = []
    cluster_of: List[str] = []
    gold_pairs: Set[Tuple[int, int]] = set()
    for ncid, flats in picked:
        first_id = len(records)
        records.extend(flats)
        cluster_of.extend([ncid] * len(flats))
        for j in range(first_id + 1, first_id + len(flats)):
            for i in range(first_id, j):
                gold_pairs.add((i, j))
    return CustomizationResult(
        name=name,
        heterogeneity_range=(0.0, 1.0),
        records=records,
        cluster_of=cluster_of,
        gold_pairs=gold_pairs,
    )
