"""Repairing unsound clusters (Sections 3.1.1 and 5.2).

The plausibility scores exist "to remove (or repair) potentially unsound
duplicate clusters".  *Removing* is trivial (filter on cluster
plausibility); *repairing* means splitting a cluster whose records describe
several real-world entities into per-entity sub-clusters.  The paper's
Figure 3 cluster DR19657 is the canonical case: ten records under one NCID
that "form two very homogeneous groups".

The repair algorithm is single-linkage clustering over the pairwise
plausibility graph: records are connected when their pair plausibility
reaches ``threshold``; connected components become the repaired
sub-clusters.  Single linkage is the right choice here because a chain of
plausible pairs (old name — married name — married name with typo) must
stay together even when its endpoints look dissimilar.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.clusters import record_view
from repro.core.plausibility import pair_plausibility

PairScorer = Callable[[dict, dict], float]


@dataclasses.dataclass
class RepairResult:
    """Outcome of repairing one cluster."""

    ncid: str
    #: Record-index groups; one group per inferred real-world entity.
    groups: List[List[int]]
    #: Minimum within-group pair plausibility after the split.
    min_within_plausibility: float

    @property
    def was_split(self) -> bool:
        """True when the cluster was divided into several entities."""
        return len(self.groups) > 1


def _pair_scores(cluster: dict, scorer: Optional[PairScorer]) -> Dict[Tuple[int, int], float]:
    records = cluster["records"]
    flats = [record_view(record, ("person",)) for record in records]
    snapshots = [
        (record.get("snapshots") or [""])[0] if record.get("snapshots") else ""
        for record in records
    ]
    scores: Dict[Tuple[int, int], float] = {}
    for j in range(1, len(records)):
        stored = records[j].get("plausibility") or {}
        merged: Dict[str, float] = {}
        for _version, row in sorted(stored.items(), key=lambda item: int(item[0])):
            merged.update(row)
        for i in range(j):
            if scorer is not None:
                scores[(i, j)] = scorer(flats[i], flats[j])
            elif str(i) in merged:
                scores[(i, j)] = merged[str(i)]
            else:
                scores[(i, j)] = pair_plausibility(
                    flats[i], flats[j], snapshots[i], snapshots[j]
                )
    return scores


def split_cluster(
    cluster: dict,
    threshold: float = 0.8,
    scorer: Optional[PairScorer] = None,
) -> RepairResult:
    """Split ``cluster`` into plausibility-connected components.

    ``scorer`` overrides the pair plausibility (stored version-similarity
    maps are used when available, recomputation otherwise).  Records whose
    pair plausibility is ``>= threshold`` end up in the same group.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(f"threshold must be in [0, 1], got {threshold}")
    count = len(cluster["records"])
    if count <= 1:
        return RepairResult(cluster["ncid"], [list(range(count))], 1.0)

    scores = _pair_scores(cluster, scorer)
    parent = list(range(count))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for (i, j), score in scores.items():
        if score >= threshold:
            root_i, root_j = find(i), find(j)
            if root_i != root_j:
                parent[root_j] = root_i

    components: Dict[int, List[int]] = {}
    for index in range(count):
        components.setdefault(find(index), []).append(index)
    groups = sorted(components.values(), key=lambda group: group[0])

    min_within = 1.0
    for group in groups:
        for position_j in range(1, len(group)):
            for position_i in range(position_j):
                pair = (group[position_i], group[position_j])
                min_within = min(min_within, scores[pair])
    return RepairResult(cluster["ncid"], groups, min_within)


def repair_clusters(
    clusters: Sequence[dict],
    threshold: float = 0.8,
    scorer: Optional[PairScorer] = None,
) -> List[RepairResult]:
    """Repair every cluster; returns one result per input cluster."""
    return [split_cluster(cluster, threshold, scorer) for cluster in clusters]


def apply_repair(cluster: dict, result: RepairResult) -> List[dict]:
    """Materialise a repair: one new cluster document per group.

    Split clusters get suffixed ids (``<ncid>/0``, ``<ncid>/1`` ...) so the
    original NCID remains recoverable; unsplit clusters are returned
    unchanged.  Version-similarity maps are dropped on split records (their
    indices change), matching the paper's rule that map reconstruction
    relies on immutable record order.
    """
    if not result.was_split:
        return [cluster]
    import copy

    repaired = []
    for group_index, group in enumerate(result.groups):
        new_id = f"{cluster['ncid']}/{group_index}"
        records = []
        for record_index in group:
            record = copy.deepcopy(cluster["records"][record_index])
            record["plausibility"] = {}
            record["heterogeneity"] = {}
            record["heterogeneity_person"] = {}
            records.append(record)
        repaired.append(
            {
                "_id": new_id,
                "ncid": new_id,
                "records": records,
                "meta": {
                    "hashes": [record["hash"] for record in records],
                    "inserts_per_snapshot": {},
                    "first_version": cluster["meta"].get("first_version", 1),
                    "repaired_from": cluster["ncid"],
                },
            }
        )
    return repaired
