"""MD5 record hashing for exact-duplicate detection (Section 4).

"To check the equivalence of duplicate records efficiently, we used the
Message-Digest Algorithm 5 (short MD5) to calculate a hash value for each
record. [...] The input to the hash function is the concatenation of the
values of all relevant attributes to a single large string."  Dates and the
age are excluded because they change without the person changing.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Sequence

from repro.votersim.schema import ALL_ATTRIBUTES, HASH_EXCLUDED_ATTRIBUTES

#: Unit separator — cannot appear in TSV values, so concatenation is
#: unambiguous (no value pair can collide by shifting a boundary).
_SEPARATOR = "\x1f"


def default_hash_attributes() -> tuple:
    """All schema attributes minus the date/age exclusions."""
    excluded = set(HASH_EXCLUDED_ATTRIBUTES)
    return tuple(a for a in ALL_ATTRIBUTES if a not in excluded)


def record_hash(
    record: Dict[str, str],
    attributes: Optional[Sequence[str]] = None,
    trim: bool = True,
) -> str:
    """Return the hex MD5 of the record's relevant attribute values.

    ``attributes`` defaults to the full schema minus the excluded dates and
    age.  ``trim`` strips leading/trailing whitespace from every value
    before hashing (the Table 2 "trimming" level).
    """
    if attributes is None:
        attributes = default_hash_attributes()
    values = []
    for attribute in attributes:
        value = record.get(attribute)
        if value is None:
            value = ""
        else:
            value = str(value)
        if trim:
            value = value.strip()
        values.append(value)
    payload = _SEPARATOR.join(values).encode("utf-8")
    return hashlib.md5(payload).hexdigest()
