"""The test-data generator: snapshot import, dedup, storage, versioning.

This is the paper's generation process (Section 4) plus the update process
of Section 5.1: snapshots are imported one after another; per cluster
(NCID), a record is only imported when its MD5 hash is not already present
at the configured removal level; every imported record is tagged with the
version that introduced it and the snapshots containing it, which makes
every earlier dataset version reconstructible (Section 5.1.2).

Imports accumulate in memory for speed and are written through to the
aggregate-oriented document store on :meth:`TestDataGenerator.publish` —
one document per cluster, exactly the layout of Section 5.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.clusters import duplicate_pair_count, split_record
from repro.core.hashing import record_hash
from repro.core.levels import RemovalLevel
from repro.core.profile import NC_VOTER_PROFILE, SchemaProfile
from repro.docstore import Database
from repro.votersim.snapshots import Snapshot


@dataclasses.dataclass
class ImportStats:
    """Per-snapshot import statistics (the raw material of Table 1)."""

    snapshot_date: str
    rows: int
    new_records: int
    new_clusters: int
    skipped: int

    @property
    def new_record_rate(self) -> float:
        """Share of snapshot rows that were new records."""
        return self.new_records / self.rows if self.rows else 0.0

    @property
    def new_object_rate(self) -> float:
        """Share of new records that started a new cluster."""
        return self.new_clusters / self.new_records if self.new_records else 0.0


class TestDataGenerator:
    """Generates, stores and versions the duplicate-detection test dataset.

    Parameters
    ----------
    removal:
        The duplicate-removal strictness (Table 2); defaults to ``TRIMMED``,
        the level the published dataset uses.
    database:
        The document store database to publish into; a fresh in-memory
        :class:`~repro.docstore.Database` by default.
    """

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        removal: RemovalLevel = RemovalLevel.TRIMMED,
        database: Optional[Database] = None,
        profile: SchemaProfile = NC_VOTER_PROFILE,
    ) -> None:
        self.removal = removal
        self.profile = profile
        self.database = database or Database(profile.name)
        self._clusters: Dict[str, dict] = {}
        self._dirty: set = set()
        self.current_version = 0
        self.import_stats: List[ImportStats] = []
        self._imported_snapshots: List[str] = []

    @classmethod
    def from_database(
        cls,
        database: Database,
        removal: RemovalLevel = RemovalLevel.TRIMMED,
        profile: SchemaProfile = NC_VOTER_PROFILE,
    ) -> "TestDataGenerator":
        """Rebuild a generator from a previously published database.

        Restores the cluster map, the current version number and the list
        of already-imported snapshots (from the latest version document),
        so an interrupted multi-snapshot ingest can resume exactly where
        the last durably committed version left off (see
        :meth:`repro.core.versioning.UpdateProcess.resume`).
        """
        generator = cls(removal=removal, database=database, profile=profile)
        if "clusters" in database:
            for cluster in database["clusters"].all():
                generator._clusters[cluster["ncid"]] = cluster
        if "versions" in database:
            latest = database["versions"].find(sort=[("version", -1)], limit=1)
            if latest:
                generator.current_version = latest[0]["version"]
                generator._imported_snapshots = list(
                    latest[0].get("snapshots", [])
                )
        return generator

    # --------------------------------------------------------------- import

    @property
    def pending_version(self) -> int:
        """The version number the next :meth:`publish` will assign."""
        return self.current_version + 1

    def import_snapshot(self, snapshot: Snapshot) -> ImportStats:
        """Import one snapshot (step 1 of the update process, Figure 2)."""
        hash_attributes = self.removal.hash_attributes_for(self.profile)
        trim = self.removal.trims
        new_records = 0
        new_clusters = 0
        skipped = 0
        for record in snapshot.records:
            ncid = (record.get(self.profile.id_attribute) or "").strip()
            if not ncid:
                skipped += 1
                continue
            cluster = self._clusters.get(ncid)
            if cluster is None:
                cluster = {
                    "_id": ncid,
                    "ncid": ncid,
                    "records": [],
                    "meta": {
                        "hashes": [],
                        "inserts_per_snapshot": {},
                        "first_version": self.pending_version,
                    },
                }
                self._clusters[ncid] = cluster
                new_clusters += 1
            if hash_attributes is None:
                digest = record_hash(
                    record, self.profile.hash_attributes(), trim=False
                )
            else:
                digest = record_hash(record, hash_attributes, trim=trim)
            known = digest in cluster["meta"]["hashes"] and hash_attributes is not None
            if known:
                # Near-exact duplicate: only remember the snapshot membership
                # of the already stored record (reproducibility, Section 5.1.2).
                for stored in cluster["records"]:
                    if stored["hash"] == digest:
                        if snapshot.date not in stored["snapshots"]:
                            stored["snapshots"].append(snapshot.date)
                        break
                skipped += 1
                self._dirty.add(ncid)
                continue
            record_doc = split_record(record, self.profile)
            record_doc["hash"] = digest
            record_doc["first_version"] = self.pending_version
            record_doc["snapshots"] = [snapshot.date]
            record_doc["plausibility"] = {}
            record_doc["heterogeneity"] = {}
            record_doc["heterogeneity_person"] = {}
            cluster["records"].append(record_doc)
            cluster["meta"]["hashes"].append(digest)
            inserts = cluster["meta"]["inserts_per_snapshot"]
            inserts[snapshot.date] = inserts.get(snapshot.date, 0) + 1
            self._dirty.add(ncid)
            new_records += 1
        stats = ImportStats(
            snapshot_date=snapshot.date,
            rows=len(snapshot.records),
            new_records=new_records,
            new_clusters=new_clusters,
            skipped=skipped,
        )
        self.import_stats.append(stats)
        self._imported_snapshots.append(snapshot.date)
        return stats

    def import_snapshots(self, snapshots: Iterable[Snapshot]) -> List[ImportStats]:
        """Import several snapshots in order."""
        return [self.import_snapshot(snapshot) for snapshot in snapshots]

    # ---------------------------------------------------------------- access

    def clusters(self) -> Iterator[dict]:
        """Iterate the (live, in-memory) cluster documents."""
        for ncid in self._clusters:
            yield self._clusters[ncid]

    def cluster(self, ncid: str) -> Optional[dict]:
        """Return one cluster document or ``None``."""
        return self._clusters.get(ncid)

    @property
    def cluster_count(self) -> int:
        """Number of duplicate clusters (real-world entities)."""
        return len(self._clusters)

    @property
    def record_count(self) -> int:
        """Total records across all clusters."""
        return sum(len(cluster["records"]) for cluster in self._clusters.values())

    @property
    def duplicate_pair_count(self) -> int:
        """Total duplicate pairs implied by the clusters."""
        return sum(
            duplicate_pair_count(len(cluster["records"]))
            for cluster in self._clusters.values()
        )

    def gold_pairs(self) -> Iterator[Tuple[Tuple[str, int], Tuple[str, int]]]:
        """Yield the gold standard as ``((ncid, i), (ncid, j))`` pairs."""
        for ncid, cluster in self._clusters.items():
            count = len(cluster["records"])
            for j in range(1, count):
                for i in range(j):
                    yield (ncid, i), (ncid, j)

    # ------------------------------------------------------------ versioning

    def publish(self, note: str = "") -> int:
        """Assign a new version and write clusters through to the store.

        Step 3 of the update process (Figure 2): bump the version number,
        record version metadata, publish.  Returns the new version number.
        """
        self.current_version += 1
        clusters = self.database.get_collection("clusters")
        if "ncid_hash" not in clusters.index_names():
            clusters.create_index("ncid", "hash")
        # Range reads over cluster age (records_at_version-style queries)
        # plan through a sorted index instead of scanning every cluster.
        if "meta.first_version_sorted" not in clusters.index_names():
            clusters.create_index("meta.first_version", "sorted")
        for ncid in sorted(self._dirty):
            cluster = self._clusters[ncid]
            if clusters.replace_one({"_id": ncid}, cluster) == 0:
                clusters.insert_one(cluster)
        self._dirty.clear()
        versions = self.database.get_collection("versions")
        # Version listings sort on "version"; the sorted index lets those
        # reads stream in index order (plan: index_order).
        if "version_sorted" not in versions.index_names():
            versions.create_index("version", "sorted")
        versions.insert_one(
            {
                "_id": self.current_version,
                "version": self.current_version,
                "note": note,
                "removal": self.removal.value,
                "profile": self.profile.name,
                "snapshots": list(self._imported_snapshots),
                "records": self.record_count,
                "clusters": self.cluster_count,
                "duplicate_pairs": self.duplicate_pair_count,
            }
        )
        # A publish is the transaction boundary: on a durable database this
        # seals the version into a committed epoch (no-op for in-memory).
        self.database.commit()
        return self.current_version

    def records_at_version(self, cluster: dict, version: int) -> List[dict]:
        """The cluster's records as they existed at ``version``.

        Because no record is ever removed and the order never changes,
        filtering on ``first_version`` reconstructs any earlier version
        exactly (Section 5.1.2).
        """
        return [
            record
            for record in cluster["records"]
            if record["first_version"] <= version
        ]

    def records_in_snapshots(self, cluster: dict, snapshots: Iterable[str]) -> List[dict]:
        """The cluster's records restricted to a subset of snapshots."""
        wanted = set(snapshots)
        return [
            record
            for record in cluster["records"]
            if wanted.intersection(record["snapshots"])
        ]
