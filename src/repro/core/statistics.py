"""Generation statistics: Tables 1 and 2 and Figure 1 of the paper."""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.clusters import duplicate_pair_count
from repro.core.generator import ImportStats, TestDataGenerator
from repro.core.levels import RemovalLevel
from repro.votersim.snapshots import Snapshot


@dataclasses.dataclass
class YearStats:
    """One row of Table 1: per-year snapshot statistics."""

    year: int
    snapshots: int
    total_records: int
    new_records: int
    new_objects: int

    @property
    def new_record_rate(self) -> float:
        """Share of the year's rows that were new records."""
        return self.new_records / self.total_records if self.total_records else 0.0

    @property
    def new_object_rate(self) -> float:
        """Share of the year's new records starting a new cluster."""
        return self.new_objects / self.new_records if self.new_records else 0.0


def snapshot_year_stats(import_stats: Sequence[ImportStats]) -> List[YearStats]:
    """Aggregate per-snapshot import statistics into Table 1 rows."""
    by_year: Dict[int, YearStats] = {}
    for stats in import_stats:
        year = int(stats.snapshot_date[:4])
        row = by_year.get(year)
        if row is None:
            row = YearStats(year, 0, 0, 0, 0)
            by_year[year] = row
        row.snapshots += 1
        row.total_records += stats.rows
        row.new_records += stats.new_records
        row.new_objects += stats.new_clusters
    return [by_year[year] for year in sorted(by_year)]


@dataclasses.dataclass
class RemovalStats:
    """One row of Table 2: results of one duplicate-removal level."""

    level: RemovalLevel
    records: int
    duplicate_pairs: int
    avg_cluster_size: float
    max_cluster_size: int
    removed_records: int
    removed_pairs: int
    clusters: int

    @property
    def removed_record_share(self) -> float:
        """Share of baseline records removed at this level."""
        total = self.records + self.removed_records
        return self.removed_records / total if total else 0.0

    @property
    def removed_pair_share(self) -> float:
        """Share of baseline duplicate pairs removed at this level."""
        total = self.duplicate_pairs + self.removed_pairs
        return self.removed_pairs / total if total else 0.0


def removal_stats(
    snapshots: Sequence[Snapshot],
    levels: Sequence[RemovalLevel] = tuple(RemovalLevel),
) -> List[RemovalStats]:
    """Run the generation once per removal level and collect Table 2.

    ``removed_pairs`` follows the paper: the number of duplicate pairs of
    the no-removal baseline that no longer exist after removal.
    """
    results = []
    baseline_records: Optional[int] = None
    baseline_pairs: Optional[int] = None
    for level in levels:
        generator = TestDataGenerator(removal=level)
        generator.import_snapshots(snapshots)
        sizes = [len(cluster["records"]) for cluster in generator.clusters()]
        records = sum(sizes)
        pairs = sum(duplicate_pair_count(size) for size in sizes)
        if level is RemovalLevel.NONE:
            baseline_records, baseline_pairs = records, pairs
        removed_records = (baseline_records - records) if baseline_records is not None else 0
        removed_pairs = (baseline_pairs - pairs) if baseline_pairs is not None else 0
        results.append(
            RemovalStats(
                level=level,
                records=records,
                duplicate_pairs=pairs,
                avg_cluster_size=records / len(sizes) if sizes else 0.0,
                max_cluster_size=max(sizes) if sizes else 0,
                removed_records=removed_records,
                removed_pairs=removed_pairs,
                clusters=len(sizes),
            )
        )
    return results


def cluster_size_histogram(generator: TestDataGenerator) -> Dict[int, int]:
    """Figure 1: number of clusters per cluster size."""
    histogram: Counter = Counter()
    for cluster in generator.clusters():
        histogram[len(cluster["records"])] += 1
    return dict(sorted(histogram.items()))


def size_histogram_of_sizes(sizes: Iterable[int]) -> Dict[int, int]:
    """Histogram helper for raw size sequences (single-snapshot variant)."""
    return dict(sorted(Counter(sizes).items()))
