"""Heterogeneity scoring — how dirty are the duplicates? (Section 6.3)

Unlike plausibility, heterogeneity counts every difference.  Each attribute
value pair is compared four ways — {Damerau-Levenshtein, symmetrised
Monge-Elkan} × {original case, lowercased} — and the four similarities are
averaged, so case differences and token confusions weigh less than genuine
value replacements.  Attributes are weighted by their uniqueness, quantified
as the entropy of their value distribution computed over one record per
cluster (duplicates would distort it).  The heterogeneity of a record pair
is the weighted average of the inverse value similarities; the heterogeneity
of a cluster is the average over its records.
"""

from __future__ import annotations

import math
from collections import Counter
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.clusters import record_view
from repro.textsim.levenshtein import damerau_levenshtein_similarity
from repro.textsim.monge_elkan import symmetric_monge_elkan


def entropy(values: Iterable[str]) -> float:
    """Shannon entropy (bits) of the value distribution."""
    counts = Counter(values)
    total = sum(counts.values())
    if total == 0:
        return 0.0
    result = 0.0
    for count in counts.values():
        p = count / total
        result -= p * math.log2(p)
    return result


def entropy_weights(
    records: Sequence[Dict[str, str]],
    attributes: Sequence[str],
) -> Dict[str, float]:
    """Normalised entropy weight per attribute.

    Callers pass one record per cluster when weighting heterogeneity (the
    paper, Section 6.3) and *all* records when weighting the detection
    algorithms (Section 6.5, where duplicates are unknown to the user).
    """
    weights: Dict[str, float] = {}
    for attribute in attributes:
        weights[attribute] = entropy(
            (record.get(attribute) or "").strip() for record in records
        )
    total = sum(weights.values())
    if total == 0:
        uniform = 1.0 / len(attributes) if attributes else 0.0
        return {attribute: uniform for attribute in attributes}
    return {attribute: weight / total for attribute, weight in weights.items()}


def four_way_similarity(left: str, right: str) -> float:
    """Average of DL and Monge-Elkan similarity, cased and lowercased.

    Results are memoised: snapshot data repeats the same value pairs
    (district descriptions, cities, parties) across millions of records.
    """
    if left == right:
        return 1.0
    if left > right:  # symmetric measure — canonicalise the cache key
        left, right = right, left
    return _four_way_cached(left, right)


@lru_cache(maxsize=262144)
def _four_way_cached(left: str, right: str) -> float:
    scores = (
        damerau_levenshtein_similarity(left, right),
        damerau_levenshtein_similarity(left.lower(), right.lower()),
        symmetric_monge_elkan(left, right),
        symmetric_monge_elkan(left.lower(), right.lower()),
    )
    return sum(scores) / 4.0


class HeterogeneityScorer:
    """Scores record pairs and clusters with fixed attribute weights.

    Parameters
    ----------
    weights:
        ``attribute -> normalised weight`` map, usually from
        :func:`entropy_weights`.
    """

    def __init__(self, weights: Dict[str, float]) -> None:
        if not weights:
            raise ValueError("weights must not be empty")
        self.weights = dict(weights)
        self._attributes = tuple(self.weights)

    @classmethod
    def from_records(
        cls,
        records: Sequence[Dict[str, str]],
        attributes: Optional[Sequence[str]] = None,
    ) -> "HeterogeneityScorer":
        """Build a scorer with entropy weights learned from ``records``."""
        if attributes is None:
            seen = {}
            for record in records:
                for attribute in record:
                    seen[attribute] = True
            attributes = tuple(seen)
        return cls(entropy_weights(records, attributes))

    @classmethod
    def from_clusters(
        cls,
        clusters: Iterable[dict],
        groups: Tuple[str, ...] = ("person",),
        attributes: Optional[Sequence[str]] = None,
    ) -> "HeterogeneityScorer":
        """Entropy weights from one record per cluster (Section 6.3)."""
        representatives = []
        for cluster in clusters:
            records = cluster.get("records") or []
            if records:
                representatives.append(record_view(records[0], groups))
        return cls.from_records(representatives, attributes)

    def pair_heterogeneity(self, left: Dict[str, str], right: Dict[str, str]) -> float:
        """Weighted average inverse value similarity of two flat records."""
        total = 0.0
        for attribute, weight in self.weights.items():
            if weight == 0.0:
                continue
            value_left = (left.get(attribute) or "").strip()
            value_right = (right.get(attribute) or "").strip()
            similarity = four_way_similarity(value_left, value_right)
            total += weight * (1.0 - similarity)
        return total

    def record_heterogeneities(self, records: Sequence[Dict[str, str]]) -> List[float]:
        """Per-record heterogeneity: average distance to the other records."""
        count = len(records)
        if count < 2:
            return [0.0] * count
        matrix = [[0.0] * count for _ in range(count)]
        for j in range(1, count):
            for i in range(j):
                score = self.pair_heterogeneity(records[i], records[j])
                matrix[i][j] = matrix[j][i] = score
        return [sum(row) / (count - 1) for row in matrix]

    def cluster_heterogeneity(self, records: Sequence[Dict[str, str]]) -> float:
        """Average record heterogeneity (0 for singletons)."""
        per_record = self.record_heterogeneities(records)
        if not per_record:
            return 0.0
        return sum(per_record) / len(per_record)

    def pair_heterogeneities(self, records: Sequence[Dict[str, str]]) -> List[float]:
        """All pairwise heterogeneity scores (for distributions)."""
        scores = []
        for j in range(1, len(records)):
            for i in range(j):
                scores.append(self.pair_heterogeneity(records[i], records[j]))
        return scores

    def score_cluster_document(
        self,
        cluster: dict,
        groups: Tuple[str, ...] = ("person",),
        version: Optional[int] = None,
    ) -> Dict[int, Dict[int, float]]:
        """Version-similarity maps ``{j: {i: score}}`` for a cluster document."""
        records = cluster["records"]
        flats = [record_view(record, groups) for record in records]
        maps: Dict[int, Dict[int, float]] = {}
        for j in range(1, len(records)):
            if version is not None and records[j]["first_version"] != version:
                continue
            row: Dict[int, float] = {}
            for i in range(j):
                row[i] = self.pair_heterogeneity(flats[i], flats[j])
            maps[j] = row
        return maps

    # ------------------------------------------------------------- batch path

    def _weighted_attributes(self) -> Tuple[Tuple[str, float], ...]:
        """The non-zero-weight attributes in weight-map order."""
        return tuple(
            (attribute, weight)
            for attribute, weight in self.weights.items()
            if weight != 0.0
        )

    def _pair_from_values(
        self,
        values_left: Tuple[str, ...],
        values_right: Tuple[str, ...],
        weighted: Tuple[Tuple[str, float], ...],
        cache: Dict[Tuple[str, str], float],
    ) -> float:
        """Pair heterogeneity over pre-stripped values with pair-dedup cache.

        Accumulates in the same attribute order as
        :meth:`pair_heterogeneity`, so the result is bit-identical; the
        cache key is canonicalised because the four-way similarity is
        exactly symmetric (it canonicalises internally itself).
        """
        total = 0.0
        for index, (_attribute, weight) in enumerate(weighted):
            value_left = values_left[index]
            value_right = values_right[index]
            if value_left == value_right:
                continue  # four_way_similarity is 1.0, contributing nothing
            if value_left < value_right:
                key = (value_left, value_right)
            else:
                key = (value_right, value_left)
            similarity = cache.get(key)
            if similarity is None:
                similarity = _four_way_cached(key[0], key[1])
                cache[key] = similarity
            total += weight * (1.0 - similarity)
        return total

    def score_clusters(
        self,
        clusters: Iterable[dict],
        groups: Tuple[str, ...] = ("person",),
        version: Optional[int] = None,
        cache: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> Dict[str, Dict[int, Dict[int, float]]]:
        """Batched version-similarity maps for many clusters, by ``ncid``.

        Record values are flattened and stripped once per record (instead of
        once per pair), and each *distinct* value pair across all requested
        clusters is scored exactly once through a shared cache.  Scores are
        bit-identical to :meth:`score_cluster_document` per cluster.  Pass
        an explicit ``cache`` dict to share pair-deduplication across
        multiple calls (e.g. per-shard workers scoring several batches).
        """
        weighted = self._weighted_attributes()
        if cache is None:
            cache = {}
        results: Dict[str, Dict[int, Dict[int, float]]] = {}
        for cluster in clusters:
            records = cluster["records"]
            values = []
            for record in records:
                flat = record_view(record, groups)
                values.append(
                    tuple((flat.get(a) or "").strip() for a, _w in weighted)
                )
            maps: Dict[int, Dict[int, float]] = {}
            for j in range(1, len(records)):
                if version is not None and records[j]["first_version"] != version:
                    continue
                row: Dict[int, float] = {}
                for i in range(j):
                    row[i] = self._pair_from_values(
                        values[i], values[j], weighted, cache
                    )
                maps[j] = row
            results[cluster["ncid"]] = maps
        return results
