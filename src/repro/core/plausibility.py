"""Plausibility scoring — how likely is a cluster sound? (Section 6.2)

The basic assumption is that all records of a cluster ARE duplicates; the
score only reflects significant contradictions.  Accordingly the measures
compensate errors aggressively: missing values, abbreviations and name
order confusions do not reduce similarity at all.  Only attributes that are
stable and identifying/discriminating enter the score:

* the three names, combined into a single name similarity through the
  Generalized Jaccard coefficient with the extended Damerau-Levenshtein
  token similarity (weight 0.5);
* the sex code (weight 0.15) — only a hard F/M disagreement counts;
* the year of birth derived from snapshot date and age, with a tolerance of
  one year and a hard zero at a ten-year difference (weight 0.15);
* the place of birth via extended Damerau-Levenshtein (weight 0.15).

The cluster plausibility is the minimum over its records, because a single
foreign record makes the whole cluster unsound.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.clusters import record_view
from repro.textsim.levenshtein import extended_damerau_levenshtein_similarity

#: Attribute weights: name 0.5, the three others 0.15 each (Section 6.2).
WEIGHTS = {"name": 0.5, "sex": 0.15, "yob": 0.15, "birth_place": 0.15}


def name_tokens(record: Dict[str, str]) -> List[str]:
    """The (first, middle, last) name triple, empty slots included.

    Empty slots are kept because the extended Damerau-Levenshtein token
    similarity treats a missing value as a perfect match — a missing middle
    name must not reduce the name similarity (Section 6.2).
    """
    return [
        (record.get(attribute) or "").strip()
        for attribute in ("first_name", "midl_name", "last_name")
    ]


def _name_similarity_tokens(
    tokens_left: Tuple[str, ...], tokens_right: Tuple[str, ...]
) -> float:
    """Best-permutation mean token similarity of two name triples."""
    import itertools

    best = 0.0
    for permutation in itertools.permutations(range(3)):
        total = sum(
            extended_damerau_levenshtein_similarity(
                tokens_left[index], tokens_right[permutation[index]]
            )
            for index in range(3)
        )
        best = max(best, total / 3.0)
        if best == 1.0:
            break
    return best


def name_similarity(left: Dict[str, str], right: Dict[str, str]) -> float:
    """Generalized Jaccard over the name triples (order-insensitive).

    The triples are matched 1:1 in their best permutation, so word
    confusions between the name attributes are fully compensated; typos are
    compensated by the extended Damerau-Levenshtein token similarity;
    missing and abbreviated names yield token similarity 1 (no
    contradiction).  Because both triples always have three slots, the
    Generalized Jaccard denominator equals the match count and the score is
    the mean of the three matched token similarities.
    """
    return _name_similarity_tokens(tuple(name_tokens(left)), tuple(name_tokens(right)))


def sex_similarity(left: Dict[str, str], right: Dict[str, str]) -> float:
    """1 unless two designated sex codes disagree (Section 6.2)."""
    code_left = (left.get("sex_code") or "").strip().upper()
    code_right = (right.get("sex_code") or "").strip().upper()
    if not code_left or not code_right or "U" in (code_left, code_right):
        return 1.0
    return 1.0 if code_left == code_right else 0.0


def year_of_birth(record: Dict[str, str], snapshot_date: Optional[str] = None) -> Optional[int]:
    """Derive the year of birth as ``snapshot year - age``.

    ``snapshot_date`` defaults to the record's own ``snapshot_dt``; stored
    record documents instead carry their snapshot list, so callers pass the
    first snapshot explicitly.  Returns ``None`` when age or date is
    missing/unparseable.
    """
    raw_age = (record.get("age") or "").strip()
    date = (snapshot_date or record.get("snapshot_dt") or "").strip()
    if not raw_age or len(date) < 4:
        return None
    try:
        age = int(raw_age)
        year = int(date[:4])
    except ValueError:
        return None
    return year - age


def year_of_birth_similarity(yob_left: Optional[int], yob_right: Optional[int]) -> float:
    """``1 - min(1, max(0, |Δ| - 1) / 10)`` with missing values scoring 1."""
    if yob_left is None or yob_right is None:
        return 1.0
    delta = abs(yob_left - yob_right)
    return 1.0 - min(1.0, max(0.0, delta - 1.0) / 10.0)


def birth_place_similarity(left: Dict[str, str], right: Dict[str, str]) -> float:
    """Extended Damerau-Levenshtein over the place-of-birth values."""
    return extended_damerau_levenshtein_similarity(
        (left.get("birth_place") or "").strip(),
        (right.get("birth_place") or "").strip(),
    )


def _combine(scores: Dict[str, float]) -> float:
    """Weighted average of the four attribute scores (shared arithmetic).

    Both the per-pair path and the batched path go through this helper so
    their floating-point operations are literally the same.
    """
    total_weight = sum(WEIGHTS.values())
    return sum(WEIGHTS[key] * scores[key] for key in scores) / total_weight


def pair_plausibility(
    left: Dict[str, str],
    right: Dict[str, str],
    snapshot_left: Optional[str] = None,
    snapshot_right: Optional[str] = None,
) -> float:
    """Weighted plausibility of a duplicate record pair (flat records)."""
    scores = {
        "name": name_similarity(left, right),
        "sex": sex_similarity(left, right),
        "yob": year_of_birth_similarity(
            year_of_birth(left, snapshot_left), year_of_birth(right, snapshot_right)
        ),
        "birth_place": birth_place_similarity(left, right),
    }
    return _combine(scores)


def _flat(record_doc: dict) -> Tuple[Dict[str, str], str]:
    """Flatten a stored record document and pick its first snapshot date."""
    flat = record_view(record_doc, ("person",))
    snapshots = record_doc.get("snapshots") or []
    return flat, (snapshots[0] if snapshots else "")


class _RecordFacts:
    """Per-record values derived once instead of once per pair."""

    __slots__ = ("flat", "names", "yob", "place")

    def __init__(self, record_doc: dict) -> None:
        flat, snapshot = _flat(record_doc)
        self.flat = flat
        self.names = tuple(name_tokens(flat))
        self.yob = year_of_birth(flat, snapshot)
        self.place = (flat.get("birth_place") or "").strip()


def _pair_plausibility_cached(
    left: "_RecordFacts",
    right: "_RecordFacts",
    name_cache: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], float],
    place_cache: Dict[Tuple[str, str], float],
) -> float:
    """Pair plausibility with the heavy kernels deduplicated through caches.

    The name cache is keyed in argument order (the permutation sums are not
    float-associative under operand swap); the birth-place cache key is
    canonicalised because the extended Damerau-Levenshtein similarity is
    exactly symmetric.
    """
    name_key = (left.names, right.names)
    name_score = name_cache.get(name_key)
    if name_score is None:
        name_score = _name_similarity_tokens(left.names, right.names)
        name_cache[name_key] = name_score
    if left.place <= right.place:
        place_key = (left.place, right.place)
    else:
        place_key = (right.place, left.place)
    place_score = place_cache.get(place_key)
    if place_score is None:
        place_score = extended_damerau_levenshtein_similarity(*place_key)
        place_cache[place_key] = place_score
    scores = {
        "name": name_score,
        "sex": sex_similarity(left.flat, right.flat),
        "yob": year_of_birth_similarity(left.yob, right.yob),
        "birth_place": place_score,
    }
    return _combine(scores)


def _score_cluster_cached(
    cluster: dict,
    version: Optional[int],
    name_cache: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], float],
    place_cache: Dict[Tuple[str, str], float],
) -> Dict[int, Dict[int, float]]:
    records = cluster["records"]
    facts = [_RecordFacts(record) for record in records]
    maps: Dict[int, Dict[int, float]] = {}
    for j in range(1, len(records)):
        if version is not None and records[j]["first_version"] != version:
            continue
        row: Dict[int, float] = {}
        for i in range(j):
            row[i] = _pair_plausibility_cached(
                facts[i], facts[j], name_cache, place_cache
            )
        maps[j] = row
    return maps


def score_cluster(cluster: dict, version: Optional[int] = None) -> Dict[int, Dict[int, float]]:
    """Pairwise plausibility maps for a cluster document.

    Returns ``{j: {i: score}}`` for every record index ``j`` and every
    earlier index ``i < j`` — the layout of the version-similarity maps
    (Section 5.2).  ``version`` restricts the computation to record pairs
    where at least one side is new in that version (incremental update).
    """
    return _score_cluster_cached(cluster, version, {}, {})


def score_clusters(
    clusters: Iterable[dict], version: Optional[int] = None
) -> Dict[str, Dict[int, Dict[int, float]]]:
    """Batched plausibility maps for many clusters, keyed by ``ncid``.

    The expensive kernels — best-permutation name similarity and extended
    Damerau-Levenshtein over birth places — are computed once per *distinct*
    value pair across all requested clusters.  Voter attribute distributions
    are heavy-tailed, so this global pair-deduplication collapses most of
    the work; scores are bit-identical to :func:`score_cluster` per cluster.
    """
    name_cache: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], float] = {}
    place_cache: Dict[Tuple[str, str], float] = {}
    return {
        cluster["ncid"]: _score_cluster_cached(
            cluster, version, name_cache, place_cache
        )
        for cluster in clusters
    }


def cluster_plausibility(cluster: dict, version: Optional[int] = None) -> float:
    """Minimum pair plausibility of the cluster (1.0 for singletons).

    Reads the stored version-similarity maps when present, otherwise
    computes scores on the fly.  ``version`` restricts to records existing
    at that version.
    """
    records = cluster["records"]
    if version is not None:
        records = [r for r in records if r["first_version"] <= version]
    if len(records) < 2:
        return 1.0
    minimum = 1.0
    flats = [_flat(record) for record in records]
    for j in range(1, len(records)):
        stored = _stored_row(records[j], "plausibility")
        for i in range(j):
            if stored is not None and str(i) in stored:
                score = stored[str(i)]
            else:
                left, snap_left = flats[i]
                right, snap_right = flats[j]
                score = pair_plausibility(left, right, snap_left, snap_right)
            if score < minimum:
                minimum = score
    return minimum


def pair_plausibilities(cluster: dict) -> List[float]:
    """All pairwise plausibility scores of a cluster (for distributions)."""
    records = cluster["records"]
    flats = [_flat(record) for record in records]
    scores = []
    for j in range(1, len(records)):
        stored = _stored_row(records[j], "plausibility")
        for i in range(j):
            if stored is not None and str(i) in stored:
                scores.append(stored[str(i)])
            else:
                left, snap_left = flats[i]
                right, snap_right = flats[j]
                scores.append(pair_plausibility(left, right, snap_left, snap_right))
    return scores


def _stored_row(record_doc: dict, kind: str) -> Optional[Dict[str, float]]:
    """Merge a record's version-similarity maps of ``kind`` across versions."""
    versions = record_doc.get(kind) or {}
    if not versions:
        return None
    merged: Dict[str, float] = {}
    for _version, row in sorted(versions.items(), key=lambda item: int(item[0])):
        merged.update(row)
    return merged
