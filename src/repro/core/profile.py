"""Schema profiles: the domain generalisation of the generation pipeline.

The paper's future work (Section 8) is to "generalize the procedure ... and
apply it to historical corpora from other domains".  Everything the core
pipeline needs to know about a domain is captured by a
:class:`SchemaProfile`:

* the stable entity identifier (the NC register's ``ncid``);
* the attribute groups used to split records into sub-documents (the
  register's ``person`` / ``district`` / ``election`` / ``meta``);
* which group carries the entity's identity (the *primary* group — the one
  hashed at the strictest removal level and scored for heterogeneity);
* the attributes excluded from the exact-duplicate hash because they change
  without the entity changing (the register's dates and age).

The NC voter profile is the default everywhere, so existing call sites keep
working; :mod:`repro.histcorpus` defines a second, company-register profile
to prove the generalisation end to end.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Tuple

from repro.votersim import schema as voter_schema


@dataclasses.dataclass(frozen=True)
class SchemaProfile:
    """Everything the pipeline needs to know about a record domain."""

    #: Human-readable domain name (used in version metadata).
    name: str
    #: Attribute holding the stable real-world entity id.
    id_attribute: str
    #: Group name -> attribute tuple; groups partition the schema.
    groups: Mapping[str, Tuple[str, ...]]
    #: The group carrying the entity's identity (the paper's ``person``).
    primary_group: str
    #: Attributes excluded from the exact-duplicate record hash.
    hash_excluded: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.primary_group not in self.groups:
            raise ValueError(
                f"primary group {self.primary_group!r} not in groups "
                f"{sorted(self.groups)}"
            )
        seen: Dict[str, str] = {}
        for group, attributes in self.groups.items():
            for attribute in attributes:
                if attribute in seen:
                    raise ValueError(
                        f"attribute {attribute!r} appears in groups "
                        f"{seen[attribute]!r} and {group!r}"
                    )
                seen[attribute] = group
        if self.id_attribute not in seen:
            raise ValueError(
                f"id attribute {self.id_attribute!r} not in any group"
            )
        unknown_exclusions = set(self.hash_excluded) - set(seen)
        if unknown_exclusions:
            raise ValueError(
                f"hash exclusions not in schema: {sorted(unknown_exclusions)}"
            )

    @property
    def all_attributes(self) -> Tuple[str, ...]:
        """Every attribute in group declaration order."""
        result = []
        for attributes in self.groups.values():
            result.extend(attributes)
        return tuple(result)

    @property
    def group_names(self) -> Tuple[str, ...]:
        """The group names in declaration order."""
        return tuple(self.groups)

    def attribute_group(self, attribute: str) -> str:
        """The group an attribute belongs to."""
        for group, attributes in self.groups.items():
            if attribute in attributes:
                return group
        raise KeyError(f"unknown attribute {attribute!r}")

    def hash_attributes(self, primary_only: bool = False) -> Tuple[str, ...]:
        """Attributes entering the record hash at a removal level.

        ``primary_only=True`` restricts to the primary group (the Table 2
        ``person`` level); otherwise the full schema is used.  The
        ``hash_excluded`` attributes are removed in both cases.
        """
        excluded = set(self.hash_excluded)
        if primary_only:
            pool = self.groups[self.primary_group]
        else:
            pool = self.all_attributes
        return tuple(a for a in pool if a not in excluded)

    def primary_attributes(self) -> Tuple[str, ...]:
        """The primary group's attributes (including the id attribute)."""
        return self.groups[self.primary_group]


#: The paper's domain: the North Carolina voter register.
NC_VOTER_PROFILE = SchemaProfile(
    name="nc_voter",
    id_attribute="ncid",
    groups={
        "person": voter_schema.PERSON_ATTRIBUTES,
        "district": voter_schema.DISTRICT_ATTRIBUTES,
        "election": voter_schema.ELECTION_ATTRIBUTES,
        "meta": voter_schema.META_ATTRIBUTES,
    },
    primary_group="person",
    hash_excluded=voter_schema.HASH_EXCLUDED_ATTRIBUTES,
)
