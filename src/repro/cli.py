"""Command-line interface: the end-user workflow as five subcommands.

::

    ncvoter-testdata simulate  --out snapshots/ --voters 2000 --years 8
    ncvoter-testdata generate  --snapshots snapshots/ --store store/ --stats
    ncvoter-testdata stats     --store store/
    ncvoter-testdata customize --store store/ --out nc2.csv --h-lo 0.2 --h-hi 0.4
    ncvoter-testdata evaluate  --dataset nc2.csv --gold nc2.gold.csv
    ncvoter-testdata detect    --dataset nc2.csv --workers 4 --window 20
    ncvoter-testdata check     --store store/ --pipeline pipeline.json
    ncvoter-testdata recover   --store store/
    ncvoter-testdata scrub     --store store/

``simulate`` writes snapshot TSVs (the register's publication format);
``generate`` runs the full update process (import → statistics → publish)
into a persisted document store — with ``--durable`` every snapshot is
write-ahead-logged and committed as its own version, so an interrupted
run resumes from the last committed snapshot; ``stats`` prints the
Table 1/2 statistics of a store; ``customize`` extracts a
heterogeneity-bounded test dataset as CSV plus a gold-pair file;
``evaluate`` sweeps thresholds for the three paper measures and reports
the best F1 per measure; ``detect`` runs the streaming, parallel
detection pipeline (packed candidate pairs, prepared record vectors,
sharded pair scoring — bit-identical to ``evaluate`` at any worker
count); ``recover`` replays a durable store's write-ahead logs and
reports what crash recovery had to repair; ``scrub`` verifies the store's
on-disk integrity (WAL CRC frames, snapshot checksums, sequence
continuity) without modifying it and, with ``--repair``, salvages
damaged files and lifts any quarantine.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.core import RemovalLevel, TestDataGenerator, customize
from repro.core.heterogeneity import HeterogeneityScorer
from repro.core.statistics import snapshot_year_stats
from repro.core.versioning import UpdateProcess
from repro.docstore import Database
from repro.votersim import (
    SimulationConfig,
    VoterRegisterSimulator,
    read_snapshot_tsv,
)
from repro.votersim.schema import PERSON_ATTRIBUTES


def _cmd_simulate(args: argparse.Namespace) -> int:
    config = SimulationConfig(
        initial_voters=args.voters,
        years=args.years,
        snapshots_per_year=args.snapshots_per_year,
        seed=args.seed,
    )
    simulator = VoterRegisterSimulator(config)
    paths = simulator.run_to_directory(Path(args.out))
    total = 0
    for path in paths:
        rows = sum(1 for _ in path.open()) - 1
        total += rows
        print(f"wrote {path} ({rows} rows)")
    print(f"{len(paths)} snapshots, {total} rows total")
    return 0


def _load_snapshots(directory: Path):
    paths = sorted(Path(directory).glob("*.tsv"))
    if not paths:
        raise SystemExit(f"no .tsv snapshots found in {directory}")
    return [read_snapshot_tsv(path) for path in paths]


def _cmd_generate(args: argparse.Namespace) -> int:
    snapshots = _load_snapshots(args.snapshots)
    store = Path(args.store)
    if args.durable:
        from repro.docstore import DurableDatabase

        database = DurableDatabase(store, fsync_batch=args.fsync_batch)
        if database.last_recovery is not None and not database.last_recovery.clean:
            print("recovered store:")
            print(database.last_recovery.render())
        generator = TestDataGenerator.from_database(
            database, removal=RemovalLevel(args.removal)
        )
        skipped = sum(
            1 for s in snapshots if s.date in generator._imported_snapshots
        )
        if skipped:
            print(f"resuming: {skipped} snapshot(s) already committed")
    else:
        generator = TestDataGenerator(removal=RemovalLevel(args.removal))
    process = UpdateProcess(generator, workers=args.workers, shards=args.shards)
    if args.durable:
        # One committed version per snapshot: a crash mid-run resumes from
        # the last durably committed snapshot instead of starting over.
        versions = process.run_incremental(snapshots, compute_statistics=args.stats)
        version = generator.current_version
        if not versions:
            print("nothing to do: all snapshots already committed")
    else:
        version = process.run(
            snapshots, compute_statistics=args.stats, note="cli generate"
        )
    # Persist import statistics alongside the store for the stats command.
    stats_rows = [
        {
            "snapshot_date": stats.snapshot_date,
            "rows": stats.rows,
            "new_records": stats.new_records,
            "new_clusters": stats.new_clusters,
            "skipped": stats.skipped,
        }
        for stats in generator.import_stats
    ]
    collection = generator.database.get_collection("import_stats")
    # ``stats`` reads this sorted by snapshot_date; the index serves the
    # sort in index order instead of sorting every row on each read.
    if "snapshot_date_sorted" not in collection.index_names():
        collection.create_index("snapshot_date", "sorted")
    if stats_rows:
        collection.insert_many(stats_rows)
    generator.database.save(store)
    if args.durable:
        generator.database.close()
    print(
        f"published version {version}: {generator.record_count} records in "
        f"{generator.cluster_count} clusters -> {args.store}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import warnings

    from repro.docstore import (
        DegradedReadError,
        DegradedReadWarning,
        StorageCorruptError,
    )

    try:
        database = Database.load(Path(args.store))
    except StorageCorruptError as exc:
        print(f"store is damaged: {exc}")
        print("run 'scrub --store ... --repair' to salvage what the "
              "files still hold")
        return 1
    clusters = database["clusters"]
    pipeline = [
        {"$addFields": {"size": {"$size": "$records"}}},
        {
            "$group": {
                "_id": None,
                "clusters": {"$sum": 1},
                "records": {"$sum": "$size"},
                "max_size": {"$max": "$size"},
            }
        },
    ]
    try:
        result = clusters.aggregate(pipeline)
    except DegradedReadError as exc:
        # A quarantined shard darkens part of the store; report what the
        # healthy shards hold rather than nothing, and say so loudly.
        print(f"WARNING: store is degraded ({exc})")
        print("statistics below cover the healthy shards only; run "
              "'scrub --repair' to salvage and lift the quarantine")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedReadWarning)
            result = clusters.aggregate(pipeline, allow_degraded=True)
    if not result:
        print("store is empty")
        return 1
    summary = result[0]
    print(f"clusters:     {summary['clusters']}")
    print(f"records:      {summary['records']}")
    print(f"avg cluster:  {summary['records'] / summary['clusters']:.2f}")
    print(f"max cluster:  {summary['max_size']}")
    for version in database["versions"].find(sort=[("version", 1)]):
        print(
            f"version {version['version']}: {version['records']} records, "
            f"{version['clusters']} clusters ({version['note']})"
        )
    if "import_stats" in database:
        from repro.core.generator import ImportStats

        from repro.report import render_year_stats

        rows = [
            ImportStats(
                snapshot_date=doc["snapshot_date"],
                rows=doc["rows"],
                new_records=doc["new_records"],
                new_clusters=doc["new_clusters"],
                skipped=doc["skipped"],
            )
            for doc in database["import_stats"].find(sort=[("snapshot_date", 1)])
        ]
        print()
        print(render_year_stats(snapshot_year_stats(rows)))
    if args.layout:
        from repro.report import render_resilience, render_shard_stats

        stats = database.stats()
        print()
        print("storage layout:")
        print(render_shard_stats(stats))
        print()
        print("resilience:")
        print(render_resilience(stats))
    return 0


def _generator_from_store(store: Path) -> TestDataGenerator:
    return TestDataGenerator.from_database(Database.load(store))


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.docstore import StorageCorruptError
    from repro.docstore.storage import RecoveryReport, load_database

    store = Path(args.store)
    report = RecoveryReport()
    try:
        database = load_database(
            store, repair=args.repair, report=report, truncate=True
        )
    except StorageCorruptError as exc:
        print(f"unrecoverable: {exc}")
        if not args.repair:
            print("hint: --repair salvages the parseable lines of damaged "
                  "snapshot files")
        return 1
    print(report.render())
    if args.repair and report.salvaged:
        # Write the salvaged state back so the damage does not resurface
        # on the next load.  The recovered epoch is recorded in the
        # manifest; replaying the (already truncated) logs on top of the
        # fresh snapshot is idempotent.
        database.committed_epoch = report.committed_epoch  # type: ignore[attr-defined]
        database.save(store)
        print(f"store rewritten with salvaged snapshot(s) -> {store}")
    counts = ", ".join(
        f"{name}: {database[name].count_documents({})} docs"
        for name in database.collection_names()
    )
    print(f"recovered state: {counts or 'empty database'}")
    return 0 if report.clean else 2


def _cmd_scrub(args: argparse.Namespace) -> int:
    import json

    from repro.docstore import StorageError
    from repro.docstore.scrub import repair_database, scrub_database

    store = Path(args.store)
    try:
        report = scrub_database(store, deep=not args.shallow)
    except StorageError as exc:
        print(f"unscannable: {exc}")
        return 1
    print(report.render())
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2), encoding="utf-8"
        )
        print(f"findings written -> {args.json}")
    if args.repair and (report.errors or report.quarantined):
        repair = repair_database(store)
        print(repair.render())
        after = scrub_database(store, deep=not args.shallow)
        print("post-repair scrub:")
        print(after.render())
        return 2 if after.ok else 1
    if report.errors:
        if not args.repair:
            print("hint: --repair salvages the damaged files and lifts "
                  "any quarantine")
        return 1
    if report.findings or report.quarantined:
        return 2
    return 0


def _cmd_customize(args: argparse.Namespace) -> int:
    generator = _generator_from_store(Path(args.store))
    attributes = tuple(a for a in PERSON_ATTRIBUTES if a != "ncid")
    scorer = HeterogeneityScorer.from_clusters(
        generator.clusters(), ("person",), attributes
    )
    result = customize(
        generator,
        args.h_lo,
        args.h_hi,
        target_clusters=args.clusters,
        scorer=scorer,
        name=Path(args.out).stem,
        seed=args.seed,
    )
    from repro.datasets.io import save_dataset

    out_path, gold_path = save_dataset(
        Path(args.out), result.records, result.cluster_of, attributes
    )
    print(
        f"wrote {out_path} ({result.record_count} records, "
        f"{result.cluster_count} clusters) and {gold_path} "
        f"({len(result.gold_pairs)} pairs)"
    )
    return 0


def _load_labeled_dataset(args: argparse.Namespace):
    """(records, attributes, gold pairs) of an evaluate/detect invocation."""
    from repro.datasets.io import load_dataset

    dataset = load_dataset(Path(args.dataset))
    if args.gold:
        with Path(args.gold).open(newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            next(reader)
            gold = {(int(left), int(right)) for left, right in reader}
    else:
        gold = dataset.gold_pairs
    return dataset.records, list(dataset.attributes), gold


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.dedup import (
        DetectionPipeline,
        RecordMatcher,
        best_f1,
        evaluate_thresholds,
    )
    from repro.textsim import JaroWinkler, MongeElkan, QgramJaccard

    records, attributes, gold = _load_labeled_dataset(args)

    # Candidates are generated once (streamed, packed) and scored per
    # measure through the prepared-vector batch path — bit-identical to
    # the historical tuple-set + per-pair loop, measurably faster.
    pipeline = DetectionPipeline(window=args.window, passes=args.passes)
    candidate_keys, _stats = pipeline.candidates(records, attributes)
    record_count = len(records)
    gold_lost = sum(
        1
        for left, right in gold
        if left * record_count + right not in candidate_keys
    )
    thresholds = [t / 20 for t in range(4, 20)]
    print(
        f"{len(records)} records, {len(gold)} gold pairs, "
        f"{len(candidate_keys)} candidates ({gold_lost} gold lost)"
    )
    name_attributes = tuple(
        a for a in ("first_name", "midl_name", "last_name") if a in attributes
    )
    for label, measure in (
        ("ME/Lev", MongeElkan()),
        ("JaroWinkler", JaroWinkler()),
        ("Jaccard-3grams", QgramJaccard()),
    ):
        matcher = RecordMatcher.from_records(
            records, attributes, measure, name_attributes
        )
        similarities = pipeline.score(records, candidate_keys, matcher)
        points = evaluate_thresholds(similarities, gold, thresholds)
        best = best_f1(points)
        print(
            f"{label:<15} best F1 {best.f1:.3f} @ {best.threshold:.2f} "
            f"(P={best.precision:.2f}, R={best.recall:.2f})"
        )
    return 0


def _parse_candidate_passes(value: str) -> tuple:
    """Decode the ``--passes`` argument of ``detect``.

    Backwards compatible: a bare integer (``--passes 5``) keeps its
    historical meaning — that many entropy-ranked SNM passes.  Pass
    names select generator families instead: ``lsh``, ``snm``, or a
    ``+``/``,``-separated union like ``snm+lsh`` (SNM keeps its default
    five sort keys; combine with ``--window`` and the ``--bands`` /
    ``--rows`` / ``--ngram`` knobs).  Returns
    ``(candidate_passes, snm_pass_count)``.
    """
    text = value.strip().lower()
    if text.isdigit():
        count = int(text)
        if count < 1:
            raise argparse.ArgumentTypeError(
                f"--passes must be >= 1, got {count}"
            )
        return ("snm",), count
    names = [part for part in text.replace(",", "+").split("+") if part]
    if not names or any(name not in ("snm", "lsh") for name in names):
        raise argparse.ArgumentTypeError(
            f"--passes must be an integer (SNM pass count) or a combination "
            f"of 'snm'/'lsh' (e.g. 'lsh', 'snm+lsh'); got {value!r}"
        )
    ordered = tuple(dict.fromkeys(names))
    return ordered, 5


def _cmd_detect(args: argparse.Namespace) -> int:
    from repro.dedup import DetectionPipeline, RecordMatcher
    from repro.dedup.pipeline import DEFAULT_THRESHOLDS
    from repro.textsim import JaroWinkler, MongeElkan, QgramJaccard

    measures = {
        "monge_elkan": MongeElkan,
        "jaro_winkler": JaroWinkler,
        "qgram_jaccard": QgramJaccard,
    }
    records, attributes, gold = _load_labeled_dataset(args)
    thresholds = list(DEFAULT_THRESHOLDS)
    if args.threshold is not None and args.threshold not in thresholds:
        thresholds.append(args.threshold)

    candidate_passes, snm_passes = args.passes
    pipeline = DetectionPipeline(
        window=args.window,
        passes=snm_passes,
        workers=args.workers,
        shards=args.shards,
        thresholds=sorted(thresholds),
        candidate_passes=candidate_passes,
        bands=args.bands,
        rows=args.rows,
        ngram=args.ngram,
        lsh_seed=args.lsh_seed,
        max_bucket_size=args.max_bucket,
        cosine_floor=args.cosine_floor,
    )
    name_attributes = tuple(
        a for a in ("first_name", "midl_name", "last_name") if a in attributes
    )
    matcher = RecordMatcher.from_records(
        records, attributes, measures[args.measure](), name_attributes
    )
    result = pipeline.detect(records, attributes, matcher, gold)
    print(result.candidate_stats.render())
    if result.candidate_stats.pairs_dropped:
        print(
            f"WARNING: {result.candidate_stats.pairs_dropped} candidate "
            "pair(s) dropped by oversized-block caps"
        )
    print(
        f"{len(records)} records, {result.gold_size} gold pairs, "
        f"{len(result.candidate_keys)} candidates "
        f"({result.gold_missed} gold lost to blocking)"
    )
    if args.threshold is not None:
        point = next(p for p in result.points if p.threshold == args.threshold)
        print(
            f"@ {point.threshold:.2f}: P={point.precision:.3f} "
            f"R={point.recall:.3f} F1={point.f1:.3f} "
            f"(TP={point.true_positives}, FP={point.false_positives}, "
            f"FN={point.false_negatives})"
        )
    best = result.best
    print(
        f"{args.measure} best F1 {best.f1:.3f} @ {best.threshold:.2f} "
        f"(P={best.precision:.2f}, R={best.recall:.2f})"
    )
    return 0


def _cmd_augment(args: argparse.Namespace) -> int:
    from repro.core.augment import AugmentationPlan, Augmenter

    generator = _generator_from_store(Path(args.store))
    plan = AugmentationPlan(
        share_of_clusters=args.share,
        duplicates_per_cluster=args.duplicates,
        errors_per_duplicate=args.errors,
        seed=args.seed,
    )
    stats = Augmenter(generator, plan).augment()
    generator.publish(
        note=f"augmented: +{stats.records_added} synthetic records"
    )
    generator.database.save(Path(args.store))
    print(
        f"added {stats.records_added} synthetic records to "
        f"{stats.clusters_touched} clusters (store now has "
        f"{generator.record_count} records, version {generator.current_version})"
    )
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    from repro.core.plausibility import cluster_plausibility
    from repro.core.repair import apply_repair, split_cluster

    generator = _generator_from_store(Path(args.store))
    suspicious = []
    for cluster in generator.clusters():
        if len(cluster["records"]) < 2:
            continue
        plausibility = cluster_plausibility(cluster)
        if plausibility < args.threshold:
            suspicious.append((plausibility, cluster))
    suspicious.sort(key=lambda item: item[0])
    print(f"{len(suspicious)} clusters below plausibility {args.threshold}")
    split_count = 0
    for plausibility, cluster in suspicious:
        result = split_cluster(cluster, threshold=args.threshold)
        marker = f"split into {len(result.groups)} groups" if result.was_split else "kept"
        print(f"  {cluster['ncid']}  plausibility {plausibility:.2f}  {marker}")
        if args.apply and result.was_split:
            split_count += 1
            clusters = generator.database.get_collection("clusters")
            clusters.delete_many({"_id": cluster["ncid"]})
            del generator._clusters[cluster["ncid"]]
            for sub in apply_repair(cluster, result):
                generator._clusters[sub["ncid"]] = sub
                clusters.insert_one(sub)
    if args.apply:
        generator.publish(note=f"repaired {split_count} unsound clusters")
        generator.database.save(Path(args.store))
        print(f"applied: {split_count} clusters split; store saved")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core.validate import validate_store

    database = Database.load(Path(args.store))
    report = validate_store(database)
    print(
        f"checked {report.clusters_checked} clusters / "
        f"{report.records_checked} records"
    )
    if report.ok:
        print("store is sound")
        return 0
    for error in report.errors[:50]:
        print(f"  VIOLATION: {error}")
    if len(report.errors) > 50:
        print(f"  ... and {len(report.errors) - 50} more")
    return 1


def _load_spec(value: str):
    """Parse ``value`` as inline JSON or as a path to a JSON file."""
    import json

    path = Path(value)
    text = value
    if path.is_file():
        text = path.read_text(encoding="utf-8")
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"not valid JSON (or a path to a JSON file): {value!r}: {exc}")


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis import (
        SchemaPaths,
        analyze_customization,
        analyze_filter,
        analyze_pipeline,
        cluster_schema,
        has_errors,
    )

    if not (args.filter or args.pipeline or args.customize or args.concurrency):
        raise SystemExit(
            "nothing to check: pass --filter, --pipeline, --customize "
            "or --concurrency"
        )

    if args.concurrency:
        return _check_concurrency(args)

    schema = None
    collection = None
    if args.store:
        from repro.docstore import CollectionNotFound, StorageError

        try:
            database = Database.load(Path(args.store))
        except StorageError as exc:
            raise SystemExit(f"cannot load store: {exc}")
        try:
            collection = database.get_collection(args.collection, create=False)
        except CollectionNotFound:
            raise SystemExit(
                f"store has no collection {args.collection!r} "
                f"(has: {', '.join(database.collection_names())})"
            )
        if not args.no_schema:
            documents = collection.find(limit=200)
            schema = SchemaPaths.from_documents(
                documents, name=f"{args.collection}@{args.store}"
            )
    elif not args.no_schema:
        schema = cluster_schema()

    filter_doc = _load_spec(args.filter) if args.filter else None
    pipeline = _load_spec(args.pipeline) if args.pipeline else None

    diagnostics = []
    if filter_doc is not None:
        diagnostics.extend(analyze_filter(filter_doc, schema))
    if pipeline is not None:
        diagnostics.extend(analyze_pipeline(pipeline, schema))
    if args.customize:
        diagnostics.extend(analyze_customization(_load_spec(args.customize)))
    if collection is not None and (filter_doc is not None or pipeline is not None):
        # Against a real store we also know the indexes and shard layout,
        # so index-usage (I4xx) and shard-routing (I407) hints apply.
        from repro.analysis import analyze_index_usage

        nshards = getattr(collection, "nshards", 1)
        diagnostics.extend(
            analyze_index_usage(
                filter_doc,
                pipeline=pipeline if isinstance(pipeline, list) else None,
                indexes=collection.index_specs(),
                shard_key=collection.shard_key if nshards > 1 else None,
                shards=nshards,
            )
        )

    for diagnostic in diagnostics:
        print(diagnostic.render())
    errors = sum(1 for d in diagnostics if d.severity == "error")
    warnings = len(diagnostics) - errors
    if diagnostics:
        print(f"{errors} error(s), {warnings} warning(s)")
    else:
        print("no problems found")
    return 1 if has_errors(diagnostics) else 0


def _check_concurrency(args: argparse.Namespace) -> int:
    """Run the R-code concurrency/determinism analyzer over source trees."""
    from repro.analysis.concurrency import (
        analyze_concurrency,
        write_json_report,
    )

    report = analyze_concurrency([Path(p) for p in args.concurrency])
    for diagnostic in report.all_findings:
        print(diagnostic.render())
    if args.json:
        write_json_report(report, Path(args.json))
        print(f"report written to {args.json}")
    counts = report.counts()
    if counts:
        summary = ", ".join(f"{code}: {n}" for code, n in counts.items())
        print(f"{len(report.all_findings)} finding(s) ({summary})")
        return 1
    suppressed = len(report.suppressed)
    note = f" ({suppressed} suppressed)" if suppressed else ""
    print(f"no concurrency findings{note}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="ncvoter-testdata",
        description="Generate realistic duplicate-detection test datasets "
        "from historical (simulated) voter snapshots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="write snapshot TSVs")
    simulate.add_argument("--out", required=True, help="output directory")
    simulate.add_argument("--voters", type=int, default=1000)
    simulate.add_argument("--years", type=int, default=8)
    simulate.add_argument("--snapshots-per-year", type=int, default=2)
    simulate.add_argument("--seed", type=int, default=20210323)
    simulate.set_defaults(func=_cmd_simulate)

    generate = sub.add_parser("generate", help="snapshots -> cluster store")
    generate.add_argument("--snapshots", required=True, help="TSV directory")
    generate.add_argument("--store", required=True, help="store directory")
    generate.add_argument(
        "--removal",
        choices=[level.value for level in RemovalLevel],
        default=RemovalLevel.TRIMMED.value,
    )
    generate.add_argument(
        "--stats", action="store_true",
        help="compute plausibility/heterogeneity statistics (slower)",
    )
    generate.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for the scoring stage (0 = in-process); "
        "results are identical for any worker count",
    )
    generate.add_argument(
        "--shards", type=int, default=None,
        help="cluster shards for parallel scoring (default: one per worker)",
    )
    generate.add_argument(
        "--durable", action="store_true",
        help="write-ahead-log every mutation and commit one version per "
        "snapshot; an interrupted run resumes from the last committed one",
    )
    generate.add_argument(
        "--fsync-batch", type=int, default=0,
        help="with --durable: fsync the log every N staged operations "
        "(0 = only at commits; commits always fsync)",
    )
    generate.set_defaults(func=_cmd_generate)

    stats = sub.add_parser("stats", help="print store statistics")
    stats.add_argument("--store", required=True)
    stats.add_argument(
        "--layout", action="store_true",
        help="also print the storage layout: per-collection shard counts, "
        "per-shard document counts and balance factor",
    )
    stats.set_defaults(func=_cmd_stats)

    custom = sub.add_parser("customize", help="store -> CSV test dataset")
    custom.add_argument("--store", required=True)
    custom.add_argument("--out", required=True, help="output CSV path")
    custom.add_argument("--h-lo", type=float, default=0.0)
    custom.add_argument("--h-hi", type=float, default=1.0)
    custom.add_argument("--clusters", type=int, default=10_000)
    custom.add_argument("--seed", type=int, default=0)
    custom.set_defaults(func=_cmd_customize)

    evaluate = sub.add_parser("evaluate", help="run the three paper measures")
    evaluate.add_argument("--dataset", required=True, help="CSV from customize")
    evaluate.add_argument("--gold", help="gold CSV (default: <dataset>.gold.csv)")
    evaluate.add_argument("--window", type=int, default=20)
    evaluate.add_argument("--passes", type=int, default=5)
    evaluate.set_defaults(func=_cmd_evaluate)

    detect = sub.add_parser(
        "detect",
        help="streaming parallel duplicate detection on a labeled dataset",
        description="Run the end-to-end detection pipeline "
        "(repro.dedup.pipeline): streamed multi-pass Sorted Neighborhood "
        "candidates over packed pair keys, prepared-vector pair scoring — "
        "optionally sharded over worker processes — and a threshold sweep "
        "fed directly into evaluate_thresholds.  Results are bit-identical "
        "for every worker count.",
    )
    detect.add_argument("--dataset", required=True, help="CSV from customize")
    detect.add_argument("--gold", help="gold CSV (default: <dataset>.gold.csv)")
    detect.add_argument("--window", type=int, default=20,
                        help="Sorted Neighborhood window size")
    detect.add_argument(
        "--passes", type=_parse_candidate_passes, default=(("snm",), 5),
        help="an integer (that many SNM passes, the historical default) or "
        "candidate pass types: 'snm', 'lsh', or 'snm+lsh'",
    )
    detect.add_argument("--bands", type=int, default=16,
                        help="LSH bands (candidate iff >=1 band collides)")
    detect.add_argument("--rows", type=int, default=4,
                        help="MinHash rows per band (k = bands*rows)")
    detect.add_argument("--ngram", type=int, default=3,
                        help="character n-gram width for LSH shingles")
    detect.add_argument("--lsh-seed", type=int, default=20210323,
                        help="seed for the MinHash permutations")
    detect.add_argument(
        "--max-bucket", type=int, default=500,
        help="skip LSH buckets larger than this (reported, never silent)",
    )
    detect.add_argument(
        "--cosine-floor", type=float, default=0.0,
        help="drop LSH candidates below this TF-IDF cosine (0 disables)",
    )
    detect.add_argument("--threshold", type=float, default=None,
                        help="also report P/R/F1 at this exact threshold")
    detect.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for pair scoring (0 = in-process); "
        "results are identical for any worker count",
    )
    detect.add_argument(
        "--shards", type=int, default=None,
        help="pair-key shards for parallel scoring (default: one per worker)",
    )
    detect.add_argument(
        "--measure", choices=["monge_elkan", "jaro_winkler", "qgram_jaccard"],
        default="monge_elkan", help="record similarity measure",
    )
    detect.set_defaults(func=_cmd_detect)

    augment = sub.add_parser(
        "augment", help="inject synthetic duplicates (pollution combination)"
    )
    augment.add_argument("--store", required=True)
    augment.add_argument("--share", type=float, default=0.3,
                         help="share of clusters to augment")
    augment.add_argument("--duplicates", type=int, default=1,
                         help="synthetic duplicates per augmented cluster")
    augment.add_argument("--errors", type=float, default=1.5,
                         help="corruptions per synthetic duplicate")
    augment.add_argument("--seed", type=int, default=0)
    augment.set_defaults(func=_cmd_augment)

    repair = sub.add_parser(
        "repair", help="report (and optionally split) unsound clusters"
    )
    repair.add_argument("--store", required=True)
    repair.add_argument("--threshold", type=float, default=0.8,
                        help="plausibility threshold for soundness")
    repair.add_argument("--apply", action="store_true",
                        help="persist the splits back into the store")
    repair.set_defaults(func=_cmd_repair)

    validate = sub.add_parser("validate", help="check a store's invariants")
    validate.add_argument("--store", required=True)
    validate.set_defaults(func=_cmd_validate)

    check = sub.add_parser(
        "check",
        help="statically lint a query spec or source tree",
        description="Lint query filters, aggregation pipelines and "
        "customisation specs without executing them.  Spec arguments accept "
        "inline JSON or a path to a JSON file.  With --concurrency, run the "
        "R-code concurrency/determinism analyzer over Python source trees "
        "instead (optionally writing a JSON report with --json).  Exits 1 "
        "when any error-severity diagnostic is found.",
    )
    check.add_argument("--filter", help="query filter (JSON or file)")
    check.add_argument("--pipeline", help="aggregation pipeline (JSON or file)")
    check.add_argument("--customize", help="customisation spec (JSON or file)")
    check.add_argument(
        "--store",
        help="infer the field-path schema from this store "
        "(default: the built-in cluster schema)",
    )
    check.add_argument(
        "--collection", default="clusters",
        help="collection to sample for --store schema inference",
    )
    check.add_argument(
        "--no-schema", action="store_true",
        help="skip field-path checks (operators/stages only)",
    )
    check.add_argument(
        "--concurrency", nargs="+", metavar="PATH",
        help="run the concurrency/determinism analyzer (R100-R106) over "
        "these source files or directories instead of a query spec",
    )
    check.add_argument(
        "--json", metavar="OUT",
        help="with --concurrency: also write the machine-readable findings "
        "report to this path (the CI artifact format)",
    )
    check.set_defaults(func=_cmd_check)

    recover = sub.add_parser(
        "recover",
        help="replay a store's write-ahead logs and report repairs",
        description="Run crash recovery on a store directory: load the "
        "snapshot, replay committed write-ahead-log operations, truncate "
        "torn log tails, and print what had to be repaired.  Exits 0 when "
        "the store was already clean, 2 when repairs were made, 1 when the "
        "store is corrupt beyond automatic recovery.",
    )
    recover.add_argument("--store", required=True, help="store directory")
    recover.add_argument(
        "--repair", action="store_true",
        help="salvage the parseable lines of damaged snapshot files and "
        "rewrite the store instead of failing",
    )
    recover.set_defaults(func=_cmd_recover)

    scrub = sub.add_parser(
        "scrub",
        help="verify a store's on-disk integrity without modifying it",
        description="Walk a store directory and verify write-ahead-log "
        "CRC frames, snapshot checksums against the manifest, commit-epoch "
        "coverage and cross-partition sequence continuity.  Exits 0 when "
        "the store is clean, 2 when it is degraded or only has repairable "
        "findings, 1 when it holds unrecoverable damage.",
    )
    scrub.add_argument("--store", required=True, help="store directory")
    scrub.add_argument(
        "--shallow", action="store_true",
        help="skip the per-line snapshot parse (checksums only)",
    )
    scrub.add_argument(
        "--repair", action="store_true",
        help="on errors or standing quarantine: salvage the damaged files, "
        "rewrite a clean snapshot and lift the quarantine",
    )
    scrub.add_argument(
        "--json", metavar="OUT",
        help="also write the machine-readable findings report to this path",
    )
    scrub.set_defaults(func=_cmd_scrub)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
