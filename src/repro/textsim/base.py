"""Common interface for similarity measures."""

from __future__ import annotations

import abc


def normalize_for_comparison(value: object) -> str:
    """Coerce ``value`` into a string suitable for similarity comparison.

    ``None`` becomes the empty string; everything else is passed through
    ``str``.  Leading/trailing whitespace is preserved on purpose — trimming
    is an explicit pipeline step in the paper (Section 4), not an implicit
    one.
    """
    if value is None:
        return ""
    return str(value)


class SimilarityMeasure(abc.ABC):
    """A callable object mapping two strings to a similarity in ``[0, 1]``.

    Concrete measures implement :meth:`similarity`.  Instances are also
    callable, which lets them be passed around as plain functions (the
    heterogeneity scorer and the duplicate-detection framework both accept
    either form).
    """

    #: Human-readable identifier used by benchmarks and reports.
    name: str = "similarity"

    @abc.abstractmethod
    def similarity(self, left: str, right: str) -> float:
        """Return the similarity of ``left`` and ``right`` in ``[0, 1]``."""

    def distance(self, left: str, right: str) -> float:
        """Return ``1 - similarity`` — convenient for heterogeneity scores."""
        return 1.0 - self.similarity(left, right)

    def __call__(self, left: str, right: str) -> float:
        return self.similarity(left, right)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
