"""Tokenization helpers shared by the token-based and hybrid measures."""

from __future__ import annotations

import re
from typing import List

_TOKEN_PATTERN = re.compile(r"[^\s]+")
_NON_ALNUM = re.compile(r"[^0-9a-zA-Z]+")


def tokenize(value: str, lowercase: bool = False) -> List[str]:
    """Split ``value`` into whitespace-delimited tokens.

    Empty and ``None``-like inputs yield an empty list.  ``lowercase=True``
    folds case before splitting, which the heterogeneity scorer uses for its
    case-insensitive comparison passes.
    """
    if not value:
        return []
    if lowercase:
        value = value.lower()
    return _TOKEN_PATTERN.findall(value)


def strip_non_alnum(value: str) -> str:
    """Remove every non-alphanumeric character from ``value``.

    Used by the irregularity census to decide whether two values differ only
    in punctuation/formatting (Section 6.4, *different representation*).
    """
    if not value:
        return ""
    return _NON_ALNUM.sub("", value)


def qgrams(value: str, q: int = 3, pad: bool = True) -> List[str]:
    """Return the list of ``q``-grams of ``value``.

    With ``pad=True`` the string is padded with ``q - 1`` boundary markers on
    each side (the usual convention, which lets short strings still produce
    grams and weights prefixes/suffixes).  Strings shorter than ``q`` without
    padding return the string itself as a single gram so that the Jaccard
    measure never silently compares empty sets.
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    if not value:
        return []
    if pad:
        fill = "#" * (q - 1)
        value = f"{fill}{value}{fill}"
    if len(value) < q:
        return [value]
    return [value[i : i + q] for i in range(len(value) - q + 1)]
