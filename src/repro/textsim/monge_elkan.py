"""Monge-Elkan similarity — the paper's cheaper hybrid measure.

Monge-Elkan averages, over the tokens of the first value, the best internal
similarity against any token of the second value:

``ME(A, B) = (1 / |A|) * sum_{a in A} max_{b in B} sim(a, b)``

It is asymmetric, so the paper computes it in both directions and averages
(footnote 13).  It replaces the Generalized Jaccard coefficient in the
heterogeneity computation because the latter is too expensive across all 90
attributes (Section 6.3).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.textsim import fast
from repro.textsim.base import SimilarityMeasure, normalize_for_comparison
from repro.textsim.levenshtein import damerau_levenshtein_similarity
from repro.textsim.tokens import tokenize

SimilarityFn = Callable[[str, str], float]


def monge_elkan(
    left: str,
    right: str,
    token_similarity: SimilarityFn = damerau_levenshtein_similarity,
    tokens_left: Optional[Sequence[str]] = None,
    tokens_right: Optional[Sequence[str]] = None,
) -> float:
    """One-directional Monge-Elkan similarity (left against right).

    With the default Damerau-Levenshtein token measure the computation runs
    through the interned-token fast path and its shared bounded LRU of
    token-pair similarities (:mod:`repro.textsim.fast`) — bit-identical to
    the naive evaluation, dramatically cheaper on repetitive value streams.
    """
    if token_similarity is damerau_levenshtein_similarity:
        if tokens_left is None:
            interned_left = fast.tokens_of(normalize_for_comparison(left))
        else:
            interned_left = tuple(t for t in tokens_left if t)
        if tokens_right is None:
            interned_right = fast.tokens_of(normalize_for_comparison(right))
        else:
            interned_right = tuple(t for t in tokens_right if t)
        return fast.monge_elkan_tokens(interned_left, interned_right)
    if tokens_left is None:
        tokens_left = tokenize(normalize_for_comparison(left))
    if tokens_right is None:
        tokens_right = tokenize(normalize_for_comparison(right))
    tokens_left = [t for t in tokens_left if t]
    tokens_right = [t for t in tokens_right if t]
    if not tokens_left and not tokens_right:
        return 1.0
    if not tokens_left or not tokens_right:
        return 0.0
    total = 0.0
    for token_a in tokens_left:
        total += max(token_similarity(token_a, token_b) for token_b in tokens_right)
    return total / len(tokens_left)


def symmetric_monge_elkan(
    left: str,
    right: str,
    token_similarity: SimilarityFn = damerau_levenshtein_similarity,
) -> float:
    """Monge-Elkan averaged over both directions (the paper's variant)."""
    if token_similarity is damerau_levenshtein_similarity:
        return fast.symmetric_monge_elkan_cached(left, right)
    forward = monge_elkan(left, right, token_similarity)
    backward = monge_elkan(right, left, token_similarity)
    return (forward + backward) / 2.0


class MongeElkan(SimilarityMeasure):
    """Symmetrised Monge-Elkan as a measure object.

    The default internal measure is Damerau-Levenshtein similarity, matching
    the ME/Lev combination used for heterogeneity scores and as one of the
    three evaluation measures (Sections 6.3 and 6.5).
    """

    name = "monge_elkan"

    def __init__(
        self,
        token_similarity: SimilarityFn = damerau_levenshtein_similarity,
        symmetric: bool = True,
    ) -> None:
        self.token_similarity = token_similarity
        self.symmetric = symmetric

    def similarity(self, left: str, right: str) -> float:
        """Monge-Elkan similarity in [0, 1]."""
        if self.symmetric:
            return symmetric_monge_elkan(left, right, self.token_similarity)
        return monge_elkan(left, right, self.token_similarity)
