"""Naive reference implementations of the string kernels (the oracle).

These are the original, straightforward dynamic-programming and
set-arithmetic implementations that :mod:`repro.textsim.fast` replaces on
the hot path.  They stay in-tree for two reasons:

* the property test suite asserts that every fast kernel is **bit-identical**
  to its reference (``tests/textsim/test_fast_equivalence.py``);
* the scoring benchmark (``benchmarks/scoring_bench.py``) measures the fast
  path's speedup against them.

Nothing outside tests and benchmarks should import this module — the public
functions in :mod:`repro.textsim.levenshtein`, :mod:`repro.textsim.monge_elkan`
and :mod:`repro.textsim.jaccard` are the supported API and are exactly as
accurate, only faster.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.textsim.base import normalize_for_comparison
from repro.textsim.tokens import qgrams, tokenize

SimilarityFn = Callable[[str, str], float]


def levenshtein_distance(left: str, right: str) -> int:
    """Classic Levenshtein edit distance (insert / delete / substitute)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for i, ch_left in enumerate(left, start=1):
        current = [i]
        for j, ch_right in enumerate(right, start=1):
            cost = 0 if ch_left == ch_right else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def damerau_levenshtein_distance(left: str, right: str) -> int:
    """Restricted Damerau-Levenshtein (optimal string alignment) distance."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    len_l, len_r = len(left), len(right)
    # Three rolling rows are enough because transpositions look back two rows.
    two_ago = [0] * (len_r + 1)
    one_ago = list(range(len_r + 1))
    for i in range(1, len_l + 1):
        current = [i] + [0] * len_r
        for j in range(1, len_r + 1):
            cost = 0 if left[i - 1] == right[j - 1] else 1
            best = min(
                one_ago[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                one_ago[j - 1] + cost,  # substitution
            )
            if (
                i > 1
                and j > 1
                and left[i - 1] == right[j - 2]
                and left[i - 2] == right[j - 1]
            ):
                best = min(best, two_ago[j - 2] + 1)  # transposition
            current[j] = best
        two_ago, one_ago = one_ago, current
    return one_ago[-1]


def damerau_levenshtein_similarity(left: str, right: str) -> float:
    """Normalised Damerau-Levenshtein similarity in ``[0, 1]``."""
    left = normalize_for_comparison(left)
    right = normalize_for_comparison(right)
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    return 1.0 - damerau_levenshtein_distance(left, right) / longest


def extended_damerau_levenshtein_similarity(left: str, right: str) -> float:
    """The paper's extended Damerau-Levenshtein similarity (Section 6.2)."""
    left = normalize_for_comparison(left)
    right = normalize_for_comparison(right)
    if not left or not right:
        return 1.0
    if left.startswith(right) or right.startswith(left):
        return 1.0
    return damerau_levenshtein_similarity(left, right)


def monge_elkan(
    left: str,
    right: str,
    token_similarity: SimilarityFn = damerau_levenshtein_similarity,
    tokens_left: Optional[Sequence[str]] = None,
    tokens_right: Optional[Sequence[str]] = None,
) -> float:
    """One-directional Monge-Elkan similarity (left against right)."""
    if tokens_left is None:
        tokens_left = tokenize(normalize_for_comparison(left))
    if tokens_right is None:
        tokens_right = tokenize(normalize_for_comparison(right))
    tokens_left = [t for t in tokens_left if t]
    tokens_right = [t for t in tokens_right if t]
    if not tokens_left and not tokens_right:
        return 1.0
    if not tokens_left or not tokens_right:
        return 0.0
    total = 0.0
    for token_a in tokens_left:
        total += max(token_similarity(token_a, token_b) for token_b in tokens_right)
    return total / len(tokens_left)


def symmetric_monge_elkan(
    left: str,
    right: str,
    token_similarity: SimilarityFn = damerau_levenshtein_similarity,
) -> float:
    """Monge-Elkan averaged over both directions (the paper's variant)."""
    forward = monge_elkan(left, right, token_similarity)
    backward = monge_elkan(right, left, token_similarity)
    return (forward + backward) / 2.0


def _jaccard(left_set: set, right_set: set) -> float:
    if not left_set and not right_set:
        return 1.0
    if not left_set or not right_set:
        return 0.0
    intersection = len(left_set & right_set)
    union = len(left_set | right_set)
    return intersection / union


def jaccard_qgrams(left: str, right: str, q: int = 3, pad: bool = True) -> float:
    """Jaccard similarity of the ``q``-gram sets of both values."""
    left = normalize_for_comparison(left)
    right = normalize_for_comparison(right)
    return _jaccard(set(qgrams(left, q, pad)), set(qgrams(right, q, pad)))


def four_way_similarity(left: str, right: str) -> float:
    """Uncached four-way value similarity (heterogeneity, Section 6.3)."""
    if left == right:
        return 1.0
    if left > right:  # symmetric measure — canonicalise like the fast path
        left, right = right, left
    scores = (
        damerau_levenshtein_similarity(left, right),
        damerau_levenshtein_similarity(left.lower(), right.lower()),
        symmetric_monge_elkan(left, right),
        symmetric_monge_elkan(left.lower(), right.lower()),
    )
    return sum(scores) / 4.0
