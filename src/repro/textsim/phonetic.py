"""Soundex phonetic codes (used to flag phonetic errors, Section 6.4)."""

from __future__ import annotations

_SOUNDEX_CODES = {
    "b": "1", "f": "1", "p": "1", "v": "1",
    "c": "2", "g": "2", "j": "2", "k": "2", "q": "2", "s": "2", "x": "2", "z": "2",
    "d": "3", "t": "3",
    "l": "4",
    "m": "5", "n": "5",
    "r": "6",
}
# 'h' and 'w' are transparent: they do not break a run of equal codes.
_TRANSPARENT = {"h", "w"}


def soundex(value: str, length: int = 4) -> str:
    """Return the (American) Soundex code of ``value``.

    Non-letter characters are ignored.  An input without any letters yields
    the empty string.  ``length`` controls the code length (classic Soundex
    uses 4: one letter plus three digits, zero-padded).
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    letters = [ch for ch in value.lower() if ch.isalpha()]
    if not letters:
        return ""
    first = letters[0]
    code = [first.upper()]
    previous = _SOUNDEX_CODES.get(first, "")
    for ch in letters[1:]:
        if ch in _TRANSPARENT:
            continue
        digit = _SOUNDEX_CODES.get(ch, "")
        if digit and digit != previous:
            code.append(digit)
            if len(code) == length:
                break
        previous = digit
    return "".join(code).ljust(length, "0")


def same_soundex(left: str, right: str) -> bool:
    """True when both values have a (non-empty) identical Soundex code."""
    code_left = soundex(left)
    return bool(code_left) and code_left == soundex(right)
