"""Levenshtein and Damerau-Levenshtein distances and similarities.

The paper uses Damerau-Levenshtein in three places:

* as the internal token measure of the Generalized Jaccard coefficient in the
  plausibility check (Section 6.2) — there in an *extended* form that treats
  missing values and prefix relations as perfect matches;
* as the sequential measure of the heterogeneity score (Section 6.3);
* as the internal token measure of Monge-Elkan (Sections 6.3 and 6.5).

The distances here are the *restricted* Damerau-Levenshtein (optimal string
alignment) variant: insert, delete, substitute, and transpose two adjacent
characters, with no substring edited twice.  This matches the paper's use of
"Damerau-Levenshtein distance of 1" to characterise typos (one character
changed or two adjacent characters swapped).
"""

from __future__ import annotations

from repro.textsim.base import SimilarityMeasure, normalize_for_comparison


def levenshtein_distance(left: str, right: str) -> int:
    """Classic Levenshtein edit distance (insert / delete / substitute)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for i, ch_left in enumerate(left, start=1):
        current = [i]
        for j, ch_right in enumerate(right, start=1):
            cost = 0 if ch_left == ch_right else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def damerau_levenshtein_distance(left: str, right: str) -> int:
    """Restricted Damerau-Levenshtein (optimal string alignment) distance."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    len_l, len_r = len(left), len(right)
    # Three rolling rows are enough because transpositions look back two rows.
    two_ago = [0] * (len_r + 1)
    one_ago = list(range(len_r + 1))
    for i in range(1, len_l + 1):
        current = [i] + [0] * len_r
        for j in range(1, len_r + 1):
            cost = 0 if left[i - 1] == right[j - 1] else 1
            best = min(
                one_ago[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                one_ago[j - 1] + cost,  # substitution
            )
            if (
                i > 1
                and j > 1
                and left[i - 1] == right[j - 2]
                and left[i - 2] == right[j - 1]
            ):
                best = min(best, two_ago[j - 2] + 1)  # transposition
            current[j] = best
        two_ago, one_ago = one_ago, current
    return one_ago[-1]


def damerau_levenshtein_similarity(left: str, right: str) -> float:
    """Normalised Damerau-Levenshtein similarity in ``[0, 1]``.

    ``1 - distance / max(len(left), len(right))``; two empty strings are
    identical (similarity ``1``).
    """
    left = normalize_for_comparison(left)
    right = normalize_for_comparison(right)
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    return 1.0 - damerau_levenshtein_distance(left, right) / longest


def extended_damerau_levenshtein_similarity(left: str, right: str) -> float:
    """The paper's extended Damerau-Levenshtein similarity (Section 6.2).

    Two adjustments on top of the normalised similarity, both reflecting the
    plausibility check's stance that absence of evidence is not evidence of a
    contradiction:

    * comparison with a missing (empty) value yields ``1``;
    * if one value is a prefix of the other (an abbreviation or a truncated
      entry), the similarity is ``1``.
    """
    left = normalize_for_comparison(left)
    right = normalize_for_comparison(right)
    if not left or not right:
        return 1.0
    if left.startswith(right) or right.startswith(left):
        return 1.0
    return damerau_levenshtein_similarity(left, right)


class DamerauLevenshtein(SimilarityMeasure):
    """Normalised Damerau-Levenshtein similarity as a measure object."""

    name = "damerau_levenshtein"

    def similarity(self, left: str, right: str) -> float:
        """Normalised similarity in [0, 1]."""
        return damerau_levenshtein_similarity(left, right)


class ExtendedDamerauLevenshtein(SimilarityMeasure):
    """Extended Damerau-Levenshtein similarity (missing / prefix → 1)."""

    name = "extended_damerau_levenshtein"

    def similarity(self, left: str, right: str) -> float:
        """Normalised similarity in [0, 1]."""
        return extended_damerau_levenshtein_similarity(left, right)
