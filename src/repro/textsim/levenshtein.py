"""Levenshtein and Damerau-Levenshtein distances and similarities.

The paper uses Damerau-Levenshtein in three places:

* as the internal token measure of the Generalized Jaccard coefficient in the
  plausibility check (Section 6.2) — there in an *extended* form that treats
  missing values and prefix relations as perfect matches;
* as the sequential measure of the heterogeneity score (Section 6.3);
* as the internal token measure of Monge-Elkan (Sections 6.3 and 6.5).

The distances here are the *restricted* Damerau-Levenshtein (optimal string
alignment) variant: insert, delete, substitute, and transpose two adjacent
characters, with no substring edited twice.  This matches the paper's use of
"Damerau-Levenshtein distance of 1" to characterise typos (one character
changed or two adjacent characters swapped).
"""

from __future__ import annotations

from typing import Optional

from repro.textsim import fast
from repro.textsim.base import SimilarityMeasure, normalize_for_comparison


def levenshtein_distance(left: str, right: str) -> int:
    """Classic Levenshtein edit distance (insert / delete / substitute).

    Delegates to the fast kernel (:mod:`repro.textsim.fast`), which is
    bit-identical to the naive DP in :mod:`repro.textsim._reference`.
    """
    return fast.levenshtein_distance(left, right)


def damerau_levenshtein_distance(left: str, right: str) -> int:
    """Restricted Damerau-Levenshtein (optimal string alignment) distance.

    Delegates to the fast kernel (:mod:`repro.textsim.fast`), which is
    bit-identical to the naive DP in :mod:`repro.textsim._reference`.
    """
    return fast.damerau_levenshtein_distance(left, right)


def levenshtein_within(left: str, right: str, max_dist: int) -> Optional[int]:
    """Levenshtein distance when it is ``<= max_dist``, else ``None``.

    The thresholded kernel runs a banded (Ukkonen) DP and exits early, which
    makes "is the distance at most k?" questions — SNM candidate matching,
    typo classification — much cheaper than computing the full distance.
    """
    return fast.levenshtein_within(left, right, max_dist)


def damerau_levenshtein_within(left: str, right: str, max_dist: int) -> Optional[int]:
    """Restricted Damerau-Levenshtein distance when ``<= max_dist``, else ``None``."""
    return fast.damerau_levenshtein_within(left, right, max_dist)


def damerau_levenshtein_similarity(left: str, right: str) -> float:
    """Normalised Damerau-Levenshtein similarity in ``[0, 1]``.

    ``1 - distance / max(len(left), len(right))``; two empty strings are
    identical (similarity ``1``).
    """
    left = normalize_for_comparison(left)
    right = normalize_for_comparison(right)
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    return 1.0 - damerau_levenshtein_distance(left, right) / longest


def extended_damerau_levenshtein_similarity(left: str, right: str) -> float:
    """The paper's extended Damerau-Levenshtein similarity (Section 6.2).

    Two adjustments on top of the normalised similarity, both reflecting the
    plausibility check's stance that absence of evidence is not evidence of a
    contradiction:

    * comparison with a missing (empty) value yields ``1``;
    * if one value is a prefix of the other (an abbreviation or a truncated
      entry), the similarity is ``1``.
    """
    left = normalize_for_comparison(left)
    right = normalize_for_comparison(right)
    if not left or not right:
        return 1.0
    if left.startswith(right) or right.startswith(left):
        return 1.0
    return damerau_levenshtein_similarity(left, right)


class DamerauLevenshtein(SimilarityMeasure):
    """Normalised Damerau-Levenshtein similarity as a measure object."""

    name = "damerau_levenshtein"

    def similarity(self, left: str, right: str) -> float:
        """Normalised similarity in [0, 1]."""
        return damerau_levenshtein_similarity(left, right)


class ExtendedDamerauLevenshtein(SimilarityMeasure):
    """Extended Damerau-Levenshtein similarity (missing / prefix → 1)."""

    name = "extended_damerau_levenshtein"

    def similarity(self, left: str, right: str) -> float:
        """Normalised similarity in [0, 1]."""
        return extended_damerau_levenshtein_similarity(left, right)
