"""Generalized Jaccard coefficient — a hybrid token measure.

The Generalized Jaccard coefficient soft-matches the token sets of two values
with an internal token similarity and an optimal 1:1 assignment:

``GenJacc(A, B) = sum_{(a,b) in M} sim(a, b) / (|A| + |B| - |M|)``

where ``M`` is the 1:1 token matching maximising the summed internal
similarity, restricted to pairs at or above a similarity threshold.  With an
exact-equality internal measure and threshold 1 this degenerates to the plain
Jaccard coefficient.  The paper uses it with the extended Damerau-Levenshtein
similarity to score name plausibility (Section 6.2).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.textsim.base import SimilarityMeasure, normalize_for_comparison
from repro.textsim.levenshtein import extended_damerau_levenshtein_similarity
from repro.textsim.tokens import tokenize

SimilarityFn = Callable[[str, str], float]


def _optimal_assignment(matrix: List[List[float]]) -> List[Tuple[int, int]]:
    """Return index pairs of a maximum-weight 1:1 assignment.

    Uses ``scipy.optimize.linear_sum_assignment`` when available and falls
    back to a greedy matching otherwise.  The token sets involved here are
    tiny (names have at most a handful of tokens), so the greedy fallback is
    both fast and — for the near-diagonal-dominant matrices produced by name
    comparisons — almost always optimal.
    """
    try:
        import numpy as np
        from scipy.optimize import linear_sum_assignment
    except ImportError:  # pragma: no cover - scipy is installed in CI
        pairs = [
            (matrix[i][j], i, j)
            for i in range(len(matrix))
            for j in range(len(matrix[0]))
        ]
        pairs.sort(key=lambda item: -item[0])
        used_rows: set = set()
        used_cols: set = set()
        matching = []
        for score, i, j in pairs:
            if i in used_rows or j in used_cols:
                continue
            used_rows.add(i)
            used_cols.add(j)
            matching.append((i, j))
        return matching
    cost = -np.asarray(matrix)
    rows, cols = linear_sum_assignment(cost)
    return list(zip(rows.tolist(), cols.tolist()))


def generalized_jaccard(
    left: str,
    right: str,
    token_similarity: SimilarityFn = extended_damerau_levenshtein_similarity,
    threshold: float = 0.5,
    tokens_left: Optional[Sequence[str]] = None,
    tokens_right: Optional[Sequence[str]] = None,
) -> float:
    """Generalized Jaccard similarity of ``left`` and ``right``.

    ``tokens_left`` / ``tokens_right`` allow callers (like the name
    plausibility scorer) to pass pre-split token sequences — e.g. the
    (first, middle, last) name triple — instead of re-tokenizing the strings.
    Pairs whose internal similarity falls below ``threshold`` are not
    considered matches.
    """
    if tokens_left is None:
        tokens_left = tokenize(normalize_for_comparison(left))
    if tokens_right is None:
        tokens_right = tokenize(normalize_for_comparison(right))
    tokens_left = [t for t in tokens_left if t]
    tokens_right = [t for t in tokens_right if t]
    if not tokens_left and not tokens_right:
        return 1.0
    if not tokens_left or not tokens_right:
        return 0.0
    matrix = [
        [token_similarity(a, b) for b in tokens_right] for a in tokens_left
    ]
    matching = _optimal_assignment(matrix)
    kept = [(i, j) for i, j in matching if matrix[i][j] >= threshold]
    if not kept:
        return 0.0
    matched_sum = sum(matrix[i][j] for i, j in kept)
    return matched_sum / (len(tokens_left) + len(tokens_right) - len(kept))


class GeneralizedJaccard(SimilarityMeasure):
    """Generalized Jaccard as a measure object."""

    name = "generalized_jaccard"

    def __init__(
        self,
        token_similarity: SimilarityFn = extended_damerau_levenshtein_similarity,
        threshold: float = 0.5,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.token_similarity = token_similarity
        self.threshold = threshold

    def similarity(self, left: str, right: str) -> float:
        """Generalized Jaccard similarity in [0, 1]."""
        return generalized_jaccard(
            left, right, self.token_similarity, self.threshold
        )
