"""String similarity measures used throughout the test-data pipeline.

The paper relies on a small library of sequential, token-based, hybrid and
phonetic measures:

* Damerau-Levenshtein similarity, plus the paper's *extended* variant that
  treats missing values and prefix relationships as perfect matches
  (Section 6.2).
* Jaro and Jaro-Winkler similarity (Section 6.5).
* Jaccard similarity over token sets or q-grams (Section 6.5).
* Generalized Jaccard coefficient, a hybrid measure with an internal token
  similarity (Section 6.2).
* Monge-Elkan similarity, symmetrised by averaging both directions
  (Section 6.3).
* Soundex codes for detecting phonetic errors (Section 6.4).

All similarity functions return floats in ``[0, 1]`` where ``1`` means
identical.
"""

from __future__ import annotations

from repro.textsim.base import SimilarityMeasure, normalize_for_comparison
from repro.textsim.cosine import SoftTfIdf, TfIdfCosine, cosine_tokens
from repro.textsim.generalized_jaccard import GeneralizedJaccard, generalized_jaccard
from repro.textsim.cache import LRUCache
from repro.textsim.jaccard import (
    QgramJaccard,
    TokenJaccard,
    jaccard_qgrams,
    jaccard_qgrams_at_least,
    jaccard_tokens,
)
from repro.textsim.jaro import JaroWinkler, jaro_similarity, jaro_winkler
from repro.textsim.levenshtein import (
    DamerauLevenshtein,
    ExtendedDamerauLevenshtein,
    damerau_levenshtein_distance,
    damerau_levenshtein_similarity,
    damerau_levenshtein_within,
    extended_damerau_levenshtein_similarity,
    levenshtein_distance,
    levenshtein_within,
)
from repro.textsim.monge_elkan import MongeElkan, monge_elkan, symmetric_monge_elkan
from repro.textsim.phonetic import soundex
from repro.textsim.tokens import qgrams, tokenize

__all__ = [
    "SimilarityMeasure",
    "normalize_for_comparison",
    "levenshtein_distance",
    "levenshtein_within",
    "damerau_levenshtein_distance",
    "damerau_levenshtein_similarity",
    "damerau_levenshtein_within",
    "extended_damerau_levenshtein_similarity",
    "LRUCache",
    "DamerauLevenshtein",
    "ExtendedDamerauLevenshtein",
    "jaro_similarity",
    "jaro_winkler",
    "JaroWinkler",
    "jaccard_tokens",
    "jaccard_qgrams",
    "jaccard_qgrams_at_least",
    "TokenJaccard",
    "QgramJaccard",
    "generalized_jaccard",
    "GeneralizedJaccard",
    "monge_elkan",
    "symmetric_monge_elkan",
    "MongeElkan",
    "soundex",
    "tokenize",
    "qgrams",
    "cosine_tokens",
    "TfIdfCosine",
    "SoftTfIdf",
]
