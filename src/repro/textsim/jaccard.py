"""Jaccard similarity over token sets and q-gram sets."""

from __future__ import annotations

from typing import Optional

from repro.textsim import fast
from repro.textsim.base import SimilarityMeasure, normalize_for_comparison
from repro.textsim.tokens import tokenize


def _jaccard(left_set: set, right_set: set) -> float:
    if not left_set and not right_set:
        return 1.0
    if not left_set or not right_set:
        return 0.0
    intersection = len(left_set & right_set)
    union = len(left_set | right_set)
    return intersection / union


def jaccard_tokens(left: str, right: str, lowercase: bool = False) -> float:
    """Jaccard similarity of the whitespace token sets of both values."""
    left = normalize_for_comparison(left)
    right = normalize_for_comparison(right)
    return _jaccard(set(tokenize(left, lowercase)), set(tokenize(right, lowercase)))


def jaccard_qgrams(left: str, right: str, q: int = 3, pad: bool = True) -> float:
    """Jaccard similarity of the ``q``-gram sets of both values.

    ``q=3`` with padding is the trigram Jaccard used in the evaluation of
    Section 6.5.  Gram sets are memoised per value in a bounded cache
    (:mod:`repro.textsim.fast`); the result is bit-identical to building the
    sets from scratch.
    """
    return fast.jaccard_qgrams(left, right, q, pad)


def jaccard_qgrams_at_least(
    left: str, right: str, threshold: float, q: int = 3, pad: bool = True
) -> Optional[float]:
    """The exact q-gram Jaccard similarity if it reaches ``threshold``.

    Returns ``None`` otherwise.  A gram-count prefilter rejects most
    below-threshold pairs from set sizes alone — useful for blocking-style
    callers that only keep candidates above a similarity floor.
    """
    return fast.jaccard_qgrams_at_least(left, right, threshold, q, pad)


class TokenJaccard(SimilarityMeasure):
    """Token-set Jaccard as a measure object."""

    name = "token_jaccard"

    def __init__(self, lowercase: bool = False) -> None:
        self.lowercase = lowercase

    def similarity(self, left: str, right: str) -> float:
        """Jaccard similarity in [0, 1]."""
        return jaccard_tokens(left, right, self.lowercase)


class QgramJaccard(SimilarityMeasure):
    """q-gram Jaccard as a measure object (default: padded trigrams)."""

    name = "qgram_jaccard"

    def __init__(self, q: int = 3, pad: bool = True) -> None:
        if q < 1:
            raise ValueError(f"q must be >= 1, got {q}")
        self.q = q
        self.pad = pad

    def similarity(self, left: str, right: str) -> float:
        """Jaccard similarity in [0, 1]."""
        return jaccard_qgrams(left, right, self.q, self.pad)
