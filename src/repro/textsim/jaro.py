"""Jaro and Jaro-Winkler similarity (the paper's sequential baseline)."""

from __future__ import annotations

from repro.textsim.base import SimilarityMeasure, normalize_for_comparison


def jaro_similarity(left: str, right: str) -> float:
    """Jaro similarity in ``[0, 1]``.

    Matches are characters equal within a window of
    ``max(len(l), len(r)) // 2 - 1`` positions; transpositions are matched
    characters in different relative order.
    """
    left = normalize_for_comparison(left)
    right = normalize_for_comparison(right)
    if left == right:
        return 1.0
    len_l, len_r = len(left), len(right)
    if len_l == 0 or len_r == 0:
        return 0.0
    window = max(len_l, len_r) // 2 - 1
    if window < 0:
        window = 0
    left_matched = [False] * len_l
    right_matched = [False] * len_r
    matches = 0
    for i, ch in enumerate(left):
        start = max(0, i - window)
        end = min(i + window + 1, len_r)
        for j in range(start, end):
            if right_matched[j] or right[j] != ch:
                continue
            left_matched[i] = True
            right_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len_l):
        if not left_matched[i]:
            continue
        while not right_matched[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len_l + matches / len_r + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(left: str, right: str, prefix_weight: float = 0.1, max_prefix: int = 4) -> float:
    """Jaro-Winkler similarity: Jaro boosted by a shared prefix.

    ``prefix_weight`` must not exceed ``1 / max_prefix`` or the result could
    leave ``[0, 1]``.
    """
    if prefix_weight * max_prefix > 1.0:
        raise ValueError(
            f"prefix_weight * max_prefix must be <= 1, got {prefix_weight * max_prefix}"
        )
    left = normalize_for_comparison(left)
    right = normalize_for_comparison(right)
    jaro = jaro_similarity(left, right)
    prefix = 0
    for ch_left, ch_right in zip(left[:max_prefix], right[:max_prefix]):
        if ch_left != ch_right:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


class JaroWinkler(SimilarityMeasure):
    """Jaro-Winkler similarity as a measure object."""

    name = "jaro_winkler"

    def __init__(self, prefix_weight: float = 0.1, max_prefix: int = 4) -> None:
        if prefix_weight * max_prefix > 1.0:
            raise ValueError(
                f"prefix_weight * max_prefix must be <= 1, got {prefix_weight * max_prefix}"
            )
        self.prefix_weight = prefix_weight
        self.max_prefix = max_prefix

    def similarity(self, left: str, right: str) -> float:
        """Jaro-Winkler similarity in [0, 1]."""
        return jaro_winkler(left, right, self.prefix_weight, self.max_prefix)
