"""Cosine similarities over token vectors (plain, TF-IDF and soft TF-IDF).

Completes the measure families of the evaluation framework: Section 6.5
covers sequential (Jaro-Winkler), token-based (Jaccard) and hybrid
(Monge-Elkan, Generalized Jaccard) measures; TF-IDF weighted cosine and
its soft variant (Cohen et al.'s SoftTFIDF, which admits fuzzy token
matches) are the standard corpus-weighted members of the token-based and
hybrid families and let users extend the Figure 5 comparison.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Dict, Iterable, Optional

from repro.textsim.base import SimilarityMeasure, normalize_for_comparison
from repro.textsim.jaro import jaro_winkler
from repro.textsim.tokens import tokenize

SimilarityFn = Callable[[str, str], float]


def cosine_tokens(left: str, right: str, lowercase: bool = False) -> float:
    """Cosine similarity of the token count vectors of both values."""
    left = normalize_for_comparison(left)
    right = normalize_for_comparison(right)
    counts_left = Counter(tokenize(left, lowercase))
    counts_right = Counter(tokenize(right, lowercase))
    if not counts_left and not counts_right:
        return 1.0
    if not counts_left or not counts_right:
        return 0.0
    dot = sum(
        count * counts_right[token] for token, count in counts_left.items()
    )
    norm_left = math.sqrt(sum(c * c for c in counts_left.values()))
    norm_right = math.sqrt(sum(c * c for c in counts_right.values()))
    return dot / (norm_left * norm_right)


class TfIdfCosine(SimilarityMeasure):
    """TF-IDF weighted cosine similarity, fitted on a corpus of values.

    ``fit`` learns inverse document frequencies from an iterable of strings
    (e.g. one attribute column); unseen tokens fall back to the maximum
    idf (they are maximally distinctive).  Unfitted instances behave like
    plain cosine (idf 1 everywhere).
    """

    name = "tfidf_cosine"

    def __init__(self, lowercase: bool = True) -> None:
        self.lowercase = lowercase
        self._idf: Dict[str, float] = {}
        self._default_idf = 1.0

    def fit(self, corpus: Iterable[str]) -> "TfIdfCosine":
        """Learn inverse document frequencies from ``corpus``; returns self."""
        document_frequency: Counter = Counter()
        documents = 0
        for value in corpus:
            documents += 1
            for token in set(tokenize(normalize_for_comparison(value), self.lowercase)):
                document_frequency[token] += 1
        self._idf = {
            token: math.log((1 + documents) / (1 + frequency)) + 1.0
            for token, frequency in document_frequency.items()
        }
        self._default_idf = math.log(1 + documents) + 1.0
        return self

    def idf(self, token: str) -> float:
        """Inverse document frequency of ``token`` (max idf when unseen)."""
        return self._idf.get(token, self._default_idf)

    def _vector(self, value: str) -> Dict[str, float]:
        counts = Counter(tokenize(normalize_for_comparison(value), self.lowercase))
        return {token: count * self.idf(token) for token, count in counts.items()}

    def similarity(self, left: str, right: str) -> float:
        """TF-IDF weighted cosine similarity in [0, 1]."""
        vector_left = self._vector(left)
        vector_right = self._vector(right)
        if not vector_left and not vector_right:
            return 1.0
        if not vector_left or not vector_right:
            return 0.0
        dot = sum(
            weight * vector_right.get(token, 0.0)
            for token, weight in vector_left.items()
        )
        norm_left = math.sqrt(sum(w * w for w in vector_left.values()))
        norm_right = math.sqrt(sum(w * w for w in vector_right.values()))
        if norm_left == 0.0 or norm_right == 0.0:
            return 0.0
        return dot / (norm_left * norm_right)


class SoftTfIdf(TfIdfCosine):
    """SoftTFIDF: TF-IDF cosine with fuzzy token matching.

    Tokens match when an internal similarity (default Jaro-Winkler) is at
    least ``threshold``; the match contributes its weight product scaled by
    that similarity.  This recovers TF-IDF's corpus weighting while
    tolerating typos — the classic Cohen/Ravikumar/Fienberg combination.
    """

    name = "soft_tfidf"

    def __init__(
        self,
        token_similarity: SimilarityFn = jaro_winkler,
        threshold: float = 0.9,
        lowercase: bool = True,
    ) -> None:
        super().__init__(lowercase=lowercase)
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.token_similarity = token_similarity
        self.threshold = threshold

    def similarity(self, left: str, right: str) -> float:
        """TF-IDF weighted cosine similarity in [0, 1]."""
        vector_left = self._vector(left)
        vector_right = self._vector(right)
        if not vector_left and not vector_right:
            return 1.0
        if not vector_left or not vector_right:
            return 0.0
        dot = 0.0
        for token_left, weight_left in vector_left.items():
            best_token: Optional[str] = None
            best_score = 0.0
            for token_right in vector_right:
                score = (
                    1.0
                    if token_left == token_right
                    else self.token_similarity(token_left, token_right)
                )
                if score > best_score:
                    best_score = score
                    best_token = token_right
            if best_token is not None and best_score >= self.threshold:
                dot += weight_left * vector_right[best_token] * best_score
        norm_left = math.sqrt(sum(w * w for w in vector_left.values()))
        norm_right = math.sqrt(sum(w * w for w in vector_right.values()))
        if norm_left == 0.0 or norm_right == 0.0:
            return 0.0
        return min(1.0, dot / (norm_left * norm_right))
