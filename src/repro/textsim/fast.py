"""Fast similarity kernels — the hot path behind :mod:`repro.textsim`.

The enrichment stage scores every record pair of every cluster, which calls
the Damerau-Levenshtein and Monge-Elkan measures millions of times at full
scale.  This module keeps those calls cheap while staying **bit-identical**
to the naive reference implementations in :mod:`repro.textsim._reference`
(property-tested in ``tests/textsim/test_fast_equivalence.py``):

* :func:`levenshtein_distance` / :func:`damerau_levenshtein_distance` —
  common-prefix/suffix stripping, single-row (resp. rolling-row) DP over the
  shorter remaining string, and cheap length-based short circuits;
* :func:`levenshtein_within` / :func:`damerau_levenshtein_within` — banded
  (Ukkonen) variants for callers that only need "distance ≤ k?", with
  early exit as soon as a whole band row exceeds the threshold;
* :func:`tokens_of` + :func:`monge_elkan_tokens` — token interning and a
  bounded shared LRU over token-pair similarities for the Monge-Elkan
  measures (voter attribute values repeat heavily, so the same token pairs
  recur across millions of record pairs);
* :func:`qgram_set` + :func:`jaccard_qgrams` — memoised q-gram sets and a
  count prefilter (:func:`jaccard_qgrams_at_least`) that rejects pairs from
  set sizes alone before any intersection is built.

The public wrappers in :mod:`repro.textsim.levenshtein`,
:mod:`repro.textsim.monge_elkan` and :mod:`repro.textsim.jaccard` delegate
here, so every existing caller speeds up without code changes.
"""

from __future__ import annotations

import sys
from functools import lru_cache
from typing import Iterable, Optional, Sequence, Tuple

from repro.textsim.base import normalize_for_comparison
from repro.textsim.tokens import qgrams, tokenize


def _strip_common_affixes(left: str, right: str) -> Tuple[str, str]:
    """Drop the common prefix and suffix of both strings.

    Safe for Levenshtein and for the restricted Damerau-Levenshtein (OSA)
    distance: an optimal alignment never needs to transpose across an equal
    boundary character (transposing two equal characters is a no-op), so
    matching equal prefix/suffix characters 1:1 is always optimal.
    """
    limit = min(len(left), len(right))
    start = 0
    while start < limit and left[start] == right[start]:
        start += 1
    end_left, end_right = len(left), len(right)
    while end_left > start and end_right > start and left[end_left - 1] == right[end_right - 1]:
        end_left -= 1
        end_right -= 1
    return left[start:end_left], right[start:end_right]


def levenshtein_distance(left: str, right: str) -> int:
    """Levenshtein distance; bit-identical to the naive DP, much faster."""
    if left == right:
        return 0
    left, right = _strip_common_affixes(left, right)
    if not left:
        return len(right)
    if not right:
        return len(left)
    if len(right) > len(left):  # keep the inner row short (symmetric measure)
        left, right = right, left
    previous = list(range(len(right) + 1))
    for i, ch_left in enumerate(left, start=1):
        diagonal = previous[0]
        previous[0] = i
        for j, ch_right in enumerate(right, start=1):
            substitution = diagonal if ch_left == ch_right else diagonal + 1
            diagonal = previous[j]
            best = diagonal + 1  # deletion
            insertion = previous[j - 1] + 1
            if insertion < best:
                best = insertion
            if substitution < best:
                best = substitution
            previous[j] = best
    return previous[-1]


def damerau_levenshtein_distance(left: str, right: str) -> int:
    """Restricted Damerau-Levenshtein (OSA) distance, fast path."""
    if left == right:
        return 0
    left, right = _strip_common_affixes(left, right)
    if not left:
        return len(right)
    if not right:
        return len(left)
    if len(right) > len(left):  # OSA is symmetric — shorten the inner row
        left, right = right, left
    len_r = len(right)
    two_ago: Optional[list] = None
    one_ago = list(range(len_r + 1))
    for i in range(1, len(left) + 1):
        ch_left = left[i - 1]
        current = [i] + [0] * len_r
        for j in range(1, len_r + 1):
            ch_right = right[j - 1]
            best = one_ago[j - 1] if ch_left == ch_right else one_ago[j - 1] + 1
            deletion = one_ago[j] + 1
            if deletion < best:
                best = deletion
            insertion = current[j - 1] + 1
            if insertion < best:
                best = insertion
            if (
                i > 1
                and j > 1
                and ch_left == right[j - 2]
                and left[i - 2] == ch_right
            ):
                transposition = two_ago[j - 2] + 1  # type: ignore[index]
                if transposition < best:
                    best = transposition
            current[j] = best
        two_ago, one_ago = one_ago, current
    return one_ago[-1]


def levenshtein_within(left: str, right: str, max_dist: int) -> Optional[int]:
    """Levenshtein distance if it is ``<= max_dist``, else ``None``.

    A banded (Ukkonen) DP: only cells with ``|i - j| <= max_dist`` are
    evaluated, and the scan aborts as soon as a whole band row exceeds the
    threshold.  The returned distance (when not ``None``) is exact.
    """
    return _banded_distance(left, right, max_dist, transpositions=False)


def damerau_levenshtein_within(left: str, right: str, max_dist: int) -> Optional[int]:
    """Restricted Damerau-Levenshtein distance if ``<= max_dist``, else ``None``."""
    return _banded_distance(left, right, max_dist, transpositions=True)


def _banded_distance(
    left: str, right: str, max_dist: int, transpositions: bool
) -> Optional[int]:
    if max_dist < 0:
        raise ValueError(f"max_dist must be >= 0, got {max_dist}")
    if left == right:
        return 0
    if max_dist == 0:
        return None
    left, right = _strip_common_affixes(left, right)
    if len(right) > len(left):
        left, right = right, left
    len_l, len_r = len(left), len(right)
    if len_l - len_r > max_dist:
        return None
    if not len_r:
        return len_l  # 0 < len_l <= max_dist after the length prefilter
    big = max_dist + 1
    two_ago: Optional[list] = None
    one_ago = list(range(len_r + 1))
    for i in range(1, len_l + 1):
        ch_left = left[i - 1]
        lo = i - max_dist
        if lo < 1:
            lo = 1
        hi = i + max_dist
        if hi > len_r:
            hi = len_r
        current = [big] * (len_r + 1)
        if i <= max_dist:
            current[0] = i
        row_min = big
        for j in range(lo, hi + 1):
            ch_right = right[j - 1]
            best = one_ago[j - 1] if ch_left == ch_right else one_ago[j - 1] + 1
            deletion = one_ago[j] + 1
            if deletion < best:
                best = deletion
            insertion = current[j - 1] + 1
            if insertion < best:
                best = insertion
            if (
                transpositions
                and i > 1
                and j > 1
                and ch_left == right[j - 2]
                and left[i - 2] == ch_right
            ):
                transposition = two_ago[j - 2] + 1  # type: ignore[index]
                if transposition < best:
                    best = transposition
            current[j] = best
            if best < row_min:
                row_min = best
        if row_min > max_dist:
            return None
        two_ago, one_ago = one_ago, current
    result = one_ago[len_r]
    return result if result <= max_dist else None


# --------------------------------------------------------------- Monge-Elkan


def intern_values(values: Iterable[str]) -> Tuple[str, ...]:
    """Intern a sequence of attribute values into a tuple.

    Prepared record vectors (:meth:`repro.dedup.matching.RecordMatcher.prepare`)
    hold millions of heavily repeated strings; interning collapses them to
    one object per distinct value, so the ``left == right`` short-circuits
    and LRU cache-key comparisons in the pair-scoring hot loop resolve by
    pointer identity instead of character comparison, and the vectors cost
    one pointer per slot instead of one string copy.
    """
    return tuple(sys.intern(value) for value in values)


@lru_cache(maxsize=131072)
def tokens_of(value: str) -> Tuple[str, ...]:
    """Whitespace tokens of ``value``, interned and cached.

    Interning makes the token-pair cache keys compare by pointer in the
    common case; the LRU bound keeps memory flat on unbounded value streams.
    """
    return tuple(sys.intern(token) for token in tokenize(value))


@lru_cache(maxsize=262144)
def _token_pair_dl_similarity(left: str, right: str) -> float:
    """Damerau-Levenshtein similarity of a canonically ordered token pair.

    Same formula as ``damerau_levenshtein_similarity`` (tokens are already
    normalized strings), so the cached value is bit-identical.
    """
    longest = max(len(left), len(right))
    if longest == 0:
        return 1.0
    return 1.0 - damerau_levenshtein_distance(left, right) / longest


def monge_elkan_tokens(
    tokens_left: Sequence[str], tokens_right: Sequence[str]
) -> float:
    """One-directional Monge-Elkan over token sequences (DL internal measure).

    Accumulates in the same order as the reference implementation, so the
    result is bit-identical; the per-token maxima come from the shared
    token-pair LRU and short-circuit on exact token matches.
    """
    if not tokens_left and not tokens_right:
        return 1.0
    if not tokens_left or not tokens_right:
        return 0.0
    total = 0.0
    for token_a in tokens_left:
        best = 0.0
        for token_b in tokens_right:
            if token_a == token_b:
                best = 1.0
                break
            if token_a < token_b:
                score = _token_pair_dl_similarity(token_a, token_b)
            else:
                score = _token_pair_dl_similarity(token_b, token_a)
            if score > best:
                best = score
                if best == 1.0:
                    break
        total += best
    return total / len(tokens_left)


def symmetric_monge_elkan_cached(left: str, right: str) -> float:
    """Symmetrised Monge-Elkan with the DL internal measure, fully cached."""
    tokens_left = tokens_of(normalize_for_comparison(left))
    tokens_right = tokens_of(normalize_for_comparison(right))
    forward = monge_elkan_tokens(tokens_left, tokens_right)
    backward = monge_elkan_tokens(tokens_right, tokens_left)
    return (forward + backward) / 2.0


# ------------------------------------------------------------------- Jaccard


@lru_cache(maxsize=131072)
def qgram_set(value: str, q: int = 3, pad: bool = True) -> frozenset:
    """The (cached) set of q-grams of a normalized value."""
    return frozenset(qgrams(value, q, pad))


def jaccard_qgrams(left: str, right: str, q: int = 3, pad: bool = True) -> float:
    """Exact q-gram Jaccard similarity via cached gram sets."""
    left = normalize_for_comparison(left)
    right = normalize_for_comparison(right)
    if left == right:
        return 1.0  # identical values: empty == empty scores 1 by convention
    grams_left = qgram_set(left, q, pad)
    grams_right = qgram_set(right, q, pad)
    if not grams_left and not grams_right:
        return 1.0
    if not grams_left or not grams_right:
        return 0.0
    intersection = len(grams_left & grams_right)
    union = len(grams_left) + len(grams_right) - intersection
    return intersection / union


def jaccard_qgrams_at_least(
    left: str, right: str, threshold: float, q: int = 3, pad: bool = True
) -> Optional[float]:
    """The exact q-gram Jaccard similarity if it reaches ``threshold``.

    Returns ``None`` when the similarity is provably or actually below the
    threshold.  The prefilter uses gram-set sizes only: the intersection is
    at most the smaller set and the union at least the larger, so
    ``min(|L|, |R|) / max(|L|, |R|)`` bounds the similarity from above and
    most non-matching pairs are rejected without building an intersection.
    """
    left = normalize_for_comparison(left)
    right = normalize_for_comparison(right)
    if left == right:
        return 1.0 if 1.0 >= threshold else None
    grams_left = qgram_set(left, q, pad)
    grams_right = qgram_set(right, q, pad)
    if not grams_left and not grams_right:
        return 1.0 if 1.0 >= threshold else None
    if not grams_left or not grams_right:
        return 0.0 if 0.0 >= threshold else None
    smaller, larger = len(grams_left), len(grams_right)
    if smaller > larger:
        smaller, larger = larger, smaller
    if smaller / larger < threshold:  # count prefilter: upper bound too low
        return None
    intersection = len(grams_left & grams_right)
    union = len(grams_left) + len(grams_right) - intersection
    similarity = intersection / union
    return similarity if similarity >= threshold else None


def clear_caches() -> None:
    """Reset every shared kernel cache (benchmark fairness, test isolation)."""
    tokens_of.cache_clear()
    _token_pair_dl_similarity.cache_clear()
    qgram_set.cache_clear()
