"""A small bounded LRU cache shared by the similarity fast paths.

:func:`functools.lru_cache` covers function-shaped caches; this class covers
the cases where the key is assembled by the caller (e.g. the record matcher,
which prefixes keys with a per-matcher token so independent matchers can
share one bounded pool without colliding).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional


class LRUCache:
    """Mapping with least-recently-used eviction and a hard size bound.

    Not thread-safe by design: every consumer in this codebase runs the hot
    scoring loops in a single thread per process (parallelism is
    process-based, see :mod:`repro.core.parallel`).

    Instances are **process-local**: worker processes build their own at
    import time and never ship them back to the parent, so cached state
    can never leak between workers or affect determinism.  Module-level
    instances must cache pure functions of their keys and be registered in
    :data:`repro.analysis.concurrency.PROCESS_LOCAL_CACHES` (the R106
    exemption registry); ``tests/dedup/test_cache_isolation.py`` asserts
    the isolation.
    """

    __slots__ = ("maxsize", "_data", "hits", "misses")

    def __init__(self, maxsize: int = 65536) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, default: Optional[Any] = None) -> Any:
        """Return the cached value (marking it recently used) or ``default``."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value``, evicting the least recently used entry if full."""
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LRUCache(size={len(self._data)}, maxsize={self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
