"""Reproduction of *Generating Realistic Test Datasets for Duplicate
Detection at Scale Using Historical Voter Data* (Panse et al., EDBT 2021).

The package is organised as one subpackage per subsystem:

* :mod:`repro.textsim` — string similarity measures (Damerau-Levenshtein,
  Jaro-Winkler, Jaccard, Generalized Jaccard, Monge-Elkan, Soundex).
* :mod:`repro.docstore` — an embedded aggregate-oriented document store
  standing in for MongoDB.
* :mod:`repro.votersim` — a generative simulator of the historical North
  Carolina voter register (the paper's input data).
* :mod:`repro.core` — the paper's contribution: snapshot ingestion,
  exact-duplicate removal, cluster storage, versioning, plausibility /
  heterogeneity scoring, irregularity census and customisation.
* :mod:`repro.dedup` — the duplicate-detection framework used in the
  evaluation (Sorted Neighborhood blocking + weighted record matching).
* :mod:`repro.datasets` — synthesizers for the Cora / Census / CDDB
  comparison datasets.
* :mod:`repro.pollute` — Febrl-style synthesizer and GeCo-style pollution
  baselines from the related-work discussion.
"""

from __future__ import annotations

__version__ = "1.0.0"

__all__ = ["__version__"]
