"""Diagnostic records emitted by the static analyzers.

Every analyzer in this package — the query/pipeline analyzer, the
customisation-spec validator and the repo AST linter — reports its findings
as :class:`Diagnostic` records instead of raising, so callers can collect,
filter, render or escalate them uniformly.  A diagnostic carries a stable
``code`` (``Q…`` for filters, ``P…`` for pipelines, ``C…`` for customisation
specs, ``L…`` for lint findings), a severity, the location inside the spec
(or ``file:line`` for lint), a message and an optional did-you-mean hint.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional

#: Severity of a diagnostic that makes the spec unusable.
ERROR = "error"
#: Severity of a suspicious but executable construct.
WARNING = "warning"


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding of a static analyzer."""

    #: Stable machine-readable code, e.g. ``"Q001"``.
    code: str
    #: ``"error"`` or ``"warning"``.
    severity: str
    #: Location inside the analyzed spec (e.g. ``"$.records.person.name"``,
    #: ``"stage[2].$match"``) or ``"file:line:col"`` for lint findings.
    path: str
    #: Human-readable description of the problem.
    message: str
    #: Optional suggestion (typically a did-you-mean).
    hint: Optional[str] = None

    def render(self) -> str:
        """One-line human-readable rendering."""
        text = f"{self.severity} {self.code} at {self.path}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """Whether any diagnostic is of :data:`ERROR` severity."""
    return any(d.severity == ERROR for d in diagnostics)


def errors_only(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """The :data:`ERROR`-severity subset, in order."""
    return [d for d in diagnostics if d.severity == ERROR]


def render_report(diagnostics: Iterable[Diagnostic]) -> str:
    """Render diagnostics one per line (empty string when clean)."""
    return "\n".join(d.render() for d in diagnostics)
