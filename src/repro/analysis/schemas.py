"""Known field paths of a document collection (``SchemaPaths``).

The analyzer validates dotted field paths in filters and pipelines against a
:class:`SchemaPaths` instance: the set of paths that can actually occur in a
collection's documents.  Two builders cover the pipeline's needs:

* :func:`cluster_schema` derives the paths of the cluster-document layout
  (see :mod:`repro.core.clusters`) from a
  :class:`~repro.core.profile.SchemaProfile` — the 90-attribute voter schema
  split into ``person`` / ``district`` / ``election`` / ``meta``
  sub-documents, plus the bookkeeping fields (hashes, snapshots,
  version-similarity maps);
* :meth:`SchemaPaths.from_documents` infers a schema by flattening sample
  documents, for collections without a declared layout.

Array index segments are transparent: ``records.2.person.last_name``
validates against the declared ``records.person.last_name``.  Paths with
dynamic keys (the per-version similarity maps) are declared as *open
prefixes* — anything beneath them is accepted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Optional, Tuple

from repro.analysis.registry import suggest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.profile import SchemaProfile


def normalize_path(path: str) -> str:
    """Strip numeric (array index) segments: ``a.0.b`` -> ``a.b``."""
    segments = [s for s in path.split(".") if not s.isdigit()]
    return ".".join(segments)


class SchemaPaths:
    """The set of dotted field paths known to exist in a collection."""

    def __init__(
        self,
        paths: Iterable[str] = (),
        open_prefixes: Iterable[str] = (),
        name: str = "schema",
        permissive: bool = False,
    ) -> None:
        self.name = name
        self.exact = frozenset(normalize_path(p) for p in paths)
        self.open_prefixes = frozenset(normalize_path(p) for p in open_prefixes)
        #: A permissive schema accepts every path (used when the document
        #: shape is statically unknowable, e.g. after ``$replaceRoot`` into
        #: an open prefix).
        self.permissive = permissive

    def knows(self, path: str) -> bool:
        """Whether ``path`` can occur in documents of this schema."""
        if self.permissive:
            return True
        norm = normalize_path(path)
        if not norm:
            return True
        if norm in self.exact or norm in self.open_prefixes:
            return True
        prefix = norm + "."
        if any(exact.startswith(prefix) for exact in self.exact):
            return True  # an intermediate (sub-document / array) node
        return any(
            norm.startswith(open_prefix + ".")
            for open_prefix in self.open_prefixes
        )

    def suggest_path(self, path: str) -> Optional[str]:
        """The closest known path (did-you-mean), or ``None``."""
        if self.permissive:
            return None
        norm = normalize_path(path)
        candidates = self.exact | self.open_prefixes
        close = suggest(norm, candidates, max_distance=2)
        if close:
            return close
        # Typo in the last segment of a deeper path: match per-parent.
        if "." in norm:
            parent, _, leaf = norm.rpartition(".")
            leaves = {
                exact.rpartition(".")[2]: exact
                for exact in candidates
                if exact.rpartition(".")[0] == parent
            }
            close_leaf = suggest(leaf, leaves, max_distance=2)
            if close_leaf:
                return leaves[close_leaf]
        return None

    def descend(self, path: str) -> "SchemaPaths":
        """The schema of the sub-documents found at ``path``.

        Used for ``$elemMatch`` (conditions apply to array elements) and for
        ``$replaceRoot`` with a plain field reference.
        """
        norm = normalize_path(path)
        if self.permissive:
            return SchemaPaths(name=f"{self.name}.{norm}", permissive=True)
        for open_prefix in self.open_prefixes:
            if norm == open_prefix or norm.startswith(open_prefix + "."):
                return SchemaPaths(name=f"{self.name}.{norm}", permissive=True)
        prefix = norm + "."
        return SchemaPaths(
            paths=(e[len(prefix):] for e in self.exact if e.startswith(prefix)),
            open_prefixes=(
                o[len(prefix):] for o in self.open_prefixes if o.startswith(prefix)
            ),
            name=f"{self.name}.{norm}",
        )

    @classmethod
    def from_documents(
        cls, documents: Iterable[dict], name: str = "inferred"
    ) -> "SchemaPaths":
        """Infer a schema from sample documents (union of their leaf paths)."""
        paths = set()
        for document in documents:
            _collect_paths(document, "", paths)
        return cls(paths=paths, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.permissive:
            return f"SchemaPaths(name={self.name!r}, permissive=True)"
        return f"SchemaPaths(name={self.name!r}, paths={len(self.exact)})"


def _collect_paths(value: Any, prefix: str, paths: set) -> None:
    if isinstance(value, dict):
        if not value and prefix:
            paths.add(prefix)
        for key, sub in value.items():
            sub_prefix = f"{prefix}.{key}" if prefix else str(key)
            _collect_paths(sub, sub_prefix, paths)
    elif isinstance(value, list):
        if not value and prefix:
            paths.add(prefix)
        for element in value:
            _collect_paths(element, prefix, paths)
    elif prefix:
        paths.add(prefix)


def cluster_schema(profile: Optional["SchemaProfile"] = None) -> SchemaPaths:
    """The :class:`SchemaPaths` of a cluster-document collection.

    ``profile`` defaults to the NC voter profile; the layout follows
    :mod:`repro.core.clusters` — one document per entity, with nested record
    sub-documents split into the profile's attribute groups.
    """
    if profile is None:
        from repro.core.profile import NC_VOTER_PROFILE

        profile = NC_VOTER_PROFILE
    paths = ["_id", profile.id_attribute]
    for group, attributes in profile.groups.items():
        for attribute in attributes:
            paths.append(f"records.{group}.{attribute}")
    paths += [
        "records.hash",
        "records.first_version",
        "records.snapshots",
        "meta.hashes",
        "meta.first_version",
    ]
    open_prefixes = [
        "records.plausibility",
        "records.heterogeneity",
        "records.heterogeneity_person",
        "meta.inserts_per_snapshot",
    ]
    return SchemaPaths(
        paths=paths, open_prefixes=open_prefixes, name=f"{profile.name}:clusters"
    )


def flat_record_schema(
    profile: Optional["SchemaProfile"] = None,
    groups: Optional[Tuple[str, ...]] = None,
) -> SchemaPaths:
    """The schema of *flat* records (customisation output rows)."""
    if profile is None:
        from repro.core.profile import NC_VOTER_PROFILE

        profile = NC_VOTER_PROFILE
    wanted = groups if groups is not None else tuple(profile.groups)
    paths = []
    for group in wanted:
        paths.extend(profile.groups.get(group, ()))
    return SchemaPaths(paths=paths, name=f"{profile.name}:records")
